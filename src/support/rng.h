// Deterministic pseudo-random number generator (splitmix64 core). The corpus
// synthesizer must produce identical projects for a given seed across runs and
// platforms, so we avoid std::mt19937's distribution-implementation variance
// by implementing the distributions we need directly.

#ifndef VALUECHECK_SRC_SUPPORT_RNG_H_
#define VALUECHECK_SRC_SUPPORT_RNG_H_

#include <cstdint>
#include <vector>

namespace vc {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Bernoulli trial.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

  // Approximately normal via sum of uniforms (Irwin–Hall with 12 terms).
  double NextGaussian(double mean, double stddev) {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) {
      sum += NextDouble();
    }
    return mean + (sum - 6.0) * stddev;
  }

  // Index drawn from unnormalized weights. Empty or all-zero weights yield 0.
  size_t NextWeighted(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) {
      total += w;
    }
    if (total <= 0.0) {
      return 0;
    }
    double target = NextDouble() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (target < acc) {
        return i;
      }
    }
    return weights.size() - 1;
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_RNG_H_

// Small string helpers shared by the lexer, pruning passes, and report
// writers. Everything operates on std::string_view and allocates only when
// returning owned strings.

#ifndef VALUECHECK_SRC_SUPPORT_STRING_UTIL_H_
#define VALUECHECK_SRC_SUPPORT_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace vc {

// Splits on a single-character separator; empty fields are preserved.
std::vector<std::string_view> Split(std::string_view text, char sep);

// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// True if `text` contains `word` delimited by non-identifier characters on
// both sides. Identifier characters are [A-Za-z0-9_]. Used by source-level
// pruning to find variable uses in raw lines (including disabled #if regions).
bool ContainsWord(std::string_view text, std::string_view word);

// Case-insensitive substring search (ASCII). The unused-hints pruning pattern
// matches the keyword "unused" regardless of case.
bool ContainsIgnoreCase(std::string_view text, std::string_view needle);

// True if the character can appear in a Mini-C identifier.
bool IsIdentChar(char c);

// ASCII lowercase copy (used for case-insensitive flag/keyword parsing).
std::string ToLower(std::string_view text);

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_STRING_UTIL_H_

// Memory accounting for the analysis pipeline: exact, deterministic byte and
// object counts per allocation category (AST nodes, IR instructions,
// points-to sets, interned identifier strings), plus process peak-RSS
// sampling.
//
// Design constraints (see DESIGN.md §"Resource observability"):
//   * Add() is a pair of relaxed atomic fetch_adds per category — safe from
//     any worker thread, no locks. Addition commutes, so the totals are exact
//     and byte-identical at any --jobs value; only the RSS samples (a
//     property of the OS process, not of the analysis) vary between runs.
//   * Tracking is gated by an enabled flag mirroring MetricsRegistry:
//     producers compute footprints only when somebody is collecting, so the
//     disabled pipeline pays two relaxed loads and nothing else.
//   * The global tracker accumulates across runs in one process (like every
//     registry counter); per-run attribution lives in AnalysisReport's
//     MemoryStats, assembled from slot-indexed per-file/per-function sums.
//   * Counted bytes are sizeof-based footprints of what the pipeline
//     materializes (not allocator-level truth): stable within a build, which
//     is what cross-jobs and cross-flag byte-identity requires.

#ifndef VALUECHECK_SRC_SUPPORT_MEMSTATS_H_
#define VALUECHECK_SRC_SUPPORT_MEMSTATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace vc {

enum class MemCategory {
  kAstNodes = 0,
  kIrInstructions,
  kPointsToSets,
  kInternedStrings,
};
inline constexpr int kMemCategoryCount = 4;

// Stable snake_case label ("ast_nodes", "ir_instructions", "points_to_sets",
// "interned_strings") used in JSON, ledger, and metric names.
const char* MemCategoryName(MemCategory category);

// One category's running tally. Addition commutes: merging per-slot counts in
// any order yields identical totals.
struct MemCount {
  uint64_t bytes = 0;
  uint64_t objects = 0;

  MemCount& operator+=(const MemCount& other) {
    bytes += other.bytes;
    objects += other.objects;
    return *this;
  }
};

class MemoryTracker {
 public:
  static MemoryTracker& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Adds bytes/objects to a category. Hot-path safe: two relaxed fetch_adds.
  void Add(MemCategory category, uint64_t bytes, uint64_t objects);
  void Add(MemCategory category, const MemCount& count) {
    Add(category, count.bytes, count.objects);
  }

  MemCount Get(MemCategory category) const;
  uint64_t TotalTrackedBytes() const;

  // Samples the process peak RSS and keeps the high-water mark.
  void SampleRss();
  uint64_t peak_rss_bytes() const { return peak_rss_.load(std::memory_order_relaxed); }

  // Publishes current totals into the MetricsRegistry as mem.* gauges
  // (mem.<category>.bytes / mem.<category>.objects, mem.tracked_bytes,
  // mem.peak_rss_bytes) for the Prometheus dump.
  void PublishRegistryGauges() const;

  void ResetAll();

 private:
  MemoryTracker() = default;

  struct Slot {
    std::atomic<uint64_t> bytes{0};
    std::atomic<uint64_t> objects{0};
  };
  Slot slots_[kMemCategoryCount];
  std::atomic<uint64_t> peak_rss_{0};
  std::atomic<bool> enabled_{false};
};

// Shorthand for MemoryTracker::Global().enabled().
inline bool MemoryTrackingEnabled() { return MemoryTracker::Global().enabled(); }

// Process peak resident set size in bytes: /proc/self/status VmHWM when
// available, getrusage(ru_maxrss) otherwise, 0 if neither works.
uint64_t ProcessPeakRssBytes();

// One pipeline stage's memory attribution within a run. tracked_bytes_peak is
// the deterministic running total of tracked bytes at the end of the stage;
// rss_bytes is the (nondeterministic) process peak-RSS sample taken there.
struct StageMemory {
  std::string stage;
  uint64_t tracked_bytes_delta = 0;
  uint64_t tracked_bytes_peak = 0;
  uint64_t rss_bytes = 0;
};

// Per-run memory accounting surfaced on AnalysisReport. Everything except
// peak_rss_bytes and StageMemory::rss_bytes is exact and byte-identical
// across --jobs values.
struct MemoryStats {
  bool collected = false;
  MemCount categories[kMemCategoryCount];
  uint64_t peak_rss_bytes = 0;
  std::vector<StageMemory> stages;

  uint64_t TrackedBytes() const {
    uint64_t total = 0;
    for (const MemCount& count : categories) {
      total += count.bytes;
    }
    return total;
  }
  uint64_t TrackedObjects() const {
    uint64_t total = 0;
    for (const MemCount& count : categories) {
      total += count.objects;
    }
    return total;
  }
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_MEMSTATS_H_

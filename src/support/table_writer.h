// Formats evaluation results as aligned console tables and CSV files. Every
// bench binary prints the rows of the paper table it reproduces through this
// writer so outputs are uniform and machine-readable.

#ifndef VALUECHECK_SRC_SUPPORT_TABLE_WRITER_H_
#define VALUECHECK_SRC_SUPPORT_TABLE_WRITER_H_

#include <string>
#include <vector>

namespace vc {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders an aligned ASCII table with a header separator.
  std::string RenderText() const;

  // Renders RFC-4180-ish CSV (fields containing commas or quotes are quoted).
  std::string RenderCsv() const;

  // Writes the CSV form to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Convenience numeric formatting used by the benches.
std::string FormatPercent(double fraction, int decimals = 0);  // 0.26 -> "26%"
std::string FormatDouble(double value, int decimals = 2);

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_TABLE_WRITER_H_

// Owns the text of every source file under analysis and provides line-level
// access. The pruning passes (configuration dependency, unused hints) operate
// on raw source lines, so the manager keeps the full original text — including
// preprocessor-disabled regions that never reach the lexer.

#ifndef VALUECHECK_SRC_SUPPORT_SOURCE_MANAGER_H_
#define VALUECHECK_SRC_SUPPORT_SOURCE_MANAGER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/support/source_location.h"

namespace vc {

class SourceManager {
 public:
  SourceManager() = default;

  // Registers a file. `path` is a display name (also the key used by the VCS
  // layer); `content` is the full text. Returns the new file's id.
  FileId AddFile(std::string path, std::string content);

  // Replaces the text of an already-registered file in place, recomputing its
  // line index. The id stays valid — the incremental engine relies on a path
  // keeping its FileId across recompiles so cached locations stay meaningful.
  void ReplaceContent(FileId id, std::string content);

  // Number of registered files.
  int NumFiles() const { return static_cast<int>(files_.size()); }

  const std::string& Path(FileId id) const { return files_[id].path; }
  const std::string& Content(FileId id) const { return files_[id].content; }

  // Looks up a file id by path; returns kInvalidFileId if not registered.
  FileId FindByPath(std::string_view path) const;

  // Number of lines in the file (a trailing newline does not add a line).
  int NumLines(FileId id) const;

  // Returns the text of 1-based `line` without its trailing newline.
  // Out-of-range lines yield an empty view.
  std::string_view Line(FileId id, int line) const;

  // Renders "path:line:col" for diagnostics and reports.
  std::string Render(const SourceLoc& loc) const;

 private:
  struct File {
    std::string path;
    std::string content;
    // Byte offset of the start of each line; line_starts[i] is line i+1.
    std::vector<size_t> line_starts;
  };

  std::vector<File> files_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_SOURCE_MANAGER_H_

// Leveled stderr logging for the pipeline. Deliberately tiny: a process-wide
// level (atomic), a mutex-serialized sink, and a guard macro so disabled
// levels cost one relaxed load and never evaluate their message expression.
// Logs go to stderr only — stdout stays reserved for findings and reports,
// so machine-readable output is unaffected by the log level.

#ifndef VALUECHECK_SRC_SUPPORT_LOGGING_H_
#define VALUECHECK_SRC_SUPPORT_LOGGING_H_

#include <optional>
#include <string>

namespace vc {

enum class LogLevel {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

// Process-wide threshold: messages above it are dropped. Default kWarn.
void SetLogLevel(LogLevel level);
LogLevel CurrentLogLevel();
bool LogEnabled(LogLevel level);

// "error" | "warn" | "info" | "debug" (case-insensitive); nullopt otherwise.
std::optional<LogLevel> ParseLogLevel(const std::string& name);
const char* LogLevelName(LogLevel level);

// Writes "[vc] <level>: <message>\n" to stderr (one line, mutex-serialized).
// Call through VC_LOG so disabled levels skip message construction.
void LogMessage(LogLevel level, const std::string& message);

}  // namespace vc

#define VC_LOG(level, message)            \
  do {                                    \
    if (::vc::LogEnabled(level)) {        \
      ::vc::LogMessage(level, (message)); \
    }                                     \
  } while (0)

#define VC_LOG_ERROR(message) VC_LOG(::vc::LogLevel::kError, message)
#define VC_LOG_WARN(message) VC_LOG(::vc::LogLevel::kWarn, message)
#define VC_LOG_INFO(message) VC_LOG(::vc::LogLevel::kInfo, message)
#define VC_LOG_DEBUG(message) VC_LOG(::vc::LogLevel::kDebug, message)

#endif  // VALUECHECK_SRC_SUPPORT_LOGGING_H_

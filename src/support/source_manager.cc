#include "src/support/source_manager.h"

#include <utility>

namespace vc {

std::string ToString(const SourceLoc& loc) {
  if (!loc.IsValid()) {
    return "<invalid>";
  }
  return "file" + std::to_string(loc.file) + ":" + std::to_string(loc.line) + ":" +
         std::to_string(loc.column);
}

FileId SourceManager::AddFile(std::string path, std::string content) {
  File file;
  file.path = std::move(path);
  file.content = std::move(content);
  file.line_starts.push_back(0);
  for (size_t i = 0; i < file.content.size(); ++i) {
    if (file.content[i] == '\n' && i + 1 < file.content.size()) {
      file.line_starts.push_back(i + 1);
    }
  }
  files_.push_back(std::move(file));
  return static_cast<FileId>(files_.size() - 1);
}

void SourceManager::ReplaceContent(FileId id, std::string content) {
  File& file = files_[id];
  file.content = std::move(content);
  file.line_starts.clear();
  file.line_starts.push_back(0);
  for (size_t i = 0; i < file.content.size(); ++i) {
    if (file.content[i] == '\n' && i + 1 < file.content.size()) {
      file.line_starts.push_back(i + 1);
    }
  }
}

FileId SourceManager::FindByPath(std::string_view path) const {
  for (size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].path == path) {
      return static_cast<FileId>(i);
    }
  }
  return kInvalidFileId;
}

int SourceManager::NumLines(FileId id) const {
  const File& file = files_[id];
  if (file.content.empty()) {
    return 0;
  }
  return static_cast<int>(file.line_starts.size());
}

std::string_view SourceManager::Line(FileId id, int line) const {
  const File& file = files_[id];
  if (line < 1 || line > NumLines(id)) {
    return {};
  }
  size_t start = file.line_starts[line - 1];
  size_t end = (line < static_cast<int>(file.line_starts.size()))
                   ? file.line_starts[line] - 1  // exclude the '\n'
                   : file.content.size();
  // A file ending exactly at '\n' leaves `end` at content.size(); strip a
  // trailing newline if present.
  std::string_view view(file.content.data() + start, end - start);
  if (!view.empty() && view.back() == '\n') {
    view.remove_suffix(1);
  }
  return view;
}

std::string SourceManager::Render(const SourceLoc& loc) const {
  if (!loc.IsValid() || loc.file >= NumFiles()) {
    return "<invalid>";
  }
  return Path(loc.file) + ":" + std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

}  // namespace vc

// Live run observability channels:
//
//   * RunEventLog — a machine-readable JSONL event stream (--events FILE).
//     One JSON object per line, field order fixed per event type: "event",
//     "seq", "ts_us", then type-specific fields in emission order. "seq" is
//     assigned under the writer mutex, so it is dense, starts at 0, and
//     strictly increases in file order even when workers race. Event types:
//     run_start, stage_start, stage_end (whole stages and per file),
//     checker_done, quarantine, run_end.
//
//   * ProgressMeter — a human heartbeat (--progress): a background thread
//     redraws one stderr status line (~10 Hz) with files/functions done,
//     findings so far, throughput, and an ETA extrapolated from the current
//     rate. All producer-side updates are relaxed atomics; the pipeline never
//     blocks on rendering.
//
// Neither channel influences analysis results: producers check the enabled
// flags (two relaxed loads when off) and only ever append to a side channel.

#ifndef VALUECHECK_SRC_SUPPORT_EVENTS_H_
#define VALUECHECK_SRC_SUPPORT_EVENTS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace vc {

class RunEventLog {
 public:
  static RunEventLog& Global();

  // Opens (truncates) the sink and enables emission; returns false on I/O
  // failure (the log stays disabled).
  bool Open(const std::string& path);
  // Flushes and disables. Safe to call when never opened.
  void Close();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Called by RunEvent::Emit: stamps "seq" and writes one line.
  void Write(const std::string& type, int64_t ts_us,
             const std::vector<std::pair<std::string, std::string>>& fields);

  // Microseconds since Open().
  int64_t NowMicros() const;

 private:
  RunEventLog() = default;

  std::atomic<bool> enabled_{false};
  std::mutex mutex_;  // serializes lines; guards out_/seq_
  std::ofstream out_;
  int64_t seq_ = 0;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

inline bool RunEventsEnabled() { return RunEventLog::Global().enabled(); }

// Builder for one event line. A no-op when the log is disabled at
// construction. Values are rendered to JSON up front; keys are
// code-controlled literals and are not escaped.
class RunEvent {
 public:
  explicit RunEvent(const char* type);

  RunEvent& Str(const char* key, const std::string& value);
  RunEvent& Num(const char* key, int64_t value);
  RunEvent& Num(const char* key, uint64_t value) {
    return Num(key, static_cast<int64_t>(value));
  }
  RunEvent& Dbl(const char* key, double value);
  RunEvent& Flag(const char* key, bool value);

  // Writes the line (assigning "seq" under the log mutex). Idempotent.
  void Emit();
  ~RunEvent() { Emit(); }

  RunEvent(const RunEvent&) = delete;
  RunEvent& operator=(const RunEvent&) = delete;

 private:
  bool active_;
  bool emitted_ = false;
  const char* type_;
  int64_t ts_us_ = 0;
  std::vector<std::pair<std::string, std::string>> fields_;
};

class ProgressMeter {
 public:
  static ProgressMeter& Global();

  // Starts the render thread writing to `out` (stderr in the CLI).
  void Start(std::FILE* out);
  // Final render + newline, then joins the render thread.
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void SetPhase(const char* phase) { phase_.store(phase, std::memory_order_relaxed); }
  void AddTotalFiles(uint64_t n) { files_total_.fetch_add(n, std::memory_order_relaxed); }
  void FileDone() { files_done_.fetch_add(1, std::memory_order_relaxed); }
  void AddTotalFunctions(uint64_t n) {
    functions_total_.fetch_add(n, std::memory_order_relaxed);
  }
  void FunctionDone() { functions_done_.fetch_add(1, std::memory_order_relaxed); }
  void AddFindings(uint64_t n) { findings_.fetch_add(n, std::memory_order_relaxed); }

 private:
  ProgressMeter() = default;
  void RenderLoop();
  std::string RenderLine() const;

  std::atomic<bool> enabled_{false};
  std::atomic<const char*> phase_{""};
  std::atomic<uint64_t> files_done_{0};
  std::atomic<uint64_t> files_total_{0};
  std::atomic<uint64_t> functions_done_{0};
  std::atomic<uint64_t> functions_total_{0};
  std::atomic<uint64_t> findings_{0};

  std::FILE* out_ = nullptr;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  size_t last_width_ = 0;
  std::chrono::steady_clock::time_point start_;
};

inline bool ProgressEnabled() { return ProgressMeter::Global().enabled(); }

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_EVENTS_H_

#include "src/support/events.h"

#include "src/support/json_writer.h"
#include "src/support/string_util.h"
#include "src/support/table_writer.h"

namespace vc {

RunEventLog& RunEventLog::Global() {
  static RunEventLog* log = new RunEventLog();  // never destroyed
  return *log;
}

bool RunEventLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    return false;
  }
  seq_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void RunEventLog::Close() {
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

int64_t RunEventLog::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void RunEventLog::Write(const std::string& type, int64_t ts_us,
                        const std::vector<std::pair<std::string, std::string>>& fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) {
    return;
  }
  // Fixed field order: "event", "seq", "ts_us", then type-specific fields in
  // emission order (the golden test asserts this layout).
  std::string line = "{\"event\":\"" + type + "\",\"seq\":" + std::to_string(seq_++) +
                     ",\"ts_us\":" + std::to_string(ts_us);
  for (const auto& [key, value] : fields) {
    line += ",\"";
    line += key;
    line += "\":";
    line += value;
  }
  line += "}\n";
  out_ << line;
}

RunEvent::RunEvent(const char* type) : active_(RunEventsEnabled()), type_(type) {
  if (active_) {
    ts_us_ = RunEventLog::Global().NowMicros();
  }
}

RunEvent& RunEvent::Str(const char* key, const std::string& value) {
  if (active_) {
    fields_.emplace_back(key, "\"" + JsonWriter::Escape(value) + "\"");
  }
  return *this;
}

RunEvent& RunEvent::Num(const char* key, int64_t value) {
  if (active_) {
    fields_.emplace_back(key, std::to_string(value));
  }
  return *this;
}

RunEvent& RunEvent::Dbl(const char* key, double value) {
  if (active_) {
    fields_.emplace_back(key, FormatDouble(value, 6));
  }
  return *this;
}

RunEvent& RunEvent::Flag(const char* key, bool value) {
  if (active_) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  return *this;
}

void RunEvent::Emit() {
  if (!active_ || emitted_) {
    return;
  }
  emitted_ = true;
  RunEventLog::Global().Write(type_, ts_us_, fields_);
}

ProgressMeter& ProgressMeter::Global() {
  static ProgressMeter* meter = new ProgressMeter();  // never destroyed
  return *meter;
}

void ProgressMeter::Start(std::FILE* out) {
  if (enabled()) {
    return;
  }
  out_ = out;
  start_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
  }
  enabled_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { RenderLoop(); });
}

void ProgressMeter::Stop() {
  if (!enabled()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  enabled_.store(false, std::memory_order_relaxed);
  // Final state line, then release the terminal line.
  std::string line = RenderLine();
  std::fprintf(out_, "\r%s", line.c_str());
  for (size_t i = line.size(); i < last_width_; ++i) {
    std::fputc(' ', out_);
  }
  std::fputc('\n', out_);
  std::fflush(out_);
}

void ProgressMeter::RenderLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    lock.unlock();
    std::string line = RenderLine();
    std::fprintf(out_, "\r%s", line.c_str());
    // Blank out any residue from a longer previous line.
    for (size_t i = line.size(); i < last_width_; ++i) {
      std::fputc(' ', out_);
    }
    std::fflush(out_);
    last_width_ = line.size();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(100), [this] { return stopping_; });
  }
}

std::string ProgressMeter::RenderLine() const {
  uint64_t files_done = files_done_.load(std::memory_order_relaxed);
  uint64_t files_total = files_total_.load(std::memory_order_relaxed);
  uint64_t fns_done = functions_done_.load(std::memory_order_relaxed);
  uint64_t fns_total = functions_total_.load(std::memory_order_relaxed);
  uint64_t findings = findings_.load(std::memory_order_relaxed);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();

  std::string line = "[";
  line += phase_.load(std::memory_order_relaxed);
  line += "] files " + std::to_string(files_done) + "/" + std::to_string(files_total);
  line += " fns " + std::to_string(fns_done) + "/" + std::to_string(fns_total);
  line += " findings " + std::to_string(findings);

  // Throughput and ETA from whichever unit the current phase is consuming.
  uint64_t done = fns_total > 0 ? fns_done : files_done;
  uint64_t total = fns_total > 0 ? fns_total : files_total;
  const char* unit = fns_total > 0 ? "fn/s" : "file/s";
  if (elapsed > 0.0 && done > 0) {
    double rate = static_cast<double>(done) / elapsed;
    line += " " + FormatDouble(rate, 1) + " " + unit;
    if (total > done) {
      line += " ETA " + FormatDouble(static_cast<double>(total - done) / rate, 1) + "s";
    }
  }
  line += " " + FormatDouble(elapsed, 1) + "s";
  return line;
}

}  // namespace vc

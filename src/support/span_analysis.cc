#include "src/support/span_analysis.h"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <map>
#include <utility>

#include "src/support/json_writer.h"

namespace vc {

namespace {

int64_t EndMicros(const SpanNode& node) {
  return node.ts_micros + node.dur_micros;
}

// Deterministic event order: start ascending, longer spans first at equal
// start (so a parent precedes the children it contains), then tid and name
// as total-order tie breakers.
bool EventBefore(const TraceEvent& a, const TraceEvent& b) {
  if (a.ts_micros != b.ts_micros) return a.ts_micros < b.ts_micros;
  if (a.dur_micros != b.dur_micros) return a.dur_micros > b.dur_micros;
  if (a.tid != b.tid) return a.tid < b.tid;
  return a.name < b.name;
}

double Clamp01(double v) { return v < 0 ? 0 : (v > 1 ? 1 : v); }

}  // namespace

SpanGraph SpanGraph::Build(const std::vector<TraceEvent>& events) {
  SpanGraph graph;
  if (events.empty()) {
    return graph;
  }

  std::vector<TraceEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(), EventBefore);

  graph.nodes.reserve(sorted.size());
  graph.window_begin_micros = sorted.front().ts_micros;
  graph.window_end_micros = sorted.front().ts_micros;
  for (const TraceEvent& event : sorted) {
    SpanNode node;
    node.name = event.name;
    node.tid = event.tid;
    node.ts_micros = event.ts_micros;
    node.dur_micros = std::max<int64_t>(0, event.dur_micros);
    graph.window_end_micros =
        std::max(graph.window_end_micros, EndMicros(node));
    graph.nodes.push_back(std::move(node));
  }

  // One containment sweep in global start order. Each tid keeps a stack of
  // open frames; a node nests under the top of its own tid's stack, and a
  // node opening a tid's stack looks for the deepest still-open frame on
  // another tid that fully contains it (the fork edge of a parallel_for).
  std::map<int, std::vector<int>> open;  // tid -> stack of node indices
  for (size_t idx = 0; idx < graph.nodes.size(); ++idx) {
    SpanNode& node = graph.nodes[idx];
    for (auto& [tid, stack] : open) {
      while (!stack.empty() &&
             EndMicros(graph.nodes[stack.back()]) <= node.ts_micros) {
        stack.pop_back();
      }
    }
    std::vector<int>& own = open[node.tid];
    int parent = -1;
    if (!own.empty()) {
      parent = own.back();
    } else {
      // Deepest (= latest-starting) containing open frame on another tid;
      // ties break toward the lower tid for determinism.
      for (const auto& [tid, stack] : open) {
        if (tid == node.tid) continue;
        for (size_t d = stack.size(); d-- > 0;) {
          int cand = stack[d];
          if (EndMicros(graph.nodes[cand]) >= EndMicros(node)) {
            if (parent < 0 ||
                graph.nodes[cand].ts_micros > graph.nodes[parent].ts_micros) {
              parent = cand;
            }
            break;  // deeper frames end no later; first hit is the deepest
          }
        }
      }
    }
    if (parent >= 0) {
      node.parent = parent;
      graph.nodes[parent].children.push_back(static_cast<int>(idx));
    } else {
      graph.roots.push_back(static_cast<int>(idx));
    }
    own.push_back(static_cast<int>(idx));
  }

  // Critical path, bottom-up. Parents always precede children in index
  // order (the sweep assigns parents from already-visited nodes), so a
  // reverse pass sees every child before its parent. Children on the same
  // tid are sequential; child groups on different tids run in parallel, so
  // only the heaviest lane extends the chain. Clamping to the node's own
  // duration keeps chains inside their containing span — and total critical
  // path under wall time — by construction.
  for (size_t i = graph.nodes.size(); i-- > 0;) {
    SpanNode& node = graph.nodes[i];
    if (node.children.empty()) {
      node.critical_micros = node.dur_micros;
      continue;
    }
    int64_t own_cover = 0;
    std::map<int, int64_t> lane_chain;  // child tid -> summed chain
    for (int child : node.children) {
      const SpanNode& c = graph.nodes[child];
      if (c.tid == node.tid) {
        own_cover += c.dur_micros;
      }
      lane_chain[c.tid] += c.critical_micros;
    }
    int64_t self = std::max<int64_t>(0, node.dur_micros - own_cover);
    int64_t best = 0;
    for (const auto& [tid, chain] : lane_chain) {
      best = std::max(best, chain);
    }
    node.critical_micros = std::min(node.dur_micros, self + best);
  }

  return graph;
}

namespace {

// Picks the lane (child tid group) carrying the node's critical chain;
// ties break toward the lower tid. Returns the lane's summed chain.
int64_t CriticalLane(const SpanGraph& graph, const SpanNode& node,
                     int& lane_tid) {
  std::map<int, int64_t> lane_chain;
  for (int child : node.children) {
    lane_chain[graph.nodes[child].tid] += graph.nodes[child].critical_micros;
  }
  lane_tid = -1;
  int64_t best = -1;
  for (const auto& [tid, chain] : lane_chain) {
    if (chain > best) {
      best = chain;
      lane_tid = tid;
    }
  }
  return best < 0 ? 0 : best;
}

// Walks the critical chain, folding each frame's uncovered contribution
// into an ordered stack -> seconds aggregation (repeated frames like a
// per-function detect span collapse into one listing line).
void FoldCriticalPath(const SpanGraph& graph, int idx,
                      const std::string& prefix,
                      std::vector<std::string>& order,
                      std::map<std::string, double>& folded) {
  const SpanNode& node = graph.nodes[idx];
  std::string stack = prefix.empty() ? node.name : prefix + ";" + node.name;
  int lane_tid = -1;
  int64_t lane = node.children.empty() ? 0 : CriticalLane(graph, node, lane_tid);
  double self_seconds =
      static_cast<double>(std::max<int64_t>(0, node.critical_micros - lane)) /
      1e6;
  if (self_seconds > 0 || node.children.empty()) {
    auto it = folded.find(stack);
    if (it == folded.end()) {
      order.push_back(stack);
      folded[stack] = self_seconds;
    } else {
      it->second += self_seconds;
    }
  }
  for (int child : node.children) {
    if (graph.nodes[child].tid == lane_tid) {
      FoldCriticalPath(graph, child, stack, order, folded);
    }
  }
}

// Union length of a set of [begin, end) intervals, plus a bucketized busy
// fraction timeline over [window_begin, window_end).
struct BusyProfile {
  int64_t busy_micros = 0;
  std::vector<double> timeline;
};

BusyProfile ComputeBusy(std::vector<std::pair<int64_t, int64_t>> intervals,
                        int64_t window_begin, int64_t window_end,
                        int buckets) {
  BusyProfile profile;
  profile.timeline.assign(static_cast<size_t>(std::max(1, buckets)), 0.0);
  int64_t window = window_end - window_begin;
  if (intervals.empty() || window <= 0) {
    return profile;
  }
  std::sort(intervals.begin(), intervals.end());
  // Merge, then measure and bucketize the merged runs.
  std::vector<std::pair<int64_t, int64_t>> merged;
  for (const auto& iv : intervals) {
    if (iv.second <= iv.first) continue;
    if (!merged.empty() && iv.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }
  double bucket_len =
      static_cast<double>(window) / static_cast<double>(profile.timeline.size());
  for (const auto& iv : merged) {
    profile.busy_micros += iv.second - iv.first;
    double lo = static_cast<double>(iv.first - window_begin);
    double hi = static_cast<double>(iv.second - window_begin);
    size_t first = static_cast<size_t>(std::max(0.0, lo / bucket_len));
    for (size_t b = first; b < profile.timeline.size(); ++b) {
      double b_lo = static_cast<double>(b) * bucket_len;
      double b_hi = b_lo + bucket_len;
      if (b_lo >= hi) break;
      double covered = std::min(hi, b_hi) - std::max(lo, b_lo);
      if (covered > 0) {
        profile.timeline[b] += covered / bucket_len;
      }
    }
  }
  for (double& v : profile.timeline) {
    v = Clamp01(v);
  }
  return profile;
}

}  // namespace

PerfReport AnalyzeSpans(const std::vector<TraceEvent>& events,
                        const PerfInputs& inputs) {
  PerfReport report;
  report.jobs = inputs.jobs;
  report.hardware_threads = inputs.hardware_threads;
  report.span_count = events.size();
  report.dropped_spans = inputs.dropped_spans;

  SpanGraph graph = SpanGraph::Build(events);
  int64_t window = graph.window_end_micros - graph.window_begin_micros;
  report.wall_seconds = inputs.wall_seconds > 0
                            ? inputs.wall_seconds
                            : static_cast<double>(window) / 1e6;

  // Critical path: roots are sequential phases of the run; overlapping
  // roots (parallel work the attachment pass could not anchor) would
  // double-count, so the total is clamped to the observation window and to
  // the wall clock.
  int64_t total_cp = 0;
  for (int root : graph.roots) {
    total_cp += graph.nodes[root].critical_micros;
  }
  total_cp = std::min(total_cp, window);
  report.critical_path_seconds =
      std::min(static_cast<double>(total_cp) / 1e6, report.wall_seconds);
  report.critical_path_fraction =
      report.wall_seconds > 0
          ? Clamp01(report.critical_path_seconds / report.wall_seconds)
          : 0.0;
  {
    std::vector<std::string> order;
    std::map<std::string, double> folded;
    for (int root : graph.roots) {
      FoldCriticalPath(graph, root, "", order, folded);
    }
    for (const std::string& stack : order) {
      report.critical_path.push_back({stack, folded[stack]});
    }
  }

  // Per-worker busy/idle over the shared observation window.
  std::map<int, std::vector<std::pair<int64_t, int64_t>>> per_tid;
  for (const SpanNode& node : graph.nodes) {
    per_tid[node.tid].push_back({node.ts_micros, EndMicros(node)});
  }
  double window_seconds = static_cast<double>(window) / 1e6;
  for (const auto& [tid, intervals] : per_tid) {
    BusyProfile busy =
        ComputeBusy(intervals, graph.window_begin_micros,
                    graph.window_end_micros, inputs.timeline_buckets);
    WorkerUtilization worker;
    worker.tid = tid;
    worker.spans = intervals.size();
    worker.busy_seconds = static_cast<double>(busy.busy_micros) / 1e6;
    worker.idle_seconds = std::max(0.0, window_seconds - worker.busy_seconds);
    worker.utilization =
        window_seconds > 0 ? Clamp01(worker.busy_seconds / window_seconds) : 0;
    worker.timeline = std::move(busy.timeline);
    report.total_busy_seconds += worker.busy_seconds;
    report.workers.push_back(std::move(worker));
  }

  if (!report.workers.empty()) {
    double sum_util = 0;
    for (const WorkerUtilization& w : report.workers) {
      sum_util += w.utilization;
      report.max_busy_seconds = std::max(report.max_busy_seconds, w.busy_seconds);
    }
    report.mean_utilization =
        sum_util / static_cast<double>(report.workers.size());
    report.mean_busy_seconds =
        report.total_busy_seconds / static_cast<double>(report.workers.size());
    report.imbalance_ratio = report.mean_busy_seconds > 0
                                 ? report.max_busy_seconds / report.mean_busy_seconds
                                 : 0.0;
  }

  // Amdahl fit: T = s*W + (1-s)*W/n solved for s. One worker (or no
  // measured work) is serial by definition.
  double n = static_cast<double>(report.workers.size());
  double work = report.total_busy_seconds;
  double wall = report.wall_seconds;
  if (n <= 1 || work <= 0 || wall <= 0) {
    report.serial_fraction = 1.0;
  } else {
    report.serial_fraction = Clamp01((n * wall - work) / (work * (n - 1)));
  }

  if (inputs.pool != nullptr) {
    report.steals = inputs.pool->steals;
    report.steal_latency_ns = inputs.pool->steal_latency_ns;
    while (!report.steal_latency_ns.empty() &&
           report.steal_latency_ns.back() == 0) {
      report.steal_latency_ns.pop_back();
    }
  }

  return report;
}

std::string PerfReportToJson(const PerfReport& report) {
  // Field order is part of the schema: vc_obs_lint perf checks that the
  // top-level keys appear exactly in this sequence.
  JsonWriter json;
  json.BeginObject();
  json.Int("schema_version", PerfReport::kSchemaVersion);
  json.Double("wall_seconds", report.wall_seconds);
  json.Int("jobs", report.jobs);
  json.Int("hardware_threads", report.hardware_threads);
  json.Int("span_count", static_cast<int64_t>(report.span_count));
  json.Int("dropped_spans", static_cast<int64_t>(report.dropped_spans));

  json.Key("critical_path").BeginObject();
  json.Double("seconds", report.critical_path_seconds);
  json.Double("fraction", report.critical_path_fraction);
  json.Key("folded").BeginArray();
  for (const CriticalPathStep& step : report.critical_path) {
    json.BeginObject();
    json.String("stack", step.stack);
    json.Double("seconds", step.seconds);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  json.Double("serial_fraction", report.serial_fraction);
  json.Double("total_busy_seconds", report.total_busy_seconds);

  json.Key("workers").BeginArray();
  for (size_t i = 0; i < report.workers.size(); ++i) {
    const WorkerUtilization& w = report.workers[i];
    json.BeginObject();
    json.Int("id", static_cast<int64_t>(i));
    json.Int("tid", w.tid);
    json.Int("spans", static_cast<int64_t>(w.spans));
    json.Double("busy_seconds", w.busy_seconds);
    json.Double("idle_seconds", w.idle_seconds);
    json.Double("utilization", w.utilization);
    json.Key("timeline").BeginArray();
    for (double v : w.timeline) {
      json.DoubleValue(v);
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Double("mean_utilization", report.mean_utilization);

  json.Key("imbalance").BeginObject();
  json.Double("max_busy_seconds", report.max_busy_seconds);
  json.Double("mean_busy_seconds", report.mean_busy_seconds);
  json.Double("ratio", report.imbalance_ratio);
  json.EndObject();

  json.Key("steals").BeginObject();
  json.Int("count", static_cast<int64_t>(report.steals));
  json.Key("latency_ns_log2").BeginArray();
  for (uint64_t bucket : report.steal_latency_ns) {
    json.IntValue(static_cast<int64_t>(bucket));
  }
  json.EndArray();
  json.EndObject();

  json.EndObject();
  return json.str();
}

bool WritePerfReport(const PerfReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << PerfReportToJson(report) << "\n";
  return static_cast<bool>(out);
}

}  // namespace vc

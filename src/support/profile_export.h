// Collapsed-stack profile export: folds the TraceCollector's flat complete
// spans into flamegraph.pl's collapsed format — one line per unique stack,
// "frame;frame;frame <weight>", weight in microseconds of self time.
//
// Stacks are reconstructed per thread by time-interval containment: spans are
// sorted by (start asc, duration desc) and a span nests under the innermost
// still-open span that contains it. Self time is a span's duration minus the
// total duration of its direct children, clamped at zero. Output lines are
// sorted, so identical traces fold to byte-identical profiles.

#ifndef VALUECHECK_SRC_SUPPORT_PROFILE_EXPORT_H_
#define VALUECHECK_SRC_SUPPORT_PROFILE_EXPORT_H_

#include <string>
#include <vector>

#include "src/support/trace.h"

namespace vc {

// Pure fold over a span list (testable without the global collector).
std::string CollapseTraceEvents(std::vector<TraceEvent> events);

// Folds TraceCollector::Global()'s buffered spans and writes them to `path`.
// Returns false on I/O failure.
bool WriteCollapsedProfile(const std::string& path);

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_PROFILE_EXPORT_H_

// Work-stealing thread pool backing the parallel analysis pipeline.
//
// The pipeline's unit of parallelism is the data-parallel loop: per-file
// parse/lower in Project construction and per-function detection in the
// detector. ParallelFor covers both: the iteration space is split into
// contiguous chunks dealt round-robin onto per-lane deques; each lane pops
// from the front of its own deque and, when empty, steals from the back of
// the busiest other lane. The calling thread always runs lane 0 itself, so a
// ParallelFor makes progress even when every pool worker is busy elsewhere.
//
// Guarantees:
//   * body(i) is invoked exactly once for every i in [0, n) (or until the
//     first exception aborts the loop);
//   * the first exception thrown by any lane is rethrown on the caller;
//   * nested ParallelFor calls (from inside a body) execute inline on the
//     calling lane — correct, never deadlocks, no thread oversubscription;
//   * result ordering is the caller's responsibility: workers should write
//     into pre-sized slots indexed by i, which makes any downstream merge
//     deterministic regardless of execution order.
//
// Instrumentation: the pool keeps relaxed-atomic counters (tasks executed,
// chunks claimed, steals, submit-queue high-water mark) that cost one RMW
// each on paths that already take a lock, plus per-worker idle time that is
// only measured while MetricsEnabled() (it needs clock reads). stats()
// snapshots them; callers wanting per-phase numbers diff two snapshots.
//
// Per-worker accounting (the scalability observatory's imbalance feed): each
// lane execution is credited to the slot of the thread that ran it — slot 0
// aggregates external callers (lane 0 of every ParallelFor), slots 1..N are
// the pool's own workers. Busy time per lane run and the latency of each
// successful steal (own-deque miss to chunk acquired) are clocked only while
// MetricsEnabled(); counts are always exact.

#ifndef VALUECHECK_SRC_SUPPORT_THREAD_POOL_H_
#define VALUECHECK_SRC_SUPPORT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vc {

// Resolves a --jobs style request: values <= 0 mean "all hardware threads";
// anything else is taken as-is.
int ResolveJobs(int jobs);

// Detected hardware parallelism. std::thread::hardware_concurrency() may
// legally return 0 ("unknown"); this helper documents the fallback in one
// place: an unknown count is reported as 1 so callers treat the machine as
// serial rather than dividing by zero or inventing cores.
int HardwareThreads();

// Cumulative pool activity since construction (Global(): since process
// start). Subtract two snapshots for a per-phase view.
struct ThreadPoolStats {
  // Steal latencies are bucketed by log2(nanoseconds): bucket b holds steals
  // whose own-deque-miss-to-chunk-acquired latency was in [2^(b-1), 2^b) ns
  // (bucket 0: < 1ns). 48 buckets cover ~78 hours; the last bucket absorbs
  // any overflow.
  static constexpr int kStealLatencyBuckets = 48;

  // One slot per executing thread: slot 0 aggregates external caller threads
  // (every ParallelFor runs lane 0 on the caller), slots 1..N are the pool's
  // persistent workers. busy_seconds is only accumulated while
  // MetricsEnabled(); the counts are always exact.
  struct WorkerStats {
    uint64_t lane_runs = 0;      // lane executions credited to this slot
    uint64_t chunks = 0;         // iteration chunks this slot claimed
    uint64_t steals = 0;         // chunks of those taken from another lane
    double busy_seconds = 0.0;   // time spent inside lane bodies
  };

  uint64_t parallel_fors = 0;    // pooled loops run (inline loops not counted)
  uint64_t tasks_executed = 0;   // lane tasks drained from the submit queue
  uint64_t chunks_executed = 0;  // iteration chunks claimed across all lanes
  uint64_t steals = 0;           // chunks claimed from another lane's deque
  uint64_t queue_depth_hwm = 0;  // max pending tasks observed in the queue
  double worker_idle_seconds = 0.0;  // summed cv-wait time (metrics-enabled only)
  int workers = 0;
  std::vector<WorkerStats> per_worker;        // size workers + 1 (slot 0 = callers)
  std::vector<uint64_t> steal_latency_ns;     // kStealLatencyBuckets log2 buckets
                                              // (populated while MetricsEnabled())

  ThreadPoolStats Delta(const ThreadPoolStats& since) const {
    ThreadPoolStats d = *this;
    d.parallel_fors -= since.parallel_fors;
    d.tasks_executed -= since.tasks_executed;
    d.chunks_executed -= since.chunks_executed;
    d.steals -= since.steals;
    d.worker_idle_seconds -= since.worker_idle_seconds;
    for (size_t i = 0; i < d.per_worker.size(); ++i) {
      if (i >= since.per_worker.size()) break;
      d.per_worker[i].lane_runs -= since.per_worker[i].lane_runs;
      d.per_worker[i].chunks -= since.per_worker[i].chunks;
      d.per_worker[i].steals -= since.per_worker[i].steals;
      d.per_worker[i].busy_seconds -= since.per_worker[i].busy_seconds;
    }
    for (size_t b = 0; b < d.steal_latency_ns.size(); ++b) {
      if (b >= since.steal_latency_ns.size()) break;
      d.steal_latency_ns[b] -= since.steal_latency_ns[b];
    }
    // queue_depth_hwm and workers stay absolute: they are level, not flow.
    return d;
  }
};

class ThreadPool {
 public:
  // Starts `threads` persistent workers (clamped to at least 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Process-wide pool sized to the hardware, started on first use. All
  // ParallelFor lanes beyond the caller run here, so the total is bounded by
  // hardware_concurrency regardless of how many loops run concurrently.
  static ThreadPool& Global();

  // Runs body(i) for every i in [0, n) across up to `jobs` lanes (the caller
  // plus pool workers). Blocks until every iteration has finished; rethrows
  // the first exception raised by any lane. jobs <= 1 runs inline.
  void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& body);

  ThreadPoolStats stats() const;

  // Per-worker accounting hooks used by the ParallelFor lane runner. The
  // slot is this thread's identity within the pool (0 = external caller);
  // see CurrentWorkerSlot().
  void CreditLaneRun(int slot, uint64_t chunks, uint64_t steals,
                     uint64_t busy_nanos);
  void RecordStealLatency(uint64_t nanos);

  // Slot of the calling thread: 1..thread_count() for pool workers, 0 for
  // any other thread (including the ParallelFor caller running lane 0).
  static int CurrentWorkerSlot();

 private:
  struct WorkerCounters {
    std::atomic<uint64_t> lane_runs{0};
    std::atomic<uint64_t> chunks{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> busy_nanos{0};
  };

  void WorkerLoop(int slot);
  void Submit(std::function<void()> task);

  size_t worker_slots() const { return workers_.size() + 1; }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;

  // Observability counters (see header comment).
  std::atomic<uint64_t> parallel_fors_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> chunks_executed_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> queue_depth_hwm_{0};
  std::atomic<uint64_t> idle_nanos_{0};
  // Fixed-size after construction, so lock-free relaxed access is safe.
  // Array (not vector) because atomics are neither copyable nor movable.
  std::unique_ptr<WorkerCounters[]> worker_counters_;  // size worker_slots()
  std::atomic<uint64_t>
      steal_latency_ns_[ThreadPoolStats::kStealLatencyBuckets] = {};
};

// Convenience wrapper over ThreadPool::Global().
void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& body);

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_THREAD_POOL_H_

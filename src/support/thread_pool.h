// Work-stealing thread pool backing the parallel analysis pipeline.
//
// The pipeline's unit of parallelism is the data-parallel loop: per-file
// parse/lower in Project construction and per-function detection in the
// detector. ParallelFor covers both: the iteration space is split into
// contiguous chunks dealt round-robin onto per-lane deques; each lane pops
// from the front of its own deque and, when empty, steals from the back of
// the busiest other lane. The calling thread always runs lane 0 itself, so a
// ParallelFor makes progress even when every pool worker is busy elsewhere.
//
// Guarantees:
//   * body(i) is invoked exactly once for every i in [0, n) (or until the
//     first exception aborts the loop);
//   * the first exception thrown by any lane is rethrown on the caller;
//   * nested ParallelFor calls (from inside a body) execute inline on the
//     calling lane — correct, never deadlocks, no thread oversubscription;
//   * result ordering is the caller's responsibility: workers should write
//     into pre-sized slots indexed by i, which makes any downstream merge
//     deterministic regardless of execution order.

#ifndef VALUECHECK_SRC_SUPPORT_THREAD_POOL_H_
#define VALUECHECK_SRC_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vc {

// Resolves a --jobs style request: values <= 0 mean "all hardware threads";
// anything else is taken as-is.
int ResolveJobs(int jobs);

class ThreadPool {
 public:
  // Starts `threads` persistent workers (clamped to at least 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Process-wide pool sized to the hardware, started on first use. All
  // ParallelFor lanes beyond the caller run here, so the total is bounded by
  // hardware_concurrency regardless of how many loops run concurrently.
  static ThreadPool& Global();

  // Runs body(i) for every i in [0, n) across up to `jobs` lanes (the caller
  // plus pool workers). Blocks until every iteration has finished; rethrows
  // the first exception raised by any lane. jobs <= 1 runs inline.
  void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();
  void Submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Convenience wrapper over ThreadPool::Global().
void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& body);

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_THREAD_POOL_H_

// Work-stealing thread pool backing the parallel analysis pipeline.
//
// The pipeline's unit of parallelism is the data-parallel loop: per-file
// parse/lower in Project construction and per-function detection in the
// detector. ParallelFor covers both: the iteration space is split into
// contiguous chunks dealt round-robin onto per-lane deques; each lane pops
// from the front of its own deque and, when empty, steals from the back of
// the busiest other lane. The calling thread always runs lane 0 itself, so a
// ParallelFor makes progress even when every pool worker is busy elsewhere.
//
// Guarantees:
//   * body(i) is invoked exactly once for every i in [0, n) (or until the
//     first exception aborts the loop);
//   * the first exception thrown by any lane is rethrown on the caller;
//   * nested ParallelFor calls (from inside a body) execute inline on the
//     calling lane — correct, never deadlocks, no thread oversubscription;
//   * result ordering is the caller's responsibility: workers should write
//     into pre-sized slots indexed by i, which makes any downstream merge
//     deterministic regardless of execution order.
//
// Instrumentation: the pool keeps relaxed-atomic counters (tasks executed,
// chunks claimed, steals, submit-queue high-water mark) that cost one RMW
// each on paths that already take a lock, plus per-worker idle time that is
// only measured while MetricsEnabled() (it needs clock reads). stats()
// snapshots them; callers wanting per-phase numbers diff two snapshots.

#ifndef VALUECHECK_SRC_SUPPORT_THREAD_POOL_H_
#define VALUECHECK_SRC_SUPPORT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vc {

// Resolves a --jobs style request: values <= 0 mean "all hardware threads";
// anything else is taken as-is.
int ResolveJobs(int jobs);

// Cumulative pool activity since construction (Global(): since process
// start). Subtract two snapshots for a per-phase view.
struct ThreadPoolStats {
  uint64_t parallel_fors = 0;    // pooled loops run (inline loops not counted)
  uint64_t tasks_executed = 0;   // lane tasks drained from the submit queue
  uint64_t chunks_executed = 0;  // iteration chunks claimed across all lanes
  uint64_t steals = 0;           // chunks claimed from another lane's deque
  uint64_t queue_depth_hwm = 0;  // max pending tasks observed in the queue
  double worker_idle_seconds = 0.0;  // summed cv-wait time (metrics-enabled only)
  int workers = 0;

  ThreadPoolStats Delta(const ThreadPoolStats& since) const {
    ThreadPoolStats d = *this;
    d.parallel_fors -= since.parallel_fors;
    d.tasks_executed -= since.tasks_executed;
    d.chunks_executed -= since.chunks_executed;
    d.steals -= since.steals;
    d.worker_idle_seconds -= since.worker_idle_seconds;
    // queue_depth_hwm and workers stay absolute: they are level, not flow.
    return d;
  }
};

class ThreadPool {
 public:
  // Starts `threads` persistent workers (clamped to at least 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Process-wide pool sized to the hardware, started on first use. All
  // ParallelFor lanes beyond the caller run here, so the total is bounded by
  // hardware_concurrency regardless of how many loops run concurrently.
  static ThreadPool& Global();

  // Runs body(i) for every i in [0, n) across up to `jobs` lanes (the caller
  // plus pool workers). Blocks until every iteration has finished; rethrows
  // the first exception raised by any lane. jobs <= 1 runs inline.
  void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& body);

  ThreadPoolStats stats() const;

 private:
  void WorkerLoop();
  void Submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;

  // Observability counters (see header comment).
  std::atomic<uint64_t> parallel_fors_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> chunks_executed_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> queue_depth_hwm_{0};
  std::atomic<uint64_t> idle_nanos_{0};
};

// Convenience wrapper over ThreadPool::Global().
void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& body);

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_THREAD_POOL_H_

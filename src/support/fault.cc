#include "src/support/fault.h"

#include <cstdio>
#include <cstdlib>

namespace vc {

namespace {

// Deadline checks cost a clock read; amortize them over this many steps.
constexpr uint64_t kDeadlineCheckInterval = 1024;

// FNV-1a over a byte string, folded into an accumulator.
uint64_t HashBytes(uint64_t h, std::string_view bytes) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kPrime;
  }
  return h;
}

// splitmix64 finalizer: spreads the low-entropy FNV state across all 64 bits
// so the uniform-threshold comparison below is unbiased.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

BudgetMeter::BudgetMeter(const ResourceBudget& budget)
    : step_limit_(budget.detect_step_limit) {
  if (budget.unit_deadline_seconds > 0.0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(budget.unit_deadline_seconds));
  }
}

void BudgetMeter::Charge(uint64_t steps) {
  steps_ += steps;
  if (step_limit_ != 0 && steps_ > step_limit_) {
    throw BudgetExceededError("step budget exceeded (limit " +
                              std::to_string(step_limit_) + ")");
  }
  if (has_deadline_ && steps_ >= next_deadline_check_) {
    next_deadline_check_ = steps_ + kDeadlineCheckInterval;
    if (std::chrono::steady_clock::now() > deadline_) {
      throw BudgetExceededError("unit deadline exceeded");
    }
  }
}

FaultInjector::FaultInjector(uint64_t seed, double rate) : seed_(seed) {
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  rate_ = rate;
}

bool FaultInjector::ShouldFault(std::string_view site, std::string_view unit) const {
  if (rate_ <= 0.0) return false;
  if (rate_ >= 1.0) return true;
  uint64_t h = HashBytes(14695981039346656037ull, site);
  h = HashBytes(h, "\x1f");  // separator so ("ab","c") != ("a","bc")
  h = HashBytes(h, unit);
  h = Mix(h ^ Mix(seed_));
  // Top 53 bits → uniform double in [0,1); IEEE arithmetic keeps this
  // bit-identical across platforms, which the determinism contract needs.
  double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < rate_;
}

void FaultInjector::MaybeFault(std::string_view site, std::string_view unit) const {
  if (ShouldFault(site, unit)) {
    throw InjectedFaultError("injected fault at " + std::string(site) + " (" +
                             std::string(unit) + ")");
  }
}

std::optional<FaultInjector> FaultInjector::Parse(const std::string& spec,
                                                 std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<FaultInjector> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return fail("expected SEED:RATE (e.g. 42:0.1), got '" + spec + "'");
  }
  const std::string seed_part = spec.substr(0, colon);
  const std::string rate_part = spec.substr(colon + 1);
  char* end = nullptr;
  unsigned long long seed = std::strtoull(seed_part.c_str(), &end, 10);
  if (end == seed_part.c_str() || *end != '\0') {
    return fail("bad seed '" + seed_part + "' in fault spec");
  }
  end = nullptr;
  double rate = std::strtod(rate_part.c_str(), &end);
  if (end == rate_part.c_str() || *end != '\0') {
    return fail("bad rate '" + rate_part + "' in fault spec");
  }
  if (rate < 0.0 || rate > 1.0) {
    return fail("fault rate must be in [0,1], got '" + rate_part + "'");
  }
  return FaultInjector(static_cast<uint64_t>(seed), rate);
}

}  // namespace vc

#include "src/support/metrics.h"

#include <cassert>
#include <cstdio>

#include "src/support/table_writer.h"

namespace vc {

namespace {

// Index of the highest set bit (0 for values 0 and 1).
int Log2Floor(uint64_t v) {
  int bit = 0;
  while (v >>= 1) {
    ++bit;
  }
  return bit;
}

void AtomicMin(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t seen = slot.load(std::memory_order_relaxed);
  while (v < seen && !slot.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t seen = slot.load(std::memory_order_relaxed);
  while (v > seen && !slot.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::RecordNanos(uint64_t nanos) {
  int bucket = Log2Floor(nanos);
  if (bucket >= kBuckets) {
    bucket = kBuckets - 1;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  AtomicMin(min_nanos_, nanos);
  AtomicMax(max_nanos_, nanos);
}

double Histogram::mean_seconds() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : sum_seconds() / static_cast<double>(n);
}

double Histogram::min_seconds() const {
  uint64_t v = min_nanos_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0.0 : static_cast<double>(v) / 1e9;
}

double Histogram::max_seconds() const {
  return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) / 1e9;
}

uint64_t Histogram::ValueAtQuantileNanos(double q) const {
  uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t max = max_nanos_.load(std::memory_order_relaxed);
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += BucketCount(b);
    if (seen >= rank) {
      // Upper bound of the bucket, clamped by the exact observed max.
      uint64_t upper = uint64_t{1} << (b + 1);
      return upper < max ? upper : max;
    }
  }
  return max;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  min_nanos_.store(UINT64_MAX, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(gauges_.count(name) == 0 && histograms_.count(name) == 0);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(counters_.count(name) == 0 && histograms_.count(name) == 0);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(counters_.count(name) == 0 && gauges_.count(name) == 0);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

std::vector<MetricRow> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, MetricRow> sorted;
  for (const auto& [name, counter] : counters_) {
    MetricRow row;
    row.name = name;
    row.type = "counter";
    row.count = counter->value();
    sorted[name] = std::move(row);
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricRow row;
    row.name = name;
    row.type = "gauge";
    row.count = static_cast<uint64_t>(gauge->value());
    sorted[name] = std::move(row);
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricRow row;
    row.name = name;
    row.type = "histogram";
    row.count = histogram->count();
    row.sum_seconds = histogram->sum_seconds();
    row.mean_seconds = histogram->mean_seconds();
    row.p50_seconds = histogram->PercentileSeconds(0.5);
    row.p95_seconds = histogram->PercentileSeconds(0.95);
    row.max_seconds = histogram->max_seconds();
    sorted[name] = std::move(row);
  }
  std::vector<MetricRow> rows;
  rows.reserve(sorted.size());
  for (auto& [name, row] : sorted) {
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string MetricsRegistry::RenderTable(bool include_zero) const {
  TableWriter table({"metric", "type", "count", "sum_ms", "mean_ms", "p50_ms", "p95_ms",
                     "max_ms"});
  for (const MetricRow& row : Snapshot()) {
    if (!include_zero && row.count == 0) {
      continue;
    }
    if (row.type == "histogram") {
      table.AddRow({row.name, row.type, std::to_string(row.count),
                    FormatDouble(row.sum_seconds * 1e3, 3),
                    FormatDouble(row.mean_seconds * 1e3, 3),
                    FormatDouble(row.p50_seconds * 1e3, 3),
                    FormatDouble(row.p95_seconds * 1e3, 3),
                    FormatDouble(row.max_seconds * 1e3, 3)});
    } else {
      table.AddRow({row.name, row.type, std::to_string(row.count), "", "", "", "", ""});
    }
  }
  return table.RenderText();
}

namespace {

// Prometheus metric name: "vc_" prefix, every byte outside [a-zA-Z0-9_:]
// replaced with '_'. (Our dotted names become underscored:
// "detect.candidates" -> "vc_detect_candidates".)
std::string PrometheusName(const std::string& name) {
  std::string out = "vc_";
  out.reserve(name.size() + 3);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// Shortest round-trippable decimal for bucket bounds and sums; avoids
// locale-dependent formatting.
std::string PrometheusDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return std::string(buf);
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    std::string pname = PrometheusName(name) + "_total";
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " histogram\n";
    // Cumulative buckets in seconds, up to the highest occupied bucket.
    int top = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (histogram->BucketCount(b) > 0) {
        top = b;
      }
    }
    uint64_t cumulative = 0;
    for (int b = 0; b <= top; ++b) {
      cumulative += histogram->BucketCount(b);
      double upper = static_cast<double>(uint64_t{1} << (b + 1)) / 1e9;
      out += pname + "_bucket{le=\"" + PrometheusDouble(upper) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(histogram->count()) + "\n";
    out += pname + "_sum " + PrometheusDouble(histogram->sum_seconds()) + "\n";
    out += pname + "_count " + std::to_string(histogram->count()) + "\n";
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace vc

#include "src/support/json_reader.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace vc {

namespace {

const std::string kEmptyString;

// Containers may nest this deep before the parser rejects the document;
// bounds stack use on adversarial inputs like "[[[[...".
constexpr int kMaxNestingDepth = 256;

}  // namespace

const JsonValue& JsonValue::NullValue() {
  static const JsonValue null;
  return null;
}

bool JsonValue::AsBool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::AsDouble(double fallback) const {
  return kind_ == Kind::kNumber ? number_ : fallback;
}

int64_t JsonValue::AsInt(int64_t fallback) const {
  if (kind_ != Kind::kNumber) {
    return fallback;
  }
  if (integral_) {
    return int_;
  }
  // Saturate doubles outside int64 range — the raw cast is undefined there.
  constexpr double kMax = 9223372036854775807.0;
  if (number_ >= kMax) {
    return INT64_MAX;
  }
  if (number_ <= -kMax) {
    return INT64_MIN;
  }
  return static_cast<int64_t>(number_);
}

const std::string& JsonValue::AsString() const {
  return kind_ == Kind::kString ? string_ : kEmptyString;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  for (const auto& [name, value] : object_) {
    if (name == key) {
      return value;
    }
  }
  return NullValue();
}

bool JsonValue::Has(const std::string& key) const {
  for (const auto& [name, value] : object_) {
    if (name == key) {
      return true;
    }
  }
  return false;
}

const JsonValue& JsonValue::At(size_t index) const {
  return index < array_.size() ? array_[index] : NullValue();
}

std::string JsonValue::GetString(const std::string& key, const std::string& fallback) const {
  const JsonValue& value = Get(key);
  return value.kind_ == Kind::kString ? value.string_ : fallback;
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue& value = Get(key);
  return value.kind_ == Kind::kNumber ? value.AsInt(fallback) : fallback;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue& value = Get(key);
  return value.kind_ == Kind::kNumber ? value.number_ : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue& value = Get(key);
  return value.kind_ == Kind::kBool ? value.bool_ : fallback;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse(std::string* error) {
    std::optional<JsonValue> value = ParseValue();
    if (value.has_value()) {
      SkipWhitespace();
      if (pos_ != text_.size()) {
        Fail("trailing content after document");
        value.reset();
      }
    }
    if (!value.has_value() && error != nullptr) {
      *error = error_;
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  // Tracks container nesting; construction past kMaxNestingDepth records a
  // parse failure instead of letting recursion run unbounded.
  class DepthGuard {
   public:
    explicit DepthGuard(JsonParser* parser) : parser_(parser) {
      ok_ = ++parser_->depth_ <= kMaxNestingDepth;
      if (!ok_) {
        parser_->Fail("nesting too deep");
      }
    }
    ~DepthGuard() { --parser_->depth_; }
    bool ok() const { return ok_; }

   private:
    JsonParser* parser_;
    bool ok_ = false;
  };

  bool Consume(char expected) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return Fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  std::optional<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseKeyword();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  std::optional<JsonValue> ParseObject() {
    DepthGuard guard(this);
    if (!guard.ok()) {
      return std::nullopt;
    }
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      std::optional<JsonValue> key = ParseString();
      if (!key.has_value()) {
        return std::nullopt;
      }
      if (!Consume(':')) {
        return std::nullopt;
      }
      std::optional<JsonValue> member = ParseValue();
      if (!member.has_value()) {
        return std::nullopt;
      }
      value.object_.emplace_back(key->string_, std::move(*member));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        SkipWhitespace();
        continue;
      }
      if (!Consume('}')) {
        return std::nullopt;
      }
      return value;
    }
  }

  std::optional<JsonValue> ParseArray() {
    DepthGuard guard(this);
    if (!guard.ok()) {
      return std::nullopt;
    }
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      std::optional<JsonValue> element = ParseValue();
      if (!element.has_value()) {
        return std::nullopt;
      }
      value.array_.push_back(std::move(*element));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume(']')) {
        return std::nullopt;
      }
      return value;
    }
  }

  std::optional<JsonValue> ParseString() {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      Fail("expected string");
      return std::nullopt;
    }
    ++pos_;
    JsonValue value;
    value.kind_ = JsonValue::Kind::kString;
    std::string& out = value.string_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return value;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) {
        break;
      }
      char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHexQuad(&code)) {
            return std::nullopt;
          }
          // Surrogate pairs recombine into one supplementary-plane code
          // point; a lone surrogate is not valid UTF-16 and is rejected.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              Fail("unpaired surrogate");
              return std::nullopt;
            }
            pos_ += 2;
            unsigned low = 0;
            if (!ParseHexQuad(&low)) {
              return std::nullopt;
            }
            if (low < 0xDC00 || low > 0xDFFF) {
              Fail("unpaired surrogate");
              return std::nullopt;
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            Fail("unpaired surrogate");
            return std::nullopt;
          }
          // UTF-8 encode, now covering all four lengths.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          Fail("unknown escape");
          return std::nullopt;
      }
    }
    Fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> ParseKeyword() {
    auto match = [&](std::string_view word) {
      return text_.substr(pos_, word.size()) == word;
    };
    JsonValue value;
    value.kind_ = JsonValue::Kind::kBool;
    if (match("true")) {
      value.bool_ = true;
      pos_ += 4;
      return value;
    }
    if (match("false")) {
      value.bool_ = false;
      pos_ += 5;
      return value;
    }
    Fail("unknown keyword");
    return std::nullopt;
  }

  std::optional<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue();
    }
    Fail("unknown keyword");
    return std::nullopt;
  }

  bool ParseHexQuad(unsigned* code) {
    if (pos_ + 4 > text_.size()) {
      return Fail("truncated \\u escape");
    }
    *code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_ + static_cast<size_t>(i)];
      *code <<= 4;
      if (h >= '0' && h <= '9') {
        *code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        *code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        *code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Fail("bad \\u escape");
      }
    }
    pos_ += 4;
    return true;
  }

  // Strict RFC 8259 number grammar: -?int frac? exp?, no leading zeros, a
  // digit required after '.' and in the exponent. The loose scan this
  // replaces accepted "12.", "1e", "1e+" and "--1".
  std::optional<JsonValue> ParseNumber() {
    size_t start = pos_;
    auto digit = [&](size_t at) {
      return at < text_.size() && std::isdigit(static_cast<unsigned char>(text_[at])) != 0;
    };
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (!digit(pos_)) {
      Fail("expected value");
      return std::nullopt;
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (digit(pos_)) {
        Fail("leading zero in number");
        return std::nullopt;
      }
    } else {
      while (digit(pos_)) {
        ++pos_;
      }
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (!digit(pos_)) {
        Fail("digit required after decimal point");
        return std::nullopt;
      }
      while (digit(pos_)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit(pos_)) {
        Fail("digit required in exponent");
        return std::nullopt;
      }
      while (digit(pos_)) {
        ++pos_;
      }
    }
    std::string literal(text_.substr(start, pos_ - start));
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    value.number_ = std::strtod(literal.c_str(), nullptr);
    if (integral) {
      errno = 0;
      long long parsed = std::strtoll(literal.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        // Magnitude exceeds int64; keep the double approximation and let
        // AsInt() derive from it (saturating via the cast) instead of
        // returning a silently wrapped value.
        value.integral_ = false;
      } else {
        value.integral_ = true;
        value.int_ = parsed;
      }
    }
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

std::optional<JsonValue> ParseJson(std::string_view text, std::string* error) {
  return JsonParser(text).Parse(error);
}

}  // namespace vc

#include "src/support/shutdown.h"

#include <csignal>
#include <unistd.h>

#include <atomic>

namespace vc {

namespace {

std::atomic<int> g_shutdown_signal{0};

void HandleSignal(int sig) {
  int expected = 0;
  if (!g_shutdown_signal.compare_exchange_strong(expected, sig,
                                                 std::memory_order_relaxed)) {
    // Second signal: stop being graceful. 128+sig matches the shell status
    // the default disposition would have produced.
    _exit(128 + sig);
  }
  // Async-signal-safe progress note so an interactive user knows the first
  // Ctrl-C registered and a second one force-quits.
  const char note[] = "\nvaluecheck: finishing current work, flushing artifacts"
                      " (signal again to force quit)\n";
  ssize_t ignored = write(STDERR_FILENO, note, sizeof(note) - 1);
  (void)ignored;
}

}  // namespace

void InstallGracefulShutdown() {
  struct sigaction action {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a blocked accept()/read() in the daemon should return
  // EINTR so its loop can notice the drain request promptly.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownRequested() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int ShutdownSignal() { return g_shutdown_signal.load(std::memory_order_relaxed); }

void ResetShutdownForTest() { g_shutdown_signal.store(0, std::memory_order_relaxed); }

void RequestShutdownForTest(int sig) {
  g_shutdown_signal.store(sig, std::memory_order_relaxed);
}

}  // namespace vc

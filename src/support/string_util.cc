#include "src/support/string_util.h"

#include <cctype>

namespace vc {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool ContainsWord(std::string_view text, std::string_view word) {
  if (word.empty()) {
    return false;
  }
  size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t after = pos + word.size();
    bool right_ok = after >= text.size() || !IsIdentChar(text[after]);
    if (left_ok && right_ok) {
      return true;
    }
    pos += 1;
  }
  return false;
}

bool ContainsIgnoreCase(std::string_view text, std::string_view needle) {
  if (needle.empty()) {
    return true;
  }
  if (text.size() < needle.size()) {
    return false;
  }
  auto lower = [](char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); };
  for (size_t i = 0; i + needle.size() <= text.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      if (lower(text[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) {
      return true;
    }
  }
  return false;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace vc

#include "src/support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace vc {

namespace {

// Set while a thread is executing ParallelFor lanes; nested loops run inline.
thread_local bool tls_in_parallel_region = false;

// This thread's accounting slot in the pool that owns it: 1..N for pool
// workers, 0 for everything else (external callers running lane 0).
thread_local int tls_worker_slot = 0;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One chunk of the iteration space: [begin, end).
using Chunk = std::pair<size_t, size_t>;

// Shared state of one ParallelFor. Kept alive by shared_ptr captures so lane
// tasks that start after the loop already completed find an empty (but valid)
// state and return immediately.
struct ForState {
  struct Lane {
    std::mutex mutex;
    std::deque<Chunk> chunks;
  };

  explicit ForState(ThreadPool* owner, size_t lane_count, size_t total,
                    const std::function<void(size_t)>& body_fn)
      : pool(owner), body(body_fn), remaining(total) {
    lanes.reserve(lane_count);
    for (size_t i = 0; i < lane_count; ++i) {
      lanes.push_back(std::make_unique<Lane>());
    }
  }

  // Pops from the lane's own deque front; on miss, steals from the back of
  // the lane currently holding the most chunks. Returns false only when every
  // deque is empty (all work claimed). `stolen` reports whether the chunk
  // came from another lane's deque.
  bool PopOrSteal(size_t self, Chunk& out, bool& stolen) {
    stolen = false;
    {
      Lane& lane = *lanes[self];
      std::lock_guard<std::mutex> lock(lane.mutex);
      if (!lane.chunks.empty()) {
        out = lane.chunks.front();
        lane.chunks.pop_front();
        chunks_claimed.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    // Own deque missed: everything from here on is steal hunting. The
    // miss-to-acquired latency feeds the steal-latency histogram, clocked
    // only while metrics are on.
    bool timed = MetricsEnabled();
    uint64_t hunt_start = timed ? NowNanos() : 0;
    while (true) {
      size_t victim = lanes.size();
      size_t victim_load = 0;
      for (size_t i = 0; i < lanes.size(); ++i) {
        if (i == self) {
          continue;
        }
        std::lock_guard<std::mutex> lock(lanes[i]->mutex);
        if (lanes[i]->chunks.size() > victim_load) {
          victim_load = lanes[i]->chunks.size();
          victim = i;
        }
      }
      if (victim == lanes.size()) {
        return false;
      }
      std::lock_guard<std::mutex> lock(lanes[victim]->mutex);
      if (lanes[victim]->chunks.empty()) {
        continue;  // raced with another thief; rescan
      }
      out = lanes[victim]->chunks.back();
      lanes[victim]->chunks.pop_back();
      chunks_claimed.fetch_add(1, std::memory_order_relaxed);
      steals.fetch_add(1, std::memory_order_relaxed);
      stolen = true;
      if (timed) {
        pool->RecordStealLatency(NowNanos() - hunt_start);
      }
      return true;
    }
  }

  // Claims chunks until none remain anywhere, running the body over each.
  // Every popped chunk is credited to `remaining` whether it ran fully or was
  // skipped after an abort, so completion is always reached.
  void RunLane(size_t self) {
    bool was_in_region = tls_in_parallel_region;
    tls_in_parallel_region = true;
    bool timed = MetricsEnabled();
    uint64_t lane_start = timed ? NowNanos() : 0;
    uint64_t lane_chunks = 0;
    uint64_t lane_steals = 0;
    Chunk chunk;
    bool stolen = false;
    while (PopOrSteal(self, chunk, stolen)) {
      ++lane_chunks;
      if (stolen) {
        ++lane_steals;
      }
      size_t len = chunk.second - chunk.first;
      if (!abort.load(std::memory_order_relaxed)) {
        try {
          for (size_t i = chunk.first; i < chunk.second; ++i) {
            if (abort.load(std::memory_order_relaxed)) {
              break;
            }
            body(i);
          }
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!error) {
              error = std::current_exception();
            }
          }
          abort.store(true, std::memory_order_relaxed);
        }
      }
      if (remaining.fetch_sub(len) == len) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    }
    pool->CreditLaneRun(ThreadPool::CurrentWorkerSlot(), lane_chunks,
                        lane_steals, timed ? NowNanos() - lane_start : 0);
    tls_in_parallel_region = was_in_region;
  }

  // Waits until every chunk is credited AND every submitted lane task has
  // dropped its state reference. The second condition pins the final
  // shared_ptr (and with it any captured exception_ptr) release to the
  // waiting thread: a straggler worker must never be the one to free state
  // the waiter just read, since that last-release edge runs through
  // library-internal refcounting no race detector can observe.
  void WaitDone() {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [this] {
      return remaining.load() == 0 && holders.load(std::memory_order_acquire) == 0;
    });
  }

  // Called by a lane task's destructor after it released its reference; the
  // caller (ParallelFor) still holds one, so `this` is alive until WaitDone
  // observes the count at zero.
  void RetireHolder() {
    std::lock_guard<std::mutex> lock(done_mutex);
    holders.fetch_sub(1, std::memory_order_release);
    done_cv.notify_all();
  }

  ThreadPool* pool;
  const std::function<void(size_t)>& body;
  std::vector<std::unique_ptr<Lane>> lanes;
  std::atomic<size_t> remaining;
  std::atomic<uint64_t> chunks_claimed{0};
  std::atomic<uint64_t> steals{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::atomic<size_t> holders{0};
};

// A worker lane's share of a ParallelFor. The destructor drops the shared_ptr
// BEFORE signalling retirement, so the last ForState reference (and any
// exception captured inside it) is always released by the ParallelFor caller,
// never by a pool worker racing past the caller's wait.
struct LaneTask {
  LaneTask(std::shared_ptr<ForState> s, size_t lane_index)
      : state(std::move(s)), lane(lane_index) {
    state->holders.fetch_add(1, std::memory_order_relaxed);
  }
  LaneTask(const LaneTask& other) : state(other.state), lane(other.lane) {
    if (state) {
      state->holders.fetch_add(1, std::memory_order_relaxed);
    }
  }
  LaneTask(LaneTask&& other) noexcept
      : state(std::move(other.state)), lane(other.lane) {}
  LaneTask& operator=(const LaneTask&) = delete;
  LaneTask& operator=(LaneTask&&) = delete;
  ~LaneTask() {
    if (!state) {
      return;
    }
    ForState* raw = state.get();
    state.reset();
    raw->RetireHolder();
  }

  void operator()() { state->RunLane(lane); }

  std::shared_ptr<ForState> state;
  size_t lane;
};

}  // namespace

int ResolveJobs(int jobs) {
  if (jobs > 0) {
    return jobs;
  }
  return HardwareThreads();
}

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  int count = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(count));
  // Slot 0 aggregates external callers; slots 1..count are the workers.
  worker_counters_ = std::make_unique<WorkerCounters[]>(
      static_cast<size_t>(count) + 1);
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ThreadPool& ThreadPool::Global() {
  // Workers in addition to the calling thread (which runs lane 0 itself), so
  // a fully parallel loop occupies exactly the hardware.
  static ThreadPool pool(std::max(1, ResolveJobs(0) - 1));
  return pool;
}

void ThreadPool::WorkerLoop(int slot) {
  tls_worker_slot = slot;
  while (true) {
    std::function<void()> task;
    {
      // Idle time (the cv wait) is only clocked while metrics collection is
      // on: two steady_clock reads per wake are the one cost worth gating.
      bool timed = MetricsEnabled();
      auto idle_start =
          timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point();
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (timed) {
        idle_nanos_.fetch_add(
            static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                      std::chrono::steady_clock::now() - idle_start)
                                      .count()),
            std::memory_order_relaxed);
      }
      if (stop_ && queue_.empty()) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    uint64_t depth = queue_.size();
    if (depth > queue_depth_hwm_.load(std::memory_order_relaxed)) {
      queue_depth_hwm_.store(depth, std::memory_order_relaxed);
    }
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(int jobs, size_t n,
                             const std::function<void(size_t)>& body) {
  jobs = ResolveJobs(jobs);
  if (n == 0) {
    return;
  }
  if (jobs <= 1 || n == 1 || tls_in_parallel_region) {
    // Serial request, trivial loop, or a nested loop: run inline.
    bool was_in_region = tls_in_parallel_region;
    tls_in_parallel_region = true;
    try {
      for (size_t i = 0; i < n; ++i) {
        body(i);
      }
    } catch (...) {
      tls_in_parallel_region = was_in_region;
      throw;
    }
    tls_in_parallel_region = was_in_region;
    return;
  }

  size_t lane_count = std::min(static_cast<size_t>(jobs), n);
  auto state = std::make_shared<ForState>(this, lane_count, n, body);
  parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  TraceSpan span("parallel_for", "threadpool");
  span.Arg("n", static_cast<int64_t>(n));
  span.Arg("lanes", static_cast<int64_t>(lane_count));

  // Chunks several times smaller than a lane's fair share keep the stealing
  // granular without swamping the deques for huge n.
  size_t chunk_size = std::max<size_t>(1, n / (lane_count * 8));
  size_t lane = 0;
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    size_t end = std::min(n, begin + chunk_size);
    state->lanes[lane]->chunks.push_back({begin, end});
    lane = (lane + 1) % lane_count;
  }

  for (size_t i = 1; i < lane_count; ++i) {
    Submit(LaneTask(state, i));
  }
  state->RunLane(0);
  state->WaitDone();
  // All chunks are claimed and credited once WaitDone returns, so the loop's
  // counters are final; fold them into the pool-lifetime totals.
  chunks_executed_.fetch_add(state->chunks_claimed.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  steals_.fetch_add(state->steals.load(std::memory_order_relaxed), std::memory_order_relaxed);
  if (state->error) {
    std::rethrow_exception(state->error);
  }
}

void ThreadPool::CreditLaneRun(int slot, uint64_t chunks, uint64_t steals,
                               uint64_t busy_nanos) {
  // A caller nested across pools can carry a slot from a bigger pool; fold
  // anything out of range into the external-caller slot.
  size_t s = static_cast<size_t>(slot);
  if (s >= worker_slots()) {
    s = 0;
  }
  WorkerCounters& c = worker_counters_[s];
  c.lane_runs.fetch_add(1, std::memory_order_relaxed);
  c.chunks.fetch_add(chunks, std::memory_order_relaxed);
  c.steals.fetch_add(steals, std::memory_order_relaxed);
  c.busy_nanos.fetch_add(busy_nanos, std::memory_order_relaxed);
}

void ThreadPool::RecordStealLatency(uint64_t nanos) {
  int bucket = 0;
  while (bucket + 1 < ThreadPoolStats::kStealLatencyBuckets &&
         nanos >= (uint64_t{1} << bucket)) {
    ++bucket;
  }
  steal_latency_ns_[bucket].fetch_add(1, std::memory_order_relaxed);
}

int ThreadPool::CurrentWorkerSlot() { return tls_worker_slot; }

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats stats;
  stats.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.chunks_executed = chunks_executed_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.queue_depth_hwm = queue_depth_hwm_.load(std::memory_order_relaxed);
  stats.worker_idle_seconds =
      static_cast<double>(idle_nanos_.load(std::memory_order_relaxed)) / 1e9;
  stats.workers = thread_count();
  stats.per_worker.resize(worker_slots());
  for (size_t i = 0; i < worker_slots(); ++i) {
    const WorkerCounters& c = worker_counters_[i];
    ThreadPoolStats::WorkerStats& w = stats.per_worker[i];
    w.lane_runs = c.lane_runs.load(std::memory_order_relaxed);
    w.chunks = c.chunks.load(std::memory_order_relaxed);
    w.steals = c.steals.load(std::memory_order_relaxed);
    w.busy_seconds =
        static_cast<double>(c.busy_nanos.load(std::memory_order_relaxed)) / 1e9;
  }
  stats.steal_latency_ns.resize(ThreadPoolStats::kStealLatencyBuckets);
  for (int b = 0; b < ThreadPoolStats::kStealLatencyBuckets; ++b) {
    stats.steal_latency_ns[b] = steal_latency_ns_[b].load(std::memory_order_relaxed);
  }
  return stats;
}

void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& body) {
  ThreadPool::Global().ParallelFor(jobs, n, body);
}

}  // namespace vc

#include "src/support/diagnostics.h"

#include <utility>

#include "src/support/source_manager.h"

namespace vc {

namespace {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

}  // namespace

void DiagnosticEngine::Report(Severity severity, SourceLoc loc, std::string message) {
  if (severity == Severity::kError) {
    ++error_count_;
  } else if (severity == Severity::kWarning) {
    ++warning_count_;
  }
  diagnostics_.push_back({severity, loc, std::move(message)});
}

void DiagnosticEngine::Append(const DiagnosticEngine& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(), other.diagnostics_.end());
  error_count_ += other.error_count_;
  warning_count_ += other.warning_count_;
}

std::string DiagnosticEngine::Render(const SourceManager& sm) const {
  std::string out;
  for (const Diagnostic& diag : diagnostics_) {
    out += sm.Render(diag.loc);
    out += ": ";
    out += SeverityName(diag.severity);
    out += ": ";
    out += diag.message;
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::Clear() {
  diagnostics_.clear();
  error_count_ = 0;
  warning_count_ = 0;
}

}  // namespace vc

// Fault isolation and resource budgets for the analysis pipeline.
//
// The paper's headline result is whole-kernel scale, which is only credible
// when one pathological translation unit cannot stall or kill the run. This
// module supplies the three pieces the pipeline layers share:
//
//   ResourceBudget   per-unit limits (wall-clock deadline, abstract step
//                    caps). A unit that exceeds its budget is *quarantined* —
//                    dropped with a structured record — instead of aborting
//                    the run or hanging it.
//   BudgetMeter      the per-unit enforcement object workers charge as they
//                    do work; throws BudgetExceededError past the limit.
//   FaultInjector    deterministic, seeded fault injection at named sites
//                    (parse/detect/prune/rank). The decision to fault is a
//                    pure function of (seed, site, unit key) — never a shared
//                    counter — so the quarantine set is byte-identical at any
//                    --jobs and across runs.
//   QuarantinedUnit  the structured record a quarantined file/function leaves
//                    behind (surfaced in AnalysisReport, the JSON report's
//                    schema-v5 `quarantined` block, metrics, and the ledger).
//
// See DESIGN.md §"Fault isolation & budgets" for the injection-site catalog
// and the degradation contract.

#ifndef VALUECHECK_SRC_SUPPORT_FAULT_H_
#define VALUECHECK_SRC_SUPPORT_FAULT_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace vc {

// One isolated unit the pipeline gave up on. `function` is empty when a whole
// file was quarantined (parse stage); `stage` is one of "parse", "detect",
// "prune", "rank"; `reason` is the exception/budget/injection message.
struct QuarantinedUnit {
  std::string path;
  std::string function;
  std::string stage;
  std::string reason;
  // Which checker hit the fault, when the quarantine is checker-scoped (the
  // "checker" stage, or a single checker crashing inside "detect"). Empty for
  // parse-stage and whole-function records.
  std::string checker;
};

// Named injection sites, one per pipeline stage that isolates units. The unit
// key is the file path (parse) or "path:function" (the function stages).
namespace fault_sites {
inline constexpr const char kParseFile[] = "parse.file";
inline constexpr const char kDetectFunction[] = "detect.function";
inline constexpr const char kPruneFunction[] = "prune.function";
inline constexpr const char kRankFunction[] = "rank.function";
}  // namespace fault_sites

// Thrown by BudgetMeter (and the stage-level deadline checks) when a unit
// exceeds its budget. Callers catch it at the unit boundary and quarantine.
class BudgetExceededError : public std::runtime_error {
 public:
  explicit BudgetExceededError(const std::string& what) : std::runtime_error(what) {}
};

// Thrown by FaultInjector::MaybeFault at a tripped site. Deliberately a
// distinct type so tests can tell injected faults from real ones, but it
// still derives from std::runtime_error so the generic per-unit catch
// quarantines it like any worker crash.
class InjectedFaultError : public std::runtime_error {
 public:
  explicit InjectedFaultError(const std::string& what) : std::runtime_error(what) {}
};

// Per-unit resource limits. Zero means unlimited; the defaults keep every
// existing caller's behavior (no budgets) except the always-on structural
// caps that live with their subsystems (parser recursion depth, Andersen
// iteration ceiling), which these fields merely override.
struct ResourceBudget {
  // Wall-clock deadline per unit (file in parse, function in detect).
  // Checked at stage checkpoints and every ~1k meter steps — honest
  // best-effort, and inherently machine-dependent: deadline quarantines are
  // the one knob that can differ run to run, so it defaults off.
  double unit_deadline_seconds = 0.0;
  // Abstract detector steps per function (instructions visited across the
  // liveness/define-set fix points and the replay). Deterministic.
  uint64_t detect_step_limit = 0;
  // Parser recursion depth (0 = the parser's built-in kDefaultParseDepth).
  int parse_depth_limit = 0;
  // Andersen solver pass ceiling (0 = andersen.h's built-in default).
  int pointer_iteration_limit = 0;

  bool Unlimited() const {
    return unit_deadline_seconds <= 0.0 && detect_step_limit == 0;
  }
};

// The enforcement object one worker charges while processing one unit.
// Cheap when the budget is unlimited: a branch per Charge.
class BudgetMeter {
 public:
  explicit BudgetMeter(const ResourceBudget& budget);

  // Records `steps` units of work; throws BudgetExceededError when the step
  // limit is passed or (every ~1024 steps) the deadline has elapsed.
  void Charge(uint64_t steps = 1);

  uint64_t steps() const { return steps_; }

 private:
  uint64_t steps_ = 0;
  uint64_t step_limit_ = 0;
  uint64_t next_deadline_check_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

// Deterministic seeded fault injection. Disabled (rate 0) by default, so an
// AnalysisOptions carrying a default-constructed injector is a clean run.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(uint64_t seed, double rate);

  bool enabled() const { return rate_ > 0.0; }
  uint64_t seed() const { return seed_; }
  double rate() const { return rate_; }

  // True when this (site, unit) pair faults under the seed/rate. Pure
  // function of its arguments and the seed: no state, no ordering effects.
  bool ShouldFault(std::string_view site, std::string_view unit) const;

  // Throws InjectedFaultError when ShouldFault is true.
  void MaybeFault(std::string_view site, std::string_view unit) const;

  // Parses the CLI "SEED:RATE" spelling (e.g. "42:0.1", rate in [0,1]).
  static std::optional<FaultInjector> Parse(const std::string& spec,
                                            std::string* error = nullptr);

 private:
  uint64_t seed_ = 0;
  double rate_ = 0.0;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_FAULT_H_

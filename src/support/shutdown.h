// Graceful SIGINT/SIGTERM handling shared by the batch CLI and the daemon.
//
// The contract is two-stage: the FIRST signal only records a shutdown
// request — the long-lived caller polls ShutdownRequested() at its natural
// checkpoints (between incremental commits, in the daemon's drain loop, or
// simply "after the run, before exiting") and gets to finish in-flight work
// and flush ledger/events/trace artifacts instead of dying mid-write. A
// SECOND signal means the user is serious: the handler _exit(128+sig)s
// immediately, which is exactly the default disposition they asked for twice.
//
// The handler is async-signal-safe: one atomic store, one write(2) note.
// Everything interesting (flushing, drain, exit-code selection) happens on
// the polling thread.

#ifndef VALUECHECK_SRC_SUPPORT_SHUTDOWN_H_
#define VALUECHECK_SRC_SUPPORT_SHUTDOWN_H_

namespace vc {

// Installs the SIGINT/SIGTERM handlers described above. Idempotent; safe to
// call from any single thread before worker threads start.
void InstallGracefulShutdown();

// True once a signal has been received. Cheap (one relaxed load) — poll it
// from unit-boundary checkpoints.
bool ShutdownRequested();

// The signal that triggered the request (SIGINT/SIGTERM), or 0 when none.
// Callers exiting gracefully should return 128 + ShutdownSignal() to keep
// the conventional shell-visible exit status.
int ShutdownSignal();

// Re-arms the flag for the next run. Tests (and the daemon, between serve
// sessions in one process) use this; the CLI never needs it.
void ResetShutdownForTest();

// Simulates signal delivery without raising one — lets tests exercise every
// graceful-exit checkpoint deterministically.
void RequestShutdownForTest(int sig);

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_SHUTDOWN_H_

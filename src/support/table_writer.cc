#include "src/support/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

namespace vc {

TableWriter::TableWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::RenderText() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += (i == 0) ? "| " : " | ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    line += " |\n";
    return line;
  };

  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '|';
  }
  out += sep + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string TableWriter::RenderCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += CsvEscape(row[i]);
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

bool TableWriter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << RenderCsv();
  return static_cast<bool>(out);
}

std::string FormatPercent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string FormatDouble(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace vc

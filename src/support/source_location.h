// Source locations and ranges used throughout the front end, IR, and reports.
//
// A SourceLoc pins a point in a file registered with a SourceManager; line and
// column are 1-based (line 0 means "unknown"). Every IR instruction carries a
// SourceLoc so later pipeline stages (authorship lookup, pruning, ranking) can
// map analysis results back to source lines and, through the VCS, to authors.

#ifndef VALUECHECK_SRC_SUPPORT_SOURCE_LOCATION_H_
#define VALUECHECK_SRC_SUPPORT_SOURCE_LOCATION_H_

#include <cstdint>
#include <string>
#include <tuple>

namespace vc {

// Identifies a file registered with a SourceManager. Values are dense indices.
using FileId = int32_t;

inline constexpr FileId kInvalidFileId = -1;

// A point in a source file. Line/column are 1-based; a default-constructed
// SourceLoc is invalid (no file).
struct SourceLoc {
  FileId file = kInvalidFileId;
  int32_t line = 0;
  int32_t column = 0;

  bool IsValid() const { return file != kInvalidFileId && line > 0; }

  friend bool operator==(const SourceLoc& a, const SourceLoc& b) {
    return a.file == b.file && a.line == b.line && a.column == b.column;
  }
  friend bool operator!=(const SourceLoc& a, const SourceLoc& b) { return !(a == b); }
  friend bool operator<(const SourceLoc& a, const SourceLoc& b) {
    return std::tie(a.file, a.line, a.column) < std::tie(b.file, b.line, b.column);
  }
};

// A half-open [begin, end) span in a single file. `end` points one past the
// last token of the construct. Used to attach extents to AST nodes so that
// pruning passes can scan the raw source text of a declaration or function.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  bool IsValid() const { return begin.IsValid(); }

  // True if `line` (in the same file) falls inside the range, inclusive of
  // both endpoints' lines. Line-granular because pruning works on lines.
  bool ContainsLine(int32_t line) const {
    if (!IsValid()) {
      return false;
    }
    return line >= begin.line && line <= end.line;
  }
};

// Debug formatting, e.g. "file3:12:7". The SourceManager renders the path.
std::string ToString(const SourceLoc& loc);

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_SOURCE_LOCATION_H_

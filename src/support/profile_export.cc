#include "src/support/profile_export.h"

#include <algorithm>
#include <fstream>
#include <map>

namespace vc {

namespace {

// Frame names must not contain the collapsed format's separators.
std::string SanitizeFrame(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') {
      c = '_';
    }
  }
  return out;
}

struct OpenFrame {
  std::string name;
  int64_t end_ts = 0;       // exclusive end of the span
  int64_t dur = 0;          // total duration
  int64_t children_dur = 0; // duration covered by direct children
};

}  // namespace

std::string CollapseTraceEvents(std::vector<TraceEvent> events) {
  // Group by thread: containment only makes sense within one thread's spans.
  std::map<int, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& event : events) {
    by_tid[event.tid].push_back(&event);
  }

  std::map<std::string, uint64_t> weights;
  for (auto& [tid, spans] : by_tid) {
    // Parents sort before children: earlier start first, and on a tie the
    // longer (outer) span first.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_micros != b->ts_micros) {
                         return a->ts_micros < b->ts_micros;
                       }
                       return a->dur_micros > b->dur_micros;
                     });
    std::vector<OpenFrame> stack;
    auto pop = [&] {
      OpenFrame frame = stack.back();
      // Path is the full open stack including the frame being closed.
      std::string path;
      for (const OpenFrame& f : stack) {
        if (!path.empty()) {
          path += ';';
        }
        path += f.name;
      }
      stack.pop_back();
      int64_t self = frame.dur - frame.children_dur;
      if (self > 0) {
        weights[path] += static_cast<uint64_t>(self);
      }
    };
    for (const TraceEvent* span : spans) {
      while (!stack.empty() && span->ts_micros >= stack.back().end_ts) {
        pop();
      }
      if (!stack.empty()) {
        stack.back().children_dur += span->dur_micros;
      }
      OpenFrame frame;
      frame.name = SanitizeFrame(span->name);
      frame.end_ts = span->ts_micros + span->dur_micros;
      frame.dur = span->dur_micros;
      stack.push_back(std::move(frame));
    }
    while (!stack.empty()) {
      pop();
    }
  }

  // Degenerate traces (every span sub-microsecond) would fold to nothing;
  // keep at least the top-level spans visible with a 1µs floor.
  if (weights.empty() && !events.empty()) {
    for (const TraceEvent& event : events) {
      std::string name = SanitizeFrame(event.name);
      uint64_t w = event.dur_micros > 0 ? static_cast<uint64_t>(event.dur_micros) : 1;
      weights[name] = std::max(weights[name], w);
    }
  }

  // std::map iteration is already sorted: byte-stable output.
  std::string out;
  for (const auto& [path, weight] : weights) {
    out += path + " " + std::to_string(weight) + "\n";
  }
  return out;
}

bool WriteCollapsedProfile(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << CollapseTraceEvents(TraceCollector::Global().SnapshotEvents());
  return out.good();
}

}  // namespace vc

// Diagnostic collection for the front end. The parser and lexer report
// problems here instead of aborting; callers check ErrorCount() after a parse.

#ifndef VALUECHECK_SRC_SUPPORT_DIAGNOSTICS_H_
#define VALUECHECK_SRC_SUPPORT_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "src/support/source_location.h"

namespace vc {

class SourceManager;

enum class Severity {
  kNote,
  kWarning,
  kError,
};

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
};

class DiagnosticEngine {
 public:
  void Report(Severity severity, SourceLoc loc, std::string message);

  void Error(SourceLoc loc, std::string message) {
    Report(Severity::kError, loc, std::move(message));
  }
  void Warning(SourceLoc loc, std::string message) {
    Report(Severity::kWarning, loc, std::move(message));
  }

  // Appends another engine's diagnostics (in their original order). The
  // parallel pipeline gives each worker a private engine and merges them in
  // file order afterwards, so rendered output is deterministic at any job
  // count without locking on the hot path.
  void Append(const DiagnosticEngine& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  int ErrorCount() const { return error_count_; }
  int WarningCount() const { return warning_count_; }
  bool HasErrors() const { return error_count_ > 0; }

  // Renders all diagnostics as "path:line:col: severity: message" lines.
  std::string Render(const SourceManager& sm) const;

  void Clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  int error_count_ = 0;
  int warning_count_ = 0;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_DIAGNOSTICS_H_

#include "src/support/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "src/support/string_util.h"

namespace vc {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel CurrentLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= g_level.load(std::memory_order_relaxed);
}

std::optional<LogLevel> ParseLogLevel(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "error") {
    return LogLevel::kError;
  }
  if (lower == "warn" || lower == "warning") {
    return LogLevel::kWarn;
  }
  if (lower == "info") {
    return LogLevel::kInfo;
  }
  if (lower == "debug") {
    return LogLevel::kDebug;
  }
  return std::nullopt;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "unknown";
}

void LogMessage(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[vc] %s: %s\n", LogLevelName(level), message.c_str());
}

}  // namespace vc

// Ordinary least-squares linear regression via normal equations. Used to fit
// the DOK familiarity model weights from sampled developer self-ratings, the
// same procedure the paper follows (§6, after Fritz et al.'s original study).

#ifndef VALUECHECK_SRC_SUPPORT_REGRESSION_H_
#define VALUECHECK_SRC_SUPPORT_REGRESSION_H_

#include <optional>
#include <vector>

namespace vc {

// One observation: feature vector x (without intercept term) and target y.
struct Observation {
  std::vector<double> x;
  double y = 0.0;
};

struct RegressionResult {
  // coefficients[0] is the intercept; coefficients[i] pairs with x[i-1].
  std::vector<double> coefficients;
  double r_squared = 0.0;
};

// Fits y = b0 + b1*x1 + ... + bk*xk. Returns nullopt when the system is
// singular (e.g. fewer observations than features or collinear features).
std::optional<RegressionResult> FitLeastSquares(const std::vector<Observation>& data);

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_REGRESSION_H_

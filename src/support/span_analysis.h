// Scalability observatory: post-processes trace-span buffers into a span
// graph and derives per-run performance analytics — critical path, Amdahl
// serial-fraction fit, per-worker utilization timelines, and work-imbalance
// metrics. This is the measurement half of "make parallelism real": before
// optimizing the parallel pipeline we must be able to see where parallel
// time actually goes.
//
// Span-graph model. TraceCollector buffers complete ("ph":"X") spans per
// thread; a span's tid is the stable registration index of the emitting
// thread. The graph is rebuilt from timestamps alone:
//   * Same-tid nesting comes from a containment sweep per tid (sort by
//     start ascending, duration descending; a span starting before the top
//     of the open-frame stack ends is its child) — the same idiom the
//     collapsed-stack profile exporter uses.
//   * Cross-tid fork/join edges come from time containment: a root span on
//     a worker tid is attached to the deepest span on another tid whose
//     [start, end] window contains it (in practice the pool's parallel_for
//     span on the calling thread).
//
// Critical path. The longest dependent chain through the graph, computed
// bottom-up: a node's chain is its uncovered self time plus the largest
// per-tid chain among its children (children on the same tid are
// sequential; groups on different tids run in parallel, so only the
// heaviest lane counts), clamped to the node's own duration — a span's
// dependents cannot outlast the span that contains them, which also makes
// total critical path <= wall time by construction. The chain is rendered
// as a folded listing ("a;b;c <seconds>") compatible with flamegraph
// tooling.
//
// Serial fraction. An Amdahl fit from the measured wall time T, the summed
// per-worker busy time W and the observed worker count n: solving
// T = s*W + (1-s)*W/n for s gives s = (n*T - W) / (W * (n - 1)), clamped
// to [0, 1]. s ~ 0 means the run was work-bound (more cores would help);
// s ~ 1 means the run was chain-bound.
//
// All derived structure (node order, worker order, folded-listing shape) is
// deterministic for a deterministic span structure; only measured durations
// vary between runs.

#ifndef VALUECHECK_SRC_SUPPORT_SPAN_ANALYSIS_H_
#define VALUECHECK_SRC_SUPPORT_SPAN_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace vc {

// One node of the reconstructed span graph.
struct SpanNode {
  std::string name;
  int tid = 0;
  int64_t ts_micros = 0;
  int64_t dur_micros = 0;
  int parent = -1;                 // index into SpanGraph::nodes; -1 = root
  std::vector<int> children;       // node indices in start order
  int64_t critical_micros = 0;     // longest dependent chain through this node
};

// The reconstructed graph plus the global observation window.
struct SpanGraph {
  std::vector<SpanNode> nodes;
  std::vector<int> roots;          // unparented nodes in (ts, tid) order
  int64_t window_begin_micros = 0;
  int64_t window_end_micros = 0;

  // Builds the graph (containment sweep + cross-tid attachment) and fills
  // critical_micros bottom-up. Events may arrive in any order.
  static SpanGraph Build(const std::vector<TraceEvent>& events);
};

// One line of the folded critical-path listing.
struct CriticalPathStep {
  std::string stack;    // "analysis.run;detect;detect_fn"
  double seconds = 0;   // uncovered self time contributed by the frame
};

// Busy/idle accounting for one observed thread.
struct WorkerUtilization {
  int tid = 0;
  uint64_t spans = 0;
  double busy_seconds = 0;     // union length of the thread's span intervals
  double idle_seconds = 0;     // window minus busy
  double utilization = 0;      // busy / window, in [0, 1]
  std::vector<double> timeline;  // busy fraction per equal time bucket
};

// Inputs that the span buffers alone cannot supply.
struct PerfInputs {
  double wall_seconds = 0;    // authoritative wall clock; <= 0 uses the span window
  int jobs = 1;               // --jobs the run was configured with
  int hardware_threads = 1;   // HardwareThreads() of the measuring machine
  uint64_t dropped_spans = 0; // TraceCollector::dropped_count()
  int timeline_buckets = 24;  // resolution of per-worker busy timelines
  const ThreadPoolStats* pool = nullptr;  // per-run delta (steal latencies)
};

// The full perf report. Field order in the JSON rendering is fixed (the
// order below); vc_obs_lint's perf mode checks it.
struct PerfReport {
  static constexpr int kSchemaVersion = 1;

  double wall_seconds = 0;
  int jobs = 1;
  int hardware_threads = 1;
  uint64_t span_count = 0;
  uint64_t dropped_spans = 0;

  double critical_path_seconds = 0;
  double critical_path_fraction = 0;  // critical path / wall, in [0, 1]
  std::vector<CriticalPathStep> critical_path;

  double serial_fraction = 0;         // Amdahl fit, in [0, 1]
  double total_busy_seconds = 0;      // summed across workers

  std::vector<WorkerUtilization> workers;  // position == dense worker id
  double mean_utilization = 0;

  double max_busy_seconds = 0;
  double mean_busy_seconds = 0;
  double imbalance_ratio = 0;         // max / mean busy (1.0 = perfectly even)

  uint64_t steals = 0;
  std::vector<uint64_t> steal_latency_ns;  // log2(ns) buckets, trailing zeros trimmed
};

// Builds the report from a span snapshot. Safe on empty input: yields a
// structurally complete report with zeroed measurements.
PerfReport AnalyzeSpans(const std::vector<TraceEvent>& events,
                        const PerfInputs& inputs);

// Stable-field-order JSON rendering / file export of the report.
std::string PerfReportToJson(const PerfReport& report);
bool WritePerfReport(const PerfReport& report, const std::string& path);

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_SPAN_ANALYSIS_H_

// Minimal recursive-descent JSON parser — the read-side twin of JsonWriter.
// The run ledger stores every analysis run as one JSON object per line
// (JSONL); loading history back for diffs and dashboards needs a parser, and
// the project stays zero-dependency, so this is a small self-contained one.
//
// Supports the full JSON value grammar (objects, arrays, strings with every
// escape including \uXXXX surrogate pairs, numbers, booleans, null). The
// number grammar is strict RFC 8259; container nesting is capped so
// adversarial inputs can't exhaust the stack. Numbers are held as double
// plus a lossless int64 when the literal was integral and in range. Not
// streaming: parses one complete document per call, which matches the
// one-record-per-line ledger format.

#ifndef VALUECHECK_SRC_SUPPORT_JSON_READER_H_
#define VALUECHECK_SRC_SUPPORT_JSON_READER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vc {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  bool IsObject() const { return kind_ == Kind::kObject; }
  bool IsArray() const { return kind_ == Kind::kArray; }

  // Typed accessors; return the fallback when the value has another kind.
  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  int64_t AsInt(int64_t fallback = 0) const;
  const std::string& AsString() const;  // empty string fallback

  // Object lookup: null-kind sentinel when absent (chainable).
  const JsonValue& Get(const std::string& key) const;
  bool Has(const std::string& key) const;

  // Array access.
  size_t Size() const { return array_.size(); }
  const JsonValue& At(size_t index) const;
  const std::vector<JsonValue>& Items() const { return array_; }

  // Convenience: obj.Get(key).As* with one call.
  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  // Members in insertion order (object kind only).
  const std::vector<std::pair<std::string, JsonValue>>& Members() const { return object_; }

 private:
  friend class JsonParser;
  static const JsonValue& NullValue();

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  bool integral_ = false;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Parses one JSON document. On failure returns nullopt and, when `error` is
// non-null, stores a message with the byte offset of the problem.
std::optional<JsonValue> ParseJson(std::string_view text, std::string* error = nullptr);

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_JSON_READER_H_

// Persistent run history for longitudinal analysis ("what changed since the
// last run?"). Each analysis run is serialized as one JSON object per line in
// DIR/runs.jsonl — append-only, so concurrent CI jobs can O_APPEND their
// records and a crashed run never corrupts earlier history (a torn final line
// is skipped on load).
//
// The record is deliberately plain data (strings + numbers, no core types):
// the ledger lives in support so that both the core differ and standalone
// tools (benches, the CLI subcommands) can read it without dragging in the
// analysis pipeline. Findings are identified by their stable content
// fingerprint (src/core/fingerprint.h), which is what makes run-to-run diffs
// line-shift-robust.

#ifndef VALUECHECK_SRC_SUPPORT_RUN_LEDGER_H_
#define VALUECHECK_SRC_SUPPORT_RUN_LEDGER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vc {

// One finding as stored in the ledger. `fingerprint` is the identity used by
// diffs; the location fields are informational (they move when unrelated code
// shifts, the fingerprint does not).
struct LedgerFinding {
  std::string fingerprint;
  // The checker that produced the finding. Diff identity is the
  // (checker, fingerprint) pair; records written before the checker framework
  // read back as "unused-def" (the only checker that existed then).
  std::string checker = "unused-def";
  std::string file;
  int line = 0;
  std::string function;
  std::string variable;
  std::string kind;
  double familiarity = 0.0;
};

// Per-pattern pruning outcome (tested vs actually pruned).
struct LedgerPrunePattern {
  std::string name;
  int64_t tested = 0;
  int64_t pruned = 0;
};

// Per-checker candidate/finding counts (ledger-schema v2; feeds the
// dashboard's precision trend). Pre-v2 records read back with an empty list.
struct LedgerCheckerStat {
  std::string name;
  int64_t candidates = 0;
  int64_t findings = 0;
};

// The metrics slice of a run: schema-v3 StageMetrics flattened to plain
// numbers. `collected` mirrors AnalysisOptions::collect_metrics; when false
// only the always-available timings are meaningful.
struct LedgerMetrics {
  bool collected = false;
  double analysis_seconds = 0.0;
  double parse_seconds = 0.0;
  double detect_seconds = 0.0;
  double authorship_seconds = 0.0;
  double filter_seconds = 0.0;
  double prune_seconds = 0.0;
  double rank_seconds = 0.0;
  int64_t files_parsed = 0;
  int64_t functions_analyzed = 0;
  int64_t candidates_detected = 0;
  int64_t prune_original = 0;
  int64_t prune_total = 0;
  int64_t prune_remaining = 0;
  // Units dropped by fault isolation (0 in clean runs and pre-v5 records).
  int64_t quarantined_units = 0;
  std::vector<LedgerPrunePattern> prune_patterns;
  int pool_workers = 0;
  int64_t pool_tasks = 0;
  int64_t pool_steals = 0;
  double pool_idle_seconds = 0.0;
  // Memory accounting (ledger-schema v2, report-schema v7). Byte/object
  // counts are exact and deterministic; peak RSS is a per-run sample. All
  // zero (mem_collected false) in pre-v2 records.
  bool mem_collected = false;
  int64_t mem_ast_bytes = 0;
  int64_t mem_ast_objects = 0;
  int64_t mem_ir_bytes = 0;
  int64_t mem_ir_objects = 0;
  int64_t mem_points_to_bytes = 0;
  int64_t mem_points_to_objects = 0;
  int64_t mem_strings_bytes = 0;
  int64_t mem_strings_objects = 0;
  int64_t mem_tracked_bytes = 0;
  int64_t mem_peak_rss_bytes = 0;
  // Scalability observatory summary (ledger-schema v3): the headline numbers
  // of a --perf-report run, so the dashboard can trend utilization and
  // imbalance without re-reading perf-report files. All zero
  // (perf_collected false) in pre-v3 records and runs without --perf-report.
  bool perf_collected = false;
  double perf_wall_seconds = 0.0;
  double perf_critical_path_seconds = 0.0;
  double perf_serial_fraction = 0.0;
  double perf_utilization = 0.0;  // mean across observed workers
  double perf_max_busy_seconds = 0.0;
  double perf_mean_busy_seconds = 0.0;
  double perf_imbalance_ratio = 0.0;
  // Incremental-engine summary (ledger-schema v4): work accounting for a
  // per-commit run produced by `valuecheck analyze --incremental` or the
  // incremental bench. All zero (inc_collected false) in full-run records
  // and pre-v4 lines.
  bool inc_collected = false;
  int64_t inc_commit = 0;
  int64_t inc_files_changed = 0;
  int64_t inc_files_reparsed = 0;
  int64_t inc_functions_total = 0;
  int64_t inc_functions_dirty = 0;
  int64_t inc_findings_carried = 0;
  int64_t inc_findings_new = 0;
  int64_t inc_findings_fixed = 0;
  double inc_cache_hit_rate = 0.0;  // carried / (carried + recomputed)
  double inc_seconds = 0.0;         // per-commit wall seconds
  // Serving summary (ledger-schema v5): headline numbers of a `valuecheck
  // serve` session or a vc_loadgen run — request accounting that must balance
  // (requests == succeeded + degraded + shed + deadline + failed) plus the
  // latency/throughput envelope. All zero (serve_collected false) in batch
  // records and pre-v5 lines.
  bool serve_collected = false;
  double serve_wall_seconds = 0.0;
  int64_t serve_clients = 0;
  int64_t serve_requests = 0;
  int64_t serve_succeeded = 0;
  int64_t serve_degraded = 0;
  int64_t serve_shed = 0;
  int64_t serve_deadline = 0;
  int64_t serve_failed = 0;
  int64_t serve_retried = 0;
  double serve_qps = 0.0;
  double serve_p50_ms = 0.0;
  double serve_p95_ms = 0.0;
  double serve_p99_ms = 0.0;
};

// One analysis run. `run_id` is assigned by RunLedger::Append when empty
// ("r0001", "r0002", ... in append order).
struct RunRecord {
  // v1: initial schema. v2: per-checker stats + memory accounting fields.
  // v3: perf (scalability observatory) summary fields. v4: incremental-engine
  // summary fields. v5: serve (daemon/loadgen) summary fields. Every addition
  // reads back as zero/empty from older lines, so mixed-version ledgers load
  // and diff cleanly.
  static constexpr int kSchemaVersion = 5;

  std::string run_id;
  int64_t timestamp_ms = 0;     // caller-supplied wall clock (0 = unknown)
  std::string label;            // free-form: corpus name, git rev, "bench:jobs=4"
  std::string options_summary;  // rendered non-default analysis options
  int jobs = 1;
  // True when the producing run quarantined units (its findings are a subset
  // of what a clean run would report) — diffs against it should be read with
  // that in mind.
  bool degraded = false;
  // The checker set the run executed, in registry order. Pre-framework
  // records read back as {"unused-def"}; the differ uses this to tell "the
  // finding was fixed" apart from "its checker wasn't enabled".
  std::vector<std::string> checkers;
  // Per-checker candidates/findings in registry order (empty in pre-v2
  // records — consumers must treat "absent" as "not recorded", not zero).
  std::vector<LedgerCheckerStat> checker_stats;
  std::vector<LedgerFinding> findings;
  LedgerMetrics metrics;
};

// Serialization. One compact JSON object, no trailing newline.
std::string RunRecordToJson(const RunRecord& record);
std::optional<RunRecord> RunRecordFromJson(const std::string& line, std::string* error = nullptr);

class RunLedger {
 public:
  // `dir` is created on first Append (parents included); Load on a
  // nonexistent dir yields an empty history, not an error.
  explicit RunLedger(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string LedgerFile() const;

  // Appends one record, assigning record.run_id when empty. Returns the run
  // id, or empty string on I/O failure (message in *error).
  std::string Append(RunRecord record, std::string* error = nullptr);

  // All records in append order. Unparsable lines (e.g. a torn final line
  // from a crashed writer) are skipped and counted in *skipped if given.
  std::optional<std::vector<RunRecord>> Load(std::string* error = nullptr,
                                             int* skipped = nullptr) const;

  // Resolves a run selector against the history:
  //   "latest" / "-1"      newest run
  //   "prev" / "-2"        one before newest (and -3, -4, ...)
  //   "r0007"              explicit run id
  //   "7"                  1-based position in append order
  // Returns nullopt (with *error) when the selector matches nothing.
  std::optional<RunRecord> Find(const std::string& selector, std::string* error = nullptr) const;

  // Rewrites the ledger keeping only the newest `keep_last` records.
  // Returns the number of records dropped, or -1 on error.
  int Compact(int keep_last, std::string* error = nullptr);

 private:
  std::string dir_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_RUN_LEDGER_H_

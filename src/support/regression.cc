#include "src/support/regression.h"

#include <cmath>
#include <cstddef>

namespace vc {

namespace {

// Solves A * x = b in place with partial pivoting. Returns false if singular.
bool SolveLinearSystem(std::vector<std::vector<double>>& a, std::vector<double>& b) {
  const size_t n = a.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return false;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = 0; row < n; ++row) {
      if (row == col) {
        continue;
      }
      double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) {
        a[row][k] -= factor * a[col][k];
      }
      b[row] -= factor * b[col];
    }
  }
  for (size_t i = 0; i < n; ++i) {
    b[i] /= a[i][i];
  }
  return true;
}

}  // namespace

std::optional<RegressionResult> FitLeastSquares(const std::vector<Observation>& data) {
  if (data.empty()) {
    return std::nullopt;
  }
  const size_t k = data[0].x.size();
  const size_t dims = k + 1;  // intercept + features
  if (data.size() < dims) {
    return std::nullopt;
  }

  // Build normal equations X^T X beta = X^T y with X's first column = 1.
  std::vector<std::vector<double>> xtx(dims, std::vector<double>(dims, 0.0));
  std::vector<double> xty(dims, 0.0);
  for (const Observation& obs : data) {
    if (obs.x.size() != k) {
      return std::nullopt;
    }
    std::vector<double> row(dims);
    row[0] = 1.0;
    for (size_t i = 0; i < k; ++i) {
      row[i + 1] = obs.x[i];
    }
    for (size_t i = 0; i < dims; ++i) {
      for (size_t j = 0; j < dims; ++j) {
        xtx[i][j] += row[i] * row[j];
      }
      xty[i] += row[i] * obs.y;
    }
  }

  if (!SolveLinearSystem(xtx, xty)) {
    return std::nullopt;
  }

  RegressionResult result;
  result.coefficients = xty;

  // R^2 against the mean model.
  double mean = 0.0;
  for (const Observation& obs : data) {
    mean += obs.y;
  }
  mean /= static_cast<double>(data.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (const Observation& obs : data) {
    double pred = result.coefficients[0];
    for (size_t i = 0; i < k; ++i) {
      pred += result.coefficients[i + 1] * obs.x[i];
    }
    ss_res += (obs.y - pred) * (obs.y - pred);
    ss_tot += (obs.y - mean) * (obs.y - mean);
  }
  result.r_squared = (ss_tot > 1e-12) ? 1.0 - ss_res / ss_tot : 1.0;
  return result;
}

}  // namespace vc

#include "src/support/run_ledger.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/support/json_reader.h"
#include "src/support/json_writer.h"

namespace vc {

namespace {

std::string FormatRunId(size_t ordinal) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "r%04zu", ordinal);
  return buf;
}

void WriteMetrics(JsonWriter& json, const LedgerMetrics& m) {
  json.Key("metrics").BeginObject();
  json.Bool("collected", m.collected);
  json.Double("analysis_seconds", m.analysis_seconds);
  json.Key("stages").BeginObject();
  json.Double("parse", m.parse_seconds);
  json.Double("detect", m.detect_seconds);
  json.Double("authorship", m.authorship_seconds);
  json.Double("filter", m.filter_seconds);
  json.Double("prune", m.prune_seconds);
  json.Double("rank", m.rank_seconds);
  json.EndObject();
  json.Key("counters").BeginObject();
  json.Int("files_parsed", m.files_parsed);
  json.Int("functions_analyzed", m.functions_analyzed);
  json.Int("candidates_detected", m.candidates_detected);
  json.Int("prune_original", m.prune_original);
  json.Int("prune_total", m.prune_total);
  json.Int("prune_remaining", m.prune_remaining);
  json.Int("quarantined_units", m.quarantined_units);
  json.EndObject();
  json.Key("prune_patterns").BeginArray();
  for (const LedgerPrunePattern& pattern : m.prune_patterns) {
    json.BeginObject();
    json.String("name", pattern.name);
    json.Int("tested", pattern.tested);
    json.Int("pruned", pattern.pruned);
    json.EndObject();
  }
  json.EndArray();
  json.Key("thread_pool").BeginObject();
  json.Int("workers", m.pool_workers);
  json.Int("tasks", m.pool_tasks);
  json.Int("steals", m.pool_steals);
  json.Double("idle_seconds", m.pool_idle_seconds);
  json.EndObject();
  // v2: memory accounting. Only written when collected, so records from runs
  // without --metrics stay byte-compatible with v1 readers (which ignore
  // unknown keys anyway).
  if (m.mem_collected) {
    json.Key("memory").BeginObject();
    json.Bool("collected", true);
    json.Int("ast_bytes", m.mem_ast_bytes);
    json.Int("ast_objects", m.mem_ast_objects);
    json.Int("ir_bytes", m.mem_ir_bytes);
    json.Int("ir_objects", m.mem_ir_objects);
    json.Int("points_to_bytes", m.mem_points_to_bytes);
    json.Int("points_to_objects", m.mem_points_to_objects);
    json.Int("strings_bytes", m.mem_strings_bytes);
    json.Int("strings_objects", m.mem_strings_objects);
    json.Int("tracked_bytes", m.mem_tracked_bytes);
    json.Int("peak_rss_bytes", m.mem_peak_rss_bytes);
    json.EndObject();
  }
  // v3: scalability-observatory summary. Written only for --perf-report
  // runs, same compatibility story as the v2 memory block.
  if (m.perf_collected) {
    json.Key("perf").BeginObject();
    json.Bool("collected", true);
    json.Double("wall_seconds", m.perf_wall_seconds);
    json.Double("critical_path_seconds", m.perf_critical_path_seconds);
    json.Double("serial_fraction", m.perf_serial_fraction);
    json.Double("utilization", m.perf_utilization);
    json.Double("max_busy_seconds", m.perf_max_busy_seconds);
    json.Double("mean_busy_seconds", m.perf_mean_busy_seconds);
    json.Double("imbalance_ratio", m.perf_imbalance_ratio);
    json.EndObject();
  }
  // v4: incremental-engine summary. Written only for per-commit runs, same
  // compatibility story as the v2/v3 optional blocks.
  if (m.inc_collected) {
    json.Key("incremental").BeginObject();
    json.Bool("collected", true);
    json.Int("commit", m.inc_commit);
    json.Int("files_changed", m.inc_files_changed);
    json.Int("files_reparsed", m.inc_files_reparsed);
    json.Int("functions_total", m.inc_functions_total);
    json.Int("functions_dirty", m.inc_functions_dirty);
    json.Int("findings_carried", m.inc_findings_carried);
    json.Int("findings_new", m.inc_findings_new);
    json.Int("findings_fixed", m.inc_findings_fixed);
    json.Double("cache_hit_rate", m.inc_cache_hit_rate);
    json.Double("seconds", m.inc_seconds);
    json.EndObject();
  }
  // v5: serving summary. Written only for daemon/loadgen sessions, same
  // compatibility story as the earlier optional blocks.
  if (m.serve_collected) {
    json.Key("serve").BeginObject();
    json.Bool("collected", true);
    json.Double("wall_seconds", m.serve_wall_seconds);
    json.Int("clients", m.serve_clients);
    json.Int("requests", m.serve_requests);
    json.Int("succeeded", m.serve_succeeded);
    json.Int("degraded", m.serve_degraded);
    json.Int("shed", m.serve_shed);
    json.Int("deadline", m.serve_deadline);
    json.Int("failed", m.serve_failed);
    json.Int("retried", m.serve_retried);
    json.Double("qps", m.serve_qps);
    json.Double("p50_ms", m.serve_p50_ms);
    json.Double("p95_ms", m.serve_p95_ms);
    json.Double("p99_ms", m.serve_p99_ms);
    json.EndObject();
  }
  json.EndObject();  // metrics
}

LedgerMetrics ReadMetrics(const JsonValue& value) {
  LedgerMetrics m;
  m.collected = value.GetBool("collected");
  m.analysis_seconds = value.GetDouble("analysis_seconds");
  const JsonValue& stages = value.Get("stages");
  m.parse_seconds = stages.GetDouble("parse");
  m.detect_seconds = stages.GetDouble("detect");
  m.authorship_seconds = stages.GetDouble("authorship");
  m.filter_seconds = stages.GetDouble("filter");
  m.prune_seconds = stages.GetDouble("prune");
  m.rank_seconds = stages.GetDouble("rank");
  const JsonValue& counters = value.Get("counters");
  m.files_parsed = counters.GetInt("files_parsed");
  m.functions_analyzed = counters.GetInt("functions_analyzed");
  m.candidates_detected = counters.GetInt("candidates_detected");
  m.prune_original = counters.GetInt("prune_original");
  m.prune_total = counters.GetInt("prune_total");
  m.prune_remaining = counters.GetInt("prune_remaining");
  m.quarantined_units = counters.GetInt("quarantined_units");
  for (const JsonValue& pattern : value.Get("prune_patterns").Items()) {
    LedgerPrunePattern p;
    p.name = pattern.GetString("name");
    p.tested = pattern.GetInt("tested");
    p.pruned = pattern.GetInt("pruned");
    m.prune_patterns.push_back(std::move(p));
  }
  const JsonValue& pool = value.Get("thread_pool");
  m.pool_workers = static_cast<int>(pool.GetInt("workers"));
  m.pool_tasks = pool.GetInt("tasks");
  m.pool_steals = pool.GetInt("steals");
  m.pool_idle_seconds = pool.GetDouble("idle_seconds");
  // Absent in pre-v2 records; every field defaults to zero / not-collected.
  if (value.Has("memory")) {
    const JsonValue& mem = value.Get("memory");
    m.mem_collected = mem.GetBool("collected");
    m.mem_ast_bytes = mem.GetInt("ast_bytes");
    m.mem_ast_objects = mem.GetInt("ast_objects");
    m.mem_ir_bytes = mem.GetInt("ir_bytes");
    m.mem_ir_objects = mem.GetInt("ir_objects");
    m.mem_points_to_bytes = mem.GetInt("points_to_bytes");
    m.mem_points_to_objects = mem.GetInt("points_to_objects");
    m.mem_strings_bytes = mem.GetInt("strings_bytes");
    m.mem_strings_objects = mem.GetInt("strings_objects");
    m.mem_tracked_bytes = mem.GetInt("tracked_bytes");
    m.mem_peak_rss_bytes = mem.GetInt("peak_rss_bytes");
  }
  // Absent in pre-v3 records and runs without --perf-report.
  if (value.Has("perf")) {
    const JsonValue& perf = value.Get("perf");
    m.perf_collected = perf.GetBool("collected");
    m.perf_wall_seconds = perf.GetDouble("wall_seconds");
    m.perf_critical_path_seconds = perf.GetDouble("critical_path_seconds");
    m.perf_serial_fraction = perf.GetDouble("serial_fraction");
    m.perf_utilization = perf.GetDouble("utilization");
    m.perf_max_busy_seconds = perf.GetDouble("max_busy_seconds");
    m.perf_mean_busy_seconds = perf.GetDouble("mean_busy_seconds");
    m.perf_imbalance_ratio = perf.GetDouble("imbalance_ratio");
  }
  // Absent in pre-v4 records and full (non-incremental) runs.
  if (value.Has("incremental")) {
    const JsonValue& inc = value.Get("incremental");
    m.inc_collected = inc.GetBool("collected");
    m.inc_commit = inc.GetInt("commit");
    m.inc_files_changed = inc.GetInt("files_changed");
    m.inc_files_reparsed = inc.GetInt("files_reparsed");
    m.inc_functions_total = inc.GetInt("functions_total");
    m.inc_functions_dirty = inc.GetInt("functions_dirty");
    m.inc_findings_carried = inc.GetInt("findings_carried");
    m.inc_findings_new = inc.GetInt("findings_new");
    m.inc_findings_fixed = inc.GetInt("findings_fixed");
    m.inc_cache_hit_rate = inc.GetDouble("cache_hit_rate");
    m.inc_seconds = inc.GetDouble("seconds");
  }
  // Absent in pre-v5 records and batch (non-serving) runs.
  if (value.Has("serve")) {
    const JsonValue& serve = value.Get("serve");
    m.serve_collected = serve.GetBool("collected");
    m.serve_wall_seconds = serve.GetDouble("wall_seconds");
    m.serve_clients = serve.GetInt("clients");
    m.serve_requests = serve.GetInt("requests");
    m.serve_succeeded = serve.GetInt("succeeded");
    m.serve_degraded = serve.GetInt("degraded");
    m.serve_shed = serve.GetInt("shed");
    m.serve_deadline = serve.GetInt("deadline");
    m.serve_failed = serve.GetInt("failed");
    m.serve_retried = serve.GetInt("retried");
    m.serve_qps = serve.GetDouble("qps");
    m.serve_p50_ms = serve.GetDouble("p50_ms");
    m.serve_p95_ms = serve.GetDouble("p95_ms");
    m.serve_p99_ms = serve.GetDouble("p99_ms");
  }
  return m;
}

}  // namespace

std::string RunRecordToJson(const RunRecord& record) {
  JsonWriter json;
  json.BeginObject();
  json.Int("ledger_schema", RunRecord::kSchemaVersion);
  json.String("run_id", record.run_id);
  json.Int("timestamp_ms", record.timestamp_ms);
  json.String("label", record.label);
  json.String("options", record.options_summary);
  json.Int("jobs", record.jobs);
  json.Bool("degraded", record.degraded);
  json.Key("checkers").BeginArray();
  for (const std::string& name : record.checkers) {
    json.StringValue(name);
  }
  json.EndArray();
  // v2: per-checker stats. Skipped when empty so records round-trip without
  // inventing data for pre-v2 runs.
  if (!record.checker_stats.empty()) {
    json.Key("checker_stats").BeginArray();
    for (const LedgerCheckerStat& stat : record.checker_stats) {
      json.BeginObject();
      json.String("checker", stat.name);
      json.Int("candidates", stat.candidates);
      json.Int("findings", stat.findings);
      json.EndObject();
    }
    json.EndArray();
  }
  json.Key("findings").BeginArray();
  for (const LedgerFinding& finding : record.findings) {
    json.BeginObject();
    json.String("fingerprint", finding.fingerprint);
    json.String("checker", finding.checker);
    json.String("file", finding.file);
    json.Int("line", finding.line);
    json.String("function", finding.function);
    json.String("variable", finding.variable);
    json.String("kind", finding.kind);
    json.Double("familiarity", finding.familiarity);
    json.EndObject();
  }
  json.EndArray();
  WriteMetrics(json, record.metrics);
  json.EndObject();
  return json.str();
}

std::optional<RunRecord> RunRecordFromJson(const std::string& line, std::string* error) {
  std::optional<JsonValue> value = ParseJson(line, error);
  if (!value.has_value()) {
    return std::nullopt;
  }
  if (!value->IsObject() || !value->Has("run_id")) {
    if (error != nullptr) {
      *error = "not a run record object";
    }
    return std::nullopt;
  }
  RunRecord record;
  record.run_id = value->GetString("run_id");
  record.timestamp_ms = value->GetInt("timestamp_ms");
  record.label = value->GetString("label");
  record.options_summary = value->GetString("options");
  record.jobs = static_cast<int>(value->GetInt("jobs", 1));
  // Absent in pre-fault-isolation records; default reads as a clean run.
  record.degraded = value->GetBool("degraded");
  // Absent in pre-framework records, which could only have run unused-def.
  if (value->Has("checkers")) {
    for (const JsonValue& entry : value->Get("checkers").Items()) {
      record.checkers.push_back(entry.AsString());
    }
  } else {
    record.checkers.push_back("unused-def");
  }
  // Absent in pre-v2 records: stays empty ("not recorded").
  if (value->Has("checker_stats")) {
    for (const JsonValue& entry : value->Get("checker_stats").Items()) {
      LedgerCheckerStat stat;
      stat.name = entry.GetString("checker");
      stat.candidates = entry.GetInt("candidates");
      stat.findings = entry.GetInt("findings");
      record.checker_stats.push_back(std::move(stat));
    }
  }
  for (const JsonValue& entry : value->Get("findings").Items()) {
    LedgerFinding finding;
    finding.fingerprint = entry.GetString("fingerprint");
    finding.checker = entry.GetString("checker", "unused-def");
    finding.file = entry.GetString("file");
    finding.line = static_cast<int>(entry.GetInt("line"));
    finding.function = entry.GetString("function");
    finding.variable = entry.GetString("variable");
    finding.kind = entry.GetString("kind");
    finding.familiarity = entry.GetDouble("familiarity");
    record.findings.push_back(std::move(finding));
  }
  record.metrics = ReadMetrics(value->Get("metrics"));
  return record;
}

RunLedger::RunLedger(std::string dir) : dir_(std::move(dir)) {}

std::string RunLedger::LedgerFile() const {
  return (std::filesystem::path(dir_) / "runs.jsonl").string();
}

std::string RunLedger::Append(RunRecord record, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create ledger dir " + dir_ + ": " + ec.message();
    }
    return "";
  }
  if (record.run_id.empty()) {
    std::optional<std::vector<RunRecord>> existing = Load(error);
    if (!existing.has_value()) {
      return "";
    }
    // Number past the highest surviving id, not the record count — after a
    // Compact the count shrinks but reusing dropped ids would collide with
    // the kept tail.
    size_t next = existing->size() + 1;
    for (const RunRecord& prior : *existing) {
      if (prior.run_id.size() > 1 && prior.run_id[0] == 'r') {
        long id = std::strtol(prior.run_id.c_str() + 1, nullptr, 10);
        if (id > 0 && static_cast<size_t>(id) >= next) {
          next = static_cast<size_t>(id) + 1;
        }
      }
    }
    record.run_id = FormatRunId(next);
  }
  // O_APPEND + a single write() of the whole line: POSIX makes each append
  // atomic with respect to other appenders, so two concurrent runs (CI jobs
  // sharing one ledger) can never interleave bytes mid-record. A buffered
  // ofstream would flush in chunks and lose that guarantee.
  const std::string line = RunRecordToJson(record) + '\n';
  int fd = ::open(LedgerFile().c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open " + LedgerFile() + " for append: " + std::strerror(errno);
    }
    return "";
  }
  ssize_t written;
  do {
    written = ::write(fd, line.data(), line.size());
  } while (written < 0 && errno == EINTR);
  const bool ok = written == static_cast<ssize_t>(line.size());
  ::close(fd);
  if (!ok) {
    if (error != nullptr) {
      *error = "write to " + LedgerFile() + " failed";
    }
    return "";
  }
  return record.run_id;
}

std::optional<std::vector<RunRecord>> RunLedger::Load(std::string* error, int* skipped) const {
  std::vector<RunRecord> records;
  std::ifstream in(LedgerFile(), std::ios::binary);
  if (!in) {
    // No ledger yet — an empty history, not an error (first run of a fresh
    // checkout appends to it moments later).
    return records;
  }
  std::string line;
  int bad = 0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::optional<RunRecord> record = RunRecordFromJson(line);
    if (record.has_value()) {
      records.push_back(std::move(*record));
    } else {
      ++bad;
    }
  }
  if (skipped != nullptr) {
    *skipped = bad;
  }
  (void)error;
  return records;
}

std::optional<RunRecord> RunLedger::Find(const std::string& selector, std::string* error) const {
  std::optional<std::vector<RunRecord>> records = Load(error);
  if (!records.has_value()) {
    return std::nullopt;
  }
  auto fail = [&](const std::string& message) -> std::optional<RunRecord> {
    if (error != nullptr) {
      *error = message;
    }
    return std::nullopt;
  };
  if (records->empty()) {
    return fail("ledger at " + dir_ + " has no runs");
  }
  std::string sel = selector;
  if (sel.empty() || sel == "latest") {
    sel = "-1";
  } else if (sel == "prev") {
    sel = "-2";
  }
  if (!sel.empty() && sel[0] == 'r') {
    for (const RunRecord& record : *records) {
      if (record.run_id == sel) {
        return record;
      }
    }
    return fail("no run with id '" + sel + "' in " + dir_);
  }
  char* end = nullptr;
  long index = std::strtol(sel.c_str(), &end, 10);
  if (end == sel.c_str() || *end != '\0') {
    return fail("bad run selector '" + selector + "' (expected latest, prev, rNNNN, N, or -N)");
  }
  long size = static_cast<long>(records->size());
  long resolved = index < 0 ? size + index : index - 1;  // 1-based positives
  if (resolved < 0 || resolved >= size) {
    return fail("run selector '" + selector + "' out of range (ledger has " +
                std::to_string(size) + " run(s))");
  }
  return (*records)[static_cast<size_t>(resolved)];
}

int RunLedger::Compact(int keep_last, std::string* error) {
  std::optional<std::vector<RunRecord>> records = Load(error);
  if (!records.has_value()) {
    return -1;
  }
  if (keep_last < 0) {
    keep_last = 0;
  }
  int dropped = static_cast<int>(records->size()) - keep_last;
  if (dropped <= 0) {
    return 0;
  }
  // Rewrite via a temp file + rename so a crash mid-compact never loses the
  // ledger (rename within one directory is atomic on POSIX).
  std::string tmp = LedgerFile() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      if (error != nullptr) {
        *error = "cannot open " + tmp;
      }
      return -1;
    }
    for (size_t i = records->size() - static_cast<size_t>(keep_last); i < records->size(); ++i) {
      out << RunRecordToJson((*records)[i]) << '\n';
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, LedgerFile(), ec);
  if (ec) {
    if (error != nullptr) {
      *error = "rename failed: " + ec.message();
    }
    return -1;
  }
  return dropped;
}

}  // namespace vc

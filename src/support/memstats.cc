#include "src/support/memstats.h"

#include <sys/resource.h>

#include <cstdlib>
#include <fstream>

#include "src/support/metrics.h"

namespace vc {

const char* MemCategoryName(MemCategory category) {
  switch (category) {
    case MemCategory::kAstNodes:
      return "ast_nodes";
    case MemCategory::kIrInstructions:
      return "ir_instructions";
    case MemCategory::kPointsToSets:
      return "points_to_sets";
    case MemCategory::kInternedStrings:
      return "interned_strings";
  }
  return "unknown";
}

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();  // never destroyed
  return *tracker;
}

void MemoryTracker::Add(MemCategory category, uint64_t bytes, uint64_t objects) {
  Slot& slot = slots_[static_cast<int>(category)];
  slot.bytes.fetch_add(bytes, std::memory_order_relaxed);
  slot.objects.fetch_add(objects, std::memory_order_relaxed);
}

MemCount MemoryTracker::Get(MemCategory category) const {
  const Slot& slot = slots_[static_cast<int>(category)];
  MemCount count;
  count.bytes = slot.bytes.load(std::memory_order_relaxed);
  count.objects = slot.objects.load(std::memory_order_relaxed);
  return count;
}

uint64_t MemoryTracker::TotalTrackedBytes() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.bytes.load(std::memory_order_relaxed);
  }
  return total;
}

void MemoryTracker::SampleRss() {
  uint64_t rss = ProcessPeakRssBytes();
  uint64_t seen = peak_rss_.load(std::memory_order_relaxed);
  while (rss > seen &&
         !peak_rss_.compare_exchange_weak(seen, rss, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::PublishRegistryGauges() const {
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (int c = 0; c < kMemCategoryCount; ++c) {
    MemCount count = Get(static_cast<MemCategory>(c));
    std::string base = std::string("mem.") + MemCategoryName(static_cast<MemCategory>(c));
    registry.GetGauge(base + ".bytes").Set(static_cast<int64_t>(count.bytes));
    registry.GetGauge(base + ".objects").Set(static_cast<int64_t>(count.objects));
  }
  registry.GetGauge("mem.tracked_bytes").Set(static_cast<int64_t>(TotalTrackedBytes()));
  registry.GetGauge("mem.peak_rss_bytes").Set(static_cast<int64_t>(peak_rss_bytes()));
}

void MemoryTracker::ResetAll() {
  for (Slot& slot : slots_) {
    slot.bytes.store(0, std::memory_order_relaxed);
    slot.objects.store(0, std::memory_order_relaxed);
  }
  peak_rss_.store(0, std::memory_order_relaxed);
}

uint64_t ProcessPeakRssBytes() {
  // Preferred: VmHWM from /proc/self/status (peak resident set, in kB).
  std::ifstream status("/proc/self/status");
  if (status) {
    std::string line;
    while (std::getline(status, line)) {
      if (line.compare(0, 6, "VmHWM:") == 0) {
        uint64_t kb = std::strtoull(line.c_str() + 6, nullptr, 10);
        if (kb > 0) {
          return kb * 1024;
        }
        break;
      }
    }
  }
  // Fallback: getrusage reports ru_maxrss in kB on Linux.
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
    return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
  }
  return 0;
}

}  // namespace vc

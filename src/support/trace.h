// Pipeline tracing: RAII spans collected into per-thread event buffers and
// exported as Chrome trace-event JSON ({"traceEvents": [...]}), loadable in
// chrome://tracing and Perfetto.
//
// Collection model:
//   * TraceCollector::Global() owns one event buffer per participating
//     thread. A thread registers its buffer once (mutex-guarded, first span
//     only); every later append is a plain push_back onto thread-private
//     storage — no locks, no cross-thread contention on the hot path.
//   * TraceSpan captures the enabled flag and a start timestamp at
//     construction and emits one complete ("ph":"X") event at destruction.
//     When tracing is disabled the span is two relaxed atomic loads and
//     nothing else — no clock reads, no allocation.
//   * Export (ToJson/WriteJson) and Clear must not race with live spans: call
//     them only when no analysis is in flight (the pipeline joins all worker
//     lanes before returning, so "after Analysis::Run returns" is safe).
//   * Tracing never affects analysis results; only timestamps differ between
//     runs. Thread ids in the export are small stable registration indexes,
//     not OS ids, so traces from identical runs line up.

#ifndef VALUECHECK_SRC_SUPPORT_TRACE_H_
#define VALUECHECK_SRC_SUPPORT_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vc {

// One complete span, in the trace-event JSON vocabulary.
struct TraceEvent {
  std::string name;
  const char* category = "pipeline";
  int64_t ts_micros = 0;   // start, relative to Enable()
  int64_t dur_micros = 0;  // duration
  int tid = 0;             // registration index of the emitting thread
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceCollector {
 public:
  // Per-thread buffer cap: spans past this are dropped (counted, never
  // silently) so a pathological run cannot grow the trace without bound.
  static constexpr size_t kDefaultThreadBufferCap = 1u << 20;

  static TraceCollector& Global();

  // Starts a collection epoch: drops buffered events and re-bases timestamps.
  void Enable();
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds since the current epoch's Enable() call.
  int64_t NowMicros() const;

  // Appends a complete event to the calling thread's buffer. Once a thread's
  // buffer holds thread_buffer_cap() events, further spans are dropped and
  // counted in dropped_count() plus the "trace.dropped_spans" registry
  // counter; ToJson() carries an explicit cap note.
  void Record(TraceEvent event);

  size_t EventCount() const;
  // Spans dropped due to the per-thread cap since the last Enable()/Clear().
  uint64_t dropped_count() const { return dropped_.load(std::memory_order_relaxed); }

  size_t thread_buffer_cap() const {
    return thread_buffer_cap_.load(std::memory_order_relaxed);
  }
  // Test hook: shrink the cap to exercise the overflow path cheaply.
  void SetThreadBufferCapForTest(size_t cap) {
    thread_buffer_cap_.store(cap, std::memory_order_relaxed);
  }

  // Stable-ordered copy of every buffered event, sorted by (ts, tid) like
  // ToJson(); input for the collapsed-stack profile exporter.
  std::vector<TraceEvent> SnapshotEvents() const;

  // Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  // Events are ordered by (ts, tid) so output is layout-stable.
  std::string ToJson() const;
  // Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

  // Drops buffered events (thread registrations survive).
  void Clear();

  // One thread's private event storage (public only so the implementation's
  // thread_local cache can name the type).
  struct ThreadBuffer {
    int tid = 0;
    std::vector<TraceEvent> events;
  };

 private:
  TraceCollector() = default;
  ThreadBuffer& LocalBuffer();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<size_t> thread_buffer_cap_{kDefaultThreadBufferCap};
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
  mutable std::mutex mutex_;  // guards buffers_ registration and export
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

inline bool TraceEnabled() { return TraceCollector::Global().enabled(); }

// RAII scope producing one complete trace event. Name/category must outlive
// the span when passed as const char* (string literals in practice); dynamic
// names use the std::string overload.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "pipeline")
      : active_(TraceEnabled()) {
    if (active_) {
      Begin(name, category);
    }
  }
  TraceSpan(std::string name, const char* category) : active_(TraceEnabled()) {
    if (active_) {
      Begin(std::move(name), category);
    }
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches a key/value pair to the event; no-ops when tracing is disabled.
  void Arg(const char* key, const std::string& value) {
    if (active_) {
      event_.args.emplace_back(key, value);
    }
  }
  void Arg(const char* key, int64_t value) {
    if (active_) {
      event_.args.emplace_back(key, std::to_string(value));
    }
  }

 private:
  void Begin(std::string name, const char* category);
  void End();

  bool active_;
  TraceEvent event_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_TRACE_H_

// Zero-dependency metrics layer for the analysis pipeline: thread-safe
// counters, max-tracking gauges, and log-scale latency histograms, registered
// by name in a process-global MetricsRegistry.
//
// Design constraints (see DESIGN.md §"Observability"):
//   * Hot-path operations (Counter::Add, Gauge::UpdateMax, Histogram::Record)
//     are single relaxed atomic RMWs — safe from any thread, no locks.
//   * Registration (GetCounter/GetGauge/GetHistogram) takes a mutex; callers
//     on hot paths should resolve the metric reference once, outside loops.
//     Returned references stay valid for the registry's lifetime.
//   * The registry carries a global enabled flag (MetricsEnabled()). Metric
//     objects always accept updates; the flag exists so instrumentation sites
//     can skip the *clock reads* that feed histograms — the expensive part —
//     when nobody is collecting. Determinism is unaffected either way:
//     metrics never influence analysis results.
//   * Snapshots iterate name-sorted (std::map), so rendered tables and JSON
//     are stable run to run up to the measured values themselves.

#ifndef VALUECHECK_SRC_SUPPORT_METRICS_H_
#define VALUECHECK_SRC_SUPPORT_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vc {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-value gauge with a lock-free max-update form (high-water marks).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void UpdateMax(int64_t v) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-scale latency histogram over nanoseconds: bucket b counts samples in
// [2^b, 2^(b+1)) ns (bucket 0 additionally holds sub-nanosecond samples).
// Nanosecond-internal storage keeps sub-microsecond stages (fast per-function
// detect spans) from all collapsing into one bucket; seconds appear only at
// the export accessors. Concurrent Record calls are lock-free;
// count/sum/min/max are exact, percentiles are bucket-resolution
// approximations.
class Histogram {
 public:
  static constexpr int kBuckets = 50;  // 2^49 ns ≈ 6.5 days: plenty

  void Record(double seconds) {
    RecordNanos(seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9));
  }
  void RecordNanos(uint64_t nanos);
  // Compatibility shim for call sites that measure in microseconds.
  void RecordMicros(uint64_t micros) { RecordNanos(micros * 1000); }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_seconds() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) / 1e9;
  }
  double mean_seconds() const;
  double min_seconds() const;
  double max_seconds() const;
  // Approximate quantile (q in [0, 1]) as the upper bound of the log₂ bucket
  // containing the q-th sample, clamped by the exact observed max so p100
  // (and any quantile landing in the top occupied bucket) is exact. Returns 0
  // for an empty histogram. This is THE percentile code path: stage tables,
  // Prometheus consumers, the serve latency report, and vc_loadgen all derive
  // p50/p95/p99 from it.
  double ValueAtQuantile(double q) const {
    return static_cast<double>(ValueAtQuantileNanos(q)) / 1e9;
  }
  uint64_t ValueAtQuantileNanos(double q) const;
  // Back-compat alias kept for existing call sites.
  double PercentileSeconds(double p) const { return ValueAtQuantile(p); }

  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  // Inclusive lower bound of a bucket, in nanoseconds.
  static uint64_t BucketLowerNanos(int bucket) {
    return bucket == 0 ? 0 : (uint64_t{1} << bucket);
  }

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
  std::atomic<uint64_t> min_nanos_{UINT64_MAX};
  std::atomic<uint64_t> max_nanos_{0};
};

// One name-sorted row of a registry snapshot, pre-formatted for tables/JSON.
struct MetricRow {
  std::string name;
  std::string type;  // "counter" | "gauge" | "histogram"
  uint64_t count = 0;         // counter/gauge value, or histogram sample count
  double sum_seconds = 0.0;   // histograms only
  double mean_seconds = 0.0;  // histograms only
  double p50_seconds = 0.0;   // histograms only
  double p95_seconds = 0.0;   // histograms only
  double max_seconds = 0.0;   // histograms only
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Collection switch read by instrumentation sites (see header comment).
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Find-or-create by name. A name registers exactly one metric kind; asking
  // for the same name as a different kind is a programming error (asserted).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Name-sorted snapshot of every registered metric.
  std::vector<MetricRow> Snapshot() const;

  // Aligned text table of the snapshot (via TableWriter); histogram times in
  // milliseconds. Skips zero-count metrics unless include_zero.
  std::string RenderTable(bool include_zero = false) const;

  // Prometheus text exposition (version 0.0.4) of every registered metric.
  // Names are prefixed "vc_" and sanitized to [a-zA-Z0-9_:]; counters gain a
  // "_total" suffix per convention. Histograms export cumulative le-buckets
  // in seconds plus _sum/_count. Name-sorted within each metric kind, so the
  // dump is layout-stable.
  std::string RenderPrometheus() const;

  // Zeroes every metric (registrations survive, references stay valid).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Shorthand for MetricsRegistry::Global().enabled().
inline bool MetricsEnabled() { return MetricsRegistry::Global().enabled(); }

// RAII stage timer: when metrics are enabled at construction, measures the
// scope's wall-clock and records it into an optional seconds accumulator and
// an optional histogram. A no-op (no clock reads) when disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* seconds_out, Histogram* histogram = nullptr)
      : seconds_out_(seconds_out), histogram_(histogram), active_(MetricsEnabled()) {
    if (active_) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (!active_) {
      return;
    }
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    if (seconds_out_ != nullptr) {
      *seconds_out_ += seconds;
    }
    if (histogram_ != nullptr) {
      histogram_->Record(seconds);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* seconds_out_;
  Histogram* histogram_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_METRICS_H_

// Minimal streaming JSON writer used by the report exporters. Handles
// escaping and comma placement; nesting is the caller's responsibility
// (Begin/End calls must pair).

#ifndef VALUECHECK_SRC_SUPPORT_JSON_WRITER_H_
#define VALUECHECK_SRC_SUPPORT_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vc {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object-member forms.
  JsonWriter& Key(const std::string& key);
  JsonWriter& String(const std::string& key, const std::string& value);
  JsonWriter& Int(const std::string& key, int64_t value);
  JsonWriter& Double(const std::string& key, double value);
  JsonWriter& Bool(const std::string& key, bool value);

  // Array-element forms.
  JsonWriter& StringValue(const std::string& value);
  JsonWriter& IntValue(int64_t value);
  JsonWriter& DoubleValue(double value);

  // Splices pre-rendered JSON (already valid on its own) as a member / an
  // element. Lets the daemon embed a full ReportToJson() document inside a
  // response frame without re-parsing it. The caller vouches for validity.
  JsonWriter& Raw(const std::string& key, const std::string& json);
  JsonWriter& RawValue(const std::string& json);

  const std::string& str() const { return out_; }

  static std::string Escape(const std::string& text);

 private:
  void Separate();

  std::string out_;
  std::vector<bool> needs_comma_;  // one frame per open object/array
  bool pending_key_ = false;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SUPPORT_JSON_WRITER_H_

#include "src/support/trace.h"

#include <algorithm>
#include <fstream>

#include "src/support/json_writer.h"
#include "src/support/metrics.h"

namespace vc {

namespace {

// Per-thread buffer pointer, registered with the global collector on first
// use. Buffers are owned by the collector and never freed (threads may
// outlive epochs), so the cached pointer stays valid for the process's life.
thread_local TraceCollector::ThreadBuffer* tls_buffer = nullptr;

}  // namespace

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();  // never destroyed
  return *collector;
}

void TraceCollector::Enable() {
  Clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

int64_t TraceCollector::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceCollector::ThreadBuffer& TraceCollector::LocalBuffer() {
  if (tls_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffers_.back()->tid = static_cast<int>(buffers_.size());
    tls_buffer = buffers_.back().get();
  }
  return *tls_buffer;
}

void TraceCollector::Record(TraceEvent event) {
  ThreadBuffer& buffer = LocalBuffer();
  if (buffer.events.size() >= thread_buffer_cap()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Global().GetCounter("trace.dropped_spans").Add(1);
    return;
  }
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

size_t TraceCollector::EventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->events.size();
  }
  return total;
}

std::vector<TraceEvent> TraceCollector::SnapshotEvents() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      for (const TraceEvent& event : buffer->events) {
        events.push_back(event);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_micros != b.ts_micros) {
                       return a.ts_micros < b.ts_micros;
                     }
                     return a.tid < b.tid;
                   });
  return events;
}

std::string TraceCollector::ToJson() const {
  std::vector<const TraceEvent*> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      for (const TraceEvent& event : buffer->events) {
        events.push_back(&event);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->ts_micros != b->ts_micros) {
                       return a->ts_micros < b->ts_micros;
                     }
                     return a->tid < b->tid;
                   });

  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents").BeginArray();
  for (const TraceEvent* event : events) {
    json.BeginObject();
    json.String("name", event->name);
    json.String("cat", event->category);
    json.String("ph", "X");
    json.Int("ts", event->ts_micros);
    json.Int("dur", event->dur_micros);
    json.Int("pid", 1);
    json.Int("tid", event->tid);
    if (!event->args.empty()) {
      json.Key("args").BeginObject();
      for (const auto& [key, value] : event->args) {
        json.String(key, value);
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.String("displayTimeUnit", "ms");
  uint64_t dropped = dropped_count();
  if (dropped > 0) {
    // Explicit cap note: the trace is incomplete, and by how much.
    json.Int("droppedEvents", static_cast<int64_t>(dropped));
    json.String("droppedNote",
                "per-thread buffer cap (" + std::to_string(thread_buffer_cap()) +
                    " events) reached; " + std::to_string(dropped) + " span(s) dropped");
  }
  json.EndObject();
  return json.str();
}

bool TraceCollector::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << ToJson() << "\n";
  return out.good();
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) {
    buffer->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceSpan::Begin(std::string name, const char* category) {
  event_.name = std::move(name);
  event_.category = category;
  event_.ts_micros = TraceCollector::Global().NowMicros();
}

void TraceSpan::End() {
  if (!active_) {
    return;
  }
  TraceCollector& collector = TraceCollector::Global();
  if (!collector.enabled()) {
    return;  // tracing stopped mid-span; drop the event
  }
  event_.dur_micros = collector.NowMicros() - event_.ts_micros;
  collector.Record(std::move(event_));
}

}  // namespace vc

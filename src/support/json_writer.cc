#include "src/support/json_writer.h"

#include <cmath>
#include <cstdio>

namespace vc {

std::string JsonWriter::Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the value follows its key; no comma
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  Separate();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& key, const std::string& value) {
  Key(key);
  return StringValue(value);
}

JsonWriter& JsonWriter::Int(const std::string& key, int64_t value) {
  Key(key);
  return IntValue(value);
}

JsonWriter& JsonWriter::Double(const std::string& key, double value) {
  Key(key);
  return DoubleValue(value);
}

JsonWriter& JsonWriter::DoubleValue(double value) {
  Separate();
  // JSON has no NaN/Infinity literals; "%g" would emit them and corrupt the
  // document. RFC 8259's only representation for a non-finite number is null.
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(const std::string& key, bool value) {
  Key(key);
  Separate();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::StringValue(const std::string& value) {
  Separate();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::IntValue(int64_t value) {
  Separate();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& key, const std::string& json) {
  Key(key);
  return RawValue(json);
}

JsonWriter& JsonWriter::RawValue(const std::string& json) {
  Separate();
  out_ += json;
  return *this;
}

}  // namespace vc

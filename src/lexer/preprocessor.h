// Line-based preprocessor for Mini-C.
//
// Supports the conditional-compilation subset ValueCheck's configuration-
// dependency pruning depends on (#if/#ifdef/#ifndef/#else/#endif/#define).
// The preprocessor decides which lines are active under a given Config and,
// crucially, records every conditional region so the pruning pass can scan
// disabled text for uses of a definition — exactly the source-level check the
// paper performs (§5.1): uses guarded by a disabled #if never reach the IR, so
// the raw region text is the only place they can be found.

#ifndef VALUECHECK_SRC_LEXER_PREPROCESSOR_H_
#define VALUECHECK_SRC_LEXER_PREPROCESSOR_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vc {

// Compilation configuration: macro name -> value. Presence means defined;
// value 0 still counts as defined for #ifdef but is false under #if.
class Config {
 public:
  void Define(std::string name, long long value = 1) { macros_[std::move(name)] = value; }
  void Undefine(const std::string& name) { macros_.erase(name); }
  bool IsDefined(const std::string& name) const { return macros_.count(name) > 0; }
  long long ValueOf(const std::string& name) const {
    auto it = macros_.find(name);
    return it == macros_.end() ? 0 : it->second;
  }
  // Sorted name -> value view, for callers that fold the configuration into a
  // cache key (a config change must invalidate cached analysis results).
  const std::map<std::string, long long>& macros() const { return macros_; }

 private:
  std::map<std::string, long long> macros_;
};

// One #if/#ifdef/#ifndef ... #endif block. Lines are 1-based and inclusive of
// the directive lines themselves.
struct CondRegion {
  int begin_line = 0;  // line of the opening directive
  int end_line = 0;    // line of the matching #endif
  std::string condition;
  bool taken = false;  // whether the first branch was active
};

struct PreprocessedLine {
  bool active = true;       // reaches the lexer
  bool directive = false;   // is a preprocessor directive line
};

struct PreprocessResult {
  std::vector<PreprocessedLine> lines;  // index 0 is line 1
  std::vector<CondRegion> regions;
  std::vector<std::string> errors;  // unterminated blocks, stray #endif, ...

  bool LineActive(int line) const {
    int idx = line - 1;
    if (idx < 0 || idx >= static_cast<int>(lines.size())) {
      return false;
    }
    return lines[idx].active && !lines[idx].directive;
  }
};

// Runs conditional processing over `content` under `config`. #define lines in
// the file update a local copy of the config for subsequent conditionals
// (object-like macros are not textually expanded; Mini-C code spells constants
// directly, matching how the corpus generator emits code).
PreprocessResult Preprocess(std::string_view content, const Config& config);

}  // namespace vc

#endif  // VALUECHECK_SRC_LEXER_PREPROCESSOR_H_

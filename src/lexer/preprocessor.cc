#include "src/lexer/preprocessor.h"

#include <cctype>
#include <cstdlib>

#include "src/support/string_util.h"

namespace vc {

namespace {

struct Frame {
  int begin_line = 0;
  std::string condition;
  bool parent_active = true;
  bool branch_active = false;   // current branch truth value
  bool any_taken = false;       // some branch already taken (for #else)
  bool first_branch_taken = false;
};

// Evaluates the restricted #if expression grammar:
//   expr := "0" | "1" | <int> | NAME | defined(NAME) | !defined(NAME) | !NAME
bool EvalCondition(std::string_view expr, const Config& config) {
  std::string_view trimmed = Trim(expr);
  bool negate = false;
  while (!trimmed.empty() && trimmed.front() == '!') {
    negate = !negate;
    trimmed = Trim(trimmed.substr(1));
  }
  bool value = false;
  if (trimmed.empty()) {
    value = false;
  } else if (std::isdigit(static_cast<unsigned char>(trimmed.front()))) {
    value = std::strtoll(std::string(trimmed).c_str(), nullptr, 0) != 0;
  } else if (trimmed.rfind("defined", 0) == 0) {
    std::string_view rest = Trim(trimmed.substr(7));
    if (!rest.empty() && rest.front() == '(') {
      rest = Trim(rest.substr(1));
      size_t close = rest.find(')');
      if (close != std::string_view::npos) {
        rest = Trim(rest.substr(0, close));
      }
    }
    value = config.IsDefined(std::string(rest));
  } else {
    // Bare macro name: defined with nonzero value.
    std::string name(trimmed);
    value = config.IsDefined(name) && config.ValueOf(name) != 0;
  }
  return negate ? !value : value;
}

}  // namespace

PreprocessResult Preprocess(std::string_view content, const Config& config) {
  PreprocessResult result;
  Config local = config;
  std::vector<Frame> stack;

  std::vector<std::string_view> raw_lines = Split(content, '\n');
  // A trailing newline produces one empty trailing entry; drop it so line
  // counts match SourceManager::NumLines.
  if (!raw_lines.empty() && raw_lines.back().empty() && !content.empty() &&
      content.back() == '\n') {
    raw_lines.pop_back();
  }
  result.lines.resize(raw_lines.size());

  auto enclosing_active = [&stack]() {
    for (const Frame& frame : stack) {
      if (!frame.branch_active) {
        return false;
      }
    }
    return true;
  };

  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    std::string_view trimmed = Trim(raw_lines[i]);
    PreprocessedLine& info = result.lines[i];

    if (trimmed.empty() || trimmed.front() != '#') {
      info.active = enclosing_active();
      continue;
    }

    info.directive = true;
    info.active = false;
    std::string_view directive = Trim(trimmed.substr(1));

    if (directive.rfind("define", 0) == 0) {
      if (enclosing_active()) {
        std::string_view rest = Trim(directive.substr(6));
        size_t name_end = 0;
        while (name_end < rest.size() && IsIdentChar(rest[name_end])) {
          ++name_end;
        }
        std::string name(rest.substr(0, name_end));
        std::string_view value_text = Trim(rest.substr(name_end));
        long long value = 1;
        if (!value_text.empty()) {
          value = std::strtoll(std::string(value_text).c_str(), nullptr, 0);
        }
        if (!name.empty()) {
          local.Define(std::move(name), value);
        }
      }
    } else if (directive.rfind("ifdef", 0) == 0 || directive.rfind("ifndef", 0) == 0 ||
               directive.rfind("if", 0) == 0) {
      Frame frame;
      frame.begin_line = line_no;
      frame.parent_active = enclosing_active();
      bool cond;
      if (directive.rfind("ifdef", 0) == 0) {
        frame.condition = std::string(Trim(directive.substr(5)));
        cond = local.IsDefined(frame.condition);
      } else if (directive.rfind("ifndef", 0) == 0) {
        frame.condition = std::string(Trim(directive.substr(6)));
        cond = !local.IsDefined(frame.condition);
      } else {
        frame.condition = std::string(Trim(directive.substr(2)));
        cond = EvalCondition(frame.condition, local);
      }
      frame.branch_active = cond;
      frame.any_taken = cond;
      frame.first_branch_taken = cond;
      stack.push_back(std::move(frame));
    } else if (directive.rfind("else", 0) == 0) {
      if (stack.empty()) {
        result.errors.push_back("line " + std::to_string(line_no) + ": #else without #if");
      } else {
        Frame& frame = stack.back();
        frame.branch_active = !frame.any_taken;
        frame.any_taken = true;
      }
    } else if (directive.rfind("endif", 0) == 0) {
      if (stack.empty()) {
        result.errors.push_back("line " + std::to_string(line_no) + ": #endif without #if");
      } else {
        Frame frame = stack.back();
        stack.pop_back();
        CondRegion region;
        region.begin_line = frame.begin_line;
        region.end_line = line_no;
        region.condition = frame.condition;
        region.taken = frame.first_branch_taken;
        result.regions.push_back(std::move(region));
      }
    } else if (directive.rfind("include", 0) == 0) {
      // Includes are resolved by the Project layer (all files of a project are
      // parsed together); the directive itself is inert here.
    } else {
      result.errors.push_back("line " + std::to_string(line_no) + ": unknown directive '#" +
                              std::string(directive) + "'");
    }
  }

  for (const Frame& frame : stack) {
    result.errors.push_back("line " + std::to_string(frame.begin_line) +
                            ": unterminated conditional");
    CondRegion region;
    region.begin_line = frame.begin_line;
    region.end_line = static_cast<int>(raw_lines.size());
    region.condition = frame.condition;
    region.taken = frame.first_branch_taken;
    result.regions.push_back(std::move(region));
  }

  return result;
}

}  // namespace vc

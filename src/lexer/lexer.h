// Tokenizer for Mini-C. Operates on a file registered with a SourceManager
// plus the preprocessing result: only active, non-directive lines produce
// tokens; comments are skipped but remain available as raw text for the
// unused-hints pruning pass.

#ifndef VALUECHECK_SRC_LEXER_LEXER_H_
#define VALUECHECK_SRC_LEXER_LEXER_H_

#include <vector>

#include "src/lexer/preprocessor.h"
#include "src/lexer/token.h"
#include "src/support/diagnostics.h"
#include "src/support/source_manager.h"

namespace vc {

// Lexes the whole file into a token vector terminated by a kEof token.
std::vector<Token> Lex(const SourceManager& sm, FileId file, const PreprocessResult& pp,
                       DiagnosticEngine& diags);

}  // namespace vc

#endif  // VALUECHECK_SRC_LEXER_LEXER_H_

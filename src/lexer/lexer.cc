#include "src/lexer/lexer.h"

#include <cctype>
#include <map>
#include <string>

namespace vc {

namespace {

const std::map<std::string, TokenKind>& KeywordTable() {
  static const std::map<std::string, TokenKind> kTable = {
      {"void", TokenKind::kKwVoid},         {"int", TokenKind::kKwInt},
      {"char", TokenKind::kKwChar},         {"long", TokenKind::kKwLong},
      {"bool", TokenKind::kKwBool},         {"unsigned", TokenKind::kKwUnsigned},
      {"size_t", TokenKind::kKwSizeT},      {"struct", TokenKind::kKwStruct},
      {"enum", TokenKind::kKwEnum},         {"typedef", TokenKind::kKwTypedef},
      {"const", TokenKind::kKwConst},       {"static", TokenKind::kKwStatic},
      {"if", TokenKind::kKwIf},             {"else", TokenKind::kKwElse},
      {"while", TokenKind::kKwWhile},       {"for", TokenKind::kKwFor},
      {"do", TokenKind::kKwDo},             {"switch", TokenKind::kKwSwitch},
      {"case", TokenKind::kKwCase},         {"default", TokenKind::kKwDefault},
      {"return", TokenKind::kKwReturn},     {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue}, {"sizeof", TokenKind::kKwSizeof},
      {"true", TokenKind::kKwTrue},         {"false", TokenKind::kKwFalse},
      {"NULL", TokenKind::kKwNull},         {"nullptr", TokenKind::kKwNull},
  };
  return kTable;
}

// Per-line scanner that carries block-comment state across lines.
class LineScanner {
 public:
  LineScanner(const SourceManager& sm, FileId file, const PreprocessResult& pp,
              DiagnosticEngine& diags)
      : sm_(sm), file_(file), pp_(pp), diags_(diags) {}

  std::vector<Token> Run() {
    const int num_lines = sm_.NumLines(file_);
    for (int line = 1; line <= num_lines; ++line) {
      if (!pp_.LineActive(line)) {
        continue;
      }
      ScanLine(line, sm_.Line(file_, line));
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.loc = {file_, num_lines, 1};
    tokens_.push_back(std::move(eof));
    return std::move(tokens_);
  }

 private:
  void Emit(TokenKind kind, int line, int col, std::string text = {}, long long value = 0) {
    Token tok;
    tok.kind = kind;
    tok.loc = {file_, line, col};
    tok.text = std::move(text);
    tok.int_value = value;
    tokens_.push_back(std::move(tok));
  }

  void ScanLine(int line, std::string_view text) {
    size_t i = 0;
    const size_t n = text.size();
    while (i < n) {
      if (in_block_comment_) {
        size_t close = text.find("*/", i);
        if (close == std::string_view::npos) {
          return;  // comment continues on the next line
        }
        i = close + 2;
        in_block_comment_ = false;
        continue;
      }

      char c = text[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      const int col = static_cast<int>(i) + 1;

      // Comments.
      if (c == '/' && i + 1 < n && text[i + 1] == '/') {
        return;
      }
      if (c == '/' && i + 1 < n && text[i + 1] == '*') {
        in_block_comment_ = true;
        i += 2;
        continue;
      }

      // Attributes: [[...]]
      if (c == '[' && i + 1 < n && text[i + 1] == '[') {
        size_t close = text.find("]]", i + 2);
        if (close == std::string_view::npos) {
          diags_.Error({file_, line, col}, "unterminated [[attribute]]");
          return;
        }
        Emit(TokenKind::kAttribute, line, col, std::string(text.substr(i, close + 2 - i)));
        i = close + 2;
        continue;
      }

      // Attributes: __attribute__((...))
      if (c == '_' && text.substr(i).rfind("__attribute__", 0) == 0) {
        size_t open = text.find("((", i);
        size_t close = (open == std::string_view::npos) ? std::string_view::npos
                                                        : text.find("))", open);
        if (close == std::string_view::npos) {
          diags_.Error({file_, line, col}, "unterminated __attribute__");
          return;
        }
        Emit(TokenKind::kAttribute, line, col, std::string(text.substr(i, close + 2 - i)));
        i = close + 2;
        continue;
      }

      // Identifiers and keywords.
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_')) {
          ++i;
        }
        std::string word(text.substr(start, i - start));
        auto it = KeywordTable().find(word);
        if (it != KeywordTable().end()) {
          Emit(it->second, line, col);
        } else {
          Emit(TokenKind::kIdentifier, line, col, std::move(word));
        }
        continue;
      }

      // Numeric literals (decimal or 0x hex).
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = i;
        if (c == '0' && i + 1 < n && (text[i + 1] == 'x' || text[i + 1] == 'X')) {
          i += 2;
          while (i < n && std::isxdigit(static_cast<unsigned char>(text[i]))) {
            ++i;
          }
        } else {
          while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
            ++i;
          }
        }
        // Integer suffixes (u, l, ul, ...) are accepted and ignored.
        while (i < n && (text[i] == 'u' || text[i] == 'U' || text[i] == 'l' || text[i] == 'L')) {
          ++i;
        }
        std::string spelling(text.substr(start, i - start));
        long long value = std::strtoll(spelling.c_str(), nullptr, 0);
        Emit(TokenKind::kIntLiteral, line, col, std::move(spelling), value);
        continue;
      }

      // Character literal.
      if (c == '\'') {
        size_t j = i + 1;
        long long value = 0;
        if (j < n && text[j] == '\\' && j + 1 < n) {
          switch (text[j + 1]) {
            case 'n':
              value = '\n';
              break;
            case 't':
              value = '\t';
              break;
            case '0':
              value = 0;
              break;
            case '\\':
              value = '\\';
              break;
            case '\'':
              value = '\'';
              break;
            default:
              value = text[j + 1];
              break;
          }
          j += 2;
        } else if (j < n) {
          value = text[j];
          j += 1;
        }
        if (j >= n || text[j] != '\'') {
          diags_.Error({file_, line, col}, "unterminated character literal");
          return;
        }
        Emit(TokenKind::kCharLiteral, line, col, std::string(text.substr(i, j + 1 - i)), value);
        i = j + 1;
        continue;
      }

      // String literal.
      if (c == '"') {
        size_t j = i + 1;
        while (j < n && text[j] != '"') {
          if (text[j] == '\\' && j + 1 < n) {
            ++j;
          }
          ++j;
        }
        if (j >= n) {
          diags_.Error({file_, line, col}, "unterminated string literal");
          return;
        }
        Emit(TokenKind::kStringLiteral, line, col, std::string(text.substr(i + 1, j - i - 1)));
        i = j + 1;
        continue;
      }

      // Operators and punctuation (longest match first).
      auto two = (i + 1 < n) ? text.substr(i, 2) : std::string_view{};
      TokenKind kind = TokenKind::kEof;
      int len = 0;
      if (two == "->") {
        kind = TokenKind::kArrow;
        len = 2;
      } else if (two == "++") {
        kind = TokenKind::kPlusPlus;
        len = 2;
      } else if (two == "--") {
        kind = TokenKind::kMinusMinus;
        len = 2;
      } else if (two == "+=") {
        kind = TokenKind::kPlusAssign;
        len = 2;
      } else if (two == "-=") {
        kind = TokenKind::kMinusAssign;
        len = 2;
      } else if (two == "*=") {
        kind = TokenKind::kStarAssign;
        len = 2;
      } else if (two == "/=") {
        kind = TokenKind::kSlashAssign;
        len = 2;
      } else if (two == "&=") {
        kind = TokenKind::kAmpAssign;
        len = 2;
      } else if (two == "|=") {
        kind = TokenKind::kPipeAssign;
        len = 2;
      } else if (two == "==") {
        kind = TokenKind::kEq;
        len = 2;
      } else if (two == "!=") {
        kind = TokenKind::kNe;
        len = 2;
      } else if (two == "<=") {
        kind = TokenKind::kLe;
        len = 2;
      } else if (two == ">=") {
        kind = TokenKind::kGe;
        len = 2;
      } else if (two == "&&") {
        kind = TokenKind::kAmpAmp;
        len = 2;
      } else if (two == "||") {
        kind = TokenKind::kPipePipe;
        len = 2;
      } else if (two == "<<") {
        kind = TokenKind::kShl;
        len = 2;
      } else if (two == ">>") {
        kind = TokenKind::kShr;
        len = 2;
      } else {
        len = 1;
        switch (c) {
          case '(':
            kind = TokenKind::kLParen;
            break;
          case ')':
            kind = TokenKind::kRParen;
            break;
          case '{':
            kind = TokenKind::kLBrace;
            break;
          case '}':
            kind = TokenKind::kRBrace;
            break;
          case '[':
            kind = TokenKind::kLBracket;
            break;
          case ']':
            kind = TokenKind::kRBracket;
            break;
          case ';':
            kind = TokenKind::kSemi;
            break;
          case ',':
            kind = TokenKind::kComma;
            break;
          case '.':
            kind = TokenKind::kDot;
            break;
          case '+':
            kind = TokenKind::kPlus;
            break;
          case '-':
            kind = TokenKind::kMinus;
            break;
          case '*':
            kind = TokenKind::kStar;
            break;
          case '/':
            kind = TokenKind::kSlash;
            break;
          case '%':
            kind = TokenKind::kPercent;
            break;
          case '&':
            kind = TokenKind::kAmp;
            break;
          case '|':
            kind = TokenKind::kPipe;
            break;
          case '^':
            kind = TokenKind::kCaret;
            break;
          case '~':
            kind = TokenKind::kTilde;
            break;
          case '!':
            kind = TokenKind::kBang;
            break;
          case '=':
            kind = TokenKind::kAssign;
            break;
          case '<':
            kind = TokenKind::kLt;
            break;
          case '>':
            kind = TokenKind::kGt;
            break;
          case '?':
            kind = TokenKind::kQuestion;
            break;
          case ':':
            kind = TokenKind::kColon;
            break;
          default:
            diags_.Error({file_, line, col},
                         std::string("unexpected character '") + c + "'");
            ++i;
            continue;
        }
      }
      Emit(kind, line, col);
      i += len;
    }
  }

  const SourceManager& sm_;
  FileId file_;
  const PreprocessResult& pp_;
  DiagnosticEngine& diags_;
  std::vector<Token> tokens_;
  bool in_block_comment_ = false;
};

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "eof";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "int-literal";
    case TokenKind::kCharLiteral:
      return "char-literal";
    case TokenKind::kStringLiteral:
      return "string-literal";
    case TokenKind::kAttribute:
      return "attribute";
    case TokenKind::kKwVoid:
      return "void";
    case TokenKind::kKwInt:
      return "int";
    case TokenKind::kKwChar:
      return "char";
    case TokenKind::kKwLong:
      return "long";
    case TokenKind::kKwBool:
      return "bool";
    case TokenKind::kKwUnsigned:
      return "unsigned";
    case TokenKind::kKwSizeT:
      return "size_t";
    case TokenKind::kKwStruct:
      return "struct";
    case TokenKind::kKwEnum:
      return "enum";
    case TokenKind::kKwTypedef:
      return "typedef";
    case TokenKind::kKwConst:
      return "const";
    case TokenKind::kKwStatic:
      return "static";
    case TokenKind::kKwIf:
      return "if";
    case TokenKind::kKwElse:
      return "else";
    case TokenKind::kKwWhile:
      return "while";
    case TokenKind::kKwDo:
      return "do";
    case TokenKind::kKwSwitch:
      return "switch";
    case TokenKind::kKwCase:
      return "case";
    case TokenKind::kKwDefault:
      return "default";
    case TokenKind::kKwFor:
      return "for";
    case TokenKind::kKwReturn:
      return "return";
    case TokenKind::kKwBreak:
      return "break";
    case TokenKind::kKwContinue:
      return "continue";
    case TokenKind::kKwSizeof:
      return "sizeof";
    case TokenKind::kKwTrue:
      return "true";
    case TokenKind::kKwFalse:
      return "false";
    case TokenKind::kKwNull:
      return "NULL";
    case TokenKind::kLParen:
      return "(";
    case TokenKind::kRParen:
      return ")";
    case TokenKind::kLBrace:
      return "{";
    case TokenKind::kRBrace:
      return "}";
    case TokenKind::kLBracket:
      return "[";
    case TokenKind::kRBracket:
      return "]";
    case TokenKind::kSemi:
      return ";";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kDot:
      return ".";
    case TokenKind::kArrow:
      return "->";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kPercent:
      return "%";
    case TokenKind::kAmp:
      return "&";
    case TokenKind::kPipe:
      return "|";
    case TokenKind::kCaret:
      return "^";
    case TokenKind::kTilde:
      return "~";
    case TokenKind::kBang:
      return "!";
    case TokenKind::kAssign:
      return "=";
    case TokenKind::kPlusAssign:
      return "+=";
    case TokenKind::kMinusAssign:
      return "-=";
    case TokenKind::kStarAssign:
      return "*=";
    case TokenKind::kSlashAssign:
      return "/=";
    case TokenKind::kAmpAssign:
      return "&=";
    case TokenKind::kPipeAssign:
      return "|=";
    case TokenKind::kPlusPlus:
      return "++";
    case TokenKind::kMinusMinus:
      return "--";
    case TokenKind::kEq:
      return "==";
    case TokenKind::kNe:
      return "!=";
    case TokenKind::kLt:
      return "<";
    case TokenKind::kGt:
      return ">";
    case TokenKind::kLe:
      return "<=";
    case TokenKind::kGe:
      return ">=";
    case TokenKind::kAmpAmp:
      return "&&";
    case TokenKind::kPipePipe:
      return "||";
    case TokenKind::kShl:
      return "<<";
    case TokenKind::kShr:
      return ">>";
    case TokenKind::kQuestion:
      return "?";
    case TokenKind::kColon:
      return ":";
  }
  return "unknown";
}

std::vector<Token> Lex(const SourceManager& sm, FileId file, const PreprocessResult& pp,
                       DiagnosticEngine& diags) {
  LineScanner scanner(sm, file, pp, diags);
  return scanner.Run();
}

}  // namespace vc

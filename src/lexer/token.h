// Token definitions for the Mini-C front end.
//
// Mini-C is the from-scratch C subset this reproduction analyzes in place of
// LLVM bitcode compiled from real C/C++ (see DESIGN.md §1). It covers the
// constructs ValueCheck's algorithm observes: assignments, calls, field and
// pointer accesses, control flow, preprocessor conditionals, and unused-hint
// attributes.

#ifndef VALUECHECK_SRC_LEXER_TOKEN_H_
#define VALUECHECK_SRC_LEXER_TOKEN_H_

#include <string>

#include "src/support/source_location.h"

namespace vc {

enum class TokenKind {
  kEof,
  kIdentifier,
  kIntLiteral,
  kCharLiteral,
  kStringLiteral,
  // Attribute blob: "[[maybe_unused]]" or "__attribute__((unused))"; the
  // token text carries the attribute spelling for hint matching.
  kAttribute,

  // Type and declaration keywords.
  kKwVoid,
  kKwInt,
  kKwChar,
  kKwLong,
  kKwBool,
  kKwUnsigned,
  kKwSizeT,
  kKwStruct,
  kKwEnum,
  kKwTypedef,
  kKwConst,
  kKwStatic,

  // Statement keywords.
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwDo,
  kKwFor,
  kKwSwitch,
  kKwCase,
  kKwDefault,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  kKwSizeof,
  kKwTrue,
  kKwFalse,
  kKwNull,

  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemi,
  kComma,
  kDot,
  kArrow,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kBang,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kAmpAssign,
  kPipeAssign,
  kPlusPlus,
  kMinusMinus,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kAmpAmp,
  kPipePipe,
  kShl,
  kShr,
  kQuestion,
  kColon,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  SourceLoc loc;
  // Spelling for identifiers, literals, and attributes; empty otherwise.
  std::string text;
  // Decoded value for kIntLiteral / kCharLiteral.
  long long int_value = 0;

  bool Is(TokenKind k) const { return kind == k; }
};

}  // namespace vc

#endif  // VALUECHECK_SRC_LEXER_TOKEN_H_

#include "src/parser/parser.h"

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "src/lexer/lexer.h"
#include "src/support/string_util.h"

namespace vc {

namespace {

bool IsTypeStart(TokenKind kind) {
  switch (kind) {
    case TokenKind::kKwVoid:
    case TokenKind::kKwInt:
    case TokenKind::kKwChar:
    case TokenKind::kKwLong:
    case TokenKind::kKwBool:
    case TokenKind::kKwUnsigned:
    case TokenKind::kKwSizeT:
    case TokenKind::kKwStruct:
    case TokenKind::kKwEnum:
    case TokenKind::kKwConst:
      return true;
    default:
      return false;
  }
}

bool IsAssignOp(TokenKind kind) {
  switch (kind) {
    case TokenKind::kAssign:
    case TokenKind::kPlusAssign:
    case TokenKind::kMinusAssign:
    case TokenKind::kStarAssign:
    case TokenKind::kSlashAssign:
    case TokenKind::kAmpAssign:
    case TokenKind::kPipeAssign:
      return true;
    default:
      return false;
  }
}

// Binding power for binary operators; higher binds tighter. 0 = not binary.
int BinaryPrecedence(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPipePipe:
      return 1;
    case TokenKind::kAmpAmp:
      return 2;
    case TokenKind::kPipe:
      return 3;
    case TokenKind::kCaret:
      return 4;
    case TokenKind::kAmp:
      return 5;
    case TokenKind::kEq:
    case TokenKind::kNe:
      return 6;
    case TokenKind::kLt:
    case TokenKind::kGt:
    case TokenKind::kLe:
    case TokenKind::kGe:
      return 7;
    case TokenKind::kShl:
    case TokenKind::kShr:
      return 8;
    case TokenKind::kPlus:
    case TokenKind::kMinus:
      return 9;
    case TokenKind::kStar:
    case TokenKind::kSlash:
    case TokenKind::kPercent:
      return 10;
    default:
      return 0;
  }
}

class Parser {
 public:
  Parser(const SourceManager& sm, FileId file, std::vector<Token> tokens, DiagnosticEngine& diags,
         int max_depth)
      : sm_(sm),
        file_(file),
        tokens_(std::move(tokens)),
        diags_(diags),
        max_depth_(max_depth > 0 ? max_depth : kDefaultParseDepth) {
    unit_.file = file;
    unit_.context = std::make_unique<AstContext>();
  }

  TranslationUnit Run() {
    while (!At(TokenKind::kEof)) {
      size_t before = pos_;
      ParseTopLevel();
      if (pos_ == before) {
        // Defensive: never loop forever on unexpected input.
        Advance();
      }
    }
    return std::move(unit_);
  }

 private:
  // --- Token cursor -------------------------------------------------------

  const Token& Peek(int ahead = 0) const {
    size_t idx = pos_ + static_cast<size_t>(ahead);
    if (idx >= tokens_.size()) {
      return tokens_.back();  // kEof sentinel
    }
    return tokens_[idx];
  }

  bool At(TokenKind kind) const { return Peek().kind == kind; }

  const Token& Advance() {
    const Token& tok = Peek();
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
    return tok;
  }

  bool Accept(TokenKind kind) {
    if (At(kind)) {
      Advance();
      return true;
    }
    return false;
  }

  const Token& Expect(TokenKind kind, const char* what) {
    if (At(kind)) {
      return Advance();
    }
    Error(Peek().loc, std::string("expected ") + what + ", found '" +
                          TokenKindName(Peek().kind) + "'");
    return Peek();
  }

  void Error(SourceLoc loc, std::string message) {
    // After a depth bail the cursor sits at EOF and every unwinding Expect
    // would fire; the single "nesting too deep" diagnostic already covers it.
    if (depth_bailed_) return;
    diags_.Error(loc, std::move(message));
  }

  // --- Recursion-depth cap -------------------------------------------------
  //
  // ParseStmt and ParseUnary are the only two self-recursive entry points
  // (statement nesting: compound/if/loops; expression nesting: unary chains
  // and parenthesized expressions via ParsePrimary → ParseExpr → ... →
  // ParseUnary). Each guarded level costs at most ~6 real frames, so the cap
  // bounds native stack use regardless of input shape. On overflow: one
  // diagnostic, jump to EOF so the recursion unwinds without emitting a
  // cascade of bogus "expected X" errors, and synthesize placeholder nodes.

  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) { ++parser_.depth_; }
    ~DepthGuard() { --parser_.depth_; }
    Parser& parser_;
  };

  bool DepthOk() {
    if (depth_ <= max_depth_) return true;
    if (!depth_bailed_) {
      diags_.Error(Peek().loc, "nesting too deep (parser limit " + std::to_string(max_depth_) +
                                   "); skipping rest of file");
      depth_bailed_ = true;
      pos_ = tokens_.size() - 1;  // park on the kEof sentinel
    }
    return false;
  }

  // Skips tokens until after the next ';' at brace depth 0, or past a '}'.
  void SkipToSync() {
    int depth = 0;
    while (!At(TokenKind::kEof)) {
      TokenKind kind = Peek().kind;
      if (kind == TokenKind::kLBrace) {
        ++depth;
      } else if (kind == TokenKind::kRBrace) {
        Advance();
        if (depth <= 1) {
          return;
        }
        --depth;
        continue;
      } else if (kind == TokenKind::kSemi && depth == 0) {
        Advance();
        return;
      }
      Advance();
    }
  }

  AstContext& ctx() { return *unit_.context; }
  TypeTable& types() { return ctx().types(); }

  // --- Scopes and lookup --------------------------------------------------

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  void Declare(VarDecl* var) {
    if (!scopes_.empty()) {
      scopes_.back()[var->name] = var;
    }
  }

  VarDecl* LookupVar(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return found->second;
      }
    }
    auto global = globals_.find(name);
    return global != globals_.end() ? global->second : nullptr;
  }

  FunctionDecl* LookupOrCreateFunction(const std::string& name, SourceLoc loc) {
    auto it = functions_.find(name);
    if (it != functions_.end()) {
      return it->second;
    }
    // Unknown callee: create an implicit external prototype so that call
    // sites of the same library function group together for peer-definition
    // pruning, and so authorship treats it as out-of-project (§4.2).
    auto* func = ctx().New<FunctionDecl>();
    func->name = name;
    func->return_type = types().IntType();
    func->is_implicit = true;
    func->loc = loc;
    functions_[name] = func;
    unit_.functions.push_back(func);
    return func;
  }

  // --- Attributes ---------------------------------------------------------

  // Consumes any run of attribute tokens; returns true if one of them spells
  // unused-intent.
  bool ConsumeAttributes() {
    bool unused_hint = false;
    while (At(TokenKind::kAttribute)) {
      if (ContainsIgnoreCase(Peek().text, "unused")) {
        unused_hint = true;
      }
      Advance();
    }
    return unused_hint;
  }

  // --- Types --------------------------------------------------------------

  // Parses the base type specifier (no pointer declarators). Returns null if
  // the cursor is not at a type.
  const Type* ParseBaseType() {
    while (Accept(TokenKind::kKwConst)) {
    }
    bool saw_unsigned = false;
    while (At(TokenKind::kKwUnsigned)) {
      Advance();
      saw_unsigned = true;
    }
    while (Accept(TokenKind::kKwConst)) {
    }
    switch (Peek().kind) {
      case TokenKind::kKwVoid:
        Advance();
        return types().VoidType();
      case TokenKind::kKwInt:
      case TokenKind::kKwLong:
      case TokenKind::kKwSizeT:
        // Collapse int/long/long long/size_t to the one integer type.
        while (At(TokenKind::kKwInt) || At(TokenKind::kKwLong) || At(TokenKind::kKwSizeT)) {
          Advance();
        }
        return types().IntType();
      case TokenKind::kKwChar:
        Advance();
        return types().CharType();
      case TokenKind::kKwBool:
        Advance();
        return types().BoolType();
      case TokenKind::kKwStruct: {
        Advance();
        const Token& name = Expect(TokenKind::kIdentifier, "struct name");
        StructDecl* decl = LookupOrForwardStruct(name.text, name.loc);
        return types().StructTypeFor(decl);
      }
      case TokenKind::kKwEnum: {
        // Enumerations are int-typed; the tag is informational.
        Advance();
        if (At(TokenKind::kIdentifier)) {
          Advance();
        }
        return types().IntType();
      }
      case TokenKind::kIdentifier: {
        auto it = typedefs_.find(Peek().text);
        if (it != typedefs_.end()) {
          Advance();
          return it->second;
        }
        if (saw_unsigned) {
          return types().IntType();
        }
        return nullptr;
      }
      default:
        if (saw_unsigned) {
          return types().IntType();  // bare "unsigned x"
        }
        return nullptr;
    }
  }

  StructDecl* LookupOrForwardStruct(const std::string& name, SourceLoc loc) {
    auto it = structs_.find(name);
    if (it != structs_.end()) {
      return it->second;
    }
    auto* decl = ctx().New<StructDecl>();
    decl->name = name;
    decl->loc = loc;
    structs_[name] = decl;
    return decl;
  }

  const Type* ParsePointers(const Type* base) {
    while (true) {
      if (Accept(TokenKind::kStar)) {
        base = types().PointerTo(base);
        while (Accept(TokenKind::kKwConst)) {
        }
        continue;
      }
      break;
    }
    return base;
  }

  // --- Top level ----------------------------------------------------------

  void ParseTopLevel() {
    ConsumeAttributes();
    if (At(TokenKind::kSemi)) {
      Advance();
      return;
    }
    if (At(TokenKind::kKwStruct) && Peek(1).kind == TokenKind::kIdentifier &&
        Peek(2).kind == TokenKind::kLBrace) {
      ParseStructDecl();
      return;
    }
    if (At(TokenKind::kKwEnum) &&
        (Peek(1).kind == TokenKind::kLBrace ||
         (Peek(1).kind == TokenKind::kIdentifier && Peek(2).kind == TokenKind::kLBrace))) {
      ParseEnumDecl();
      return;
    }
    if (At(TokenKind::kKwTypedef)) {
      ParseTypedef();
      return;
    }

    SourceLoc decl_begin = Peek().loc;
    bool is_static = Accept(TokenKind::kKwStatic);
    const Type* base = ParseBaseType();
    if (base == nullptr) {
      Error(Peek().loc, "expected declaration");
      SkipToSync();
      return;
    }
    const Type* type = ParsePointers(base);
    ConsumeAttributes();
    const Token& name = Expect(TokenKind::kIdentifier, "declarator name");

    if (At(TokenKind::kLParen)) {
      ParseFunctionRest(is_static, type, name, decl_begin);
    } else {
      ParseGlobalRest(type, name);
    }
  }

  // enum [tag] { NAME [= const] , ... } ;  Enumerators become integer
  // constants usable in expressions and case labels.
  void ParseEnumDecl() {
    Expect(TokenKind::kKwEnum, "enum");
    if (At(TokenKind::kIdentifier)) {
      Advance();  // optional tag
    }
    Expect(TokenKind::kLBrace, "'{'");
    long long next_value = 0;
    while (!At(TokenKind::kRBrace) && !At(TokenKind::kEof)) {
      const Token& name = Expect(TokenKind::kIdentifier, "enumerator name");
      if (Accept(TokenKind::kAssign)) {
        bool negate = Accept(TokenKind::kMinus);
        const Token& value = Peek();
        if (value.kind == TokenKind::kIntLiteral || value.kind == TokenKind::kCharLiteral) {
          next_value = negate ? -value.int_value : value.int_value;
          Advance();
        } else if (value.kind == TokenKind::kIdentifier &&
                   enum_constants_.count(value.text) > 0) {
          next_value = enum_constants_[value.text];
          Advance();
        } else {
          Error(value.loc, "expected constant enumerator value");
          Advance();
        }
      }
      enum_constants_[name.text] = next_value++;
      if (!Accept(TokenKind::kComma)) {
        break;
      }
    }
    Expect(TokenKind::kRBrace, "'}'");
    Expect(TokenKind::kSemi, "';'");
  }

  // typedef <type> NAME ;  and  typedef struct [tag] { ... } NAME ;
  void ParseTypedef() {
    Expect(TokenKind::kKwTypedef, "typedef");
    const Type* base = nullptr;
    if (At(TokenKind::kKwStruct) &&
        (Peek(1).kind == TokenKind::kLBrace ||
         (Peek(1).kind == TokenKind::kIdentifier && Peek(2).kind == TokenKind::kLBrace))) {
      base = ParseStructBody();
    } else {
      base = ParseBaseType();
    }
    if (base == nullptr) {
      Error(Peek().loc, "expected type after 'typedef'");
      SkipToSync();
      return;
    }
    const Type* aliased = ParsePointers(base);
    const Token& name = Expect(TokenKind::kIdentifier, "typedef name");
    if (!name.text.empty()) {
      typedefs_[name.text] = aliased;
    }
    Expect(TokenKind::kSemi, "';'");
  }

  // Parses "struct [tag] { fields }" and returns its type (used by typedef;
  // anonymous structs get a synthesized tag).
  const Type* ParseStructBody() {
    Expect(TokenKind::kKwStruct, "struct");
    std::string tag;
    SourceLoc loc = Peek().loc;
    if (At(TokenKind::kIdentifier)) {
      tag = Advance().text;
    } else {
      tag = "__anon" + std::to_string(anon_struct_counter_++);
    }
    StructDecl* decl = LookupOrForwardStruct(tag, loc);
    decl->loc = loc;
    ParseStructFields(decl);
    unit_.structs.push_back(decl);
    return types().StructTypeFor(decl);
  }

  void ParseStructDecl() {
    Expect(TokenKind::kKwStruct, "struct");
    const Token& name = Expect(TokenKind::kIdentifier, "struct name");
    StructDecl* decl = LookupOrForwardStruct(name.text, name.loc);
    decl->loc = name.loc;
    ParseStructFields(decl);
    Expect(TokenKind::kSemi, "';'");
    unit_.structs.push_back(decl);
  }

  // Parses "{ fields }" into `decl` (the closing brace included).
  void ParseStructFields(StructDecl* decl) {
    Expect(TokenKind::kLBrace, "'{'");
    while (!At(TokenKind::kRBrace) && !At(TokenKind::kEof)) {
      const Type* base = ParseBaseType();
      if (base == nullptr) {
        Error(Peek().loc, "expected field type");
        SkipToSync();
        return;
      }
      do {
        const Type* field_type = ParsePointers(base);
        const Token& field_name = Expect(TokenKind::kIdentifier, "field name");
        // Fixed-size array fields decay to "a field" for our purposes.
        if (Accept(TokenKind::kLBracket)) {
          if (!At(TokenKind::kRBracket)) {
            Advance();
          }
          Expect(TokenKind::kRBracket, "']'");
          field_type = types().PointerTo(field_type);
        }
        auto* field = ctx().New<FieldDecl>();
        field->name = field_name.text;
        field->type = field_type;
        field->index = static_cast<int>(decl->fields.size());
        field->loc = field_name.loc;
        decl->fields.push_back(field);
      } while (Accept(TokenKind::kComma));
      Expect(TokenKind::kSemi, "';'");
    }
    Expect(TokenKind::kRBrace, "'}'");
  }

  void ParseGlobalRest(const Type* type, const Token& name) {
    while (true) {
      auto* var = ctx().New<VarDecl>();
      var->name = name.text;
      var->type = type;
      var->loc = name.loc;
      var->is_global = true;
      globals_[var->name] = var;
      unit_.globals.push_back(var);
      if (Accept(TokenKind::kLBracket)) {
        if (!At(TokenKind::kRBracket)) {
          Advance();
        }
        Expect(TokenKind::kRBracket, "']'");
      }
      if (Accept(TokenKind::kAssign)) {
        ParseAssignmentExpr();  // initializer value is not analyzed for globals
      }
      if (!Accept(TokenKind::kComma)) {
        break;
      }
      ParsePointers(type);
      Expect(TokenKind::kIdentifier, "declarator name");
    }
    Expect(TokenKind::kSemi, "';'");
  }

  void ParseFunctionRest(bool is_static, const Type* return_type, const Token& name,
                         SourceLoc decl_begin) {
    FunctionDecl* func;
    auto existing = functions_.find(name.text);
    if (existing != functions_.end()) {
      func = existing->second;
      func->is_implicit = false;
    } else {
      func = ctx().New<FunctionDecl>();
      func->name = name.text;
      functions_[name.text] = func;
      unit_.functions.push_back(func);
    }
    func->return_type = return_type;
    func->is_static = is_static;
    func->loc = name.loc;
    func->range.begin = decl_begin;

    // Parameters.
    std::vector<VarDecl*> params;
    Expect(TokenKind::kLParen, "'('");
    if (At(TokenKind::kKwVoid) && Peek(1).kind == TokenKind::kRParen) {
      Advance();
    }
    while (!At(TokenKind::kRParen) && !At(TokenKind::kEof)) {
      bool hint = ConsumeAttributes();
      const Type* base = ParseBaseType();
      if (base == nullptr) {
        Error(Peek().loc, "expected parameter type");
        break;
      }
      const Type* param_type = ParsePointers(base);
      std::string param_name;
      SourceLoc param_loc = Peek().loc;
      if (At(TokenKind::kIdentifier)) {
        const Token& tok = Advance();
        param_name = tok.text;
        param_loc = tok.loc;
      }
      hint = ConsumeAttributes() || hint;
      if (Accept(TokenKind::kLBracket)) {
        if (!At(TokenKind::kRBracket)) {
          Advance();
        }
        Expect(TokenKind::kRBracket, "']'");
        param_type = types().PointerTo(param_type);
      }
      auto* param = ctx().New<VarDecl>();
      param->name = param_name.empty()
                        ? "_arg" + std::to_string(params.size())
                        : param_name;
      param->type = param_type;
      param->loc = param_loc;
      param->is_param = true;
      param->param_index = static_cast<int>(params.size());
      param->has_unused_attr = hint;
      param->owner = func;
      params.push_back(param);
      if (!Accept(TokenKind::kComma)) {
        break;
      }
    }
    Expect(TokenKind::kRParen, "')'");

    if (Accept(TokenKind::kSemi)) {
      // Prototype: keep parameter list if this is the first sighting.
      if (func->params.empty()) {
        func->params = std::move(params);
      }
      func->range.end = Peek().loc;
      return;
    }

    func->params = std::move(params);
    current_function_ = func;
    PushScope();
    for (VarDecl* param : func->params) {
      Declare(param);
    }
    func->body = ParseCompound();
    PopScope();
    current_function_ = nullptr;
    func->range.end = last_consumed_loc_;
  }

  // --- Statements ---------------------------------------------------------

  CompoundStmt* ParseCompound() {
    auto* compound = ctx().New<CompoundStmt>();
    compound->loc = Peek().loc;
    Expect(TokenKind::kLBrace, "'{'");
    PushScope();
    while (!At(TokenKind::kRBrace) && !At(TokenKind::kEof)) {
      size_t before = pos_;
      Stmt* stmt = ParseStmt();
      if (stmt != nullptr) {
        compound->body.push_back(stmt);
      }
      if (pos_ == before) {
        Advance();
      }
    }
    last_consumed_loc_ = Peek().loc;
    Expect(TokenKind::kRBrace, "'}'");
    PopScope();
    return compound;
  }

  Stmt* ParseStmt() {
    DepthGuard depth(*this);
    if (!DepthOk()) {
      return nullptr;  // callers already tolerate null statements
    }
    switch (Peek().kind) {
      case TokenKind::kLBrace:
        return ParseCompound();
      case TokenKind::kKwIf:
        return ParseIf();
      case TokenKind::kKwWhile:
        return ParseWhile();
      case TokenKind::kKwDo:
        return ParseDoWhile();
      case TokenKind::kKwFor:
        return ParseFor();
      case TokenKind::kKwSwitch:
        return ParseSwitch();
      case TokenKind::kKwReturn:
        return ParseReturn();
      case TokenKind::kKwBreak: {
        auto* stmt = ctx().New<BreakStmt>();
        stmt->loc = Advance().loc;
        Expect(TokenKind::kSemi, "';'");
        return stmt;
      }
      case TokenKind::kKwContinue: {
        auto* stmt = ctx().New<ContinueStmt>();
        stmt->loc = Advance().loc;
        Expect(TokenKind::kSemi, "';'");
        return stmt;
      }
      case TokenKind::kSemi: {
        auto* stmt = ctx().New<EmptyStmt>();
        stmt->loc = Advance().loc;
        return stmt;
      }
      default:
        break;
    }
    if (IsTypeStart(Peek().kind) || At(TokenKind::kKwStatic) || At(TokenKind::kAttribute) ||
        (At(TokenKind::kIdentifier) && typedefs_.count(Peek().text) > 0 &&
         Peek(1).kind != TokenKind::kLParen)) {
      return ParseDeclStmt();
    }
    // Expression statement.
    auto* stmt = ctx().New<ExprStmt>();
    stmt->loc = Peek().loc;
    stmt->expr = ParseExpr();
    Expect(TokenKind::kSemi, "';'");
    return stmt;
  }

  Stmt* ParseDeclStmt() {
    bool hint = ConsumeAttributes();
    Accept(TokenKind::kKwStatic);
    const Type* base = ParseBaseType();
    if (base == nullptr) {
      Error(Peek().loc, "expected type in declaration");
      SkipToSync();
      return nullptr;
    }

    // A single DeclStmt per declarator; comma lists expand to a compound
    // wrapper so each variable keeps its own init expression and location.
    std::vector<Stmt*> decls;
    do {
      const Type* var_type = ParsePointers(base);
      bool var_hint = ConsumeAttributes() || hint;
      const Token& name = Expect(TokenKind::kIdentifier, "variable name");
      var_hint = ConsumeAttributes() || var_hint;
      if (Accept(TokenKind::kLBracket)) {
        if (!At(TokenKind::kRBracket)) {
          ParseExpr();
        }
        Expect(TokenKind::kRBracket, "']'");
        var_type = types().PointerTo(var_type);
      }
      auto* var = ctx().New<VarDecl>();
      var->name = name.text;
      var->type = var_type;
      var->loc = name.loc;
      var->has_unused_attr = var_hint;
      var->owner = current_function_;
      Declare(var);

      auto* stmt = ctx().New<DeclStmt>();
      stmt->loc = name.loc;
      stmt->var = var;
      if (Accept(TokenKind::kAssign)) {
        stmt->init = ParseAssignmentExpr();
      }
      decls.push_back(stmt);
    } while (Accept(TokenKind::kComma));
    Expect(TokenKind::kSemi, "';'");

    if (decls.size() == 1) {
      return decls[0];
    }
    auto* compound = ctx().New<CompoundStmt>();
    compound->loc = decls[0]->loc;
    compound->body = std::move(decls);
    return compound;
  }

  Stmt* ParseIf() {
    auto* stmt = ctx().New<IfStmt>();
    stmt->loc = Advance().loc;  // 'if'
    Expect(TokenKind::kLParen, "'('");
    stmt->cond = ParseExpr();
    Expect(TokenKind::kRParen, "')'");
    stmt->then_stmt = ParseStmt();
    if (Accept(TokenKind::kKwElse)) {
      stmt->else_stmt = ParseStmt();
    }
    return stmt;
  }

  Stmt* ParseWhile() {
    auto* stmt = ctx().New<WhileStmt>();
    stmt->loc = Advance().loc;  // 'while'
    Expect(TokenKind::kLParen, "'('");
    stmt->cond = ParseExpr();
    Expect(TokenKind::kRParen, "')'");
    stmt->body = ParseStmt();
    return stmt;
  }

  Stmt* ParseDoWhile() {
    auto* stmt = ctx().New<DoWhileStmt>();
    stmt->loc = Advance().loc;  // 'do'
    stmt->body = ParseStmt();
    Expect(TokenKind::kKwWhile, "'while'");
    Expect(TokenKind::kLParen, "'('");
    stmt->cond = ParseExpr();
    Expect(TokenKind::kRParen, "')'");
    Expect(TokenKind::kSemi, "';'");
    return stmt;
  }

  Stmt* ParseSwitch() {
    auto* stmt = ctx().New<SwitchStmt>();
    stmt->loc = Advance().loc;  // 'switch'
    Expect(TokenKind::kLParen, "'('");
    stmt->cond = ParseExpr();
    Expect(TokenKind::kRParen, "')'");
    Expect(TokenKind::kLBrace, "'{'");
    PushScope();
    while (!At(TokenKind::kRBrace) && !At(TokenKind::kEof)) {
      SwitchCase arm;
      if (At(TokenKind::kKwCase)) {
        arm.loc = Advance().loc;
        // Case labels are integer or character constants (optionally negated).
        bool negate = Accept(TokenKind::kMinus);
        const Token& value = Peek();
        if (value.kind == TokenKind::kIntLiteral || value.kind == TokenKind::kCharLiteral) {
          arm.value = negate ? -value.int_value : value.int_value;
          Advance();
        } else if (value.kind == TokenKind::kIdentifier &&
                   enum_constants_.count(value.text) > 0) {
          arm.value = negate ? -enum_constants_[value.text] : enum_constants_[value.text];
          Advance();
        } else {
          Error(value.loc, "expected constant in case label");
          Advance();
        }
      } else if (At(TokenKind::kKwDefault)) {
        arm.loc = Advance().loc;
        arm.is_default = true;
      } else {
        Error(Peek().loc, "expected 'case' or 'default' in switch body");
        SkipToSync();
        break;
      }
      Expect(TokenKind::kColon, "':'");
      while (!At(TokenKind::kKwCase) && !At(TokenKind::kKwDefault) &&
             !At(TokenKind::kRBrace) && !At(TokenKind::kEof)) {
        size_t before = pos_;
        Stmt* child = ParseStmt();
        if (child != nullptr) {
          arm.body.push_back(child);
        }
        if (pos_ == before) {
          Advance();
        }
      }
      stmt->cases.push_back(std::move(arm));
    }
    PopScope();
    Expect(TokenKind::kRBrace, "'}'");
    return stmt;
  }

  Stmt* ParseFor() {
    auto* stmt = ctx().New<ForStmt>();
    stmt->loc = Advance().loc;  // 'for'
    Expect(TokenKind::kLParen, "'('");
    PushScope();
    if (At(TokenKind::kSemi)) {
      auto* empty = ctx().New<EmptyStmt>();
      empty->loc = Advance().loc;
      stmt->init = empty;
    } else if (IsTypeStart(Peek().kind) ||
               (At(TokenKind::kIdentifier) && typedefs_.count(Peek().text) > 0)) {
      stmt->init = ParseDeclStmt();  // consumes the ';'
    } else {
      auto* init = ctx().New<ExprStmt>();
      init->loc = Peek().loc;
      init->expr = ParseExpr();
      Expect(TokenKind::kSemi, "';'");
      stmt->init = init;
    }
    if (!At(TokenKind::kSemi)) {
      stmt->cond = ParseExpr();
    }
    Expect(TokenKind::kSemi, "';'");
    if (!At(TokenKind::kRParen)) {
      stmt->step = ParseExpr();
    }
    Expect(TokenKind::kRParen, "')'");
    stmt->body = ParseStmt();
    PopScope();
    return stmt;
  }

  Stmt* ParseReturn() {
    auto* stmt = ctx().New<ReturnStmt>();
    stmt->loc = Advance().loc;  // 'return'
    if (!At(TokenKind::kSemi)) {
      stmt->value = ParseExpr();
    }
    Expect(TokenKind::kSemi, "';'");
    return stmt;
  }

  // --- Expressions --------------------------------------------------------

  Expr* ParseExpr() { return ParseAssignmentExpr(); }

  Expr* ParseAssignmentExpr() {
    Expr* lhs = ParseConditional();
    if (IsAssignOp(Peek().kind)) {
      auto* assign = ctx().New<AssignExpr>();
      assign->loc = Peek().loc;
      assign->op = Advance().kind;
      assign->lhs = lhs;
      assign->rhs = ParseAssignmentExpr();  // right associative
      assign->type = lhs != nullptr ? lhs->type : nullptr;
      return assign;
    }
    return lhs;
  }

  Expr* ParseConditional() {
    Expr* cond = ParseBinary(1);
    if (Accept(TokenKind::kQuestion)) {
      auto* expr = ctx().New<CondExpr>();
      expr->loc = cond->loc;
      expr->cond = cond;
      expr->then_expr = ParseExpr();
      Expect(TokenKind::kColon, "':'");
      expr->else_expr = ParseConditional();
      expr->type = expr->then_expr->type;
      return expr;
    }
    return cond;
  }

  Expr* ParseBinary(int min_prec) {
    Expr* lhs = ParseUnary();
    while (true) {
      int prec = BinaryPrecedence(Peek().kind);
      if (prec < min_prec || prec == 0) {
        return lhs;
      }
      auto* bin = ctx().New<BinaryExpr>();
      bin->loc = Peek().loc;
      bin->op = Advance().kind;
      bin->lhs = lhs;
      bin->rhs = ParseBinary(prec + 1);
      // Pointer arithmetic keeps the pointer type; everything else is int-ish.
      if (lhs != nullptr && lhs->type != nullptr && lhs->type->IsPointer() &&
          (bin->op == TokenKind::kPlus || bin->op == TokenKind::kMinus)) {
        bin->type = lhs->type;
      } else {
        bin->type = types().IntType();
      }
      lhs = bin;
    }
  }

  Expr* ParseUnary() {
    DepthGuard depth(*this);
    SourceLoc loc = Peek().loc;
    if (!DepthOk()) {
      // Expression parsing never returns null; hand back a placeholder
      // literal the same way ParsePrimary's error path does.
      auto* lit = ctx().New<IntLitExpr>();
      lit->loc = loc;
      lit->type = types().IntType();
      return lit;
    }
    switch (Peek().kind) {
      case TokenKind::kPlusPlus:
      case TokenKind::kMinusMinus: {
        auto* expr = ctx().New<UnaryExpr>();
        expr->loc = loc;
        expr->op = Advance().kind;
        expr->operand = ParseUnary();
        expr->type = expr->operand->type;
        return expr;
      }
      case TokenKind::kMinus:
      case TokenKind::kBang:
      case TokenKind::kTilde: {
        auto* expr = ctx().New<UnaryExpr>();
        expr->loc = loc;
        expr->op = Advance().kind;
        expr->operand = ParseUnary();
        expr->type = types().IntType();
        return expr;
      }
      case TokenKind::kStar: {
        auto* expr = ctx().New<UnaryExpr>();
        expr->loc = loc;
        expr->op = Advance().kind;
        expr->operand = ParseUnary();
        const Type* op_type = expr->operand->type;
        expr->type = (op_type != nullptr && op_type->IsPointer()) ? op_type->pointee()
                                                                  : types().IntType();
        return expr;
      }
      case TokenKind::kAmp: {
        auto* expr = ctx().New<UnaryExpr>();
        expr->loc = loc;
        expr->op = Advance().kind;
        expr->operand = ParseUnary();
        expr->type = types().PointerTo(expr->operand->type != nullptr ? expr->operand->type
                                                                      : types().IntType());
        return expr;
      }
      case TokenKind::kKwSizeof: {
        auto* expr = ctx().New<SizeofExpr>();
        expr->loc = Advance().loc;
        if (Accept(TokenKind::kLParen)) {
          if (IsTypeStart(Peek().kind)) {
            expr->arg_type = ParsePointers(ParseBaseType());
          } else {
            expr->arg_expr = ParseExpr();
          }
          Expect(TokenKind::kRParen, "')'");
        } else {
          expr->arg_expr = ParseUnary();
        }
        expr->type = types().IntType();
        return expr;
      }
      case TokenKind::kLParen:
        // Cast or parenthesized expression: a type token right after '('
        // means a cast.
        if (IsTypeStart(Peek(1).kind)) {
          Advance();  // '('
          const Type* base = ParseBaseType();
          const Type* target = ParsePointers(base);
          Expect(TokenKind::kRParen, "')'");
          auto* cast = ctx().New<CastExpr>();
          cast->loc = loc;
          cast->target = target;
          cast->is_void_cast = target != nullptr && target->IsVoid();
          cast->operand = ParseUnary();
          cast->type = target;
          return cast;
        }
        break;
      default:
        break;
    }
    return ParsePostfix();
  }

  Expr* ParsePostfix() {
    Expr* expr = ParsePrimary();
    while (true) {
      SourceLoc loc = Peek().loc;
      switch (Peek().kind) {
        case TokenKind::kLParen: {
          Advance();
          auto* call = ctx().New<CallExpr>();
          call->loc = expr != nullptr ? expr->loc : loc;
          call->callee = expr;
          while (!At(TokenKind::kRParen) && !At(TokenKind::kEof)) {
            call->args.push_back(ParseAssignmentExpr());
            if (!Accept(TokenKind::kComma)) {
              break;
            }
          }
          Expect(TokenKind::kRParen, "')'");
          if (expr != nullptr && expr->kind == ExprKind::kIdent) {
            auto* ident = static_cast<IdentExpr*>(expr);
            if (ident->func != nullptr) {
              call->resolved = ident->func;
            } else if (ident->var == nullptr) {
              call->resolved = LookupOrCreateFunction(ident->name, ident->loc);
              ident->func = call->resolved;
            }
          }
          call->type = call->resolved != nullptr ? call->resolved->return_type
                                                 : types().IntType();
          expr = call;
          break;
        }
        case TokenKind::kLBracket: {
          Advance();
          auto* index = ctx().New<IndexExpr>();
          index->loc = loc;
          index->base = expr;
          index->index = ParseExpr();
          Expect(TokenKind::kRBracket, "']'");
          const Type* base_type = expr != nullptr ? expr->type : nullptr;
          index->type = (base_type != nullptr && base_type->IsPointer()) ? base_type->pointee()
                                                                         : types().IntType();
          expr = index;
          break;
        }
        case TokenKind::kDot:
        case TokenKind::kArrow: {
          bool arrow = Peek().kind == TokenKind::kArrow;
          Advance();
          auto* member = ctx().New<MemberExpr>();
          member->loc = loc;
          member->base = expr;
          member->is_arrow = arrow;
          member->member = Expect(TokenKind::kIdentifier, "member name").text;
          member->field = ResolveField(expr, arrow, member->member);
          member->type = member->field != nullptr ? member->field->type : types().IntType();
          expr = member;
          break;
        }
        case TokenKind::kPlusPlus:
        case TokenKind::kMinusMinus: {
          auto* unary = ctx().New<UnaryExpr>();
          unary->loc = loc;
          unary->op = Advance().kind;
          unary->is_postfix = true;
          unary->operand = expr;
          unary->type = expr != nullptr ? expr->type : nullptr;
          expr = unary;
          break;
        }
        default:
          return expr;
      }
    }
  }

  const FieldDecl* ResolveField(const Expr* base, bool arrow, const std::string& member) {
    if (base == nullptr || base->type == nullptr) {
      return nullptr;
    }
    const Type* record = base->type;
    if (arrow) {
      if (!record->IsPointer()) {
        return nullptr;
      }
      record = record->pointee();
    }
    if (record == nullptr || !record->IsStruct() || record->struct_decl() == nullptr) {
      return nullptr;
    }
    return record->struct_decl()->FindField(member);
  }

  Expr* ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kIntLiteral: {
        auto* lit = ctx().New<IntLitExpr>();
        lit->loc = tok.loc;
        lit->value = tok.int_value;
        lit->type = types().IntType();
        Advance();
        return lit;
      }
      case TokenKind::kCharLiteral: {
        auto* lit = ctx().New<CharLitExpr>();
        lit->loc = tok.loc;
        lit->value = tok.int_value;
        lit->type = types().CharType();
        Advance();
        return lit;
      }
      case TokenKind::kStringLiteral: {
        auto* lit = ctx().New<StrLitExpr>();
        lit->loc = tok.loc;
        lit->value = tok.text;
        lit->type = types().PointerTo(types().CharType());
        Advance();
        return lit;
      }
      case TokenKind::kKwTrue:
      case TokenKind::kKwFalse: {
        auto* lit = ctx().New<BoolLitExpr>();
        lit->loc = tok.loc;
        lit->value = tok.kind == TokenKind::kKwTrue;
        lit->type = types().BoolType();
        Advance();
        return lit;
      }
      case TokenKind::kKwNull: {
        auto* lit = ctx().New<NullLitExpr>();
        lit->loc = tok.loc;
        lit->type = types().PointerTo(types().VoidType());
        Advance();
        return lit;
      }
      case TokenKind::kIdentifier: {
        // Enumerator constants are compile-time integers (locals shadow them).
        if (enum_constants_.count(tok.text) > 0 && LookupVar(tok.text) == nullptr) {
          auto* lit = ctx().New<IntLitExpr>();
          lit->loc = tok.loc;
          lit->value = enum_constants_[tok.text];
          lit->type = types().IntType();
          Advance();
          return lit;
        }
        auto* ident = ctx().New<IdentExpr>();
        ident->loc = tok.loc;
        ident->name = tok.text;
        Advance();
        if (VarDecl* var = LookupVar(ident->name)) {
          ident->var = var;
          ident->type = var->type;
        } else {
          auto func_it = functions_.find(ident->name);
          if (func_it != functions_.end()) {
            ident->func = func_it->second;
            ident->type = types().PointerTo(types().VoidType());
          } else if (!At(TokenKind::kLParen)) {
            // Not a call: unknown variable. Report once, then synthesize a
            // declaration so the rest of the function still parses/analyzes.
            Error(ident->loc, "use of undeclared identifier '" + ident->name + "'");
            auto* var = ctx().New<VarDecl>();
            var->name = ident->name;
            var->type = types().IntType();
            var->loc = ident->loc;
            var->owner = current_function_;
            Declare(var);
            ident->var = var;
            ident->type = var->type;
          }
          // Unknown identifier followed by '(' becomes an implicit external
          // function in ParsePostfix.
        }
        return ident;
      }
      case TokenKind::kLParen: {
        Advance();
        Expr* inner = ParseExpr();
        Expect(TokenKind::kRParen, "')'");
        return inner;
      }
      default:
        Error(tok.loc, std::string("expected expression, found '") + TokenKindName(tok.kind) +
                           "'");
        Advance();
        auto* lit = ctx().New<IntLitExpr>();
        lit->loc = tok.loc;
        lit->type = types().IntType();
        return lit;
    }
  }

  const SourceManager& sm_;
  FileId file_;
  std::vector<Token> tokens_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  SourceLoc last_consumed_loc_;
  int depth_ = 0;
  int max_depth_ = kDefaultParseDepth;
  bool depth_bailed_ = false;

  TranslationUnit unit_;
  std::map<std::string, StructDecl*> structs_;
  std::map<std::string, const Type*> typedefs_;
  std::map<std::string, long long> enum_constants_;
  std::map<std::string, FunctionDecl*> functions_;
  std::map<std::string, VarDecl*> globals_;
  std::vector<std::map<std::string, VarDecl*>> scopes_;
  FunctionDecl* current_function_ = nullptr;
  int anon_struct_counter_ = 0;
};

}  // namespace

TranslationUnit ParseFile(const SourceManager& sm, FileId file, const Config& config,
                          DiagnosticEngine& diags, int max_depth) {
  PreprocessResult pp = Preprocess(sm.Content(file), config);
  for (const std::string& error : pp.errors) {
    diags.Error({file, 1, 1}, "preprocessor: " + error);
  }
  std::vector<Token> tokens = Lex(sm, file, pp, diags);
  Parser parser(sm, file, std::move(tokens), diags, max_depth);
  return parser.Run();
}

TranslationUnit ParseString(SourceManager& sm, const std::string& path, const std::string& code,
                            DiagnosticEngine& diags) {
  FileId file = sm.AddFile(path, code);
  return ParseFile(sm, file, Config(), diags);
}

}  // namespace vc

// Recursive-descent parser for Mini-C. Produces a fully resolved
// TranslationUnit: identifier expressions are bound to their VarDecl /
// FunctionDecl, member expressions to FieldDecls, and every expression carries
// a best-effort type. Parse errors are reported to the DiagnosticEngine and
// recovered at statement boundaries so one bad construct does not sink a file.

#ifndef VALUECHECK_SRC_PARSER_PARSER_H_
#define VALUECHECK_SRC_PARSER_PARSER_H_

#include <vector>

#include "src/ast/ast.h"
#include "src/lexer/preprocessor.h"
#include "src/support/diagnostics.h"
#include "src/support/source_manager.h"

namespace vc {

// Preprocesses, lexes, and parses one file. The returned unit owns its AST.
TranslationUnit ParseFile(const SourceManager& sm, FileId file, const Config& config,
                          DiagnosticEngine& diags);

// Convenience for tests: parses from a bare string (registers it in `sm`).
TranslationUnit ParseString(SourceManager& sm, const std::string& path, const std::string& code,
                            DiagnosticEngine& diags);

}  // namespace vc

#endif  // VALUECHECK_SRC_PARSER_PARSER_H_

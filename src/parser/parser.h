// Recursive-descent parser for Mini-C. Produces a fully resolved
// TranslationUnit: identifier expressions are bound to their VarDecl /
// FunctionDecl, member expressions to FieldDecls, and every expression carries
// a best-effort type. Parse errors are reported to the DiagnosticEngine and
// recovered at statement boundaries so one bad construct does not sink a file.

#ifndef VALUECHECK_SRC_PARSER_PARSER_H_
#define VALUECHECK_SRC_PARSER_PARSER_H_

#include <vector>

#include "src/ast/ast.h"
#include "src/lexer/preprocessor.h"
#include "src/support/diagnostics.h"
#include "src/support/source_manager.h"

namespace vc {

// Recursion-depth cap for statement/expression nesting. Each guarded level
// costs a handful of real stack frames, so 512 keeps the worst case well
// under typical 8 MiB stacks even with sanitizer-inflated frames. Exceeding
// the cap emits one diagnostic and skips the rest of the file instead of
// overflowing the stack.
inline constexpr int kDefaultParseDepth = 512;

// Preprocesses, lexes, and parses one file. The returned unit owns its AST.
// `max_depth` overrides the nesting cap (0 = kDefaultParseDepth).
TranslationUnit ParseFile(const SourceManager& sm, FileId file, const Config& config,
                          DiagnosticEngine& diags, int max_depth = 0);

// Convenience for tests: parses from a bare string (registers it in `sm`).
TranslationUnit ParseString(SourceManager& sm, const std::string& path, const std::string& code,
                            DiagnosticEngine& diags);

}  // namespace vc

#endif  // VALUECHECK_SRC_PARSER_PARSER_H_

#include "src/familiarity/ea_model.h"

#include <cmath>

#include "src/support/string_util.h"

namespace vc {

CommitKind ClassifyCommitMessage(const std::string& message) {
  if (ContainsIgnoreCase(message, "fix") || ContainsIgnoreCase(message, "bug")) {
    return CommitKind::kBugFix;
  }
  if (ContainsIgnoreCase(message, "refactor") || ContainsIgnoreCase(message, "cleanup") ||
      ContainsIgnoreCase(message, "clean up")) {
    return CommitKind::kRefactor;
  }
  if (ContainsIgnoreCase(message, "add") || ContainsIgnoreCase(message, "implement") ||
      ContainsIgnoreCase(message, "feature") || ContainsIgnoreCase(message, "support")) {
    return CommitKind::kFeature;
  }
  return CommitKind::kOther;
}

double EaScoreFor(const Repository& repo, AuthorId author, const std::string& path,
                  const EaWeights& weights) {
  double own = 0.0;
  int others = 0;
  for (CommitId commit_id : repo.LogOf(path)) {
    const Commit& commit = repo.GetCommit(commit_id);
    if (commit.author != author) {
      ++others;
      continue;
    }
    switch (ClassifyCommitMessage(commit.message)) {
      case CommitKind::kBugFix:
        own += weights.bug_fix;
        break;
      case CommitKind::kRefactor:
        own += weights.refactor;
        break;
      case CommitKind::kFeature:
        own += weights.feature;
        break;
      case CommitKind::kOther:
        own += weights.other;
        break;
    }
  }
  return own - 0.5 * std::log(1.0 + static_cast<double>(others));
}

}  // namespace vc

// Expertise-Atlas-style (EA) familiarity model — the alternative the paper
// discusses in §9.2: instead of self-rating-calibrated DOK, it weights a
// developer's commits to a file by commit type inferred from the message
// (bug fix / refactoring / new functionality), requiring no developer input.

#ifndef VALUECHECK_SRC_FAMILIARITY_EA_MODEL_H_
#define VALUECHECK_SRC_FAMILIARITY_EA_MODEL_H_

#include <string>

#include "src/vcs/repository.h"

namespace vc {

enum class CommitKind {
  kBugFix,
  kRefactor,
  kFeature,
  kOther,
};

// Classifies a commit message by keyword ("fix"/"bug" -> bug fix,
// "refactor"/"cleanup" -> refactor, "add"/"implement"/"feature" -> feature).
CommitKind ClassifyCommitMessage(const std::string& message);

struct EaWeights {
  double bug_fix = 1.0;    // fixing code demonstrates the deepest knowledge
  double refactor = 0.8;
  double feature = 0.6;
  double other = 0.3;
};

// Expertise of `author` on `path`: sum of type-weighted commits by the author,
// damped by ln(1 + others' commits) like DOK's AC term so that heavily shared
// files score lower for everyone.
double EaScoreFor(const Repository& repo, AuthorId author, const std::string& path,
                  const EaWeights& weights = EaWeights());

}  // namespace vc

#endif  // VALUECHECK_SRC_FAMILIARITY_EA_MODEL_H_

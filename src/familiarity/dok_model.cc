#include "src/familiarity/dok_model.h"

#include <cmath>

#include "src/support/regression.h"

namespace vc {

DokFeatures ComputeDokFeatures(const Repository& repo, AuthorId author,
                               const std::string& path) {
  DokFeatures features;
  std::vector<CommitId> log = repo.LogOf(path);
  for (size_t i = 0; i < log.size(); ++i) {
    const Commit& commit = repo.GetCommit(log[i]);
    if (i == 0 && commit.author == author) {
      features.first_authorship = true;
    }
    if (commit.author == author) {
      ++features.deliveries;
    } else {
      ++features.acceptances;
    }
  }
  return features;
}

double DokScore(const DokFeatures& features, const DokWeights& weights) {
  return weights.a0 + weights.fa * (features.first_authorship ? 1.0 : 0.0) +
         weights.dl * static_cast<double>(features.deliveries) -
         weights.ac * std::log(1.0 + static_cast<double>(features.acceptances));
}

double DokScoreFor(const Repository& repo, AuthorId author, const std::string& path,
                   const DokWeights& weights) {
  return DokScore(ComputeDokFeatures(repo, author, path), weights);
}

std::optional<DokWeights> FitDokWeights(const std::vector<RatingSample>& samples) {
  std::vector<Observation> data;
  data.reserve(samples.size());
  for (const RatingSample& sample : samples) {
    Observation obs;
    obs.x = {sample.features.first_authorship ? 1.0 : 0.0,
             static_cast<double>(sample.features.deliveries),
             std::log(1.0 + static_cast<double>(sample.features.acceptances))};
    obs.y = sample.rating;
    data.push_back(std::move(obs));
  }
  std::optional<RegressionResult> fit = FitLeastSquares(data);
  if (!fit.has_value()) {
    return std::nullopt;
  }
  DokWeights weights;
  weights.a0 = fit->coefficients[0];
  weights.fa = fit->coefficients[1];
  weights.dl = fit->coefficients[2];
  // The regression fits "+ b3 * ln(1+AC)"; the model convention subtracts, so
  // flip the sign to report a positive a_AC for a negative fitted slope.
  weights.ac = -fit->coefficients[3];
  return weights;
}

}  // namespace vc

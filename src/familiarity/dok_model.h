// Degree-of-Knowledge (DOK) code-familiarity model (Fritz et al.), as used by
// ValueCheck's ranking stage (paper §6):
//
//   DOK = a0 + a_FA * FA + a_DL * DL - a_AC * ln(1 + AC)
//
//   FA — first authorship: 1 if the developer created the file;
//   DL — deliveries: number of commits by the developer to the file;
//   AC — acceptances: number of commits to the file by other developers.
//
// Weights default to the paper's fitted values (a0 = 3.1, a_FA = 1.2,
// a_DL = 0.2, a_AC = 0.5). FitDokWeights reproduces the fitting procedure:
// least squares over sampled (features, self-rating) pairs.

#ifndef VALUECHECK_SRC_FAMILIARITY_DOK_MODEL_H_
#define VALUECHECK_SRC_FAMILIARITY_DOK_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "src/vcs/repository.h"

namespace vc {

struct DokWeights {
  double a0 = 3.1;
  double fa = 1.2;
  double dl = 0.2;
  double ac = 0.5;

  // Ablation helpers (Table 6's w/o FA / w/o DL / w/o AC groups).
  DokWeights WithoutFa() const { return {a0, 0.0, dl, ac}; }
  DokWeights WithoutDl() const { return {a0, fa, 0.0, ac}; }
  DokWeights WithoutAc() const { return {a0, fa, dl, 0.0}; }
};

struct DokFeatures {
  bool first_authorship = false;  // FA
  int deliveries = 0;             // DL
  int acceptances = 0;            // AC
};

// Extracts FA/DL/AC for (author, file) from the repository's commit log.
// Commit counts are used rather than line counts, as in the paper (§6).
DokFeatures ComputeDokFeatures(const Repository& repo, AuthorId author, const std::string& path);

// Evaluates the linear model.
double DokScore(const DokFeatures& features, const DokWeights& weights = DokWeights());

// Convenience: features + score in one call.
double DokScoreFor(const Repository& repo, AuthorId author, const std::string& path,
                   const DokWeights& weights = DokWeights());

// One sampled line for weight fitting: the developer's self-rated familiarity
// (1-5) plus the features of (line author, file).
struct RatingSample {
  DokFeatures features;
  double rating = 0.0;
};

// Least-squares fit of the four weights. Returns nullopt when the sample is
// degenerate. Note the AC weight is returned positive (the model subtracts).
std::optional<DokWeights> FitDokWeights(const std::vector<RatingSample>& samples);

}  // namespace vc

#endif  // VALUECHECK_SRC_FAMILIARITY_DOK_MODEL_H_

// Coverity-Scan-style baseline (§8.4.4): two checkers.
//
//   UNUSED_VALUE    — flow-sensitive dead stores on whole local variables
//                     (cursor-shaped stores are recognized and skipped; the
//                     commercial tool models pointer-walk idioms).
//   CHECKED_RETURN  — a call site ignoring a return value is flagged when the
//                     callee has at least `min_call_sites` call sites and at
//                     least `checked_fraction` of them use the result. A
//                     function called only once can never be flagged — the
//                     paper's Fig. 8 miss.
//
// No authorship and no intent pruning: unused definitions intentionally left
// in code surface as findings (the source of Coverity-unused's 62% FP rate).

#ifndef VALUECHECK_SRC_BASELINES_COVERITY_UNUSED_H_
#define VALUECHECK_SRC_BASELINES_COVERITY_UNUSED_H_

#include "src/baselines/bug_finder.h"

namespace vc {

class CoverityUnused : public BugFinder {
 public:
  std::string Name() const override { return "Coverity-unused"; }
  BaselineResult Find(const Project& project, const ProjectTraits& traits) const override;

  // CHECKED_RETURN thresholds.
  static constexpr int kMinCallSites = 2;
  static constexpr double kCheckedFraction = 0.8;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_BASELINES_COVERITY_UNUSED_H_

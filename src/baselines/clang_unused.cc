#include "src/baselines/clang_unused.h"

#include <map>
#include <set>

#include "src/ast/walk.h"

namespace vc {

namespace {

// Collects, per variable, whether it is ever read (referenced outside the
// target position of an assignment) and whether it is ever written.
struct VarUsage {
  bool read = false;
  bool written = false;
  bool addr_taken = false;
};

void ScanFunction(const FunctionDecl* func, std::map<const VarDecl*, VarUsage>& usage) {
  // Mark assignment targets as writes; everything else that mentions the
  // variable is a read. The walk visits assignment LHS subtrees too, so we
  // pre-collect the exact Expr nodes that are "pure store targets": a bare
  // identifier on the LHS of '='.
  std::set<const Expr*> store_targets;
  ForEachExpr(func->body, [&store_targets](const Expr* expr) {
    if (expr->kind == ExprKind::kAssign) {
      const auto* assign = static_cast<const AssignExpr*>(expr);
      if (assign->op == TokenKind::kAssign && assign->lhs != nullptr &&
          assign->lhs->kind == ExprKind::kIdent) {
        store_targets.insert(assign->lhs);
      }
    }
  });

  ForEachExpr(func->body, [&](const Expr* expr) {
    if (expr->kind == ExprKind::kIdent) {
      const auto* ident = static_cast<const IdentExpr*>(expr);
      if (ident->var == nullptr) {
        return;
      }
      if (store_targets.count(expr) > 0) {
        usage[ident->var].written = true;
      } else {
        usage[ident->var].read = true;
      }
    } else if (expr->kind == ExprKind::kUnary) {
      const auto* unary = static_cast<const UnaryExpr*>(expr);
      if (unary->op == TokenKind::kAmp && unary->operand != nullptr &&
          unary->operand->kind == ExprKind::kIdent) {
        const auto* ident = static_cast<const IdentExpr*>(unary->operand);
        if (ident->var != nullptr) {
          usage[ident->var].addr_taken = true;
        }
      }
    }
  });

  // Initializers count as writes.
  ForEachStmt(func->body, [&usage](const Stmt* stmt) {
    if (stmt->kind == StmtKind::kDecl) {
      const auto* decl = static_cast<const DeclStmt*>(stmt);
      if (decl->init != nullptr) {
        usage[decl->var].written = true;
      } else {
        usage.try_emplace(decl->var);  // declared, maybe never touched
      }
    }
  });
}

}  // namespace

BaselineResult ClangUnused::Find(const Project& project, const ProjectTraits& traits) const {
  BaselineResult result;
  for (const TranslationUnit& unit : project.units()) {
    for (const FunctionDecl* func : unit.functions) {
      if (!func->IsDefined()) {
        continue;
      }
      std::map<const VarDecl*, VarUsage> usage;
      ScanFunction(func, usage);
      for (const auto& [var, info] : usage) {
        if (var->is_global || var->is_param || var->has_unused_attr) {
          continue;
        }
        if (info.read || info.addr_taken) {
          continue;  // referenced somewhere: not reported (flow-insensitive)
        }
        BaselineFinding finding;
        finding.tool = Name();
        finding.file = project.sources().Path(var->loc.file);
        finding.loc = var->loc;
        finding.function = func->name;
        finding.slot = var->name;
        finding.description =
            info.written ? "variable set but never used" : "unused variable";
        result.findings.push_back(std::move(finding));
      }
    }
  }
  return result;
}

}  // namespace vc

#include "src/baselines/smatch_unused.h"

#include <map>
#include <set>

#include "src/ast/walk.h"

namespace vc {

BaselineResult SmatchUnused::Find(const Project& project, const ProjectTraits& traits) const {
  BaselineResult result;
  if (!traits.is_pure_c) {
    result.ok = false;
    result.error = "sparse parse error: C++ constructs not supported";
    return result;
  }

  for (const TranslationUnit& unit : project.units()) {
    for (const FunctionDecl* func : unit.functions) {
      if (!func->IsDefined()) {
        continue;
      }

      // Flow-insensitive read set (same notion as the AST-walk warnings: any
      // non-store reference counts, wherever it appears).
      std::set<const VarDecl*> read;
      std::set<const Expr*> store_targets;
      ForEachExpr(func->body, [&store_targets](const Expr* expr) {
        if (expr->kind == ExprKind::kAssign) {
          const auto* assign = static_cast<const AssignExpr*>(expr);
          if (assign->op == TokenKind::kAssign && assign->lhs != nullptr &&
              assign->lhs->kind == ExprKind::kIdent) {
            store_targets.insert(assign->lhs);
          }
        }
      });
      ForEachExpr(func->body, [&](const Expr* expr) {
        if (expr->kind == ExprKind::kIdent && store_targets.count(expr) == 0) {
          const auto* ident = static_cast<const IdentExpr*>(expr);
          if (ident->var != nullptr) {
            read.insert(ident->var);
          }
        }
      });

      auto report = [&](const VarDecl* var, SourceLoc loc, const std::string& what) {
        BaselineFinding finding;
        finding.tool = Name();
        finding.file = project.sources().Path(loc.file);
        finding.loc = loc;
        finding.function = func->name;
        finding.slot = var != nullptr ? var->name : what;
        finding.description = "return value is never used";
        result.findings.push_back(std::move(finding));
      };

      // Pattern 1: `v = call(...)` (or `type v = call(...)`) where v is never
      // referenced on a right-hand side anywhere in the function.
      ForEachStmt(func->body, [&](const Stmt* stmt) {
        if (stmt->kind == StmtKind::kDecl) {
          const auto* decl = static_cast<const DeclStmt*>(stmt);
          if (decl->init != nullptr && decl->init->kind == ExprKind::kCall &&
              read.count(decl->var) == 0 && !decl->var->has_unused_attr) {
            report(decl->var, decl->loc, decl->var->name);
          }
        } else if (stmt->kind == StmtKind::kExpr) {
          const auto* expr_stmt = static_cast<const ExprStmt*>(stmt);
          const Expr* expr = expr_stmt->expr;
          if (expr == nullptr) {
            return;
          }
          if (expr->kind == ExprKind::kAssign) {
            const auto* assign = static_cast<const AssignExpr*>(expr);
            if (assign->op == TokenKind::kAssign && assign->lhs != nullptr &&
                assign->lhs->kind == ExprKind::kIdent &&
                assign->rhs != nullptr && assign->rhs->kind == ExprKind::kCall) {
              const auto* ident = static_cast<const IdentExpr*>(assign->lhs);
              if (ident->var != nullptr && read.count(ident->var) == 0 &&
                  !ident->var->has_unused_attr) {
                report(ident->var, assign->loc, ident->var->name);
              }
            }
          } else if (expr->kind == ExprKind::kCall) {
            // Pattern 2: bare ignored call to a project-internal non-void
            // function (the kernel-style "must check" heuristic; externs are
            // whitelisted as ignorable).
            const auto* call = static_cast<const CallExpr*>(expr);
            if (call->resolved != nullptr && !call->resolved->is_implicit &&
                call->resolved->return_type != nullptr &&
                !call->resolved->return_type->IsVoid()) {
              const FunctionInfo* info = project.FindFunction(call->resolved->name);
              if (info != nullptr && info->InProject()) {
                report(nullptr, call->loc, call->resolved->name);
              }
            }
          }
        }
      });
    }
  }
  return result;
}

}  // namespace vc

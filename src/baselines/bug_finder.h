// Common interface for the comparison tools of the paper's §8.4. Each
// baseline reimplements, from scratch, the documented detection envelope of
// the corresponding real-world tool as the paper characterizes it:
//
//   ClangUnused    — compiler warnings: recursive AST walk, a variable is
//                    unused only if it is never referenced on a right-hand
//                    side anywhere (flow-insensitive).
//   InferUnused    — fb-infer "Dead Store": flow-sensitive intraprocedural
//                    dead stores on whole local variables; no cross-scope
//                    notion, no cursor/config/peer pruning, no parameters or
//                    field definitions.
//   SmatchUnused   — AST-pattern unused return values only; C only (reports
//                    a compile error on the C++-heavy projects, as observed
//                    in the paper).
//   CoverityUnused — unused value + unchecked return value, where "should
//                    the return value be used" is inferred from the fraction
//                    of call sites that use it (needs >= 2 call sites).
//
// Every finding carries enough location information to be matched against the
// corpus ground-truth ledger.

#ifndef VALUECHECK_SRC_BASELINES_BUG_FINDER_H_
#define VALUECHECK_SRC_BASELINES_BUG_FINDER_H_

#include <string>
#include <vector>

#include "src/core/project.h"
#include "src/support/source_location.h"

namespace vc {

// Facts about the analyzed codebase that gate whether a real-world tool can
// run on it at all (Table 5's "-*: report errors during analysis" cells).
struct ProjectTraits {
  // Plain C vs C++-heavy codebase: Smatch's parser only handles C.
  bool is_pure_c = true;
  // Kernel-style extensions (inline asm, attribute soup): break fb-infer's
  // clang-plugin capture on Linux.
  bool uses_kernel_extensions = false;
};

struct BaselineFinding {
  std::string tool;
  std::string file;
  SourceLoc loc;
  std::string function;
  std::string slot;  // variable name, or callee name for ignored returns
  std::string description;
};

struct BaselineResult {
  bool ok = true;
  std::string error;  // set when the tool cannot analyze the project
  std::vector<BaselineFinding> findings;
};

class BugFinder {
 public:
  virtual ~BugFinder() = default;
  virtual std::string Name() const = 0;
  virtual BaselineResult Find(const Project& project, const ProjectTraits& traits) const = 0;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_BASELINES_BUG_FINDER_H_

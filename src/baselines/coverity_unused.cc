#include "src/baselines/coverity_unused.h"

#include <map>

namespace vc {

namespace {

// Block-local dead-store scan: a store is flagged only when a second store to
// the same slot follows in the same basic block with no intervening read.
// This captures the conservative, low-noise envelope of the commercial
// UNUSED_VALUE checker — it will not chase a kill across branches, which is
// why cross-block overwrites (e.g. `ret = f(); if (...) {...} ret = g();`)
// escape it while a full liveness analysis catches them.
void ScanUnusedValue(const IrFunction& func, const Project& project,
                     std::vector<BaselineFinding>& findings, const std::string& tool) {
  for (const auto& block : func.blocks) {
    std::map<SlotId, const Instruction*> pending;
    for (const Instruction& inst : block->insts) {
      switch (inst.op) {
        case Opcode::kLoad:
        case Opcode::kAddrSlot:
          pending.erase(inst.slot);
          break;
        case Opcode::kStore: {
          const Slot& slot = func.slots[inst.slot];
          auto it = pending.find(inst.slot);
          if (it != pending.end()) {
            const Instruction* dead = it->second;
            BaselineFinding finding;
            finding.tool = tool;
            finding.file = project.sources().Path(dead->loc.file);
            finding.loc = dead->loc;
            finding.function = func.name;
            finding.slot = slot.name;
            finding.description = "UNUSED_VALUE: assigned value is not used";
            findings.push_back(std::move(finding));
          }
          // Eligibility for being reported later: whole local variables only,
          // no formals, no cursor-shaped stores, no sentinel initializers,
          // no attribute-suppressed variables.
          bool eligible = !slot.is_synthetic && !slot.IsFieldSlot() && slot.var != nullptr &&
                          !slot.var->is_param && !slot.var->is_global &&
                          !slot.var->has_unused_attr && !inst.is_increment &&
                          !(inst.is_decl_init && inst.is_const_store && inst.const_value == 0);
          if (eligible) {
            pending[inst.slot] = &inst;
          } else {
            pending.erase(inst.slot);
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

}  // namespace

BaselineResult CoverityUnused::Find(const Project& project, const ProjectTraits& traits) const {
  BaselineResult result;

  // --- UNUSED_VALUE ---------------------------------------------------------
  for (const auto& module : project.modules()) {
    for (const auto& func : module->functions) {
      ScanUnusedValue(*func, project, result.findings, Name());
    }
  }

  // --- CHECKED_RETURN: usage-ratio inference over call sites ---------------
  // Count, per callee, how many call sites consume the result. A site whose
  // assigned variable is itself a dead store still counts as "used" here —
  // the checker keys on the syntactic consumption, which is exactly why it
  // misses the paper's Fig. 8 bug.
  for (const auto& [name, info] : project.function_index()) {
    int total = static_cast<int>(info.call_sites.size());
    if (total < kMinCallSites) {
      continue;
    }
    int used = 0;
    for (const CallSite& site : info.call_sites) {
      used += site.result_assigned ? 1 : 0;
    }
    if (static_cast<double>(used) < kCheckedFraction * static_cast<double>(total)) {
      continue;
    }
    for (const CallSite& site : info.call_sites) {
      if (site.result_assigned) {
        continue;
      }
      BaselineFinding finding;
      finding.tool = Name();
      finding.file = project.sources().Path(site.loc.file);
      finding.loc = site.loc;
      finding.function = site.caller != nullptr ? site.caller->name : "";
      finding.slot = name;
      finding.description = "CHECKED_RETURN: callers usually use the value";
      result.findings.push_back(std::move(finding));
    }
  }
  return result;
}

}  // namespace vc

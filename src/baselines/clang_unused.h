// Clang-style unused warnings (-Wunused-variable / -Wunused-but-set-variable)
// as characterized in §8.4.1: a recursive AST walk that flags a local only
// when it is never referenced on a right-hand side at all. Flow-insensitive,
// so any read anywhere — even one that precedes the dead definition — makes
// the variable "used".

#ifndef VALUECHECK_SRC_BASELINES_CLANG_UNUSED_H_
#define VALUECHECK_SRC_BASELINES_CLANG_UNUSED_H_

#include "src/baselines/bug_finder.h"

namespace vc {

class ClangUnused : public BugFinder {
 public:
  std::string Name() const override { return "Clang"; }
  BaselineResult Find(const Project& project, const ProjectTraits& traits) const override;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_BASELINES_CLANG_UNUSED_H_

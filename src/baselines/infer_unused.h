// fb-infer "Dead Store" baseline (§8.4.2): flow-sensitive intraprocedural
// dead-store detection on whole local variables. Compared to ValueCheck it
//
//   * has no cross-scope notion — same-author redundant stores are reported;
//   * does not prune cursors, config-guarded uses, or peer-ignored returns;
//   * misses overwritten/ignored parameters and field definitions;
//   * skips attribute-marked variables and trivial zero initializers (the
//     real tool's sentinel-value whitelist).
//
// Capture fails on kernel-extension-heavy codebases (Table 5's "-*" cell for
// Linux).

#ifndef VALUECHECK_SRC_BASELINES_INFER_UNUSED_H_
#define VALUECHECK_SRC_BASELINES_INFER_UNUSED_H_

#include "src/baselines/bug_finder.h"

namespace vc {

class InferUnused : public BugFinder {
 public:
  std::string Name() const override { return "Infer-unused"; }
  BaselineResult Find(const Project& project, const ProjectTraits& traits) const override;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_BASELINES_INFER_UNUSED_H_

#include "src/baselines/infer_unused.h"

#include "src/core/detector.h"

namespace vc {

BaselineResult InferUnused::Find(const Project& project, const ProjectTraits& traits) const {
  BaselineResult result;
  if (traits.uses_kernel_extensions) {
    result.ok = false;
    result.error = "capture failed: unsupported compiler extensions";
    return result;
  }

  // Same flow-sensitive liveness engine, different envelope: infer's dead
  // store reports explicit assignments to whole local variables only.
  for (const UnusedDefCandidate& cand : DetectAll(project)) {
    if (cand.is_param || cand.is_synthetic || cand.is_field_slot) {
      continue;  // outside the Dead Store checker's scope
    }
    if (cand.var == nullptr || cand.var->has_unused_attr) {
      continue;  // attribute suppression works in infer
    }
    if (cand.var->is_param) {
      continue;  // stores to formals are not reported by the Dead Store check
    }
    // Sentinel-value whitelist: `int x = 0;`-style defensive initializers
    // are not flagged by the real tool.
    const Instruction* store = nullptr;
    for (const auto& block : cand.ir_func->blocks) {
      for (const Instruction& inst : block->insts) {
        if (inst.op == Opcode::kStore && inst.slot == cand.slot && inst.loc == cand.def_loc) {
          store = &inst;
        }
      }
    }
    if (store != nullptr && store->is_decl_init && store->is_const_store &&
        store->const_value == 0) {
      continue;
    }

    BaselineFinding finding;
    finding.tool = Name();
    finding.file = cand.file;
    finding.loc = cand.def_loc;
    finding.function = cand.function;
    finding.slot = cand.slot_name;
    finding.description = "dead store: value written is never read";
    result.findings.push_back(std::move(finding));
  }
  return result;
}

}  // namespace vc

// Smatch "unused return value" baseline (§8.4.3): AST-pattern matching, not
// control-flow analysis. A variable assigned from a call is reported when it
// is never referenced on a right-hand side anywhere in the function — which
// is both imprecise (a later `if (ret)` anywhere hides an earlier dead
// assignment, the paper's Fig. 8 miss) and noisy (no peer/intent pruning).
// Smatch's C parser cannot process C++ codebases (Table 5's "-*" cells).

#ifndef VALUECHECK_SRC_BASELINES_SMATCH_UNUSED_H_
#define VALUECHECK_SRC_BASELINES_SMATCH_UNUSED_H_

#include "src/baselines/bug_finder.h"

namespace vc {

class SmatchUnused : public BugFinder {
 public:
  std::string Name() const override { return "Smatch-unused"; }
  BaselineResult Find(const Project& project, const ProjectTraits& traits) const override;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_BASELINES_SMATCH_UNUSED_H_

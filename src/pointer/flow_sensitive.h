// Flow-sensitive points-to analysis — the alternative the paper weighs
// against Andersen's and rejects on scalability grounds (§4.1, citing Hind &
// Pioli's finding that the precision difference barely matters for this use).
// This implementation exists to *reproduce that design comparison*: the
// ablation bench runs both analyses over the same functions and reports
// points-to set sizes, fix-point costs, and whether any detection outcome
// changes.
//
// The analysis propagates per-slot points-to maps through the CFG (join =
// union at block entries) and applies strong updates on direct stores —
// the precision Andersen's flow-insensitive solution gives up.

#ifndef VALUECHECK_SRC_POINTER_FLOW_SENSITIVE_H_
#define VALUECHECK_SRC_POINTER_FLOW_SENSITIVE_H_

#include <map>
#include <set>
#include <vector>

#include "src/ir/ir.h"

namespace vc {

class FlowSensitivePointsTo {
 public:
  explicit FlowSensitivePointsTo(const IrFunction& func);

  // Slots that `value` may point to at its definition point.
  const std::set<SlotId>& SlotsPointedBy(ValueId value) const;
  const std::set<const FunctionDecl*>& FunctionsPointedBy(ValueId value) const;
  bool PointsToUnknown(ValueId value) const;

  // True when some pointer value may point to `slot` anywhere.
  bool SlotIsPointee(SlotId slot) const;

  int iterations() const { return iterations_; }

  // Sum of per-value pointee-set sizes: the precision metric the ablation
  // bench compares against Andersen's (smaller = more precise).
  size_t TotalPointsToSize() const;

 private:
  struct NodeState {
    std::set<SlotId> slots;
    std::set<const FunctionDecl*> funcs;
    bool unknown = false;

    bool MergeFrom(const NodeState& other);
    friend bool operator==(const NodeState& a, const NodeState& b) {
      return a.slots == b.slots && a.funcs == b.funcs && a.unknown == b.unknown;
    }
  };
  // Pointer contents of slots at a program point.
  using SlotMap = std::map<SlotId, NodeState>;

  static bool MergeMap(SlotMap& into, const SlotMap& from);
  void Transfer(const IrFunction& func, const Instruction& inst, SlotMap& state,
                bool record_values);
  void Solve(const IrFunction& func);

  std::vector<NodeState> values_;  // indexed by ValueId, at definition point
  std::vector<SlotMap> block_in_;
  std::set<SlotId> pointee_slots_;
  int iterations_ = 0;

  static const std::set<SlotId> kEmptySlots;
  static const std::set<const FunctionDecl*> kEmptyFuncs;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_POINTER_FLOW_SENSITIVE_H_

#include "src/pointer/flow_sensitive.h"

namespace vc {

const std::set<SlotId> FlowSensitivePointsTo::kEmptySlots;
const std::set<const FunctionDecl*> FlowSensitivePointsTo::kEmptyFuncs;

bool FlowSensitivePointsTo::NodeState::MergeFrom(const NodeState& other) {
  bool changed = false;
  for (SlotId slot : other.slots) {
    changed |= slots.insert(slot).second;
  }
  for (const FunctionDecl* func : other.funcs) {
    changed |= funcs.insert(func).second;
  }
  if (other.unknown && !unknown) {
    unknown = true;
    changed = true;
  }
  return changed;
}

bool FlowSensitivePointsTo::MergeMap(SlotMap& into, const SlotMap& from) {
  bool changed = false;
  for (const auto& [slot, state] : from) {
    changed |= into[slot].MergeFrom(state);
  }
  return changed;
}

FlowSensitivePointsTo::FlowSensitivePointsTo(const IrFunction& func) {
  values_.resize(static_cast<size_t>(func.next_value));
  block_in_.resize(func.blocks.size());
  // Pointer-typed formals hold caller memory we cannot see: unknown.
  if (!func.blocks.empty()) {
    for (SlotId param : func.param_slots) {
      const Slot& slot = func.slots[param];
      if (slot.var != nullptr && slot.var->type != nullptr && slot.var->type->IsPointer()) {
        block_in_[0][param].unknown = true;
      }
    }
  }
  Solve(func);
  for (const NodeState& state : values_) {
    pointee_slots_.insert(state.slots.begin(), state.slots.end());
  }
  for (const SlotMap& map : block_in_) {
    for (const auto& [slot, state] : map) {
      pointee_slots_.insert(state.slots.begin(), state.slots.end());
    }
  }
}

void FlowSensitivePointsTo::Transfer(const IrFunction& func, const Instruction& inst,
                                     SlotMap& state, bool record_values) {
  auto value_state = [&](ValueId value) -> NodeState& { return values_[value]; };
  auto set_value = [&](ValueId value, NodeState node) {
    if (record_values) {
      values_[value].MergeFrom(node);
    } else {
      // During fix-point iteration still accumulate; values are block-local,
      // so their final state comes from the last visit with the converged
      // in-state — accumulation is sound and converges.
      values_[value].MergeFrom(node);
    }
  };

  switch (inst.op) {
    case Opcode::kAddrSlot: {
      NodeState node;
      node.slots.insert(inst.slot);
      set_value(inst.result, node);
      break;
    }
    case Opcode::kAddrFunc: {
      NodeState node;
      node.funcs.insert(inst.callee);
      set_value(inst.result, node);
      break;
    }
    case Opcode::kLoad: {
      auto it = state.find(inst.slot);
      if (it != state.end()) {
        set_value(inst.result, it->second);
      }
      break;
    }
    case Opcode::kStore: {
      if (inst.operands.empty()) {
        break;
      }
      // Strong update: the slot now holds exactly what the value points to.
      state[inst.slot] = value_state(inst.operands[0]);
      break;
    }
    case Opcode::kLoadInd: {
      const NodeState& ptr = value_state(inst.operands[0]);
      NodeState merged;
      for (SlotId pointee : ptr.slots) {
        auto it = state.find(pointee);
        if (it != state.end()) {
          merged.MergeFrom(it->second);
        }
      }
      merged.unknown |= ptr.unknown;
      set_value(inst.result, merged);
      break;
    }
    case Opcode::kStoreInd: {
      const NodeState& ptr = value_state(inst.operands[0]);
      const NodeState& src = value_state(inst.operands[1]);
      if (ptr.slots.size() == 1 && !ptr.unknown) {
        // Unique pointee: strong update is safe.
        state[*ptr.slots.begin()] = src;
      } else {
        for (SlotId pointee : ptr.slots) {
          state[pointee].MergeFrom(src);
        }
      }
      break;
    }
    case Opcode::kFieldPtr: {
      const NodeState& base = value_state(inst.operands[0]);
      NodeState node;
      for (SlotId obj : base.slots) {
        const Slot& slot = func.slots[obj];
        SlotId field_slot = kInvalidSlot;
        if (slot.var != nullptr && slot.field_index < 0 && inst.field_index >= 0) {
          field_slot = func.slots.Find(slot.var, inst.field_index);
        }
        if (field_slot != kInvalidSlot) {
          node.slots.insert(field_slot);
        } else {
          node.unknown = true;
        }
      }
      node.unknown |= base.unknown;
      set_value(inst.result, node);
      break;
    }
    case Opcode::kBinOp:
    case Opcode::kUnOp: {
      NodeState node;
      for (ValueId operand : inst.operands) {
        node.MergeFrom(value_state(operand));
      }
      set_value(inst.result, node);
      break;
    }
    case Opcode::kCall: {
      if (inst.result != kNoValue) {
        NodeState node;
        node.unknown = true;
        set_value(inst.result, node);
      }
      break;
    }
    default:
      break;
  }
}

void FlowSensitivePointsTo::Solve(const IrFunction& func) {
  // Forward fix point over monotonically growing in/out maps. The transfer is
  // monotone (strong updates replace with value states, which themselves only
  // grow), so merging out-states converges.
  std::vector<SlotMap> block_out(func.blocks.size());
  bool changed = true;
  while (changed) {
    changed = false;
    ++iterations_;
    for (const auto& block : func.blocks) {
      SlotMap in;
      for (BlockId pred : block->preds) {
        MergeMap(in, block_out[pred]);
      }
      changed |= MergeMap(block_in_[block->id], in);
      SlotMap out = block_in_[block->id];
      for (const Instruction& inst : block->insts) {
        Transfer(func, inst, out, /*record_values=*/false);
      }
      changed |= MergeMap(block_out[block->id], out);
    }
  }

  // Final pass: record value states from converged block in-states.
  for (const auto& block : func.blocks) {
    SlotMap state = block_in_[block->id];
    for (const Instruction& inst : block->insts) {
      Transfer(func, inst, state, /*record_values=*/true);
    }
  }
}

const std::set<SlotId>& FlowSensitivePointsTo::SlotsPointedBy(ValueId value) const {
  if (value < 0 || value >= static_cast<ValueId>(values_.size())) {
    return kEmptySlots;
  }
  return values_[value].slots;
}

const std::set<const FunctionDecl*>& FlowSensitivePointsTo::FunctionsPointedBy(
    ValueId value) const {
  if (value < 0 || value >= static_cast<ValueId>(values_.size())) {
    return kEmptyFuncs;
  }
  return values_[value].funcs;
}

bool FlowSensitivePointsTo::PointsToUnknown(ValueId value) const {
  if (value < 0 || value >= static_cast<ValueId>(values_.size())) {
    return true;
  }
  return values_[value].unknown;
}

bool FlowSensitivePointsTo::SlotIsPointee(SlotId slot) const {
  return pointee_slots_.count(slot) > 0;
}

size_t FlowSensitivePointsTo::TotalPointsToSize() const {
  size_t total = 0;
  for (const NodeState& state : values_) {
    total += state.slots.size() + (state.unknown ? 1 : 0);
  }
  return total;
}

}  // namespace vc

// Slot-level value-flow graph: for each memory slot, the ordered list of
// definitions (stores) and uses (loads), including indirect accesses resolved
// through the points-to analysis. This is the query structure behind
//
//   * cursor pruning (§5.2): "a variable incremented repeatedly by the same
//     constant" — counted over the slot's definitions;
//   * peer-definition pruning (§5.4): usage ratios over a callee's call-site
//     definitions;
//   * the alias check of the detection algorithm (checkAlias in Fig. 4).

#ifndef VALUECHECK_SRC_POINTER_VALUE_FLOW_H_
#define VALUECHECK_SRC_POINTER_VALUE_FLOW_H_

#include <vector>

#include "src/ir/ir.h"
#include "src/pointer/andersen.h"

namespace vc {

struct SlotAccess {
  const Instruction* inst = nullptr;
  BlockId block = 0;
  int index = 0;       // instruction index within the block
  bool is_def = false;  // store vs load
  bool is_indirect = false;
};

class ValueFlowGraph {
 public:
  ValueFlowGraph(const IrFunction& func, const PointsTo& pts);

  const std::vector<SlotAccess>& AccessesOf(SlotId slot) const;

  int NumDefs(SlotId slot) const;
  int NumUses(SlotId slot) const;

  // Number of direct stores of the shape `slot = slot ± c` with the given
  // step; a step of 0 counts increments of any constant amount.
  int NumIncrementDefs(SlotId slot, long long step = 0) const;

  // True if the slot has any use reachable only through pointers (an
  // indirect load whose pointer may target the slot).
  bool HasIndirectUse(SlotId slot) const;

 private:
  std::vector<std::vector<SlotAccess>> accesses_;  // indexed by slot
  static const std::vector<SlotAccess> kEmpty;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_POINTER_VALUE_FLOW_H_

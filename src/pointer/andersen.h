// Field-sensitive Andersen-style (inclusion-based) points-to analysis,
// standing in for SVF in the paper's pipeline (§4.1, §7). ValueCheck uses
// points-to information for three things, all of which this module provides:
//
//   1. alias awareness — which slots are reachable through pointer values
//      (the detector suppresses candidates on address-taken slots, and tests
//      use the per-value points-to sets to validate that rule);
//   2. indirect call resolution — which functions a function-pointer value
//      may target, so unused-return-value authorship can look up the actual
//      callee (§4.1 "Indirect Function Call");
//   3. the value-flow graph's indirect def-use edges.
//
// The analysis is intraprocedural (ValueCheck analyzes local variables only;
// §3.1). Abstract objects are the function's memory slots plus a distinguished
// "unknown" object for anything that escapes the model (call results, field
// addresses of unmodeled objects).

#ifndef VALUECHECK_SRC_POINTER_ANDERSEN_H_
#define VALUECHECK_SRC_POINTER_ANDERSEN_H_

#include <set>
#include <vector>

#include "src/ir/ir.h"

namespace vc {

// Hard ceiling on solver passes. Real functions converge in a handful of
// passes; the ceiling only exists so a constraint-system blow-up degrades to
// "points-to top" (everything may alias) instead of hanging the pipeline.
inline constexpr int kDefaultPointerIterationLimit = 1 << 16;

class PointsTo {
 public:
  // `max_iterations` caps solver passes (0 = kDefaultPointerIterationLimit).
  explicit PointsTo(const IrFunction& func, int max_iterations = 0);

  // Slots that `value` may point to.
  const std::set<SlotId>& SlotsPointedBy(ValueId value) const;

  // Functions that `value` may target (for indirect calls).
  const std::set<const FunctionDecl*>& FunctionsPointedBy(ValueId value) const;

  // True when `value` may point outside the modeled object space.
  bool PointsToUnknown(ValueId value) const;

  // True when some pointer value in the function may point to `slot`.
  bool SlotIsPointee(SlotId slot) const;

  int iterations() const { return iterations_; }

  // Sizeof-based footprint of the solved points-to state, for the memory
  // tracker: bytes cover the node-state vectors plus an estimated fixed cost
  // per set entry; entries is the total element count across all sets. A pure
  // function of the solved state, so identical at any --jobs value.
  struct Footprint {
    uint64_t bytes = 0;
    uint64_t entries = 0;
  };
  Footprint MemoryFootprint() const;

  // True when the solver hit its iteration ceiling and fell back to the
  // sound "top" state: every value/slot points to unknown and every slot is
  // a potential pointee (the detector then suppresses, never misreports).
  bool capped() const { return capped_; }

  // Test-only: forces the fix point to never converge so the iteration
  // ceiling and top fallback can be exercised without crafting a
  // pathological constraint system.
  static void ForceNonConvergenceForTest(bool on);

 private:
  struct NodeState {
    std::set<SlotId> slots;
    std::set<const FunctionDecl*> funcs;
    bool unknown = false;
  };

  void Solve(const IrFunction& func);
  void ApplyTop(const IrFunction& func);

  std::vector<NodeState> values_;  // indexed by ValueId
  std::vector<NodeState> slots_;   // indexed by SlotId: what the slot CONTAINS
  std::set<SlotId> pointee_slots_;
  int iterations_ = 0;
  int max_iterations_ = kDefaultPointerIterationLimit;
  bool capped_ = false;

  static const std::set<SlotId> kEmptySlots;
  static const std::set<const FunctionDecl*> kEmptyFuncs;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_POINTER_ANDERSEN_H_

// Field-sensitive Andersen-style (inclusion-based) points-to analysis,
// standing in for SVF in the paper's pipeline (§4.1, §7). ValueCheck uses
// points-to information for three things, all of which this module provides:
//
//   1. alias awareness — which slots are reachable through pointer values
//      (the detector suppresses candidates on address-taken slots, and tests
//      use the per-value points-to sets to validate that rule);
//   2. indirect call resolution — which functions a function-pointer value
//      may target, so unused-return-value authorship can look up the actual
//      callee (§4.1 "Indirect Function Call");
//   3. the value-flow graph's indirect def-use edges.
//
// The analysis is intraprocedural (ValueCheck analyzes local variables only;
// §3.1). Abstract objects are the function's memory slots plus a distinguished
// "unknown" object for anything that escapes the model (call results, field
// addresses of unmodeled objects).

#ifndef VALUECHECK_SRC_POINTER_ANDERSEN_H_
#define VALUECHECK_SRC_POINTER_ANDERSEN_H_

#include <set>
#include <vector>

#include "src/ir/ir.h"

namespace vc {

class PointsTo {
 public:
  explicit PointsTo(const IrFunction& func);

  // Slots that `value` may point to.
  const std::set<SlotId>& SlotsPointedBy(ValueId value) const;

  // Functions that `value` may target (for indirect calls).
  const std::set<const FunctionDecl*>& FunctionsPointedBy(ValueId value) const;

  // True when `value` may point outside the modeled object space.
  bool PointsToUnknown(ValueId value) const;

  // True when some pointer value in the function may point to `slot`.
  bool SlotIsPointee(SlotId slot) const;

  int iterations() const { return iterations_; }

 private:
  struct NodeState {
    std::set<SlotId> slots;
    std::set<const FunctionDecl*> funcs;
    bool unknown = false;
  };

  void Solve(const IrFunction& func);

  std::vector<NodeState> values_;  // indexed by ValueId
  std::vector<NodeState> slots_;   // indexed by SlotId: what the slot CONTAINS
  std::set<SlotId> pointee_slots_;
  int iterations_ = 0;

  static const std::set<SlotId> kEmptySlots;
  static const std::set<const FunctionDecl*> kEmptyFuncs;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_POINTER_ANDERSEN_H_

#include "src/pointer/andersen.h"

#include <atomic>

namespace vc {

const std::set<SlotId> PointsTo::kEmptySlots;
const std::set<const FunctionDecl*> PointsTo::kEmptyFuncs;

namespace {

std::atomic<bool> g_force_nonconvergence{false};

}  // namespace

void PointsTo::ForceNonConvergenceForTest(bool on) {
  g_force_nonconvergence.store(on, std::memory_order_relaxed);
}

namespace {

// Merges src into dst; returns true on growth.
bool Merge(PointsTo* unused, std::set<SlotId>& dst, const std::set<SlotId>& src) {
  bool changed = false;
  for (SlotId s : src) {
    changed |= dst.insert(s).second;
  }
  return changed;
}

}  // namespace

PointsTo::PointsTo(const IrFunction& func, int max_iterations)
    : max_iterations_(max_iterations > 0 ? max_iterations : kDefaultPointerIterationLimit) {
  values_.resize(static_cast<size_t>(func.next_value));
  slots_.resize(static_cast<size_t>(func.slots.size()));
  // Pointer-typed formals hold caller memory we cannot see: unknown.
  for (SlotId param : func.param_slots) {
    const Slot& slot = func.slots[param];
    if (slot.var != nullptr && slot.var->type != nullptr && slot.var->type->IsPointer()) {
      slots_[param].unknown = true;
    }
  }
  Solve(func);
  if (capped_) {
    ApplyTop(func);
  }
  for (const NodeState& state : values_) {
    for (SlotId slot : state.slots) {
      pointee_slots_.insert(slot);
    }
  }
  for (const NodeState& state : slots_) {
    for (SlotId slot : state.slots) {
      pointee_slots_.insert(slot);
    }
  }
}

void PointsTo::Solve(const IrFunction& func) {
  // Iterate all constraints to a fix point. Functions are small (the project
  // is analyzed one function at a time), so the simple quadratic strategy is
  // more than fast enough and trivially correct.
  bool changed = true;
  while (changed) {
    if (iterations_ >= max_iterations_) {
      // Non-convergence (or the test hook): degrade to top instead of
      // spinning. The caller applies the fallback after Solve returns.
      capped_ = true;
      return;
    }
    changed = g_force_nonconvergence.load(std::memory_order_relaxed);
    ++iterations_;
    for (const auto& block : func.blocks) {
      for (const Instruction& inst : block->insts) {
        switch (inst.op) {
          case Opcode::kAddrSlot: {
            changed |= values_[inst.result].slots.insert(inst.slot).second;
            break;
          }
          case Opcode::kAddrFunc: {
            changed |= values_[inst.result].funcs.insert(inst.callee).second;
            break;
          }
          case Opcode::kLoad: {
            // result ⊇ contents(slot)
            NodeState& dst = values_[inst.result];
            const NodeState& src = slots_[inst.slot];
            changed |= Merge(this, dst.slots, src.slots);
            for (const FunctionDecl* f : src.funcs) {
              changed |= dst.funcs.insert(f).second;
            }
            if (src.unknown && !dst.unknown) {
              dst.unknown = true;
              changed = true;
            }
            break;
          }
          case Opcode::kStore: {
            // contents(slot) ⊇ value
            if (inst.operands.empty()) {
              break;
            }
            NodeState& dst = slots_[inst.slot];
            const NodeState& src = values_[inst.operands[0]];
            changed |= Merge(this, dst.slots, src.slots);
            for (const FunctionDecl* f : src.funcs) {
              changed |= dst.funcs.insert(f).second;
            }
            if (src.unknown && !dst.unknown) {
              dst.unknown = true;
              changed = true;
            }
            break;
          }
          case Opcode::kLoadInd: {
            // result ⊇ contents(*ptr) for each pointee
            NodeState& dst = values_[inst.result];
            const NodeState& ptr = values_[inst.operands[0]];
            for (SlotId pointee : ptr.slots) {
              const NodeState& src = slots_[pointee];
              changed |= Merge(this, dst.slots, src.slots);
              for (const FunctionDecl* f : src.funcs) {
                changed |= dst.funcs.insert(f).second;
              }
              if (src.unknown && !dst.unknown) {
                dst.unknown = true;
                changed = true;
              }
            }
            if (ptr.unknown && !dst.unknown) {
              dst.unknown = true;
              changed = true;
            }
            break;
          }
          case Opcode::kStoreInd: {
            // contents(pointee) ⊇ value for each pointee (weak update)
            const NodeState& ptr = values_[inst.operands[0]];
            const NodeState& src = values_[inst.operands[1]];
            for (SlotId pointee : ptr.slots) {
              NodeState& dst = slots_[pointee];
              changed |= Merge(this, dst.slots, src.slots);
              for (const FunctionDecl* f : src.funcs) {
                changed |= dst.funcs.insert(f).second;
              }
              if (src.unknown && !dst.unknown) {
                dst.unknown = true;
                changed = true;
              }
            }
            break;
          }
          case Opcode::kFieldPtr: {
            // Field-sensitive: &(o->f) for each object o the base may point
            // to. When the base object is a whole struct-typed local whose
            // field slot exists, target it precisely; otherwise escape.
            NodeState& dst = values_[inst.result];
            const NodeState& base = values_[inst.operands[0]];
            for (SlotId obj : base.slots) {
              const Slot& slot = func.slots[obj];
              SlotId field_slot = kInvalidSlot;
              if (slot.var != nullptr && slot.field_index < 0 && inst.field_index >= 0) {
                field_slot = func.slots.Find(slot.var, inst.field_index);
              }
              if (field_slot != kInvalidSlot) {
                changed |= dst.slots.insert(field_slot).second;
              } else if (!dst.unknown) {
                dst.unknown = true;
                changed = true;
              }
            }
            if (base.unknown && !dst.unknown) {
              dst.unknown = true;
              changed = true;
            }
            break;
          }
          case Opcode::kBinOp:
          case Opcode::kUnOp: {
            // Pointer arithmetic and selects preserve the pointee set.
            NodeState& dst = values_[inst.result];
            for (ValueId operand : inst.operands) {
              const NodeState& src = values_[operand];
              changed |= Merge(this, dst.slots, src.slots);
              for (const FunctionDecl* f : src.funcs) {
                changed |= dst.funcs.insert(f).second;
              }
              if (src.unknown && !dst.unknown) {
                dst.unknown = true;
                changed = true;
              }
            }
            break;
          }
          case Opcode::kCall: {
            // Call results may point anywhere we do not model.
            if (inst.result != kNoValue && !values_[inst.result].unknown) {
              values_[inst.result].unknown = true;
              changed = true;
            }
            break;
          }
          default:
            break;
        }
      }
    }
  }
}

void PointsTo::ApplyTop(const IrFunction& func) {
  // Sound over-approximation for a solver that did not converge: every value
  // and slot may point anywhere, and every slot may be aliased. Downstream
  // consumers treat "unknown"/"pointee" conservatively (suppress candidates,
  // keep indirect edges), so top loses precision, never soundness.
  for (NodeState& state : values_) {
    state.unknown = true;
  }
  for (NodeState& state : slots_) {
    state.unknown = true;
  }
  for (SlotId slot = 0; slot < static_cast<SlotId>(func.slots.size()); ++slot) {
    pointee_slots_.insert(slot);
  }
}

const std::set<SlotId>& PointsTo::SlotsPointedBy(ValueId value) const {
  if (value < 0 || value >= static_cast<ValueId>(values_.size())) {
    return kEmptySlots;
  }
  return values_[value].slots;
}

const std::set<const FunctionDecl*>& PointsTo::FunctionsPointedBy(ValueId value) const {
  if (value < 0 || value >= static_cast<ValueId>(values_.size())) {
    return kEmptyFuncs;
  }
  return values_[value].funcs;
}

bool PointsTo::PointsToUnknown(ValueId value) const {
  if (value < 0 || value >= static_cast<ValueId>(values_.size())) {
    return true;
  }
  return values_[value].unknown;
}

bool PointsTo::SlotIsPointee(SlotId slot) const { return pointee_slots_.count(slot) > 0; }

PointsTo::Footprint PointsTo::MemoryFootprint() const {
  // Red-black tree nodes cost roughly three pointers + color + payload; a
  // fixed 40-byte estimate keeps the number build-stable and deterministic.
  constexpr uint64_t kSetNodeBytes = 40;
  Footprint fp;
  fp.bytes = (values_.size() + slots_.size()) * sizeof(NodeState);
  for (const NodeState& node : values_) {
    fp.entries += node.slots.size() + node.funcs.size();
  }
  for (const NodeState& node : slots_) {
    fp.entries += node.slots.size() + node.funcs.size();
  }
  fp.entries += pointee_slots_.size();
  fp.bytes += fp.entries * kSetNodeBytes;
  return fp;
}

}  // namespace vc

#include "src/pointer/value_flow.h"

namespace vc {

const std::vector<SlotAccess> ValueFlowGraph::kEmpty;

ValueFlowGraph::ValueFlowGraph(const IrFunction& func, const PointsTo& pts) {
  accesses_.resize(static_cast<size_t>(func.slots.size()));

  auto record = [this](SlotId slot, const Instruction& inst, BlockId block, int index,
                       bool is_def, bool indirect) {
    if (slot < 0 || slot >= static_cast<SlotId>(accesses_.size())) {
      return;
    }
    SlotAccess access;
    access.inst = &inst;
    access.block = block;
    access.index = index;
    access.is_def = is_def;
    access.is_indirect = indirect;
    accesses_[slot].push_back(access);
  };

  for (const auto& block : func.blocks) {
    for (size_t i = 0; i < block->insts.size(); ++i) {
      const Instruction& inst = block->insts[i];
      const int index = static_cast<int>(i);
      switch (inst.op) {
        case Opcode::kLoad:
          record(inst.slot, inst, block->id, index, /*is_def=*/false, /*indirect=*/false);
          break;
        case Opcode::kStore:
          record(inst.slot, inst, block->id, index, /*is_def=*/true, /*indirect=*/false);
          break;
        case Opcode::kLoadInd:
          for (SlotId pointee : pts.SlotsPointedBy(inst.operands[0])) {
            record(pointee, inst, block->id, index, /*is_def=*/false, /*indirect=*/true);
          }
          break;
        case Opcode::kStoreInd:
          for (SlotId pointee : pts.SlotsPointedBy(inst.operands[0])) {
            record(pointee, inst, block->id, index, /*is_def=*/true, /*indirect=*/true);
          }
          break;
        default:
          break;
      }
    }
  }
}

const std::vector<SlotAccess>& ValueFlowGraph::AccessesOf(SlotId slot) const {
  if (slot < 0 || slot >= static_cast<SlotId>(accesses_.size())) {
    return kEmpty;
  }
  return accesses_[slot];
}

int ValueFlowGraph::NumDefs(SlotId slot) const {
  int n = 0;
  for (const SlotAccess& access : AccessesOf(slot)) {
    n += access.is_def ? 1 : 0;
  }
  return n;
}

int ValueFlowGraph::NumUses(SlotId slot) const {
  int n = 0;
  for (const SlotAccess& access : AccessesOf(slot)) {
    n += access.is_def ? 0 : 1;
  }
  return n;
}

int ValueFlowGraph::NumIncrementDefs(SlotId slot, long long step) const {
  int n = 0;
  for (const SlotAccess& access : AccessesOf(slot)) {
    if (!access.is_def || access.is_indirect || !access.inst->is_increment) {
      continue;
    }
    if (step == 0 || access.inst->increment_amount == step) {
      ++n;
    }
  }
  return n;
}

bool ValueFlowGraph::HasIndirectUse(SlotId slot) const {
  for (const SlotAccess& access : AccessesOf(slot)) {
    if (!access.is_def && access.is_indirect) {
      return true;
    }
  }
  return false;
}

}  // namespace vc

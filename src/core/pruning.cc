#include "src/core/pruning.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <memory>
#include <set>
#include <string>

#include "src/pointer/andersen.h"
#include "src/pointer/value_flow.h"
#include "src/support/metrics.h"
#include "src/support/string_util.h"
#include "src/support/trace.h"
#include "src/vcs/repository.h"

namespace vc {

namespace {

// --- Pattern 1: configuration dependency -----------------------------------

bool MatchesConfigDependency(const Project& project, const UnusedDefCandidate& cand) {
  if (cand.var == nullptr) {
    return false;  // synthetic temps have no named uses to guard
  }
  const FunctionInfo* info = project.FindFunction(cand.function);
  if (info == nullptr || info->def_decl == nullptr) {
    return false;
  }
  FileId file = cand.def_loc.file;
  if (info->def_file != file) {
    return false;
  }
  const SourceRange& range = info->def_decl->range;
  const PreprocessResult& pp = project.preprocessing(file);
  const SourceManager& sm = project.sources();
  for (const CondRegion& region : pp.regions) {
    // Region must overlap the function body.
    if (region.end_line < range.begin.line || region.begin_line > range.end.line) {
      continue;
    }
    for (int line = region.begin_line + 1; line < region.end_line; ++line) {
      if (line == cand.def_loc.line) {
        continue;  // the definition itself does not count as a use
      }
      if (ContainsWord(sm.Line(file, line), cand.var->name)) {
        return true;
      }
    }
  }
  return false;
}

// --- Pattern 2: cursor ------------------------------------------------------

class CursorMatcher {
 public:
  bool Matches(const UnusedDefCandidate& cand) {
    if (!cand.is_increment || cand.ir_func == nullptr || cand.slot == kInvalidSlot) {
      return false;
    }
    const ValueFlowGraph& vfg = GraphFor(*cand.ir_func);
    // "Incremented repeatedly by the same constant": at least two increment
    // definitions of this slot with the candidate's step.
    return vfg.NumIncrementDefs(cand.slot, cand.increment_amount) >= 2;
  }

 private:
  const ValueFlowGraph& GraphFor(const IrFunction& func) {
    auto it = cache_.find(&func);
    if (it == cache_.end()) {
      auto pts = std::make_unique<PointsTo>(func);
      auto vfg = std::make_unique<ValueFlowGraph>(func, *pts);
      it = cache_.emplace(&func, std::move(vfg)).first;
      points_to_.push_back(std::move(pts));
    }
    return *it->second;
  }

  std::map<const IrFunction*, std::unique_ptr<ValueFlowGraph>> cache_;
  std::vector<std::unique_ptr<PointsTo>> points_to_;
};

// --- Pattern 3: unused hints ------------------------------------------------

bool MatchesUnusedHint(const Project& project, const UnusedDefCandidate& cand) {
  if (cand.var != nullptr && cand.var->has_unused_attr) {
    return true;
  }
  const SourceManager& sm = project.sources();
  // Keyword match on the definition line (covers trailing comments) and on
  // the declaration line of the variable.
  if (cand.def_loc.IsValid() &&
      ContainsIgnoreCase(sm.Line(cand.def_loc.file, cand.def_loc.line), "unused")) {
    return true;
  }
  if (cand.var != nullptr && cand.var->loc.IsValid() &&
      ContainsIgnoreCase(sm.Line(cand.var->loc.file, cand.var->loc.line), "unused")) {
    return true;
  }
  return false;
}

// --- Extension pattern: stale code (paper §9.1 future work) -----------------

// The commit that introduced the definition marks it as debugging, legacy, or
// deprecated code — or the whole containing function has not been touched for
// `stale_days` and the definition line itself carries a debug marker.
class StaleCodeMatcher {
 public:
  StaleCodeMatcher(const Project& project, const Repository* repo, const PruneOptions& options)
      : project_(project), repo_(repo), options_(options) {
    if (repo_ != nullptr) {
      now_ = options.now_timestamp;
      if (now_ == 0) {
        for (CommitId id = 0; id < repo_->NumCommits(); ++id) {
          now_ = std::max(now_, repo_->GetCommit(id).timestamp);
        }
      }
    }
  }

  bool Matches(const UnusedDefCandidate& cand) const {
    if (repo_ == nullptr || !cand.def_loc.IsValid()) {
      return false;
    }
    const std::string& path = project_.sources().Path(cand.def_loc.file);
    const std::vector<LineOrigin>& blame = repo_->Blame(path);
    int index = cand.def_loc.line - 1;
    if (index < 0 || index >= static_cast<int>(blame.size())) {
      return false;
    }
    const Commit& commit = repo_->GetCommit(blame[index].commit);
    for (const char* marker : {"debug", "deprecated", "legacy"}) {
      if (ContainsIgnoreCase(commit.message, marker)) {
        return true;
      }
    }
    // Untouched-function rule: every line of the containing function is older
    // than the staleness horizon AND the definition line mentions debugging.
    const FunctionInfo* info = project_.FindFunction(cand.function);
    if (info == nullptr || info->def_decl == nullptr ||
        info->def_file != cand.def_loc.file) {
      return false;
    }
    if (!ContainsIgnoreCase(project_.sources().Line(cand.def_loc.file, cand.def_loc.line),
                            "debug")) {
      return false;
    }
    int64_t horizon = now_ - static_cast<int64_t>(options_.stale_days) * 86400;
    const SourceRange& range = info->def_decl->range;
    for (int line = range.begin.line; line <= range.end.line; ++line) {
      int i = line - 1;
      if (i < 0 || i >= static_cast<int>(blame.size())) {
        continue;
      }
      if (repo_->GetCommit(blame[i].commit).timestamp > horizon) {
        return false;  // someone touched the function recently
      }
    }
    return true;
  }

 private:
  const Project& project_;
  const Repository* repo_;
  const PruneOptions& options_;
  int64_t now_ = 0;
};

// --- Pattern 4: peer definitions --------------------------------------------

struct PeerKey {
  bool operator<(const PeerKey& other) const {
    if (is_param != other.is_param) {
      return is_param < other.is_param;
    }
    if (group != other.group) {
      return group < other.group;
    }
    return index < other.index;
  }
  bool is_param = false;
  std::string group;  // callee name, or signature string for parameters
  int index = 0;      // parameter index (0 for return values)
};

std::string SignatureOf(const FunctionDecl* decl) {
  // The full signature — return type included — defines the peer group.
  std::string sig = decl->return_type != nullptr ? decl->return_type->ToString() : "?";
  sig += "(";
  for (const VarDecl* param : decl->params) {
    sig += param->type != nullptr ? param->type->ToString() : "?";
    sig += ",";
  }
  return sig + ")";
}

class PeerMatcher {
 public:
  PeerMatcher(const Project& project, const std::vector<UnusedDefCandidate>& all,
              const PruneOptions& options)
      : options_(options) {
    // Return values: a call site is "unused" when its result is ignored at
    // the call or when the variable it was assigned to is itself an unused
    // definition (the pre-pruning candidate set tells us the latter).
    // Assigned-but-unused call results are matched to their call sites by
    // (callee, file, line): the store and the call share a line but not a
    // column.
    std::set<std::tuple<std::string, FileId, int>> unused_assigned;
    std::set<std::pair<std::string, int>> unused_params;  // (function, index)
    for (const UnusedDefCandidate& cand : all) {
      if (cand.checker != "unused-def") {
        continue;  // peer statistics are defined over unused definitions only
      }
      if (cand.is_param && cand.var != nullptr) {
        unused_params.insert({cand.function, cand.var->param_index});
      } else if (!cand.callee_name.empty() && !cand.is_synthetic) {
        unused_assigned.insert(
            {cand.callee_name, cand.def_loc.file, cand.def_loc.line});
      }
    }

    for (const auto& [name, info] : project.function_index()) {
      PeerKey key{false, name, 0};
      PeerStats& stats = groups_[key];
      for (const CallSite& site : info.call_sites) {
        ++stats.total;
        if (!site.result_assigned ||
            unused_assigned.count({name, site.loc.file, site.loc.line}) > 0) {
          ++stats.unused;
        }
      }
    }

    // Parameters: peers are the same position of functions with identical
    // signatures.
    std::map<std::string, std::vector<const FunctionDecl*>> by_signature;
    for (const auto& [name, info] : project.function_index()) {
      if (info.def_decl != nullptr) {
        by_signature[SignatureOf(info.def_decl)].push_back(info.def_decl);
      }
    }
    for (const auto& [sig, funcs] : by_signature) {
      for (size_t index = 0; index < funcs.front()->params.size(); ++index) {
        PeerKey key{true, sig, static_cast<int>(index)};
        PeerStats& stats = groups_[key];
        for (const FunctionDecl* func : funcs) {
          if (index >= func->params.size()) {
            continue;
          }
          ++stats.total;
          if (unused_params.count({func->name, static_cast<int>(index)}) > 0) {
            ++stats.unused;
          }
        }
      }
    }
  }

  bool Matches(const UnusedDefCandidate& cand, const Project& project) const {
    PeerKey key;
    if (cand.is_param && cand.var != nullptr) {
      const FunctionInfo* info = project.FindFunction(cand.function);
      if (info == nullptr || info->def_decl == nullptr) {
        return false;
      }
      key = {true, SignatureOf(info->def_decl), cand.var->param_index};
    } else if (!cand.callee_name.empty()) {
      key = {false, cand.callee_name, 0};
    } else {
      return false;
    }
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      return false;
    }
    const PeerStats& stats = it->second;
    return stats.total > options_.peer_min_occurrences &&
           static_cast<double>(stats.unused) >
               options_.peer_unused_fraction * static_cast<double>(stats.total);
  }

 private:
  struct PeerStats {
    int total = 0;
    int unused = 0;
  };
  std::map<PeerKey, PeerStats> groups_;
  PruneOptions options_;
};

}  // namespace

PruneStats RunPruning(const Project& project, std::vector<UnusedDefCandidate>& candidates,
                      const PruneOptions& options,
                      const std::vector<UnusedDefCandidate>* peer_universe,
                      const Repository* repo) {
  PruneStats stats;
  stats.original = static_cast<int>(candidates.size());

  CursorMatcher cursor;
  StaleCodeMatcher stale(project, repo, options);
  std::unique_ptr<PeerMatcher> peers;
  {
    TraceSpan span("prune.peer_stats", "pipeline");
    peers = std::make_unique<PeerMatcher>(
        project, peer_universe != nullptr ? *peer_universe : candidates, options);
  }

  TraceSpan span("prune.match", "pipeline");
  span.Arg("candidates", static_cast<int64_t>(candidates.size()));
  for (UnusedDefCandidate& cand : candidates) {
    if (cand.pruned_by != PruneReason::kNone) {
      continue;
    }
    if (cand.checker != "unused-def") {
      // The §5 patterns model intentional *unused definitions* (cursor loops,
      // config-guarded uses, customarily-ignored values); other checkers'
      // findings pass through unpruned — keeping a checker's findings
      // identical whether it runs alone or alongside others.
      continue;
    }
    if (options.config_dependency) {
      ++stats.config_tested;
      if (MatchesConfigDependency(project, cand)) {
        cand.pruned_by = PruneReason::kConfigDependency;
        ++stats.config_dependency;
        continue;
      }
    }
    if (options.cursor) {
      ++stats.cursor_tested;
      if (cursor.Matches(cand)) {
        cand.pruned_by = PruneReason::kCursor;
        ++stats.cursor;
        continue;
      }
    }
    if (options.unused_hints) {
      ++stats.hints_tested;
      if (MatchesUnusedHint(project, cand)) {
        cand.pruned_by = PruneReason::kUnusedHint;
        ++stats.unused_hints;
        continue;
      }
    }
    if (options.peer_definition) {
      ++stats.peer_tested;
      if (peers->Matches(cand, project)) {
        cand.pruned_by = PruneReason::kPeerDefinition;
        ++stats.peer_definition;
        continue;
      }
    }
    if (options.stale_code) {
      ++stats.stale_tested;
      if (stale.Matches(cand)) {
        cand.pruned_by = PruneReason::kStaleCode;
        ++stats.stale_code;
        continue;
      }
    }
  }
  stats.remaining = stats.original - stats.TotalPruned();

  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    struct {
      const char* name;
      int tested;
      int matched;
    } patterns[] = {
        {"config_dependency", stats.config_tested, stats.config_dependency},
        {"cursor", stats.cursor_tested, stats.cursor},
        {"unused_hints", stats.hints_tested, stats.unused_hints},
        {"peer_definition", stats.peer_tested, stats.peer_definition},
        {"stale_code", stats.stale_tested, stats.stale_code},
    };
    for (const auto& pattern : patterns) {
      registry.GetCounter(std::string("prune.") + pattern.name + ".tested")
          .Add(static_cast<uint64_t>(pattern.tested));
      registry.GetCounter(std::string("prune.") + pattern.name + ".pruned")
          .Add(static_cast<uint64_t>(pattern.matched));
    }
  }
  return stats;
}

}  // namespace vc

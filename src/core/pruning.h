// False-positive pruning (§5, Table 1). Four patterns, applied as a pipeline
// in the paper's order; a candidate is charged to the first pattern that
// matches (matching the paper's note that prune counts reflect pipeline
// order):
//
//   1. Configuration dependency — a use of the variable exists in the raw
//      source inside an #if/#ifdef region of the same function (it may be
//      compiled in under another configuration).
//   2. Cursor — the definition is `v = v ± c` and the variable is incremented
//      repeatedly by the same constant (the "moving cursor" idiom).
//   3. Unused hints — the developer marked intent: an unused attribute on the
//      declaration, or the keyword "unused" on the definition/declaration
//      line (comments included).
//   4. Peer definitions — most other call sites of the same callee (or the
//      same parameter position of same-signature functions) also leave the
//      value unused; with > 10 occurrences and > half unused, the value is
//      evidently one developers do not care about (printf's return value).

#ifndef VALUECHECK_SRC_CORE_PRUNING_H_
#define VALUECHECK_SRC_CORE_PRUNING_H_

#include <vector>

#include "src/core/project.h"
#include "src/core/unused_def.h"

namespace vc {

struct PruneOptions {
  bool config_dependency = true;
  bool cursor = true;
  bool unused_hints = true;
  bool peer_definition = true;
  // Peer-definition thresholds (§5.4): report only when occurrences are over
  // `peer_min_occurrences` and more than `peer_unused_fraction` are unused.
  int peer_min_occurrences = 10;
  double peer_unused_fraction = 0.5;
  // Extension (§9.1): prune candidates whose defining commit message marks
  // them as debugging/deprecated/legacy code, or that sit in functions
  // untouched for `stale_days` with a debug marker on the definition line.
  // The paper describes but does not enable this (overhead concerns); it is
  // off by default here too.
  bool stale_code = false;
  int stale_days = 730;
  // Reference timestamp for staleness; 0 = the repository's newest commit.
  int64_t now_timestamp = 0;
};

struct PruneStats {
  int original = 0;
  int config_dependency = 0;
  int cursor = 0;
  int unused_hints = 0;
  int peer_definition = 0;
  int stale_code = 0;
  int remaining = 0;

  // Observability: candidates each pattern examined (a candidate charged to
  // an earlier pattern is never tested by later ones, matching pipeline
  // order). rejected = tested - matched, where matched is the count above.
  int config_tested = 0;
  int cursor_tested = 0;
  int hints_tested = 0;
  int peer_tested = 0;
  int stale_tested = 0;

  int TotalPruned() const {
    return config_dependency + cursor + unused_hints + peer_definition + stale_code;
  }
};

// Marks pruned candidates via `pruned_by` (the list keeps its size; callers
// filter on pruned_by == kNone). Peer-definition usage statistics are
// computed over `peer_universe` when given (the complete pre-filter candidate
// set — a value may be "usually unused" even when most of those unused sites
// are same-author), otherwise over `candidates` itself.
// `repo` is only needed when options.stale_code is enabled.
PruneStats RunPruning(const Project& project, std::vector<UnusedDefCandidate>& candidates,
                      const PruneOptions& options = PruneOptions(),
                      const std::vector<UnusedDefCandidate>* peer_universe = nullptr,
                      const Repository* repo = nullptr);

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_PRUNING_H_

#include "src/core/ranking.h"

#include <algorithm>
#include <chrono>

#include "src/familiarity/ea_model.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace vc {

namespace {

// Candidates with no attributable author sort last: they carry no familiarity
// signal, so they should not displace scored candidates.
constexpr double kUnknownFamiliarity = 1e9;

}  // namespace

void RankCandidates(std::vector<UnusedDefCandidate>& candidates, const Repository* repo,
                    const RankingOptions& options, RankStats* stats) {
  if (!options.enabled) {
    return;
  }
  RankStats local;
  const bool measure = MetricsEnabled();
  {
    TraceSpan span("rank.score", "pipeline");
    span.Arg("candidates", static_cast<int64_t>(candidates.size()));
    for (UnusedDefCandidate& cand : candidates) {
      if (repo == nullptr || cand.responsible_author == kInvalidAuthor) {
        cand.familiarity = kUnknownFamiliarity;
        ++local.unknown;
        continue;
      }
      auto model_start = measure ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point();
      if (options.use_ea_model) {
        cand.familiarity = EaScoreFor(*repo, cand.responsible_author, cand.file);
      } else {
        cand.familiarity = DokScoreFor(*repo, cand.responsible_author, cand.file, options.weights);
      }
      if (measure) {
        double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - model_start)
                .count();
        local.model_seconds += seconds;
        MetricsRegistry::Global().GetHistogram("rank.model_seconds").Record(seconds);
      }
      ++local.scored;
    }
  }
  {
    TraceSpan span("rank.sort", "pipeline");
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const UnusedDefCandidate& a, const UnusedDefCandidate& b) {
                       if (a.familiarity != b.familiarity) {
                         return a.familiarity < b.familiarity;
                       }
                       if (a.file != b.file) {
                         return a.file < b.file;
                       }
                       return a.def_loc < b.def_loc;
                     });
  }
  if (measure) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("rank.scored").Add(local.scored);
    registry.GetCounter("rank.unknown").Add(local.unknown);
  }
  if (stats != nullptr) {
    *stats = local;
  }
}

}  // namespace vc

#include "src/core/ranking.h"

#include <algorithm>

#include "src/familiarity/ea_model.h"

namespace vc {

namespace {

// Candidates with no attributable author sort last: they carry no familiarity
// signal, so they should not displace scored candidates.
constexpr double kUnknownFamiliarity = 1e9;

}  // namespace

void RankCandidates(std::vector<UnusedDefCandidate>& candidates, const Repository* repo,
                    const RankingOptions& options) {
  if (!options.enabled) {
    return;
  }
  for (UnusedDefCandidate& cand : candidates) {
    if (repo == nullptr || cand.responsible_author == kInvalidAuthor) {
      cand.familiarity = kUnknownFamiliarity;
      continue;
    }
    if (options.use_ea_model) {
      cand.familiarity = EaScoreFor(*repo, cand.responsible_author, cand.file);
    } else {
      cand.familiarity = DokScoreFor(*repo, cand.responsible_author, cand.file, options.weights);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const UnusedDefCandidate& a, const UnusedDefCandidate& b) {
                     if (a.familiarity != b.familiarity) {
                       return a.familiarity < b.familiarity;
                     }
                     if (a.file != b.file) {
                       return a.file < b.file;
                     }
                     return a.def_loc < b.def_loc;
                   });
}

}  // namespace vc

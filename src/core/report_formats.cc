#include "src/core/report_formats.h"

#include "src/support/json_writer.h"

namespace vc {

namespace {

void WriteFinding(JsonWriter& json, const UnusedDefCandidate& cand, const Repository* repo) {
  json.BeginObject();
  json.String("file", cand.file);
  json.Int("line", cand.def_loc.line);
  json.Int("column", cand.def_loc.column);
  json.String("function", cand.function);
  json.String("variable", cand.slot_name);
  json.String("kind", CandidateKindName(cand.kind));
  json.Bool("cross_scope", cand.cross_scope);
  json.Bool("is_parameter", cand.is_param);
  json.Bool("ignored_call_result", cand.is_synthetic);
  json.Bool("field_sensitive", cand.is_field_slot);
  if (!cand.callee_name.empty()) {
    json.String("value_from_call", cand.callee_name);
  }
  if (!cand.overwriter_locs.empty()) {
    json.Key("overwritten_at").BeginArray();
    for (const SourceLoc& loc : cand.overwriter_locs) {
      json.IntValue(loc.line);
    }
    json.EndArray();
  }
  if (repo != nullptr && cand.def_author != kInvalidAuthor) {
    json.String("defined_by", repo->GetAuthor(cand.def_author).name);
  }
  if (repo != nullptr && cand.responsible_author != kInvalidAuthor) {
    json.String("responsible", repo->GetAuthor(cand.responsible_author).name);
  }
  json.Double("familiarity", cand.familiarity);
  json.EndObject();
}

}  // namespace

std::string ReportToJson(const ValueCheckReport& report, const Repository* repo) {
  JsonWriter json;
  json.BeginObject();
  json.String("tool", "valuecheck");
  // Schema history: v1 had no version field; v2 adds schema_version plus the
  // timing/parallelism block (jobs, parse_seconds, detect_seconds). See
  // DESIGN.md §"JSON report schema" for the documented contract.
  json.Int("schema_version", 2);
  json.Double("analysis_seconds", report.analysis_seconds);
  json.Double("parse_seconds", report.parse_seconds);
  json.Double("detect_seconds", report.detect_seconds);
  json.Int("jobs", report.jobs);

  json.Key("prune_stats").BeginObject();
  json.Int("candidates", report.prune_stats.original);
  json.Int("config_dependency", report.prune_stats.config_dependency);
  json.Int("cursor", report.prune_stats.cursor);
  json.Int("unused_hints", report.prune_stats.unused_hints);
  json.Int("peer_definition", report.prune_stats.peer_definition);
  json.Int("stale_code", report.prune_stats.stale_code);
  json.Int("remaining", report.prune_stats.remaining);
  json.EndObject();

  json.Int("non_cross_scope", report.non_cross_scope);
  json.Key("findings").BeginArray();
  for (const UnusedDefCandidate& cand : report.findings) {
    WriteFinding(json, cand, repo);
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string ReportToSarif(const ValueCheckReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.String("$schema",
              "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
              "sarif-schema-2.1.0.json");
  json.String("version", "2.1.0");
  json.Key("runs").BeginArray().BeginObject();

  json.Key("tool").BeginObject().Key("driver").BeginObject();
  json.String("name", "valuecheck");
  json.String("informationUri", "https://github.com/FloridSleeves/ValueCheck");
  json.String("version", "1.0.0");
  json.Key("rules").BeginArray();
  const char* rule_ids[] = {"overwritten-def", "unused-retval", "unused-param",
                            "overwritten-param", "plain-unused"};
  const char* rule_text[] = {
      "Definition overwritten by another developer before any use",
      "Function return value ignored or overwritten across author scopes",
      "Caller-provided argument value never used by the callee",
      "Caller-provided argument value overwritten inside the callee",
      "Unused definition (not on an authorship boundary)"};
  for (size_t i = 0; i < 5; ++i) {
    json.BeginObject();
    json.String("id", rule_ids[i]);
    json.Key("shortDescription").BeginObject();
    json.String("text", rule_text[i]);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();    // rules
  json.EndObject();   // driver
  json.EndObject();   // tool

  json.Key("results").BeginArray();
  for (const UnusedDefCandidate& cand : report.findings) {
    json.BeginObject();
    json.String("ruleId", CandidateKindName(cand.kind));
    json.String("level", "warning");
    json.Key("message").BeginObject();
    json.String("text", "Unused definition of '" + cand.slot_name + "' in function '" +
                            cand.function + "' (" + CandidateKindName(cand.kind) + ")");
    json.EndObject();
    json.Key("locations").BeginArray().BeginObject();
    json.Key("physicalLocation").BeginObject();
    json.Key("artifactLocation").BeginObject();
    json.String("uri", cand.file);
    json.EndObject();
    json.Key("region").BeginObject();
    json.Int("startLine", cand.def_loc.line);
    json.Int("startColumn", cand.def_loc.column > 0 ? cand.def_loc.column : 1);
    json.EndObject();
    json.EndObject();   // physicalLocation
    json.EndObject().EndArray();  // locations
    json.Key("properties").BeginObject();
    json.Double("familiarity", cand.familiarity);
    json.Bool("crossScope", cand.cross_scope);
    json.EndObject();
    json.EndObject();  // result
  }
  json.EndArray();   // results
  json.EndObject();  // run
  json.EndArray();   // runs
  json.EndObject();
  return json.str();
}

}  // namespace vc

#include "src/core/report_formats.h"

#include "src/checkers/checker.h"
#include "src/checkers/registry.h"
#include "src/core/incremental.h"
#include "src/support/json_writer.h"
#include "src/support/table_writer.h"

namespace vc {

namespace {

void WriteFinding(JsonWriter& json, const UnusedDefCandidate& cand, const Repository* repo) {
  json.BeginObject();
  if (!cand.fingerprint.empty()) {
    json.String("fingerprint", cand.fingerprint);
  }
  json.String("file", cand.file);
  json.Int("line", cand.def_loc.line);
  json.Int("column", cand.def_loc.column);
  json.String("function", cand.function);
  json.String("variable", cand.slot_name);
  json.String("checker", cand.checker);
  json.String("kind", CandidateKindName(cand.kind));
  json.Bool("cross_scope", cand.cross_scope);
  json.Bool("is_parameter", cand.is_param);
  json.Bool("ignored_call_result", cand.is_synthetic);
  json.Bool("field_sensitive", cand.is_field_slot);
  if (!cand.callee_name.empty()) {
    json.String("value_from_call", cand.callee_name);
  }
  if (!cand.overwriter_locs.empty()) {
    json.Key("overwritten_at").BeginArray();
    for (const SourceLoc& loc : cand.overwriter_locs) {
      json.IntValue(loc.line);
    }
    json.EndArray();
  }
  if (repo != nullptr && cand.def_author != kInvalidAuthor) {
    json.String("defined_by", repo->GetAuthor(cand.def_author).name);
  }
  if (repo != nullptr && cand.responsible_author != kInvalidAuthor) {
    json.String("responsible", repo->GetAuthor(cand.responsible_author).name);
  }
  json.Double("familiarity", cand.familiarity);
  json.EndObject();
}

}  // namespace

std::string ReportToJson(const AnalysisReport& report, const Repository* repo,
                         const IncrementalResult* incremental) {
  JsonWriter json;
  json.BeginObject();
  json.String("tool", "valuecheck");
  // Schema history: v1 had no version field; v2 added schema_version plus the
  // timing/parallelism block (jobs, parse_seconds, detect_seconds); v3 added
  // the diagnostics block and, when the run collected metrics, the metrics
  // object (per-stage seconds, per-pattern prune counters, thread-pool
  // activity); v4 adds the per-finding "fingerprint" — the stable
  // content-based identity the run ledger diffs on (src/core/fingerprint.h);
  // v5 adds the always-present fault-isolation block: "degraded" plus the
  // "quarantined" array of {path, function, stage, reason} records; v6 adds
  // the checker framework's identity channel — the top-level "checkers" array
  // (the resolved checker set, registry order), a "checker" field on every
  // finding, and a "checker" field on quarantine records that name one; v7
  // adds the always-present "checker_stats" array (per-checker candidate and
  // finding counts) and, when the run collected metrics, the "memory" block —
  // per-category byte/object counts, the per-stage tracked-byte peaks, and
  // the (nondeterministic) peak-RSS samples; v8 adds the optional
  // "incremental" block (present only for per-commit engine runs): commit id,
  // files/functions work accounting, fingerprint-level carried/new/fixed
  // deltas, and the parse/detect cache hit counters.
  // See DESIGN.md §"JSON report schema" for the contract.
  json.Int("schema_version", 8);
  json.Double("analysis_seconds", report.analysis_seconds);
  json.Double("parse_seconds", report.parse_seconds);
  json.Double("detect_seconds", report.detect_seconds);
  json.Int("jobs", report.jobs);
  json.Key("checkers").BeginArray();
  for (const std::string& name : report.checkers) {
    json.StringValue(name);
  }
  json.EndArray();
  json.Key("checker_stats").BeginArray();
  for (const AnalysisReport::CheckerStat& stat : report.checker_stats) {
    json.BeginObject();
    json.String("checker", stat.name);
    json.Int("candidates", static_cast<int64_t>(stat.candidates));
    json.Int("findings", static_cast<int64_t>(stat.findings));
    json.EndObject();
  }
  json.EndArray();
  json.Bool("degraded", report.degraded);

  json.Key("diagnostics").BeginObject();
  json.Int("warnings", report.diagnostic_warnings);
  json.Int("errors", report.diagnostic_errors);
  json.EndObject();

  json.Key("quarantined").BeginArray();
  for (const QuarantinedUnit& unit : report.quarantined) {
    json.BeginObject();
    json.String("path", unit.path);
    json.String("function", unit.function);
    json.String("stage", unit.stage);
    json.String("reason", unit.reason);
    if (!unit.checker.empty()) {
      json.String("checker", unit.checker);
    }
    json.EndObject();
  }
  json.EndArray();

  if (incremental != nullptr) {
    json.Key("incremental").BeginObject();
    json.Int("commit", static_cast<int64_t>(incremental->commit));
    json.Int("files_changed", incremental->files_changed);
    json.Int("files_reparsed", incremental->files_reparsed);
    json.Int("functions_total", incremental->functions_total);
    json.Int("functions_dirty", incremental->functions_dirty);
    json.Int("findings_carried", incremental->findings_carried);
    json.Int("findings_new", incremental->findings_new);
    json.Int("findings_fixed", incremental->findings_fixed);
    json.Double("seconds", incremental->seconds);
    const CacheStats& cache = incremental->cache;
    json.Key("cache").BeginObject();
    json.Int("parse_hits", static_cast<int64_t>(cache.parse_hits));
    json.Int("parse_misses", static_cast<int64_t>(cache.parse_misses));
    json.Int("detect_carried", static_cast<int64_t>(cache.detect_carried));
    json.Int("detect_recomputed", static_cast<int64_t>(cache.detect_recomputed));
    json.Double("detect_hit_rate", cache.DetectHitRate());
    json.Int("disk_loads", static_cast<int64_t>(cache.disk_loads));
    json.Int("disk_stores", static_cast<int64_t>(cache.disk_stores));
    json.Int("disk_corrupt", static_cast<int64_t>(cache.disk_corrupt));
    json.EndObject();
    json.EndObject();
  }

  json.Key("prune_stats").BeginObject();
  json.Int("candidates", report.prune_stats.original);
  json.Int("config_dependency", report.prune_stats.config_dependency);
  json.Int("cursor", report.prune_stats.cursor);
  json.Int("unused_hints", report.prune_stats.unused_hints);
  json.Int("peer_definition", report.prune_stats.peer_definition);
  json.Int("stale_code", report.prune_stats.stale_code);
  json.Int("remaining", report.prune_stats.remaining);
  json.EndObject();

  if (report.stage.collected) {
    const StageMetrics& stage = report.stage;
    json.Key("metrics").BeginObject();

    json.Key("stages").BeginObject();
    struct {
      const char* name;
      double seconds;
    } stages[] = {
        {"parse", stage.parse_seconds},       {"detect", stage.detect_seconds},
        {"authorship", stage.authorship_seconds}, {"cross_scope_filter", stage.filter_seconds},
        {"prune", stage.prune_seconds},       {"rank", stage.rank_seconds},
    };
    for (const auto& entry : stages) {
      json.Key(entry.name).BeginObject();
      json.Double("seconds", entry.seconds);
      json.EndObject();
    }
    json.EndObject();  // stages

    json.Key("counters").BeginObject();
    json.Int("files_parsed", static_cast<int64_t>(stage.files_parsed));
    json.Int("functions_analyzed", static_cast<int64_t>(stage.functions_analyzed));
    json.Int("candidates_detected", static_cast<int64_t>(stage.candidates_detected));
    json.Int("rank_scored", static_cast<int64_t>(stage.rank_scored));
    json.Int("rank_unknown", static_cast<int64_t>(stage.rank_unknown));
    json.Double("rank_model_seconds", stage.rank_model_seconds);
    json.EndObject();

    json.Key("prune_patterns").BeginObject();
    const PruneStats& prune = report.prune_stats;
    struct {
      const char* name;
      int tested;
      int pruned;
    } patterns[] = {
        {"config_dependency", prune.config_tested, prune.config_dependency},
        {"cursor", prune.cursor_tested, prune.cursor},
        {"unused_hints", prune.hints_tested, prune.unused_hints},
        {"peer_definition", prune.peer_tested, prune.peer_definition},
        {"stale_code", prune.stale_tested, prune.stale_code},
    };
    for (const auto& pattern : patterns) {
      json.Key(pattern.name).BeginObject();
      json.Int("tested", pattern.tested);
      json.Int("pruned", pattern.pruned);
      json.Int("rejected", pattern.tested - pattern.pruned);
      json.EndObject();
    }
    json.EndObject();  // prune_patterns

    json.Key("thread_pool").BeginObject();
    json.Int("workers", stage.pool.workers);
    json.Int("parallel_fors", static_cast<int64_t>(stage.pool.parallel_fors));
    json.Int("tasks_executed", static_cast<int64_t>(stage.pool.tasks_executed));
    json.Int("chunks_executed", static_cast<int64_t>(stage.pool.chunks_executed));
    json.Int("steals", static_cast<int64_t>(stage.pool.steals));
    json.Int("queue_depth_hwm", static_cast<int64_t>(stage.pool.queue_depth_hwm));
    json.Double("worker_idle_seconds", stage.pool.worker_idle_seconds);
    json.EndObject();

    json.EndObject();  // metrics
  }

  if (report.memory.collected) {
    const MemoryStats& mem = report.memory;
    json.Key("memory").BeginObject();
    json.Key("categories").BeginObject();
    for (int c = 0; c < kMemCategoryCount; ++c) {
      json.Key(MemCategoryName(static_cast<MemCategory>(c))).BeginObject();
      json.Int("bytes", static_cast<int64_t>(mem.categories[c].bytes));
      json.Int("objects", static_cast<int64_t>(mem.categories[c].objects));
      json.EndObject();
    }
    json.EndObject();  // categories
    json.Int("tracked_bytes", static_cast<int64_t>(mem.TrackedBytes()));
    json.Int("tracked_objects", static_cast<int64_t>(mem.TrackedObjects()));
    json.Int("peak_rss_bytes", static_cast<int64_t>(mem.peak_rss_bytes));
    json.Key("stages").BeginArray();
    for (const StageMemory& stage_mem : mem.stages) {
      json.BeginObject();
      json.String("stage", stage_mem.stage);
      json.Int("tracked_bytes_delta", static_cast<int64_t>(stage_mem.tracked_bytes_delta));
      json.Int("tracked_bytes_peak", static_cast<int64_t>(stage_mem.tracked_bytes_peak));
      json.Int("rss_bytes", static_cast<int64_t>(stage_mem.rss_bytes));
      json.EndObject();
    }
    json.EndArray();  // stages
    json.EndObject();  // memory
  }

  json.Int("non_cross_scope", report.non_cross_scope);
  json.Key("findings").BeginArray();
  for (const UnusedDefCandidate& cand : report.findings) {
    WriteFinding(json, cand, repo);
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string ReportToSarif(const AnalysisReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.String("$schema",
              "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
              "sarif-schema-2.1.0.json");
  json.String("version", "2.1.0");
  json.Key("runs").BeginArray().BeginObject();

  json.Key("tool").BeginObject().Key("driver").BeginObject();
  json.String("name", "valuecheck");
  json.String("informationUri", "https://github.com/FloridSleeves/ValueCheck");
  json.String("version", "1.0.0");
  json.Key("rules").BeginArray();
  const char* rule_ids[] = {"overwritten-def", "unused-retval", "unused-param",
                            "overwritten-param", "plain-unused"};
  const char* rule_text[] = {
      "Definition overwritten by another developer before any use",
      "Function return value ignored or overwritten across author scopes",
      "Caller-provided argument value never used by the callee",
      "Caller-provided argument value overwritten inside the callee",
      "Unused definition (not on an authorship boundary)"};
  for (size_t i = 0; i < 5; ++i) {
    json.BeginObject();
    json.String("id", rule_ids[i]);
    json.Key("shortDescription").BeginObject();
    json.String("text", rule_text[i]);
    json.EndObject();
    json.EndObject();
  }
  // Checkers beyond unused-def get one rule each, named after the checker
  // (the per-kind rules above cover the five unused-def kinds).
  for (const std::string& name : report.checkers) {
    if (name == "unused-def") {
      continue;
    }
    const Checker* checker = CheckerRegistry::Global().Find(name);
    json.BeginObject();
    json.String("id", name);
    json.Key("shortDescription").BeginObject();
    json.String("text", checker != nullptr ? checker->description() : name);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();    // rules
  json.EndObject();   // driver
  json.EndObject();   // tool

  json.Key("results").BeginArray();
  for (const UnusedDefCandidate& cand : report.findings) {
    const bool unused_def = cand.checker == "unused-def";
    json.BeginObject();
    // unused-def keeps its historical per-kind rule ids; every other checker
    // reports under its own single rule.
    json.String("ruleId", unused_def ? CandidateKindName(cand.kind) : cand.checker);
    json.String("level", "warning");
    json.Key("message").BeginObject();
    if (unused_def) {
      json.String("text", "Unused definition of '" + cand.slot_name + "' in function '" +
                              cand.function + "' (" + CandidateKindName(cand.kind) + ")");
    } else {
      json.String("text", cand.checker + ": '" + cand.slot_name + "' in function '" +
                              cand.function + "' (" + CandidateKindName(cand.kind) + ")");
    }
    json.EndObject();
    json.Key("locations").BeginArray().BeginObject();
    json.Key("physicalLocation").BeginObject();
    json.Key("artifactLocation").BeginObject();
    json.String("uri", cand.file);
    json.EndObject();
    json.Key("region").BeginObject();
    json.Int("startLine", cand.def_loc.line);
    json.Int("startColumn", cand.def_loc.column > 0 ? cand.def_loc.column : 1);
    json.EndObject();
    json.EndObject();   // physicalLocation
    json.EndObject().EndArray();  // locations
    if (!cand.fingerprint.empty()) {
      // SARIF's stable-identity channel; code-scanning UIs use it to match
      // results across runs exactly like the run ledger does.
      json.Key("partialFingerprints").BeginObject();
      json.String("valueCheckFingerprint/v1", cand.fingerprint);
      json.EndObject();
    }
    json.Key("properties").BeginObject();
    json.Double("familiarity", cand.familiarity);
    json.Bool("crossScope", cand.cross_scope);
    json.EndObject();
    json.EndObject();  // result
  }
  json.EndArray();   // results
  json.EndObject();  // run
  json.EndArray();   // runs
  json.EndObject();
  return json.str();
}

std::string RenderStageMetricsTable(const AnalysisReport& report) {
  if (!report.stage.collected) {
    return "";
  }
  const StageMetrics& stage = report.stage;
  const PruneStats& prune = report.prune_stats;
  auto ms = [](double seconds) { return FormatDouble(seconds * 1e3, 3); };

  TableWriter table({"stage", "ms", "detail"});
  table.AddRow({"parse", ms(stage.parse_seconds),
                std::to_string(stage.files_parsed) + " file(s)"});
  table.AddRow({"detect", ms(stage.detect_seconds),
                std::to_string(stage.functions_analyzed) + " function(s), " +
                    std::to_string(stage.candidates_detected) + " candidate(s)"});
  table.AddRow({"authorship", ms(stage.authorship_seconds), ""});
  table.AddRow({"cross-scope-filter", ms(stage.filter_seconds),
                std::to_string(report.non_cross_scope) + " dropped"});
  table.AddRow({"prune", ms(stage.prune_seconds),
                std::to_string(prune.TotalPruned()) + "/" + std::to_string(prune.original) +
                    " pruned"});
  struct {
    const char* name;
    int tested;
    int pruned;
  } patterns[] = {
      {"prune:config-dependency", prune.config_tested, prune.config_dependency},
      {"prune:cursor", prune.cursor_tested, prune.cursor},
      {"prune:unused-hints", prune.hints_tested, prune.unused_hints},
      {"prune:peer-definition", prune.peer_tested, prune.peer_definition},
      {"prune:stale-code", prune.stale_tested, prune.stale_code},
  };
  for (const auto& pattern : patterns) {
    table.AddRow({pattern.name, "",
                  std::to_string(pattern.pruned) + " pruned / " +
                      std::to_string(pattern.tested - pattern.pruned) + " rejected of " +
                      std::to_string(pattern.tested) + " tested"});
  }
  table.AddRow({"rank", ms(stage.rank_seconds),
                std::to_string(stage.rank_scored) + " scored, " +
                    std::to_string(stage.rank_unknown) + " unknown; model " +
                    ms(stage.rank_model_seconds) + "ms"});
  table.AddRow({"total", ms(report.analysis_seconds), "jobs=" + std::to_string(report.jobs)});

  TableWriter pool({"thread-pool", "value"});
  pool.AddRow({"workers", std::to_string(stage.pool.workers)});
  pool.AddRow({"parallel_fors", std::to_string(stage.pool.parallel_fors)});
  pool.AddRow({"tasks_executed", std::to_string(stage.pool.tasks_executed)});
  pool.AddRow({"chunks_executed", std::to_string(stage.pool.chunks_executed)});
  pool.AddRow({"steals", std::to_string(stage.pool.steals)});
  pool.AddRow({"queue_depth_hwm", std::to_string(stage.pool.queue_depth_hwm)});
  pool.AddRow({"worker_idle_seconds", FormatDouble(stage.pool.worker_idle_seconds, 3)});

  std::string out = table.RenderText() + "\n" + pool.RenderText();
  if (report.memory.collected) {
    const MemoryStats& mem = report.memory;
    auto mb = [](uint64_t bytes) {
      return FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0), 3);
    };
    TableWriter memory({"memory", "bytes", "MB", "objects"});
    for (int c = 0; c < kMemCategoryCount; ++c) {
      memory.AddRow({MemCategoryName(static_cast<MemCategory>(c)),
                     std::to_string(mem.categories[c].bytes), mb(mem.categories[c].bytes),
                     std::to_string(mem.categories[c].objects)});
    }
    memory.AddRow({"tracked_total", std::to_string(mem.TrackedBytes()),
                   mb(mem.TrackedBytes()), std::to_string(mem.TrackedObjects())});
    memory.AddRow(
        {"peak_rss", std::to_string(mem.peak_rss_bytes), mb(mem.peak_rss_bytes), ""});
    out += "\n" + memory.RenderText();
  }
  return out;
}

}  // namespace vc

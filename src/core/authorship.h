// Inter-procedural authorship analysis (§4.2): classifies each detected
// unused definition as cross-scope or not by comparing line-level authorship
// (from the repository's blame) across the developer-interaction boundary:
//
//   1. unused return value  — call-site author vs the authors of every return
//      statement in the callee (library callees count as a different author);
//   2. unused/overwritten parameter — call-site authors vs the parameter's
//      author (or the author of the store that overwrites it in the callee);
//   3. overwritten definition — the definition's author vs the authors of the
//      nearest overwriting definitions on all successor paths (DefineSet).

#ifndef VALUECHECK_SRC_CORE_AUTHORSHIP_H_
#define VALUECHECK_SRC_CORE_AUTHORSHIP_H_

#include <vector>

#include "src/core/project.h"
#include "src/core/unused_def.h"
#include "src/vcs/repository.h"

namespace vc {

class AuthorshipAnalyzer {
 public:
  // `repo` may be null; every author is then unknown and nothing classifies
  // as cross-scope except library return values. When `at_commit` is given,
  // blame is evaluated at that commit instead of head (incremental analysis
  // sees the history as of the commit under analysis).
  AuthorshipAnalyzer(const Project& project, const Repository* repo,
                     CommitId at_commit = kInvalidCommit)
      : project_(project), repo_(repo), at_commit_(at_commit) {}

  // Author of the line containing `loc` per blame, or kInvalidAuthor.
  AuthorId AuthorOfLoc(const SourceLoc& loc) const;

  // Fills cross_scope / kind / def_author / responsible_author.
  void Classify(UnusedDefCandidate& cand) const;

  void ClassifyAll(std::vector<UnusedDefCandidate>& candidates) const {
    for (UnusedDefCandidate& cand : candidates) {
      Classify(cand);
    }
  }

 private:
  bool AllDifferent(AuthorId author, const std::vector<AuthorId>& others) const;

  // Cross-scope classification for non-unused-def checkers: the checker owns
  // the kind; authorship decides the boundary bit via the overwriter rule
  // (overwriter_locs) or, failing that, the callee rule (callee_name).
  void ClassifyGeneric(UnusedDefCandidate& cand) const;

  const Project& project_;
  const Repository* repo_;
  CommitId at_commit_ = kInvalidCommit;
  // Historical blame results are recomputed per path, so cache them.
  mutable std::map<std::string, std::vector<LineOrigin>> blame_cache_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_AUTHORSHIP_H_

// Deprecated entry points, kept as thin shims over the unified vc::Analysis
// facade (src/core/analysis.h). New code should construct an Analysis with
// AnalysisOptions and call Run/RunOnRepository/RunOnSources directly:
//
//   vc::AnalysisOptions options;
//   options.jobs = 0;  // all hardware threads
//   vc::AnalysisReport report = vc::Analysis(options).RunOnRepository(repo);
//
// ValueCheckOptions and ValueCheckReport are aliases of the Analysis types
// (AnalysisOptions is a strict superset of the old struct — it additionally
// carries the preprocessor Config and the `jobs` parallelism degree), so
// existing call sites keep compiling unchanged.

#ifndef VALUECHECK_SRC_CORE_VALUECHECK_H_
#define VALUECHECK_SRC_CORE_VALUECHECK_H_

#include "src/core/analysis.h"

namespace vc {

// Deprecated: use AnalysisOptions.
using ValueCheckOptions = AnalysisOptions;
// Deprecated: use AnalysisReport.
using ValueCheckReport = AnalysisReport;

// Deprecated: use Analysis(options).Run(project, repo).
ValueCheckReport RunValueCheck(const Project& project, const Repository* repo,
                               const ValueCheckOptions& options = ValueCheckOptions());

// Deprecated: use Analysis(options).RunOnRepository(repo). The separate
// `config` parameter overrides options.config (the pre-facade signature kept
// them apart).
ValueCheckReport RunValueCheckOnRepository(const Repository& repo,
                                           const ValueCheckOptions& options = ValueCheckOptions(),
                                           Config config = Config());

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_VALUECHECK_H_

// Public entry point: the full ValueCheck pipeline of Fig. 2 —
//
//   detect cross-scope unused definitions  (detector + authorship)
//       → prune false positives            (pruning pipeline)
//       → rank by code familiarity         (ranking)
//       → report
//
// Every stage can be reconfigured or disabled through Options, which is how
// the evaluation benches run the paper's ablations (Table 6) and how the
// baselines section isolates capabilities.

#ifndef VALUECHECK_SRC_CORE_VALUECHECK_H_
#define VALUECHECK_SRC_CORE_VALUECHECK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/project.h"
#include "src/core/pruning.h"
#include "src/core/ranking.h"
#include "src/core/unused_def.h"
#include "src/vcs/repository.h"

namespace vc {

struct ValueCheckOptions {
  // Keep only cross-scope candidates after authorship classification (§3.1).
  // Disabling reproduces the "w/o Authorship" ablation group.
  bool cross_scope_only = true;
  PruneOptions prune;
  RankingOptions ranking;
};

struct ValueCheckReport {
  // Final, ranked findings (pruned and, by default, cross-scope only).
  std::vector<UnusedDefCandidate> findings;
  // All candidates as detected, before authorship filtering and pruning
  // (pruned_by records what pruned each one).
  std::vector<UnusedDefCandidate> raw_candidates;
  PruneStats prune_stats;
  // Candidates surviving pruning but dropped by the cross-scope filter.
  int non_cross_scope = 0;
  double analysis_seconds = 0.0;
  // Set by RunValueCheckOnRepository: keeps the analyzed project (and with it
  // the AST/IR that finding pointers reference) alive as long as the report.
  std::shared_ptr<Project> owned_project;

  // The first `k` findings (the report cutoff of Fig. 9).
  std::vector<UnusedDefCandidate> Top(size_t k) const {
    if (k >= findings.size()) {
      return findings;
    }
    return {findings.begin(), findings.begin() + static_cast<long>(k)};
  }

  // CSV rows: file, line, function, slot, kind, familiarity.
  std::string ToCsv() const;
};

// Runs the pipeline over an already-built project. `repo` supplies authorship
// and familiarity; pass null to skip both (all candidates then count as
// non-cross-scope unless cross_scope_only is disabled).
ValueCheckReport RunValueCheck(const Project& project, const Repository* repo,
                               const ValueCheckOptions& options = ValueCheckOptions());

// Convenience: builds the project from the repository head, then runs.
ValueCheckReport RunValueCheckOnRepository(const Repository& repo,
                                           const ValueCheckOptions& options = ValueCheckOptions(),
                                           Config config = Config());

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_VALUECHECK_H_

#include "src/core/analysis.h"

#include <chrono>
#include <set>

#include "src/checkers/driver.h"
#include "src/checkers/registry.h"
#include "src/core/authorship.h"
#include "src/core/detector.h"
#include "src/core/fingerprint.h"
#include "src/support/events.h"
#include "src/support/logging.h"
#include "src/support/memstats.h"
#include "src/support/metrics.h"
#include "src/support/table_writer.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace vc {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Mirrors one stage's wall-clock into the registry histogram that aggregates
// across runs (the per-run value lives in StageMetrics).
void RecordStageSeconds(const char* stage, double seconds) {
  MetricsRegistry::Global()
      .GetHistogram(std::string("pipeline.") + stage + "_seconds")
      .Record(seconds);
}

}  // namespace

AnalysisReport Analysis::Run(const Project& project, const Repository* repo) const {
  return RunImpl(project, repo, nullptr);
}

AnalysisReport Analysis::RunWithDetect(const Project& project, const Repository* repo,
                                       CheckerRunResult detect) const {
  return RunImpl(project, repo, &detect);
}

AnalysisReport Analysis::RunImpl(const Project& project, const Repository* repo,
                                 CheckerRunResult* precomputed) const {
  const bool collect = options_.collect_metrics;
  if (collect) {
    // The registry switch is what instrumentation sites deeper in the
    // pipeline (detector, pruning, ranking, thread pool) consult; flipping it
    // here makes one facade option govern the whole layer. Memory tracking
    // rides the same switch.
    MetricsRegistry::Global().Enable();
    MemoryTracker::Global().Enable();
  }
  TraceSpan run_span("analysis.run", "pipeline");
  // RSS stage samples: VmHWM is monotone, so each sample is "process peak up
  // to this stage boundary". The run-start sample covers the parse stage
  // (project construction precedes Run).
  const uint64_t rss_at_start = collect ? ProcessPeakRssBytes() : 0;
  auto start = std::chrono::steady_clock::now();
  AnalysisReport report;
  report.jobs = ResolveJobs(options_.jobs);
  report.stage.collected = collect;
  ThreadPoolStats pool_before = collect ? ThreadPool::Global().stats() : ThreadPoolStats();

  report.diagnostic_warnings = project.diags().WarningCount();
  report.diagnostic_errors = project.diags().ErrorCount();

  // Files quarantined during project construction (parse stage) lead the
  // quarantine list; function-level records follow in stage order.
  report.quarantined = project.quarantined();

  // 1. Detection: run every enabled checker over every function (parallel
  // per function; merged in deterministic module/function, then checker
  // registration order). Per-function isolation: a worker that throws, busts
  // the budget, or trips an injected fault quarantines that function (or that
  // checker on that function) alone.
  auto detect_start = std::chrono::steady_clock::now();
  std::vector<const Checker*> checkers = CheckerRegistry::Global().Resolve(options_.checkers);
  for (const Checker* checker : checkers) {
    report.checkers.push_back(checker->name());
  }
  std::vector<UnusedDefCandidate> candidates;
  CheckerRunResult detect;
  {
    TraceSpan span("detect", "pipeline");
    RunEvent("stage_start").Str("stage", "detect").Emit();
    if (precomputed != nullptr) {
      detect = std::move(*precomputed);
    } else {
      detect = RunCheckers(project, checkers, options_.traits, options_.jobs,
                           &options_.budget, &options_.fault, /*isolate=*/true);
    }
    candidates = std::move(detect.candidates);
    for (QuarantinedUnit& unit : detect.quarantined) {
      report.quarantined.push_back(std::move(unit));
    }
    span.Arg("candidates", static_cast<int64_t>(candidates.size()));
    RunEvent("stage_end")
        .Str("stage", "detect")
        .Num("candidates", static_cast<int64_t>(candidates.size()))
        .Emit();
  }
  report.detect_seconds = SecondsSince(detect_start);
  const uint64_t rss_after_detect = collect ? ProcessPeakRssBytes() : 0;
  for (const CheckerRunResult::PerChecker& pc : detect.per_checker) {
    report.checker_stats.push_back({pc.name, pc.candidates, 0});
  }

  // Sources-mode parity switch: with authorship off, classification, pruning,
  // and ranking all see a null repository, so the run is byte-identical to a
  // repo-less one regardless of what repository the caller holds.
  if (!options_.authorship) {
    repo = nullptr;
  }

  // 2. Classify authorship (cross-scope scenarios of §3.1).
  auto authorship_start = std::chrono::steady_clock::now();
  {
    TraceSpan span("authorship", "pipeline");
    RunEvent("stage_start").Str("stage", "authorship").Emit();
    AuthorshipAnalyzer authorship(project, repo);
    authorship.ClassifyAll(candidates);
    RunEvent("stage_end").Str("stage", "authorship").Emit();
  }
  double authorship_seconds = SecondsSince(authorship_start);
  report.raw_candidates = candidates;

  // 3. Cross-scope filter: only definitions on developer-interaction
  // boundaries continue (unless the ablation disables the filter).
  auto filter_start = std::chrono::steady_clock::now();
  std::vector<UnusedDefCandidate> pool;
  {
    TraceSpan span("cross_scope_filter", "pipeline");
    RunEvent("stage_start").Str("stage", "cross_scope_filter").Emit();
    for (const UnusedDefCandidate& cand : candidates) {
      if (options_.cross_scope_only && !cand.cross_scope) {
        ++report.non_cross_scope;
        continue;
      }
      pool.push_back(cand);
    }
    RunEvent("stage_end")
        .Str("stage", "cross_scope_filter")
        .Num("kept", static_cast<int64_t>(pool.size()))
        .Num("dropped", static_cast<int64_t>(report.non_cross_scope))
        .Emit();
  }
  double filter_seconds = SecondsSince(filter_start);

  // 4. Prune intentional patterns. Peer statistics always use the complete
  // candidate set: whether a value is customarily ignored is a property of
  // the codebase, not of the cross-scope subset.
  auto prune_start = std::chrono::steady_clock::now();
  RunEvent("stage_start").Str("stage", "prune").Emit();
  try {
    TraceSpan span("prune", "pipeline");
    report.prune_stats = RunPruning(project, pool, options_.prune, &candidates, repo);
  } catch (const std::exception& e) {
    // Stage-level fallback: a pruning crash degrades to "nothing pruned"
    // (findings become a superset) rather than killing the run.
    report.quarantined.push_back({"", "", "prune", std::string("stage failed: ") + e.what(), ""});
  }
  double prune_seconds = SecondsSince(prune_start);

  for (const UnusedDefCandidate& cand : pool) {
    if (cand.pruned_by == PruneReason::kNone) {
      report.findings.push_back(cand);
    }
  }
  RunEvent("stage_end")
      .Str("stage", "prune")
      .Num("survivors", static_cast<int64_t>(report.findings.size()))
      .Emit();

  // 5. Rank by code familiarity.
  auto rank_start = std::chrono::steady_clock::now();
  RunEvent("stage_start").Str("stage", "rank").Emit();
  RankStats rank_stats;
  try {
    TraceSpan span("rank", "pipeline");
    RankCandidates(report.findings, repo, options_.ranking, &rank_stats);
  } catch (const std::exception& e) {
    // Findings keep their pre-rank (deterministic pool) order.
    report.quarantined.push_back({"", "", "rank", std::string("stage failed: ") + e.what(), ""});
  }
  RunEvent("stage_end").Str("stage", "rank").Emit();
  double rank_seconds = SecondsSince(rank_start);

  // Injected prune/rank faults act as a post-stage filter keyed on the
  // finding's function. Crucially the quarantined function's candidates were
  // still part of the peer-statistics universe above, so every surviving
  // finding is byte-identical to the clean run's and the result is a strict
  // subset — the isolation contract the degraded_run oracle checks.
  if (options_.fault.enabled()) {
    std::vector<UnusedDefCandidate> kept;
    std::set<std::string> recorded;
    kept.reserve(report.findings.size());
    for (UnusedDefCandidate& cand : report.findings) {
      const std::string unit = cand.file + ":" + cand.function;
      const char* stage = nullptr;
      if (options_.fault.ShouldFault(fault_sites::kPruneFunction, unit)) {
        stage = "prune";
      } else if (options_.fault.ShouldFault(fault_sites::kRankFunction, unit)) {
        stage = "rank";
      }
      if (stage == nullptr) {
        kept.push_back(std::move(cand));
        continue;
      }
      if (recorded.insert(unit + "#" + stage).second) {
        report.quarantined.push_back({cand.file, cand.function, stage, "injected fault", ""});
        if (collect) {
          MetricsRegistry::Global()
              .GetCounter(std::string("fault.quarantined.") + stage)
              .Add(1);
        }
      }
    }
    report.findings = std::move(kept);
  }

  report.degraded = !report.quarantined.empty();

  // 6. Stamp stable identities for cross-run tracking. Runs over the final
  // finding list (deterministic at any job count), so fingerprints are too.
  // Duplicate-shape ordinals are function-local, so dropping a quarantined
  // function never renumbers another function's fingerprints.
  AssignFingerprints(report.findings);

  report.analysis_seconds = SecondsSince(start);

  for (const UnusedDefCandidate& cand : report.findings) {
    for (AnalysisReport::CheckerStat& stat : report.checker_stats) {
      if (stat.name == cand.checker) {
        ++stat.findings;
        break;
      }
    }
  }

  if (RunEventsEnabled()) {
    for (const QuarantinedUnit& unit : report.quarantined) {
      RunEvent("quarantine")
          .Str("file", unit.path)
          .Str("function", unit.function)
          .Str("stage", unit.stage)
          .Str("checker", unit.checker)
          .Emit();
    }
  }

  if (collect) {
    MemoryStats& mem = report.memory;
    mem.collected = true;
    Project::FileMemory parse_mem = project.ParseMemoryTotal();
    mem.categories[static_cast<int>(MemCategory::kAstNodes)] = parse_mem.ast;
    mem.categories[static_cast<int>(MemCategory::kIrInstructions)] = parse_mem.ir;
    mem.categories[static_cast<int>(MemCategory::kInternedStrings)] = parse_mem.strings;
    mem.categories[static_cast<int>(MemCategory::kPointsToSets)] = {
        detect.points_to_bytes, detect.points_to_entries};
    MemoryTracker& tracker = MemoryTracker::Global();
    tracker.SampleRss();
    mem.peak_rss_bytes = tracker.peak_rss_bytes();
    const uint64_t rss_at_end = ProcessPeakRssBytes();
    const uint64_t parse_bytes = parse_mem.TotalBytes();
    const uint64_t detect_bytes = detect.points_to_bytes;
    mem.stages.push_back({"parse", parse_bytes, parse_bytes, rss_at_start});
    mem.stages.push_back(
        {"detect", detect_bytes, parse_bytes + detect_bytes, rss_after_detect});
    for (const char* stage : {"authorship", "cross_scope_filter", "prune", "rank"}) {
      // These stages only annotate/filter existing candidates; tracked
      // categories do not grow, so the delta is zero by construction.
      mem.stages.push_back({stage, 0, parse_bytes + detect_bytes, rss_at_end});
    }
    tracker.PublishRegistryGauges();
  }

  if (collect) {
    StageMetrics& stage = report.stage;
    stage.detect_seconds = report.detect_seconds;
    stage.authorship_seconds = authorship_seconds;
    stage.filter_seconds = filter_seconds;
    stage.prune_seconds = prune_seconds;
    stage.rank_seconds = rank_seconds;
    stage.files_parsed = project.unit_order().size();
    for (size_t i : project.unit_order()) {
      stage.functions_analyzed += project.modules()[i]->functions.size();
    }
    stage.candidates_detected = candidates.size();
    stage.rank_scored = rank_stats.scored;
    stage.rank_unknown = rank_stats.unknown;
    stage.rank_model_seconds = rank_stats.model_seconds;
    stage.pool = ThreadPool::Global().stats().Delta(pool_before);
    RecordStageSeconds("detect", stage.detect_seconds);
    RecordStageSeconds("authorship", stage.authorship_seconds);
    RecordStageSeconds("filter", stage.filter_seconds);
    RecordStageSeconds("prune", stage.prune_seconds);
    RecordStageSeconds("rank", stage.rank_seconds);
    if (LogEnabled(LogLevel::kDebug)) {
      VC_LOG_DEBUG("pipeline: " + std::to_string(stage.candidates_detected) +
                   " candidate(s) across " + std::to_string(stage.functions_analyzed) +
                   " function(s); " + std::to_string(report.findings.size()) +
                   " finding(s) after filter+prune");
    }
  }
  return report;
}

AnalysisReport Analysis::RunOnRepository(const Repository& repo) const {
  auto start = std::chrono::steady_clock::now();
  auto project = std::make_shared<Project>(BuildFromRepository(repo));
  double parse_seconds = SecondsSince(start);
  AnalysisReport report = Run(*project, &repo);
  report.parse_seconds = parse_seconds;
  report.analysis_seconds += parse_seconds;
  FinishParseMetrics(report, parse_seconds);
  report.owned_project = std::move(project);
  return report;
}

AnalysisReport Analysis::RunOnRepositoryAt(const Repository& repo, CommitId commit) const {
  if (options_.collect_metrics) {
    MetricsRegistry::Global().Enable();
    MemoryTracker::Global().Enable();
  }
  auto start = std::chrono::steady_clock::now();
  std::shared_ptr<Project> project;
  {
    TraceSpan span("parse", "pipeline");
    project = std::make_shared<Project>(Project::FromRepositoryAt(
        repo, commit, options_.config, options_.jobs, &options_.fault, &options_.budget));
  }
  double parse_seconds = SecondsSince(start);
  AnalysisReport report = Run(*project, &repo);
  report.parse_seconds = parse_seconds;
  report.analysis_seconds += parse_seconds;
  FinishParseMetrics(report, parse_seconds);
  report.owned_project = std::move(project);
  return report;
}

AnalysisReport Analysis::RunOnSources(
    const std::vector<std::pair<std::string, std::string>>& files) const {
  auto start = std::chrono::steady_clock::now();
  auto project = std::make_shared<Project>(BuildFromSources(files));
  double parse_seconds = SecondsSince(start);
  AnalysisReport report = Run(*project, nullptr);
  report.parse_seconds = parse_seconds;
  report.analysis_seconds += parse_seconds;
  FinishParseMetrics(report, parse_seconds);
  report.owned_project = std::move(project);
  return report;
}

void Analysis::FinishParseMetrics(AnalysisReport& report, double parse_seconds) const {
  if (!report.stage.collected) {
    return;
  }
  report.stage.parse_seconds = parse_seconds;
  RecordStageSeconds("parse", parse_seconds);
}

Project Analysis::BuildFromRepository(const Repository& repo) const {
  if (options_.collect_metrics) {
    MetricsRegistry::Global().Enable();
    MemoryTracker::Global().Enable();
  }
  TraceSpan span("parse", "pipeline");
  return Project::FromRepository(repo, options_.config, options_.jobs, &options_.fault,
                                 &options_.budget);
}

Project Analysis::BuildFromSources(
    const std::vector<std::pair<std::string, std::string>>& files) const {
  if (options_.collect_metrics) {
    MetricsRegistry::Global().Enable();
    MemoryTracker::Global().Enable();
  }
  TraceSpan span("parse", "pipeline");
  return Project::FromSources(files, options_.config, options_.jobs, &options_.fault,
                              &options_.budget);
}

std::string AnalysisReport::ToCsv() const {
  TableWriter table({"file", "line", "function", "slot", "kind", "familiarity"});
  for (const UnusedDefCandidate& cand : findings) {
    table.AddRow({cand.file, std::to_string(cand.def_loc.line), cand.function, cand.slot_name,
                  CandidateKindName(cand.kind), FormatDouble(cand.familiarity, 3)});
  }
  return table.RenderCsv();
}

}  // namespace vc

#include "src/core/analysis.h"

#include <chrono>

#include "src/core/authorship.h"
#include "src/core/detector.h"
#include "src/support/table_writer.h"
#include "src/support/thread_pool.h"

namespace vc {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

AnalysisReport Analysis::Run(const Project& project, const Repository* repo) const {
  auto start = std::chrono::steady_clock::now();
  AnalysisReport report;
  report.jobs = ResolveJobs(options_.jobs);

  // 1. Detect every unused definition (parallel per function; merged in
  // deterministic module/function order).
  auto detect_start = std::chrono::steady_clock::now();
  std::vector<UnusedDefCandidate> candidates = DetectAll(project, options_.jobs);
  report.detect_seconds = SecondsSince(detect_start);

  // 2. Classify authorship (cross-scope scenarios of §3.1).
  AuthorshipAnalyzer authorship(project, repo);
  authorship.ClassifyAll(candidates);
  report.raw_candidates = candidates;

  // 3. Cross-scope filter: only definitions on developer-interaction
  // boundaries continue (unless the ablation disables the filter).
  std::vector<UnusedDefCandidate> pool;
  for (const UnusedDefCandidate& cand : candidates) {
    if (options_.cross_scope_only && !cand.cross_scope) {
      ++report.non_cross_scope;
      continue;
    }
    pool.push_back(cand);
  }

  // 4. Prune intentional patterns. Peer statistics always use the complete
  // candidate set: whether a value is customarily ignored is a property of
  // the codebase, not of the cross-scope subset.
  report.prune_stats = RunPruning(project, pool, options_.prune, &candidates, repo);

  for (const UnusedDefCandidate& cand : pool) {
    if (cand.pruned_by == PruneReason::kNone) {
      report.findings.push_back(cand);
    }
  }

  // 5. Rank by code familiarity.
  RankCandidates(report.findings, repo, options_.ranking);

  report.analysis_seconds = SecondsSince(start);
  return report;
}

AnalysisReport Analysis::RunOnRepository(const Repository& repo) const {
  auto start = std::chrono::steady_clock::now();
  auto project = std::make_shared<Project>(BuildFromRepository(repo));
  double parse_seconds = SecondsSince(start);
  AnalysisReport report = Run(*project, &repo);
  report.parse_seconds = parse_seconds;
  report.analysis_seconds += parse_seconds;
  report.owned_project = std::move(project);
  return report;
}

AnalysisReport Analysis::RunOnRepositoryAt(const Repository& repo, CommitId commit) const {
  auto start = std::chrono::steady_clock::now();
  auto project = std::make_shared<Project>(
      Project::FromRepositoryAt(repo, commit, options_.config, options_.jobs));
  double parse_seconds = SecondsSince(start);
  AnalysisReport report = Run(*project, &repo);
  report.parse_seconds = parse_seconds;
  report.analysis_seconds += parse_seconds;
  report.owned_project = std::move(project);
  return report;
}

AnalysisReport Analysis::RunOnSources(
    const std::vector<std::pair<std::string, std::string>>& files) const {
  auto start = std::chrono::steady_clock::now();
  auto project = std::make_shared<Project>(BuildFromSources(files));
  double parse_seconds = SecondsSince(start);
  AnalysisReport report = Run(*project, nullptr);
  report.parse_seconds = parse_seconds;
  report.analysis_seconds += parse_seconds;
  report.owned_project = std::move(project);
  return report;
}

Project Analysis::BuildFromRepository(const Repository& repo) const {
  return Project::FromRepository(repo, options_.config, options_.jobs);
}

Project Analysis::BuildFromSources(
    const std::vector<std::pair<std::string, std::string>>& files) const {
  return Project::FromSources(files, options_.config, options_.jobs);
}

std::string AnalysisReport::ToCsv() const {
  TableWriter table({"file", "line", "function", "slot", "kind", "familiarity"});
  for (const UnusedDefCandidate& cand : findings) {
    table.AddRow({cand.file, std::to_string(cand.def_loc.line), cand.function, cand.slot_name,
                  CandidateKindName(cand.kind), FormatDouble(cand.familiarity, 3)});
  }
  return table.RenderCsv();
}

}  // namespace vc

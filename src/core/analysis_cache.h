// The incremental engine's analysis cache (DESIGN.md §18).
//
// Two tiers share one invariant: a cached detect result is valid exactly when
// (file content, analysis configuration) both match.
//
//  * The memory tier is the per-path FileCacheEntry map: the engine's
//    persistent Project already holds the parsed TU and lowered IR, so the
//    entry only stores the content hash (parse-skip decision) and each
//    function's detect-stage output (carry-over decision). Candidate pointers
//    stay valid because a slot's AST/IR is only replaced when its content
//    changes — which also invalidates the entry.
//  * The disk tier (--cache-dir) serializes entries as one JSON file per
//    source path, keyed by content hash AND a config key folding in the
//    preprocessor macros, the enabled checker list, project traits, budget
//    and fault settings, and the cache schema version. Loaded candidates are
//    value-only (callee_name, slot ids, line/column locations); the engine
//    rebinds their AST/IR pointers against the live project.
//
// A corrupt or truncated disk entry is never fatal: it degrades to a cache
// miss and surfaces through the quarantine channel ("cache" stage), matching
// the fault-isolation contract of every other pipeline stage.

#ifndef VALUECHECK_SRC_CORE_ANALYSIS_CACHE_H_
#define VALUECHECK_SRC_CORE_ANALYSIS_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/checkers/driver.h"
#include "src/support/fault.h"

namespace vc {

// Bumped whenever the serialized entry shape or the meaning of any cached
// field changes; old entries then read as stale (miss), never as garbage.
inline constexpr int kCacheSchemaVersion = 1;

// FNV-1a 64-bit. Stable across runs and platforms; collisions would carry a
// stale result, so the 64-bit width matters.
uint64_t HashContent(std::string_view text);

// Cumulative engine telemetry; published as cache.* metrics and reported in
// IncrementalResult.
struct CacheStats {
  uint64_t parse_hits = 0;         // files whose content hash matched (no re-parse)
  uint64_t parse_misses = 0;       // files (re)compiled
  uint64_t detect_carried = 0;     // functions served from cache
  uint64_t detect_recomputed = 0;  // functions re-run (dirty slice)
  uint64_t disk_loads = 0;         // file entries restored from --cache-dir
  uint64_t disk_stores = 0;        // file entries written to --cache-dir
  uint64_t disk_corrupt = 0;       // unreadable entries degraded to misses

  double DetectHitRate() const {
    const uint64_t total = detect_carried + detect_recomputed;
    return total == 0 ? 0.0 : static_cast<double>(detect_carried) / static_cast<double>(total);
  }
};

// One file's cached detect-stage state.
struct FileCacheEntry {
  uint64_t content_hash = 0;
  // Per-function results keyed by IR function name. An absent name means the
  // function must be (re)detected; presence means the stored result equals
  // what a fresh detect of that function would produce.
  std::map<std::string, FunctionDetect> functions;
};

class AnalysisCache {
 public:
  // `cache_dir` empty = memory tier only. `config_key` is the canonical
  // configuration string (see MakeConfigKey in incremental.cc).
  AnalysisCache(std::string cache_dir, std::string config_key);

  bool has_disk_tier() const { return !cache_dir_.empty(); }
  const std::string& config_key() const { return config_key_; }

  // Memory tier: get-or-create / lookup / drop the entry for a path.
  FileCacheEntry& File(const std::string& path) { return files_[path]; }
  const FileCacheEntry* Find(const std::string& path) const;
  void Remove(const std::string& path) { files_.erase(path); }

  // Disk tier. Load validates the header (schema version, config key,
  // content hash) and fills `out.functions` on a hit; a stale or absent entry
  // is a plain miss, a corrupt one also appends a "cache"-stage quarantine
  // record. Store writes atomically (tmp + rename) and is a no-op without a
  // cache dir.
  bool LoadFromDisk(const std::string& path, uint64_t content_hash, FileCacheEntry& out,
                    std::vector<QuarantinedUnit>& quarantine);
  void StoreToDisk(const std::string& path, const FileCacheEntry& entry);

  CacheStats& stats() { return stats_; }
  const CacheStats& stats() const { return stats_; }

  // Mirrors the cumulative stats into the global MetricsRegistry:
  // cache.parse.hits/misses, cache.detect.carried/recomputed,
  // cache.disk.loads/stores/corrupt (counters track deltas since the last
  // publish; cache.files / cache.functions gauges report occupancy).
  void PublishMetrics();

 private:
  std::string DiskPath(const std::string& path) const;

  std::string cache_dir_;
  std::string config_key_;
  std::map<std::string, FileCacheEntry> files_;
  CacheStats stats_;
  CacheStats published_;  // counter values already pushed to the registry
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_ANALYSIS_CACHE_H_

// Familiarity-based ranking (§6): candidates introduced by developers with
// low familiarity in the containing file are reviewed first. The default
// model is DOK; the EA model (§9.2) can be substituted, and individual DOK
// factors can be zeroed for the Table 6 ablations.

#ifndef VALUECHECK_SRC_CORE_RANKING_H_
#define VALUECHECK_SRC_CORE_RANKING_H_

#include <vector>

#include "src/core/unused_def.h"
#include "src/familiarity/dok_model.h"
#include "src/vcs/repository.h"

namespace vc {

struct RankingOptions {
  bool enabled = true;
  DokWeights weights;
  bool use_ea_model = false;
};

// Observability detail of one ranking pass: how many candidates the
// familiarity model scored vs. fell back to the unknown-author sentinel, and
// wall-clock spent inside model evaluation (only measured while the metrics
// layer is enabled; 0.0 otherwise).
struct RankStats {
  uint64_t scored = 0;
  uint64_t unknown = 0;
  double model_seconds = 0.0;
};

// Computes familiarity for each candidate's responsible author and sorts the
// list by ascending familiarity (ties broken by file, then line, for
// determinism). With ranking disabled, candidates keep detection order and
// familiarity stays 0. `stats`, when given, receives the pass's counters.
void RankCandidates(std::vector<UnusedDefCandidate>& candidates, const Repository* repo,
                    const RankingOptions& options = RankingOptions(),
                    RankStats* stats = nullptr);

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_RANKING_H_

#include "src/core/detector.h"

#include <memory>

#include "src/dataflow/define_sets.h"
#include "src/dataflow/liveness.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace vc {

namespace {

const char* kKindNames[] = {"overwritten-def", "unused-retval", "unused-param",
                            "overwritten-param", "plain-unused"};
const char* kPruneNames[] = {"none", "config-dependency", "cursor", "unused-hint",
                             "peer-definition", "stale-code"};

}  // namespace

const char* CandidateKindName(CandidateKind kind) {
  return kKindNames[static_cast<int>(kind)];
}

const char* PruneReasonName(PruneReason reason) { return kPruneNames[static_cast<int>(reason)]; }

std::vector<UnusedDefCandidate> DetectInFunction(const Project& project, FileId file,
                                                 const IrFunction& func, BudgetMeter* meter) {
  std::vector<UnusedDefCandidate> candidates;
  LivenessResult liveness = ComputeLiveness(func, meter);
  DefineSetResult defines = ComputeDefineSets(func, meter);

  const std::string& path = project.sources().Path(file);

  auto make_candidate = [&](SlotId slot_id, SourceLoc loc) {
    UnusedDefCandidate cand;
    const Slot& slot = func.slots[slot_id];
    cand.function = func.name;
    cand.slot_name = slot.name;
    cand.file = path;
    cand.def_loc = loc;
    cand.ir_func = &func;
    cand.slot = slot_id;
    cand.var = slot.var;
    cand.is_synthetic = slot.is_synthetic;
    cand.is_field_slot = slot.IsFieldSlot();
    return cand;
  };

  // Replay every block from its out-state, checking stores against the live
  // set before applying their own transfer (the state "after" the store in
  // program order).
  for (const auto& block : func.blocks) {
    SlotSet live = liveness.live_out[block->id];
    DefineMap defs = defines.out[block->id];
    if (meter != nullptr) {
      meter->Charge(block->insts.size() + 1);
    }
    for (size_t j = block->insts.size(); j-- > 0;) {
      const Instruction& inst = block->insts[j];
      if (inst.op == Opcode::kStore) {
        const Slot& slot = func.slots[inst.slot];
        bool skip = false;
        if (slot.var != nullptr && slot.var->is_global) {
          skip = true;  // shared variables are out of scope (§3.1)
        }
        if (slot.is_synthetic && !inst.is_synthetic_store) {
          skip = true;  // lowering fallback temps are not real definitions
        }
        if (liveness.address_taken.Contains(inst.slot)) {
          skip = true;  // may be used through a pointer (checkAlias)
        }
        if (!skip && !live.Contains(inst.slot)) {
          UnusedDefCandidate cand = make_candidate(inst.slot, inst.loc);
          cand.origin_callee = inst.origin_callee;
          if (inst.origin_callee != nullptr) {
            cand.callee_name = inst.origin_callee->name;
          }
          cand.is_increment = inst.is_increment;
          cand.increment_amount = inst.increment_amount;
          if (const std::vector<SourceLoc>* overwriters = defs.Find(inst.slot)) {
            cand.overwritten = true;
            cand.overwriter_locs = *overwriters;
          }
          candidates.push_back(std::move(cand));
        }
      }
      ApplyLivenessTransfer(func, inst, live);
      ApplyDefineTransfer(func, inst, defs);
    }
  }

  // Unused parameters: not live at function entry means the argument value is
  // never read (an implicit unused definition at the call boundary).
  if (func.Entry() != nullptr) {
    const SlotSet& entry_live = liveness.live_in[func.Entry()->id];
    const DefineMap& entry_defs = defines.in[func.Entry()->id];
    for (SlotId param_slot : func.param_slots) {
      if (entry_live.Contains(param_slot) || liveness.address_taken.Contains(param_slot)) {
        continue;
      }
      const Slot& slot = func.slots[param_slot];
      UnusedDefCandidate cand = make_candidate(param_slot, slot.var->loc);
      cand.is_param = true;
      if (const std::vector<SourceLoc>* overwriters = entry_defs.Find(param_slot)) {
        cand.overwritten = true;
        cand.overwriter_locs = *overwriters;
      }
      candidates.push_back(std::move(cand));
    }
  }

  return candidates;
}

std::vector<UnusedDefCandidate> DetectAll(const Project& project, int jobs,
                                          const ResourceBudget* budget,
                                          const FaultInjector* fault,
                                          std::vector<QuarantinedUnit>* quarantined) {
  // Flatten the iteration space so the pool can balance uneven functions,
  // then merge per-function results in the serial visit order (the
  // determinism barrier: output never depends on worker scheduling).
  struct WorkItem {
    FileId file;
    const IrFunction* func;
  };
  std::vector<WorkItem> work;
  for (const auto& module : project.modules()) {
    for (const auto& func : module->functions) {
      work.push_back({module->file, func.get()});
    }
  }

  // Observability: one span + histogram sample per function. The histogram
  // reference is resolved once out here (registration locks); per-function
  // clock reads only happen while metrics collection is on.
  Histogram* fn_histogram =
      MetricsEnabled() ? &MetricsRegistry::Global().GetHistogram("detect.function_seconds")
                       : nullptr;
  const bool isolate = quarantined != nullptr;
  const bool metered = budget != nullptr && !budget->Unlimited();
  std::vector<std::vector<UnusedDefCandidate>> per_function(work.size());
  // Slot-indexed like per_function, so the quarantine list merges in the same
  // deterministic serial order as the findings regardless of scheduling.
  std::vector<std::unique_ptr<QuarantinedUnit>> per_function_quarantine(work.size());
  ParallelFor(jobs, work.size(), [&](size_t i) {
    TraceSpan span("detect_fn", "detect");
    span.Arg("function", work[i].func->name);
    ScopedTimer timer(nullptr, fn_histogram);
    const std::string& path = project.sources().Path(work[i].file);
    if (!isolate) {
      per_function[i] = DetectInFunction(project, work[i].file, *work[i].func);
      return;
    }
    // Isolation boundary: an exception here (injected, budget, or a real
    // worker bug) quarantines this function only. The catch must live inside
    // the worker body — ParallelFor rethrows and cancels remaining chunks.
    try {
      if (fault != nullptr) {
        fault->MaybeFault(fault_sites::kDetectFunction, path + ":" + work[i].func->name);
      }
      if (metered) {
        BudgetMeter meter(*budget);
        per_function[i] = DetectInFunction(project, work[i].file, *work[i].func, &meter);
      } else {
        per_function[i] = DetectInFunction(project, work[i].file, *work[i].func);
      }
    } catch (const std::exception& e) {
      per_function[i].clear();
      per_function_quarantine[i] = std::make_unique<QuarantinedUnit>(
          QuarantinedUnit{path, work[i].func->name, "detect", e.what()});
    }
  });

  std::vector<UnusedDefCandidate> all;
  for (auto& found : per_function) {
    for (auto& cand : found) {
      all.push_back(std::move(cand));
    }
  }
  size_t quarantine_count = 0;
  if (isolate) {
    for (auto& record : per_function_quarantine) {
      if (record != nullptr) {
        quarantined->push_back(std::move(*record));
        ++quarantine_count;
      }
    }
  }
  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("detect.functions").Add(work.size());
    registry.GetCounter("detect.candidates").Add(all.size());
    if (quarantine_count > 0) {
      registry.GetCounter("fault.quarantined.detect").Add(quarantine_count);
    }
  }
  return all;
}

}  // namespace vc

#include "src/core/detector.h"

#include "src/checkers/driver.h"
#include "src/checkers/registry.h"
#include "src/dataflow/define_sets.h"
#include "src/dataflow/liveness.h"

namespace vc {

namespace {

const char* kKindNames[] = {"overwritten-def",  "unused-retval",    "unused-param",
                            "overwritten-param", "plain-unused",    "double-overwrite",
                            "dead-global-store", "out-param-unused", "stale-copy"};
const char* kPruneNames[] = {"none", "config-dependency", "cursor", "unused-hint",
                             "peer-definition", "stale-code"};

}  // namespace

const char* CandidateKindName(CandidateKind kind) {
  return kKindNames[static_cast<int>(kind)];
}

const char* PruneReasonName(PruneReason reason) { return kPruneNames[static_cast<int>(reason)]; }

std::vector<UnusedDefCandidate> DetectInFunction(const Project& project, FileId file,
                                                 const IrFunction& func, BudgetMeter* meter) {
  LivenessResult liveness = ComputeLiveness(func, meter);
  DefineSetResult defines = ComputeDefineSets(func, meter);
  return DetectInFunctionWith(project, file, func, liveness, defines, meter);
}

std::vector<UnusedDefCandidate> DetectInFunctionWith(const Project& project, FileId file,
                                                     const IrFunction& func,
                                                     const LivenessResult& liveness,
                                                     const DefineSetResult& defines,
                                                     BudgetMeter* meter) {
  std::vector<UnusedDefCandidate> candidates;
  const std::string& path = project.sources().Path(file);

  auto make_candidate = [&](SlotId slot_id, SourceLoc loc) {
    UnusedDefCandidate cand;
    const Slot& slot = func.slots[slot_id];
    cand.function = func.name;
    cand.slot_name = slot.name;
    cand.file = path;
    cand.def_loc = loc;
    cand.ir_func = &func;
    cand.slot = slot_id;
    cand.var = slot.var;
    cand.is_synthetic = slot.is_synthetic;
    cand.is_field_slot = slot.IsFieldSlot();
    return cand;
  };

  // Replay every block from its out-state, checking stores against the live
  // set before applying their own transfer (the state "after" the store in
  // program order).
  for (const auto& block : func.blocks) {
    SlotSet live = liveness.live_out[block->id];
    DefineMap defs = defines.out[block->id];
    if (meter != nullptr) {
      meter->Charge(block->insts.size() + 1);
    }
    for (size_t j = block->insts.size(); j-- > 0;) {
      const Instruction& inst = block->insts[j];
      if (inst.op == Opcode::kStore) {
        const Slot& slot = func.slots[inst.slot];
        bool skip = false;
        if (slot.var != nullptr && slot.var->is_global) {
          skip = true;  // shared variables are out of scope (§3.1)
        }
        if (slot.is_synthetic && !inst.is_synthetic_store) {
          skip = true;  // lowering fallback temps are not real definitions
        }
        if (liveness.address_taken.Contains(inst.slot)) {
          skip = true;  // may be used through a pointer (checkAlias)
        }
        if (!skip && !live.Contains(inst.slot)) {
          UnusedDefCandidate cand = make_candidate(inst.slot, inst.loc);
          cand.origin_callee = inst.origin_callee;
          if (inst.origin_callee != nullptr) {
            cand.callee_name = inst.origin_callee->name;
          }
          cand.is_increment = inst.is_increment;
          cand.increment_amount = inst.increment_amount;
          if (const std::vector<SourceLoc>* overwriters = defs.Find(inst.slot)) {
            cand.overwritten = true;
            cand.overwriter_locs = *overwriters;
          }
          candidates.push_back(std::move(cand));
        }
      }
      ApplyLivenessTransfer(func, inst, live);
      ApplyDefineTransfer(func, inst, defs);
    }
  }

  // Unused parameters: not live at function entry means the argument value is
  // never read (an implicit unused definition at the call boundary).
  if (func.Entry() != nullptr) {
    const SlotSet& entry_live = liveness.live_in[func.Entry()->id];
    const DefineMap& entry_defs = defines.in[func.Entry()->id];
    for (SlotId param_slot : func.param_slots) {
      if (entry_live.Contains(param_slot) || liveness.address_taken.Contains(param_slot)) {
        continue;
      }
      const Slot& slot = func.slots[param_slot];
      UnusedDefCandidate cand = make_candidate(param_slot, slot.var->loc);
      cand.is_param = true;
      if (const std::vector<SourceLoc>* overwriters = entry_defs.Find(param_slot)) {
        cand.overwritten = true;
        cand.overwriter_locs = *overwriters;
      }
      candidates.push_back(std::move(cand));
    }
  }

  return candidates;
}

std::vector<UnusedDefCandidate> DetectAll(const Project& project, int jobs,
                                          const ResourceBudget* budget,
                                          const FaultInjector* fault,
                                          std::vector<QuarantinedUnit>* quarantined) {
  // One code path for detection: the unused-def checker through the checker
  // driver (src/checkers/driver.cc), which owns the parallel per-function
  // loop, the deterministic slot-indexed merge, and the isolation boundary.
  std::vector<const Checker*> checkers = {CheckerRegistry::Global().Find("unused-def")};
  CheckerRunResult result = RunCheckers(project, checkers, ProjectTraits(), jobs, budget, fault,
                                        /*isolate=*/quarantined != nullptr);
  if (quarantined != nullptr) {
    for (QuarantinedUnit& unit : result.quarantined) {
      quarantined->push_back(std::move(unit));
    }
  }
  return std::move(result.candidates);
}

}  // namespace vc

#include "src/core/run_diff.h"

#include <algorithm>
#include <set>

#include "src/core/incremental.h"
#include "src/support/json_writer.h"
#include "src/support/table_writer.h"

namespace vc {

namespace {

LedgerFinding ToLedgerFinding(const UnusedDefCandidate& cand) {
  LedgerFinding finding;
  finding.fingerprint = cand.fingerprint;
  finding.checker = cand.checker;
  finding.file = cand.file;
  finding.line = cand.def_loc.line;
  finding.function = cand.function;
  finding.variable = cand.slot_name;
  finding.kind = CandidateKindName(cand.kind);
  finding.familiarity = cand.familiarity;
  return finding;
}

// Findings sorted by (file, fingerprint) so diff sections render in a stable
// order independent of either run's internal ordering.
void SortFindings(std::vector<LedgerFinding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const LedgerFinding& a, const LedgerFinding& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              if (a.checker != b.checker) {
                return a.checker < b.checker;
              }
              return a.fingerprint < b.fingerprint;
            });
}

// Diff identity: fingerprints are already namespaced per checker, but the
// explicit pair keeps identity correct even for checkers with an empty
// namespace (unused-def's legacy fingerprints).
std::string FindingKey(const LedgerFinding& finding) {
  return finding.checker + "\x1f" + finding.fingerprint;
}

double PruneRate(int64_t pruned, int64_t tested) {
  return tested > 0 ? static_cast<double>(pruned) / static_cast<double>(tested) : 0.0;
}

}  // namespace

RunRecord MakeRunRecord(const AnalysisReport& report, const std::string& label,
                        int64_t timestamp_ms) {
  RunRecord record;
  record.timestamp_ms = timestamp_ms;
  record.label = label;
  record.jobs = report.jobs;
  record.degraded = report.degraded;
  record.checkers = report.checkers;
  for (const UnusedDefCandidate& cand : report.findings) {
    record.findings.push_back(ToLedgerFinding(cand));
  }

  LedgerMetrics& m = record.metrics;
  m.collected = report.stage.collected;
  m.analysis_seconds = report.analysis_seconds;
  m.parse_seconds = report.stage.collected ? report.stage.parse_seconds : report.parse_seconds;
  m.detect_seconds = report.stage.collected ? report.stage.detect_seconds : report.detect_seconds;
  m.authorship_seconds = report.stage.authorship_seconds;
  m.filter_seconds = report.stage.filter_seconds;
  m.prune_seconds = report.stage.prune_seconds;
  m.rank_seconds = report.stage.rank_seconds;
  m.files_parsed = static_cast<int64_t>(report.stage.files_parsed);
  m.functions_analyzed = static_cast<int64_t>(report.stage.functions_analyzed);
  m.candidates_detected = static_cast<int64_t>(report.stage.candidates_detected);
  const PruneStats& prune = report.prune_stats;
  m.prune_original = prune.original;
  m.prune_total = prune.TotalPruned();
  m.prune_remaining = prune.remaining;
  m.quarantined_units = static_cast<int64_t>(report.quarantined.size());
  m.prune_patterns = {
      {"config_dependency", prune.config_tested, prune.config_dependency},
      {"cursor", prune.cursor_tested, prune.cursor},
      {"unused_hints", prune.hints_tested, prune.unused_hints},
      {"peer_definition", prune.peer_tested, prune.peer_definition},
      {"stale_code", prune.stale_tested, prune.stale_code},
  };
  m.pool_workers = report.stage.pool.workers;
  m.pool_tasks = static_cast<int64_t>(report.stage.pool.tasks_executed);
  m.pool_steals = static_cast<int64_t>(report.stage.pool.steals);
  m.pool_idle_seconds = report.stage.pool.worker_idle_seconds;

  for (const AnalysisReport::CheckerStat& stat : report.checker_stats) {
    record.checker_stats.push_back({stat.name, static_cast<int64_t>(stat.candidates),
                                    static_cast<int64_t>(stat.findings)});
  }
  if (report.memory.collected) {
    auto cat = [&](MemCategory category) {
      return report.memory.categories[static_cast<size_t>(category)];
    };
    m.mem_collected = true;
    m.mem_ast_bytes = static_cast<int64_t>(cat(MemCategory::kAstNodes).bytes);
    m.mem_ast_objects = static_cast<int64_t>(cat(MemCategory::kAstNodes).objects);
    m.mem_ir_bytes = static_cast<int64_t>(cat(MemCategory::kIrInstructions).bytes);
    m.mem_ir_objects = static_cast<int64_t>(cat(MemCategory::kIrInstructions).objects);
    m.mem_points_to_bytes = static_cast<int64_t>(cat(MemCategory::kPointsToSets).bytes);
    m.mem_points_to_objects = static_cast<int64_t>(cat(MemCategory::kPointsToSets).objects);
    m.mem_strings_bytes = static_cast<int64_t>(cat(MemCategory::kInternedStrings).bytes);
    m.mem_strings_objects = static_cast<int64_t>(cat(MemCategory::kInternedStrings).objects);
    m.mem_tracked_bytes = static_cast<int64_t>(report.memory.TrackedBytes());
    m.mem_peak_rss_bytes = static_cast<int64_t>(report.memory.peak_rss_bytes);
  }
  return record;
}

void FillIncrementalMetrics(const IncrementalResult& result, LedgerMetrics& metrics) {
  metrics.inc_collected = true;
  metrics.inc_commit = result.commit;
  metrics.inc_files_changed = result.files_changed;
  metrics.inc_files_reparsed = result.files_reparsed;
  metrics.inc_functions_total = result.functions_total;
  metrics.inc_functions_dirty = result.functions_dirty;
  metrics.inc_findings_carried = result.findings_carried;
  metrics.inc_findings_new = result.findings_new;
  metrics.inc_findings_fixed = result.findings_fixed;
  metrics.inc_cache_hit_rate = result.cache.DetectHitRate();
  metrics.inc_seconds = result.seconds;
}

RunDiff ComputeRunDiff(const RunRecord& a, const RunRecord& b,
                       const RegressionThresholds& thresholds) {
  RunDiff diff;
  diff.run_a = a.run_id;
  diff.run_b = b.run_id;

  // Checker-set drift. A finding is only classified new/fixed when the other
  // run could have produced it (its checker was enabled there). Records
  // written before the checker framework carry no checker list; treat an
  // absent list as "every checker" so their findings still classify.
  std::set<std::string> checkers_a(a.checkers.begin(), a.checkers.end());
  std::set<std::string> checkers_b(b.checkers.begin(), b.checkers.end());
  auto enabled_in_a = [&](const std::string& checker) {
    return checkers_a.empty() || checkers_a.count(checker) > 0;
  };
  auto enabled_in_b = [&](const std::string& checker) {
    return checkers_b.empty() || checkers_b.count(checker) > 0;
  };
  for (const std::string& name : checkers_b) {
    if (!checkers_a.count(name)) {
      diff.checkers_added.push_back(name);
    }
  }
  for (const std::string& name : checkers_a) {
    if (!checkers_b.count(name)) {
      diff.checkers_removed.push_back(name);
    }
  }

  std::set<std::string> in_a;
  std::set<std::string> in_b;
  for (const LedgerFinding& finding : a.findings) {
    in_a.insert(FindingKey(finding));
  }
  for (const LedgerFinding& finding : b.findings) {
    in_b.insert(FindingKey(finding));
  }
  for (const LedgerFinding& finding : b.findings) {
    if (in_a.count(FindingKey(finding))) {
      diff.persistent.push_back(finding);
    } else if (enabled_in_a(finding.checker)) {
      diff.added.push_back(finding);
    }
  }
  for (const LedgerFinding& finding : a.findings) {
    if (!in_b.count(FindingKey(finding)) && enabled_in_b(finding.checker)) {
      diff.fixed.push_back(finding);
    }
  }
  SortFindings(diff.added);
  SortFindings(diff.fixed);
  SortFindings(diff.persistent);

  // Deterministic counter deltas first, then timings. The counters come from
  // the slot-indexed merge so they're identical at any job count.
  const LedgerMetrics& ma = a.metrics;
  const LedgerMetrics& mb = b.metrics;
  auto counter = [&](const std::string& name, double before, double after) {
    diff.deltas.push_back(
        {name, before, after, /*timing=*/false, /*sampled=*/false, /*regressed=*/false});
  };
  counter("findings", static_cast<double>(a.findings.size()),
          static_cast<double>(b.findings.size()));
  counter("files_parsed", static_cast<double>(ma.files_parsed),
          static_cast<double>(mb.files_parsed));
  counter("functions_analyzed", static_cast<double>(ma.functions_analyzed),
          static_cast<double>(mb.functions_analyzed));
  counter("candidates_detected", static_cast<double>(ma.candidates_detected),
          static_cast<double>(mb.candidates_detected));
  counter("pruned_total", static_cast<double>(ma.prune_total),
          static_cast<double>(mb.prune_total));
  // Memory: tracked bytes are exact/deterministic; peak RSS is a per-run
  // sample (reported, never gated — no counter is). Only comparable when both
  // runs actually collected memory (pre-v2 records read back as not
  // collected), so mixed-version diffs skip the rows instead of inventing
  // zero baselines.
  if (ma.mem_collected && mb.mem_collected) {
    counter("mem_tracked_bytes", static_cast<double>(ma.mem_tracked_bytes),
            static_cast<double>(mb.mem_tracked_bytes));
    diff.deltas.push_back({"mem_peak_rss_bytes", static_cast<double>(ma.mem_peak_rss_bytes),
                           static_cast<double>(mb.mem_peak_rss_bytes),
                           /*timing=*/false, /*sampled=*/true, /*regressed=*/false});
  }

  // Per-pattern prune rates, joined by name (patterns may differ across tool
  // versions; unmatched ones are compared against an absent 0/0 side).
  for (const LedgerPrunePattern& pb : mb.prune_patterns) {
    const LedgerPrunePattern* pa = nullptr;
    for (const LedgerPrunePattern& candidate : ma.prune_patterns) {
      if (candidate.name == pb.name) {
        pa = &candidate;
        break;
      }
    }
    double before = pa != nullptr ? PruneRate(pa->pruned, pa->tested) : 0.0;
    double after = PruneRate(pb.pruned, pb.tested);
    MetricDelta delta{"prune_rate." + pb.name, before, after, false, false};
    // Only meaningful when both runs actually exercised the pattern.
    bool comparable = pa != nullptr && pa->tested > 0 && pb.tested > 0;
    if (comparable && before - after > thresholds.prune_rate_drop) {
      delta.regressed = true;
      diff.regressions.push_back("prune rate of " + pb.name + " dropped " +
                                 FormatDouble(before * 100, 1) + "% -> " +
                                 FormatDouble(after * 100, 1) + "%");
    }
    diff.deltas.push_back(delta);
  }

  struct StagePair {
    const char* name;
    double before;
    double after;
  } stages[] = {
      {"analysis_seconds", ma.analysis_seconds, mb.analysis_seconds},
      {"parse_seconds", ma.parse_seconds, mb.parse_seconds},
      {"detect_seconds", ma.detect_seconds, mb.detect_seconds},
      {"authorship_seconds", ma.authorship_seconds, mb.authorship_seconds},
      {"filter_seconds", ma.filter_seconds, mb.filter_seconds},
      {"prune_seconds", ma.prune_seconds, mb.prune_seconds},
      {"rank_seconds", ma.rank_seconds, mb.rank_seconds},
  };
  for (const StagePair& stage : stages) {
    MetricDelta delta{stage.name, stage.before, stage.after, /*timing=*/true, false};
    bool breached = stage.after > stage.before * thresholds.stage_ratio &&
                    stage.after - stage.before > thresholds.stage_floor_seconds;
    if (breached) {
      delta.regressed = true;
      diff.regressions.push_back(std::string(stage.name) + " regressed " +
                                 FormatDouble(stage.before, 3) + "s -> " +
                                 FormatDouble(stage.after, 3) + "s (ratio threshold " +
                                 FormatDouble(thresholds.stage_ratio, 2) + "x)");
    }
    diff.deltas.push_back(delta);
  }

  if (static_cast<int>(diff.added.size()) > thresholds.max_new_findings) {
    diff.regressions.insert(
        diff.regressions.begin(),
        std::to_string(diff.added.size()) + " new finding(s) (allowed: " +
            std::to_string(thresholds.max_new_findings) + ")");
  }
  return diff;
}

std::string RenderDiffText(const RunDiff& diff, bool include_timings) {
  std::string out;
  out += "diff " + diff.run_a + " -> " + diff.run_b + ": " +
         std::to_string(diff.added.size()) + " new, " + std::to_string(diff.fixed.size()) +
         " fixed, " + std::to_string(diff.persistent.size()) + " persistent\n";
  if (!diff.checkers_added.empty() || !diff.checkers_removed.empty()) {
    out += "checkers changed:";
    for (const std::string& name : diff.checkers_added) {
      out += " +" + name;
    }
    for (const std::string& name : diff.checkers_removed) {
      out += " -" + name;
    }
    out += " (their findings are not classified as new/fixed)\n";
  }

  auto section = [&](const char* title, const std::vector<LedgerFinding>& findings,
                     const char* marker) {
    if (findings.empty()) {
      return;
    }
    out += "\n";
    out += title;
    out += ":\n";
    for (const LedgerFinding& finding : findings) {
      out += std::string("  ") + marker + " [" + finding.checker + ":" + finding.fingerprint +
             "] " + finding.file + " " + finding.function + "(): " + finding.variable + " (" +
             finding.kind + ")\n";
    }
  };
  section("new findings", diff.added, "+");
  section("fixed findings", diff.fixed, "-");

  TableWriter counters({"metric", "before", "after", "delta"});
  bool any_counter = false;
  for (const MetricDelta& delta : diff.deltas) {
    if (delta.timing) {
      continue;
    }
    // Sampled rows (peak RSS) vary run to run even on identical inputs, so
    // they ride with the equally nondeterministic --timings view; the
    // default rendering stays byte-identical for identical analyses.
    if (delta.sampled && !include_timings) {
      continue;
    }
    any_counter = true;
    bool rate = delta.name.rfind("prune_rate.", 0) == 0;
    auto fmt = [&](double value) {
      return rate ? FormatDouble(value * 100, 1) + "%" : std::to_string(static_cast<long long>(value));
    };
    std::string change = rate ? FormatDouble((delta.after - delta.before) * 100, 1) + "%"
                              : std::to_string(static_cast<long long>(delta.after) -
                                               static_cast<long long>(delta.before));
    counters.AddRow({delta.name, fmt(delta.before), fmt(delta.after),
                     change + (delta.regressed ? "  <-- REGRESSED" : "")});
  }
  if (any_counter) {
    out += "\n" + counters.RenderText();
  }

  if (include_timings) {
    TableWriter timings({"stage", "before_s", "after_s", "note"});
    for (const MetricDelta& delta : diff.deltas) {
      if (!delta.timing) {
        continue;
      }
      timings.AddRow({delta.name, FormatDouble(delta.before, 4), FormatDouble(delta.after, 4),
                      delta.regressed ? "REGRESSED" : ""});
    }
    out += "\n" + timings.RenderText();
  }

  if (!diff.regressions.empty()) {
    out += "\nregressions:\n";
    for (const std::string& line : diff.regressions) {
      out += "  ! " + line + "\n";
    }
  }
  return out;
}

std::string DiffToJson(const RunDiff& diff) {
  JsonWriter json;
  json.BeginObject();
  json.String("run_a", diff.run_a);
  json.String("run_b", diff.run_b);
  json.Key("checkers_added").BeginArray();
  for (const std::string& name : diff.checkers_added) {
    json.StringValue(name);
  }
  json.EndArray();
  json.Key("checkers_removed").BeginArray();
  for (const std::string& name : diff.checkers_removed) {
    json.StringValue(name);
  }
  json.EndArray();
  auto findings = [&](const char* key, const std::vector<LedgerFinding>& list) {
    json.Key(key).BeginArray();
    for (const LedgerFinding& finding : list) {
      json.BeginObject();
      json.String("fingerprint", finding.fingerprint);
      json.String("checker", finding.checker);
      json.String("file", finding.file);
      json.Int("line", finding.line);
      json.String("function", finding.function);
      json.String("variable", finding.variable);
      json.String("kind", finding.kind);
      json.EndObject();
    }
    json.EndArray();
  };
  findings("new", diff.added);
  findings("fixed", diff.fixed);
  findings("persistent", diff.persistent);
  json.Key("metrics").BeginArray();
  for (const MetricDelta& delta : diff.deltas) {
    json.BeginObject();
    json.String("name", delta.name);
    json.Double("before", delta.before);
    json.Double("after", delta.after);
    json.Bool("timing", delta.timing);
    json.Bool("sampled", delta.sampled);
    json.Bool("regressed", delta.regressed);
    json.EndObject();
  }
  json.EndArray();
  json.Key("regressions").BeginArray();
  for (const std::string& line : diff.regressions) {
    json.StringValue(line);
  }
  json.EndArray();
  json.Bool("check_passed", diff.regressions.empty());
  json.EndObject();
  return json.str();
}

}  // namespace vc

#include "src/core/fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace vc {

namespace {

// Slot identity for the key. Synthetic call-result temps ("_tmp3") are named
// by lowering order, which unrelated edits shift; the callee is the stable
// part of their identity.
std::string SlotIdentity(const UnusedDefCandidate& candidate) {
  if (candidate.is_synthetic && !candidate.callee_name.empty()) {
    return "call:" + candidate.callee_name;
  }
  return candidate.slot_name;
}

}  // namespace

std::string FingerprintKey(const UnusedDefCandidate& candidate) {
  std::string key;
  key.reserve(128);
  // Per-checker namespace keeps checkers' findings in disjoint identity
  // spaces. Empty for unused-def: its fingerprints predate the checker
  // framework and must not change across the migration.
  if (!candidate.fingerprint_ns.empty()) {
    key += candidate.fingerprint_ns;
    key += "::";
  }
  key += candidate.file;
  key += '|';
  key += candidate.function;
  key += '|';
  key += SlotIdentity(candidate);
  key += '|';
  key += CandidateKindName(candidate.kind);
  key += '|';
  key += candidate.is_param ? 'p' : '-';
  key += candidate.is_synthetic ? 's' : '-';
  key += candidate.is_field_slot ? 'f' : '-';
  key += candidate.overwritten ? 'o' : '-';
  key += '|';
  // Def/use shape: how many later stores kill this definition, whether the
  // value flows from a call, and the cursor-increment pattern. These change
  // only when the finding itself changes.
  key += "kills=" + std::to_string(candidate.overwriter_locs.size());
  if (!candidate.callee_name.empty()) {
    key += "|from=" + candidate.callee_name;
  }
  if (candidate.is_increment) {
    key += "|inc=" + std::to_string(candidate.increment_amount);
  }
  return key;
}

std::string FingerprintHash(const std::string& key) {
  // FNV-1a 64-bit: fast, dependency-free, and stable across platforms.
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

void AssignFingerprints(std::vector<UnusedDefCandidate>& candidates) {
  // Group same-key findings, then number each group in source order. The
  // ordinal always participates in the hash (a singleton is occurrence 1), so
  // pasting a duplicate *below* an existing finding never renames it.
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < candidates.size(); ++i) {
    groups[FingerprintKey(candidates[i])].push_back(i);
  }
  for (auto& [key, indices] : groups) {
    std::stable_sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      const SourceLoc& la = candidates[a].def_loc;
      const SourceLoc& lb = candidates[b].def_loc;
      if (la.line != lb.line) {
        return la.line < lb.line;
      }
      return la.column < lb.column;
    });
    for (size_t rank = 0; rank < indices.size(); ++rank) {
      candidates[indices[rank]].fingerprint =
          FingerprintHash(key + "#" + std::to_string(rank + 1));
    }
  }
}

}  // namespace vc

// Unused-definition detection — the analysis core of the paper's Fig. 4.
//
// Per function: run backward liveness and the DefineSet analysis to their fix
// points, then replay each block from its out-state. A store whose slot is
// not live at that point is an unused definition; the DefineSet at the same
// point names the overwriting definitions. After the replay, any parameter
// absent from the entry live-in set is an unused parameter. Address-taken
// slots are suppressed (the paper's alias rule), as are globals (out of
// scope, §3.1) and synthetic temps that did not come from ignored calls.

#ifndef VALUECHECK_SRC_CORE_DETECTOR_H_
#define VALUECHECK_SRC_CORE_DETECTOR_H_

#include <vector>

#include "src/core/project.h"
#include "src/core/unused_def.h"
#include "src/dataflow/define_sets.h"
#include "src/dataflow/liveness.h"
#include "src/support/fault.h"

namespace vc {

// Detects candidates in one lowered function. `file` is the unit's file id
// (for paths in the report). A non-null `meter` bounds the work (liveness /
// define-set fix points + replay, one step per instruction) and may throw
// BudgetExceededError.
std::vector<UnusedDefCandidate> DetectInFunction(const Project& project, FileId file,
                                                 const IrFunction& func,
                                                 BudgetMeter* meter = nullptr);

// The replay half of DetectInFunction, over caller-supplied fix points. The
// checker framework calls this with CheckerContext's memoized analyses so N
// checkers share one liveness/define-set computation; DetectInFunction is
// the compute-then-replay composition.
std::vector<UnusedDefCandidate> DetectInFunctionWith(const Project& project, FileId file,
                                                     const IrFunction& func,
                                                     const LivenessResult& liveness,
                                                     const DefineSetResult& defines,
                                                     BudgetMeter* meter = nullptr);

// Detects candidates across every function of every unit. Functions are
// analyzed independently across `jobs` worker lanes (1 = serial, 0 = all
// hardware threads); per-function results are merged in module/function
// order, so the output is identical at any job count.
//
// Fault isolation: when `quarantined` is non-null, a function whose worker
// throws, exceeds `budget`, or trips `fault` at the "detect.function" site is
// dropped from the output and recorded there (in the same deterministic visit
// order) instead of failing the whole run. With a null `quarantined`, worker
// exceptions propagate as before.
std::vector<UnusedDefCandidate> DetectAll(const Project& project, int jobs = 1,
                                          const ResourceBudget* budget = nullptr,
                                          const FaultInjector* fault = nullptr,
                                          std::vector<QuarantinedUnit>* quarantined = nullptr);

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_DETECTOR_H_

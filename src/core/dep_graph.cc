#include "src/core/dep_graph.h"

namespace vc {

DepGraph::DepGraph(const Project& project) {
  for (size_t m : project.unit_order()) {
    const auto& module = project.modules()[m];
    for (const auto& func : module->functions) {
      for (const CallSite& site : func->call_sites) {
        if (site.callee == nullptr) {
          // Indirect call: the target set is a points-to question, so the
          // caller re-runs whenever anything changes.
          alias_affected_.insert(func->name);
          continue;
        }
        callees_[func->name].insert(site.callee->name);
        callers_[site.callee->name].insert(func->name);
      }
      for (const auto& block : func->blocks) {
        for (const Instruction& inst : block->insts) {
          if (inst.op == Opcode::kAddrFunc && inst.callee != nullptr) {
            // Address-taken function: a potential indirect-call target.
            alias_affected_.insert(inst.callee->name);
          }
        }
      }
    }
  }
}

std::set<std::string> DepGraph::DirtyClosure(const std::set<std::string>& changed) const {
  std::set<std::string> dirty = changed;
  for (const std::string& name : changed) {
    if (auto it = callers_.find(name); it != callers_.end()) {
      dirty.insert(it->second.begin(), it->second.end());
    }
    if (auto it = callees_.find(name); it != callees_.end()) {
      dirty.insert(it->second.begin(), it->second.end());
    }
  }
  if (!changed.empty()) {
    dirty.insert(alias_affected_.begin(), alias_affected_.end());
  }
  return dirty;
}

}  // namespace vc

// The unified analysis API: one options struct, one facade.
//
// vc::Analysis fronts the full ValueCheck pipeline of Fig. 2 —
//
//   parse + lower                       (Project construction, parallel)
//       → detect unused definitions     (detector, parallel per function)
//       → classify authorship           (§3.1 cross-scope scenarios)
//       → prune false positives         (pruning pipeline)
//       → rank by code familiarity      (ranking)
//       → report
//
// and AnalysisOptions is the single knob surface: the enabled checkers, the
// cross-scope filter, every pruning pattern, the ranking model, the
// preprocessor configuration, and the `jobs` parallelism degree. The parallel
// stages (parse/lower and detection) merge their per-unit results in
// deterministic order, so findings and ranking are byte-identical at any job
// count.
//
// The detection stage is the checker framework (src/checkers/): each enabled
// checker runs per function over the shared memoized analyses, and its
// findings flow through the same downstream stages tagged with the checker's
// name and fingerprint namespace.

#ifndef VALUECHECK_SRC_CORE_ANALYSIS_H_
#define VALUECHECK_SRC_CORE_ANALYSIS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/checkers/driver.h"
#include "src/core/project.h"
#include "src/core/pruning.h"
#include "src/core/ranking.h"
#include "src/core/unused_def.h"
#include "src/support/memstats.h"
#include "src/support/thread_pool.h"
#include "src/vcs/repository.h"

namespace vc {

// Every stage of the pipeline, configured in one place. The evaluation
// benches run the paper's ablations (Table 6) by toggling these, and the
// baselines section isolates capabilities the same way.
struct AnalysisOptions {
  // Checkers to run, by registry name (CLI --checkers). Empty = every
  // non-baseline checker. Resolution order is registry order regardless of
  // spelling; unknown names throw std::invalid_argument at Run time.
  std::vector<std::string> checkers;
  // Capability facts about the analyzed codebase, consulted by checkers'
  // Unsupported() gates (the baseline tools' Table 5 failure cells).
  ProjectTraits traits;
  // Keep only cross-scope candidates after authorship classification (§3.1).
  // Disabling reproduces the "w/o Authorship" ablation group.
  bool cross_scope_only = true;
  // Run the post-detect stages with repository context (blame-based kind
  // refinement, stale-code pruning, familiarity). Disabling makes every run
  // behave exactly like a repo-less sources-mode run even when a repository
  // is available — the serve daemon relies on this for byte-identical
  // findings against batch `analyze <files>`, since its synthetic
  // single-author commit log would otherwise reclassify candidate kinds.
  bool authorship = true;
  PruneOptions prune;
  RankingOptions ranking;
  // Preprocessor macro configuration used when the facade parses sources.
  Config config;
  // Parallel worker lanes for parse/lower and detection. 1 = serial,
  // 0 = all hardware threads. Results are identical at any value.
  int jobs = 1;
  // Populate AnalysisReport::stage (per-stage wall-clock, per-pattern prune
  // counters, thread-pool activity) and feed the global MetricsRegistry.
  // Findings are byte-identical with the switch on or off; the cost when off
  // is a handful of relaxed atomic loads per run.
  bool collect_metrics = false;
  // Per-unit resource limits. A unit over budget is quarantined (see
  // AnalysisReport::quarantined), not fatal. Defaults are unlimited.
  ResourceBudget budget;
  // Deterministic fault injection for robustness testing (CLI --fault-inject,
  // the degraded_run oracle). Disabled by default. Quarantine decisions are a
  // pure function of (seed, site, unit), so the quarantine list and the
  // surviving findings are byte-identical at any `jobs`.
  FaultInjector fault;
};

// Per-stage observability block (see DESIGN.md §"Observability"). Stage
// seconds are wall-clock; counters aggregate in slot-indexed merge order like
// the findings merge, so every field except raw timings is deterministic at
// any job count.
struct StageMetrics {
  // False when the producing run had collect_metrics off; consumers (the JSON
  // report, the CLI --metrics table) skip the block entirely.
  bool collected = false;
  double parse_seconds = 0.0;       // parse + lower (facade-built projects)
  double detect_seconds = 0.0;
  double authorship_seconds = 0.0;
  double filter_seconds = 0.0;      // cross-scope filter
  double prune_seconds = 0.0;
  double rank_seconds = 0.0;
  uint64_t files_parsed = 0;
  uint64_t functions_analyzed = 0;
  uint64_t candidates_detected = 0;
  // Ranking detail: candidates scored by the familiarity model vs. assigned
  // the unknown-author sentinel, and time inside model evaluation alone.
  uint64_t rank_scored = 0;
  uint64_t rank_unknown = 0;
  double rank_model_seconds = 0.0;
  // Global-pool activity attributable to this run (delta of two snapshots;
  // approximate if other analyses share the pool concurrently).
  ThreadPoolStats pool;
};

struct AnalysisReport {
  // Final, ranked findings (pruned and, by default, cross-scope only).
  std::vector<UnusedDefCandidate> findings;
  // All candidates as detected, before authorship filtering and pruning
  // (pruned_by records what pruned each one).
  std::vector<UnusedDefCandidate> raw_candidates;
  PruneStats prune_stats;
  // Candidates surviving pruning but dropped by the cross-scope filter.
  int non_cross_scope = 0;
  // Wall-clock timings: the whole pipeline, the parse+lower phase (when the
  // facade built the project), and the detection phase.
  double analysis_seconds = 0.0;
  double parse_seconds = 0.0;
  double detect_seconds = 0.0;
  // Worker lanes the report was produced with (after 0 → hardware resolution).
  int jobs = 1;
  // Front-end diagnostics of the analyzed project (merged across workers in
  // file order), surfaced so callers no longer need the Project to see them.
  int diagnostic_warnings = 0;
  int diagnostic_errors = 0;
  // Fault isolation: true when any unit was quarantined (the run completed
  // but its results are a subset of a clean run's). `quarantined` lists the
  // dropped units in deterministic (file, then function visit) order.
  bool degraded = false;
  std::vector<QuarantinedUnit> quarantined;
  // The checkers this report ran, resolved names in registry order (the JSON
  // report, the ledger, and run diffs key findings by (checker, fingerprint)).
  std::vector<std::string> checkers;
  // Per-checker candidate and surviving-finding counts, in registry order.
  // Always populated (cheap and deterministic); feeds the ledger and the
  // dashboard's per-checker precision trend (findings / candidates).
  struct CheckerStat {
    std::string name;
    uint64_t candidates = 0;
    uint64_t findings = 0;
  };
  std::vector<CheckerStat> checker_stats;
  // Observability block; populated when AnalysisOptions::collect_metrics.
  StageMetrics stage;
  // Memory accounting (schema v7); populated when collect_metrics. Byte and
  // object counts are exact and identical at any job count; only the RSS
  // samples vary run to run.
  MemoryStats memory;
  // Set by the repository entry points: keeps the analyzed project (and with
  // it the AST/IR that finding pointers reference) alive as long as the
  // report.
  std::shared_ptr<Project> owned_project;

  // The first `k` findings (the report cutoff of Fig. 9).
  std::vector<UnusedDefCandidate> Top(size_t k) const {
    if (k >= findings.size()) {
      return findings;
    }
    return {findings.begin(), findings.begin() + static_cast<long>(k)};
  }

  // CSV rows: file, line, function, slot, kind, familiarity.
  std::string ToCsv() const;
};

// Result of per-commit incremental analysis; defined in
// src/core/incremental.h (it embeds a full AnalysisReport plus the engine's
// cache/dirty-slice telemetry).
struct IncrementalResult;
class IncrementalEngine;

class Analysis {
 public:
  Analysis() = default;
  explicit Analysis(AnalysisOptions options) : options_(std::move(options)) {}

  AnalysisOptions& options() { return options_; }
  const AnalysisOptions& options() const { return options_; }

  // Runs the pipeline over an already-built project. `repo` supplies
  // authorship and familiarity; pass null to skip both (all candidates then
  // count as non-cross-scope unless cross_scope_only is disabled).
  AnalysisReport Run(const Project& project, const Repository* repo = nullptr) const;

  // Advanced entry point for the incremental engine: runs every stage after
  // detection (authorship, cross-scope filter, prune, rank, fingerprint) over
  // a detect-stage result assembled elsewhere — a mix of cached and freshly
  // run functions. Byte-identical to Run() when `detect` holds exactly what
  // RunCheckers would have produced for this project.
  AnalysisReport RunWithDetect(const Project& project, const Repository* repo,
                               CheckerRunResult detect) const;

  // Builds the project (parallel parse/lower under options().jobs and
  // options().config), then runs; the report owns the project.
  AnalysisReport RunOnRepository(const Repository& repo) const;
  AnalysisReport RunOnRepositoryAt(const Repository& repo, CommitId commit) const;
  AnalysisReport RunOnSources(
      const std::vector<std::pair<std::string, std::string>>& files) const;

  // Per-commit incremental analysis through a cached IncrementalEngine
  // (src/core/incremental.h): re-parses only the files `commit` touched and
  // re-runs checkers only on the commit's dirty function slice, carrying
  // cached results for everything else. The returned report holds the
  // COMPLETE finding set as of `commit` — byte-identical to a full run over
  // the repository truncated at that commit. Sequential calls with ascending
  // commits on the same repository reuse the engine's warm caches; any other
  // pattern rebuilds the engine (correct, just slower).
  IncrementalResult RunOnCommit(const Repository& repo, CommitId commit) const;

  // Project construction alone (no detection) with this analysis's config
  // and jobs — for callers that inspect diagnostics before running.
  Project BuildFromRepository(const Repository& repo) const;
  Project BuildFromSources(
      const std::vector<std::pair<std::string, std::string>>& files) const;

 private:
  // Folds the facade-measured parse phase into the report's StageMetrics.
  void FinishParseMetrics(AnalysisReport& report, double parse_seconds) const;

  // Shared pipeline body: with `precomputed` null, runs detection itself
  // (Run); otherwise consumes the caller's detect result (RunWithDetect).
  AnalysisReport RunImpl(const Project& project, const Repository* repo,
                         CheckerRunResult* precomputed) const;

  AnalysisOptions options_;
  // RunOnCommit's warm engine (shared_ptr: IncrementalEngine is incomplete
  // here). Keyed by source repository identity; reset when the repo changes
  // or commits arrive out of ascending order.
  mutable std::shared_ptr<IncrementalEngine> commit_engine_;
  mutable const Repository* commit_engine_repo_ = nullptr;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_ANALYSIS_H_

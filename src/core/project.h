// A Project bundles everything ValueCheck analyzes: the source files (from a
// repository head snapshot or given directly), their parsed translation
// units, the lowered IR, preprocessing results (conditional regions for
// pruning), and a cross-file function index.
//
// Files are parsed and lowered independently — mirroring the paper's
// implementation note (§7) that each source object is compiled to a separate
// bitcode file — and the FunctionIndex stitches the per-file views together
// by function name for authorship lookup and peer-definition pruning.
//
// That independence makes construction embarrassingly parallel: file ids are
// assigned sequentially up front, then preprocess/parse/lower runs across
// `jobs` worker lanes into per-file slots, and per-file diagnostics are
// merged in file order — so the resulting Project is byte-identical at any
// job count.

#ifndef VALUECHECK_SRC_CORE_PROJECT_H_
#define VALUECHECK_SRC_CORE_PROJECT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ast/ast.h"
#include "src/ir/ir.h"
#include "src/lexer/preprocessor.h"
#include "src/support/diagnostics.h"
#include "src/support/fault.h"
#include "src/support/memstats.h"
#include "src/support/source_manager.h"
#include "src/vcs/repository.h"

namespace vc {

// Facts about the analyzed codebase that gate whether a checker can run on
// it at all (Table 5's "-*: report errors during analysis" cells). Checkers
// declare incompatibility via Checker::Unsupported(); the driver quarantines
// them instead of running them.
struct ProjectTraits {
  // Plain C vs C++-heavy codebase: Smatch's parser only handles C.
  bool is_pure_c = true;
  // Kernel-style extensions (inline asm, attribute soup): break fb-infer's
  // clang-plugin capture on Linux.
  bool uses_kernel_extensions = false;
};

// Project-wide view of one function name.
struct FunctionInfo {
  std::string name;
  // Definition, when the function is defined inside the project.
  const FunctionDecl* def_decl = nullptr;
  const IrFunction* ir = nullptr;
  FileId def_file = kInvalidFileId;
  // All call sites across every unit (callers resolve externs by name).
  std::vector<CallSite> call_sites;

  bool InProject() const { return def_decl != nullptr; }
};

class Project {
 public:
  Project() = default;
  Project(Project&&) = default;
  Project& operator=(Project&&) = default;

  // Parses and lowers the head snapshot of every file in `repo`. `jobs` is
  // the number of parallel worker lanes (1 = serial, 0 = all hardware
  // threads); results are identical at any value.
  //
  // All three factories take optional fault-isolation hooks: with a non-null
  // `fault`/`budget`, a file whose parse/lower throws, trips the injector's
  // "parse.file" site, or exceeds the per-unit deadline is quarantined — it
  // becomes an empty unit with an empty module and no diagnostics, recorded
  // in quarantined() — instead of aborting construction.
  static Project FromRepository(const Repository& repo, Config config = Config(), int jobs = 1,
                                const FaultInjector* fault = nullptr,
                                const ResourceBudget* budget = nullptr);

  // Same, but at a historical commit (used by the preliminary-study
  // reproduction, which compares two snapshots years apart).
  static Project FromRepositoryAt(const Repository& repo, CommitId commit,
                                  Config config = Config(), int jobs = 1,
                                  const FaultInjector* fault = nullptr,
                                  const ResourceBudget* budget = nullptr);

  // Parses and lowers explicit (path, content) pairs; no repository attached
  // (authorship-dependent stages then treat every author as unknown).
  static Project FromSources(const std::vector<std::pair<std::string, std::string>>& files,
                             Config config = Config(), int jobs = 1,
                             const FaultInjector* fault = nullptr,
                             const ResourceBudget* budget = nullptr);

  SourceManager& sources() { return sm_; }
  const SourceManager& sources() const { return sm_; }
  DiagnosticEngine& diags() { return diags_; }
  const DiagnosticEngine& diags() const { return diags_; }

  const std::vector<TranslationUnit>& units() const { return units_; }
  const std::vector<std::unique_ptr<IrModule>>& modules() const { return modules_; }
  const PreprocessResult& preprocessing(FileId file) const { return pp_.at(file); }

  const std::map<std::string, FunctionInfo>& function_index() const { return index_; }
  const FunctionInfo* FindFunction(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &it->second;
  }

  // Total number of non-empty source lines (for the scalability table).
  int TotalLines() const;

  // Files quarantined during construction (parse stage), in file order.
  const std::vector<QuarantinedUnit>& quarantined() const { return quarantined_; }

  // Per-file parse-stage memory attribution (AST / IR / identifier strings).
  struct FileMemory {
    MemCount ast;
    MemCount ir;
    MemCount strings;

    uint64_t TotalBytes() const { return ast.bytes + ir.bytes + strings.bytes; }
  };

  // True when construction ran with memory tracking on; file_memory() is
  // empty otherwise. Counts are exact and identical at any job count.
  bool memory_collected() const { return memory_collected_; }
  const std::vector<FileMemory>& file_memory() const { return file_memory_; }
  FileMemory ParseMemoryTotal() const;

  // --- Incremental mutation API (used by vc::IncrementalEngine) -----------
  // Recompiles (or adds) one file. An existing path keeps its FileId — its
  // slot recompiles in place, and a tombstoned path is revived in its old
  // slot — so locations in carried-over results stay meaningful. Call
  // FinishUpdate() after a batch of mutations to rebuild derived state.
  FileId UpsertFile(const std::string& path, std::string content, const Config& config,
                    const FaultInjector* fault = nullptr,
                    const ResourceBudget* budget = nullptr);

  // Tombstones a deleted path: the slot becomes an empty-but-valid unit that
  // FinishUpdate() drops from the index, diagnostics, and iteration order.
  // Returns false when the path is not a live file.
  bool RemoveFile(const std::string& path);

  // Rebuilds diagnostics, the quarantine list, and the function index from
  // per-slot state, iterating live slots in path-sorted order — the order a
  // from-scratch repository build compiles in — so the derived state is
  // byte-identical to a fresh Project over the same live contents.
  void FinishUpdate();

  // True when `file` is a live (non-tombstoned) slot.
  bool IsLive(FileId file) const {
    return file >= 0 && static_cast<size_t>(file) < units_.size() &&
           (live_.empty() || live_[file] != 0);
  }

  // Slot indices in the order derived state is built: all slots for a fresh
  // project, live path-sorted slots after incremental mutations.
  const std::vector<size_t>& unit_order() const { return unit_order_; }

 private:
  void CompileAll(std::vector<std::pair<std::string, std::string>> files, const Config& config,
                  int jobs, const FaultInjector* fault, const ResourceBudget* budget);
  void CompileSlot(size_t i, const Config& config, const FaultInjector* fault,
                   const ResourceBudget* budget);
  void BuildIndex();

  SourceManager sm_;
  DiagnosticEngine diags_;
  std::vector<TranslationUnit> units_;
  std::vector<std::unique_ptr<IrModule>> modules_;
  std::vector<PreprocessResult> pp_;  // indexed by FileId
  std::map<std::string, FunctionInfo> index_;
  std::vector<QuarantinedUnit> quarantined_;
  bool memory_collected_ = false;
  std::vector<FileMemory> file_memory_;  // indexed by FileId
  // Per-slot state retained so FinishUpdate() can rebuild the merged views
  // after any subset of slots recompiles.
  std::vector<DiagnosticEngine> slot_diags_;
  std::vector<std::unique_ptr<QuarantinedUnit>> slot_quarantine_;
  std::vector<char> live_;           // empty = every slot live (fresh build)
  std::vector<size_t> unit_order_;   // iteration order for derived state
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_PROJECT_H_

#include "src/core/valuecheck.h"

#include <chrono>

#include "src/core/authorship.h"
#include "src/core/detector.h"
#include "src/support/table_writer.h"

namespace vc {

ValueCheckReport RunValueCheck(const Project& project, const Repository* repo,
                               const ValueCheckOptions& options) {
  auto start = std::chrono::steady_clock::now();
  ValueCheckReport report;

  // 1. Detect every unused definition.
  std::vector<UnusedDefCandidate> candidates = DetectAll(project);

  // 2. Classify authorship (cross-scope scenarios of §3.1).
  AuthorshipAnalyzer authorship(project, repo);
  authorship.ClassifyAll(candidates);
  report.raw_candidates = candidates;

  // 3. Cross-scope filter: only definitions on developer-interaction
  // boundaries continue (unless the ablation disables the filter).
  std::vector<UnusedDefCandidate> pool;
  for (const UnusedDefCandidate& cand : candidates) {
    if (options.cross_scope_only && !cand.cross_scope) {
      ++report.non_cross_scope;
      continue;
    }
    pool.push_back(cand);
  }

  // 4. Prune intentional patterns. Peer statistics always use the complete
  // candidate set: whether a value is customarily ignored is a property of
  // the codebase, not of the cross-scope subset.
  report.prune_stats = RunPruning(project, pool, options.prune, &candidates, repo);

  for (const UnusedDefCandidate& cand : pool) {
    if (cand.pruned_by == PruneReason::kNone) {
      report.findings.push_back(cand);
    }
  }

  // 5. Rank by code familiarity.
  RankCandidates(report.findings, repo, options.ranking);

  report.analysis_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

ValueCheckReport RunValueCheckOnRepository(const Repository& repo,
                                           const ValueCheckOptions& options, Config config) {
  auto project = std::make_shared<Project>(Project::FromRepository(repo, std::move(config)));
  ValueCheckReport report = RunValueCheck(*project, &repo, options);
  report.owned_project = std::move(project);
  return report;
}

std::string ValueCheckReport::ToCsv() const {
  TableWriter table({"file", "line", "function", "slot", "kind", "familiarity"});
  for (const UnusedDefCandidate& cand : findings) {
    table.AddRow({cand.file, std::to_string(cand.def_loc.line), cand.function, cand.slot_name,
                  CandidateKindName(cand.kind), FormatDouble(cand.familiarity, 3)});
  }
  return table.RenderCsv();
}

}  // namespace vc

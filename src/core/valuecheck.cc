#include "src/core/valuecheck.h"

namespace vc {

ValueCheckReport RunValueCheck(const Project& project, const Repository* repo,
                               const ValueCheckOptions& options) {
  return Analysis(options).Run(project, repo);
}

ValueCheckReport RunValueCheckOnRepository(const Repository& repo,
                                           const ValueCheckOptions& options, Config config) {
  AnalysisOptions merged = options;
  merged.config = std::move(config);
  return Analysis(std::move(merged)).RunOnRepository(repo);
}

}  // namespace vc

#include "src/core/project.h"

#include "src/ir/ir_builder.h"
#include "src/parser/parser.h"
#include "src/support/logging.h"
#include "src/support/metrics.h"
#include "src/support/string_util.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace vc {

Project Project::FromRepository(const Repository& repo, Config config, int jobs) {
  Project project;
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& path : repo.ListFiles()) {
    std::optional<std::string> content = repo.Head(path);
    if (content.has_value()) {
      files.emplace_back(path, std::move(*content));
    }
  }
  project.CompileAll(std::move(files), config, jobs);
  return project;
}

Project Project::FromRepositoryAt(const Repository& repo, CommitId commit, Config config,
                                  int jobs) {
  Project project;
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& path : repo.ListFiles()) {
    std::optional<std::string> content = repo.FileAt(path, commit);
    if (content.has_value()) {
      files.emplace_back(path, std::move(*content));
    }
  }
  project.CompileAll(std::move(files), config, jobs);
  return project;
}

Project Project::FromSources(const std::vector<std::pair<std::string, std::string>>& files,
                             Config config, int jobs) {
  Project project;
  project.CompileAll(files, config, jobs);
  return project;
}

void Project::CompileAll(std::vector<std::pair<std::string, std::string>> files,
                         const Config& config, int jobs) {
  // File ids are assigned sequentially before any parallel work so ids (and
  // everything keyed on them) do not depend on worker scheduling.
  const size_t n = files.size();
  for (auto& [path, content] : files) {
    sm_.AddFile(path, std::move(content));
  }
  units_.resize(n);
  modules_.resize(n);
  pp_.resize(n);

  // Each file compiles into its own slot with a private diagnostics engine;
  // the SourceManager is only read. Merging the engines in file order below
  // reproduces the serial diagnostic stream exactly.
  Histogram* file_histogram =
      MetricsEnabled() ? &MetricsRegistry::Global().GetHistogram("parse.file_seconds")
                       : nullptr;
  std::vector<DiagnosticEngine> file_diags(n);
  ParallelFor(jobs, n, [&](size_t i) {
    FileId file = static_cast<FileId>(i);
    TraceSpan span("parse_lower", "parse");
    span.Arg("file", sm_.Path(file));
    ScopedTimer timer(nullptr, file_histogram);
    pp_[i] = Preprocess(sm_.Content(file), config);
    for (const std::string& error : pp_[i].errors) {
      file_diags[i].Error({file, 1, 1}, "preprocessor: " + error);
    }
    TranslationUnit unit = ParseFile(sm_, file, config, file_diags[i]);
    modules_[i] = LowerUnit(unit);
    units_[i] = std::move(unit);
  });
  for (const DiagnosticEngine& engine : file_diags) {
    diags_.Append(engine);
  }
  if (MetricsEnabled()) {
    MetricsRegistry::Global().GetCounter("parse.files").Add(n);
  }
  {
    TraceSpan span("build_index", "parse");
    BuildIndex();
  }
  if (LogEnabled(LogLevel::kInfo)) {
    VC_LOG_INFO("parsed " + std::to_string(n) + " file(s), " +
                std::to_string(diags_.ErrorCount()) + " error(s), " +
                std::to_string(diags_.WarningCount()) + " warning(s)");
  }
}

void Project::BuildIndex() {
  // Pass 1: definitions.
  for (size_t i = 0; i < units_.size(); ++i) {
    const TranslationUnit& unit = units_[i];
    for (const FunctionDecl* func : unit.functions) {
      if (!func->IsDefined()) {
        continue;
      }
      FunctionInfo& info = index_[func->name];
      info.name = func->name;
      info.def_decl = func;
      info.def_file = unit.file;
      info.ir = modules_[i]->FindFunction(func->name);
    }
  }
  // Pass 2: call sites (both to project functions and to externs).
  for (const auto& module : modules_) {
    for (const auto& func : module->functions) {
      for (const CallSite& site : func->call_sites) {
        if (site.callee == nullptr) {
          continue;  // indirect call; resolved separately via points-to
        }
        FunctionInfo& info = index_[site.callee->name];
        if (info.name.empty()) {
          info.name = site.callee->name;
        }
        info.call_sites.push_back(site);
      }
    }
  }
}

int Project::TotalLines() const {
  int total = 0;
  for (int i = 0; i < sm_.NumFiles(); ++i) {
    int lines = sm_.NumLines(i);
    for (int line = 1; line <= lines; ++line) {
      if (!Trim(sm_.Line(i, line)).empty()) {
        ++total;
      }
    }
  }
  return total;
}

}  // namespace vc

#include "src/core/project.h"

#include <chrono>

#include "src/ir/ir_builder.h"
#include "src/parser/parser.h"
#include "src/support/events.h"
#include "src/support/logging.h"
#include "src/support/memstats.h"
#include "src/support/metrics.h"
#include "src/support/string_util.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace vc {

Project Project::FromRepository(const Repository& repo, Config config, int jobs,
                                const FaultInjector* fault, const ResourceBudget* budget) {
  Project project;
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& path : repo.ListFiles()) {
    std::optional<std::string> content = repo.Head(path);
    if (content.has_value()) {
      files.emplace_back(path, std::move(*content));
    }
  }
  project.CompileAll(std::move(files), config, jobs, fault, budget);
  return project;
}

Project Project::FromRepositoryAt(const Repository& repo, CommitId commit, Config config,
                                  int jobs, const FaultInjector* fault,
                                  const ResourceBudget* budget) {
  Project project;
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& path : repo.ListFiles()) {
    std::optional<std::string> content = repo.FileAt(path, commit);
    if (content.has_value()) {
      files.emplace_back(path, std::move(*content));
    }
  }
  project.CompileAll(std::move(files), config, jobs, fault, budget);
  return project;
}

Project Project::FromSources(const std::vector<std::pair<std::string, std::string>>& files,
                             Config config, int jobs, const FaultInjector* fault,
                             const ResourceBudget* budget) {
  Project project;
  project.CompileAll(files, config, jobs, fault, budget);
  return project;
}

void Project::CompileAll(std::vector<std::pair<std::string, std::string>> files,
                         const Config& config, int jobs, const FaultInjector* fault,
                         const ResourceBudget* budget) {
  // File ids are assigned sequentially before any parallel work so ids (and
  // everything keyed on them) do not depend on worker scheduling.
  const size_t n = files.size();
  for (auto& [path, content] : files) {
    sm_.AddFile(path, std::move(content));
  }
  units_.resize(n);
  modules_.resize(n);
  pp_.resize(n);

  // Each file compiles into its own slot with a private diagnostics engine;
  // the SourceManager is only read. Merging the engines in file order below
  // reproduces the serial diagnostic stream exactly.
  Histogram* file_histogram =
      MetricsEnabled() ? &MetricsRegistry::Global().GetHistogram("parse.file_seconds")
                       : nullptr;
  std::vector<DiagnosticEngine> file_diags(n);
  // Slot-indexed like units_/modules_: quarantine records merge in file
  // order, independent of worker scheduling.
  std::vector<std::unique_ptr<QuarantinedUnit>> file_quarantine(n);
  const bool isolate = fault != nullptr || budget != nullptr;
  const double deadline_seconds =
      budget != nullptr ? budget->unit_deadline_seconds : 0.0;
  const int parse_depth = budget != nullptr ? budget->parse_depth_limit : 0;
  // Memory tracking is decided once per build: per-file footprints fill
  // slot-indexed storage (order-independent), then merge into category
  // totals, so the counts are exact at any job count.
  const bool track_memory = MemoryTrackingEnabled();
  if (track_memory) {
    memory_collected_ = true;
    file_memory_.resize(n);
  }
  if (ProgressEnabled()) {
    ProgressMeter::Global().SetPhase("parse");
    ProgressMeter::Global().AddTotalFiles(n);
  }
  ParallelFor(jobs, n, [&](size_t i) {
    FileId file = static_cast<FileId>(i);
    TraceSpan span("parse_lower", "parse");
    span.Arg("file", sm_.Path(file));
    ScopedTimer timer(nullptr, file_histogram);
    if (RunEventsEnabled()) {
      RunEvent("stage_start").Str("stage", "parse_file").Str("file", sm_.Path(file)).Emit();
    }
    auto compile_one = [&] {
      const auto start = std::chrono::steady_clock::now();
      auto check_deadline = [&] {
        if (deadline_seconds <= 0.0) return;
        std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
        if (elapsed.count() > deadline_seconds) {
          throw BudgetExceededError("unit deadline exceeded");
        }
      };
      if (fault != nullptr) {
        fault->MaybeFault(fault_sites::kParseFile, sm_.Path(file));
      }
      pp_[i] = Preprocess(sm_.Content(file), config);
      for (const std::string& error : pp_[i].errors) {
        file_diags[i].Error({file, 1, 1}, "preprocessor: " + error);
      }
      check_deadline();
      TranslationUnit unit = ParseFile(sm_, file, config, file_diags[i], parse_depth);
      check_deadline();
      modules_[i] = LowerUnit(unit);
      units_[i] = std::move(unit);
    };
    if (!isolate) {
      compile_one();
    } else {
      // Isolation boundary: any exception (injected, deadline, or a real
      // front-end bug) quarantines this file only. The slot is rebuilt as an
      // empty-but-valid unit — downstream stages iterate modules() without
      // null checks — and its partial diagnostics are dropped so an injected
      // fault cannot masquerade as a source error and fail the run.
      try {
        compile_one();
      } catch (const std::exception& e) {
        file_quarantine[i] = std::make_unique<QuarantinedUnit>(
            QuarantinedUnit{sm_.Path(file), "", "parse", e.what(), ""});
        file_diags[i] = DiagnosticEngine();
        pp_[i] = PreprocessResult();
        units_[i] = TranslationUnit();
        units_[i].file = file;
        modules_[i] = std::make_unique<IrModule>();
        modules_[i]->file = file;
      }
    }
    if (track_memory) {
      FileMemory& mem = file_memory_[i];
      if (units_[i].context != nullptr) {
        mem.ast.bytes = units_[i].context->node_bytes();
        mem.ast.objects = units_[i].context->node_count();
      }
      IrFootprint ir_fp = ModuleFootprint(*modules_[i]);
      mem.ir.bytes = ir_fp.bytes;
      mem.ir.objects = ir_fp.instructions;
      // Identifier storage: function and slot names are the interning
      // candidate set (the payload a string-interner would deduplicate).
      for (const auto& func : modules_[i]->functions) {
        mem.strings.bytes += func->name.size();
        ++mem.strings.objects;
        for (int s = 0; s < func->slots.size(); ++s) {
          mem.strings.bytes += func->slots[s].name.size();
          ++mem.strings.objects;
        }
      }
    }
    if (RunEventsEnabled()) {
      RunEvent event("stage_end");
      event.Str("stage", "parse_file").Str("file", sm_.Path(file));
      if (track_memory) {
        const FileMemory& mem = file_memory_[i];
        event.Num("ast_bytes", mem.ast.bytes)
            .Num("ir_bytes", mem.ir.bytes)
            .Num("string_bytes", mem.strings.bytes);
      }
      event.Flag("quarantined", file_quarantine[i] != nullptr);
      event.Emit();
    }
    if (ProgressEnabled()) {
      ProgressMeter::Global().FileDone();
    }
  });
  if (track_memory) {
    FileMemory total = ParseMemoryTotal();
    MemoryTracker& tracker = MemoryTracker::Global();
    tracker.Add(MemCategory::kAstNodes, total.ast);
    tracker.Add(MemCategory::kIrInstructions, total.ir);
    tracker.Add(MemCategory::kInternedStrings, total.strings);
    tracker.SampleRss();
  }
  for (const DiagnosticEngine& engine : file_diags) {
    diags_.Append(engine);
  }
  for (auto& record : file_quarantine) {
    if (record != nullptr) {
      quarantined_.push_back(std::move(*record));
    }
  }
  if (MetricsEnabled() && !quarantined_.empty()) {
    MetricsRegistry::Global().GetCounter("fault.quarantined.parse").Add(quarantined_.size());
  }
  if (MetricsEnabled()) {
    MetricsRegistry::Global().GetCounter("parse.files").Add(n);
  }
  {
    TraceSpan span("build_index", "parse");
    BuildIndex();
  }
  if (LogEnabled(LogLevel::kInfo)) {
    VC_LOG_INFO("parsed " + std::to_string(n) + " file(s), " +
                std::to_string(diags_.ErrorCount()) + " error(s), " +
                std::to_string(diags_.WarningCount()) + " warning(s)");
  }
}

void Project::BuildIndex() {
  // Pass 1: definitions.
  for (size_t i = 0; i < units_.size(); ++i) {
    const TranslationUnit& unit = units_[i];
    for (const FunctionDecl* func : unit.functions) {
      if (!func->IsDefined()) {
        continue;
      }
      FunctionInfo& info = index_[func->name];
      info.name = func->name;
      info.def_decl = func;
      info.def_file = unit.file;
      info.ir = modules_[i]->FindFunction(func->name);
    }
  }
  // Pass 2: call sites (both to project functions and to externs).
  for (const auto& module : modules_) {
    for (const auto& func : module->functions) {
      for (const CallSite& site : func->call_sites) {
        if (site.callee == nullptr) {
          continue;  // indirect call; resolved separately via points-to
        }
        FunctionInfo& info = index_[site.callee->name];
        if (info.name.empty()) {
          info.name = site.callee->name;
        }
        info.call_sites.push_back(site);
      }
    }
  }
}

Project::FileMemory Project::ParseMemoryTotal() const {
  FileMemory total;
  for (const FileMemory& mem : file_memory_) {
    total.ast += mem.ast;
    total.ir += mem.ir;
    total.strings += mem.strings;
  }
  return total;
}

int Project::TotalLines() const {
  int total = 0;
  for (int i = 0; i < sm_.NumFiles(); ++i) {
    int lines = sm_.NumLines(i);
    for (int line = 1; line <= lines; ++line) {
      if (!Trim(sm_.Line(i, line)).empty()) {
        ++total;
      }
    }
  }
  return total;
}

}  // namespace vc

#include "src/core/project.h"

#include "src/ir/ir_builder.h"
#include "src/parser/parser.h"
#include "src/support/string_util.h"

namespace vc {

Project Project::FromRepository(const Repository& repo, Config config) {
  Project project;
  for (const std::string& path : repo.ListFiles()) {
    std::optional<std::string> content = repo.Head(path);
    if (content.has_value()) {
      project.AddAndCompile(path, *content, config);
    }
  }
  project.BuildIndex();
  return project;
}

Project Project::FromRepositoryAt(const Repository& repo, CommitId commit, Config config) {
  Project project;
  for (const std::string& path : repo.ListFiles()) {
    std::optional<std::string> content = repo.FileAt(path, commit);
    if (content.has_value()) {
      project.AddAndCompile(path, *content, config);
    }
  }
  project.BuildIndex();
  return project;
}

Project Project::FromSources(const std::vector<std::pair<std::string, std::string>>& files,
                             Config config) {
  Project project;
  for (const auto& [path, content] : files) {
    project.AddAndCompile(path, content, config);
  }
  project.BuildIndex();
  return project;
}

void Project::AddAndCompile(const std::string& path, const std::string& content,
                            const Config& config) {
  FileId file = sm_.AddFile(path, content);
  pp_[file] = Preprocess(sm_.Content(file), config);
  for (const std::string& error : pp_[file].errors) {
    diags_.Error({file, 1, 1}, "preprocessor: " + error);
  }
  TranslationUnit unit = ParseFile(sm_, file, config, diags_);
  modules_.push_back(LowerUnit(unit));
  units_.push_back(std::move(unit));
}

void Project::BuildIndex() {
  // Pass 1: definitions.
  for (size_t i = 0; i < units_.size(); ++i) {
    const TranslationUnit& unit = units_[i];
    for (const FunctionDecl* func : unit.functions) {
      if (!func->IsDefined()) {
        continue;
      }
      FunctionInfo& info = index_[func->name];
      info.name = func->name;
      info.def_decl = func;
      info.def_file = unit.file;
      info.ir = modules_[i]->FindFunction(func->name);
    }
  }
  // Pass 2: call sites (both to project functions and to externs).
  for (const auto& module : modules_) {
    for (const auto& func : module->functions) {
      for (const CallSite& site : func->call_sites) {
        if (site.callee == nullptr) {
          continue;  // indirect call; resolved separately via points-to
        }
        FunctionInfo& info = index_[site.callee->name];
        if (info.name.empty()) {
          info.name = site.callee->name;
        }
        info.call_sites.push_back(site);
      }
    }
  }
}

int Project::TotalLines() const {
  int total = 0;
  for (int i = 0; i < sm_.NumFiles(); ++i) {
    int lines = sm_.NumLines(i);
    for (int line = 1; line <= lines; ++line) {
      if (!Trim(sm_.Line(i, line)).empty()) {
        ++total;
      }
    }
  }
  return total;
}

}  // namespace vc

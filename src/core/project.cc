#include "src/core/project.h"

#include <algorithm>
#include <chrono>

#include "src/ir/ir_builder.h"
#include "src/parser/parser.h"
#include "src/support/events.h"
#include "src/support/logging.h"
#include "src/support/memstats.h"
#include "src/support/metrics.h"
#include "src/support/string_util.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace vc {

Project Project::FromRepository(const Repository& repo, Config config, int jobs,
                                const FaultInjector* fault, const ResourceBudget* budget) {
  Project project;
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& path : repo.ListFiles()) {
    std::optional<std::string> content = repo.Head(path);
    if (content.has_value()) {
      files.emplace_back(path, std::move(*content));
    }
  }
  project.CompileAll(std::move(files), config, jobs, fault, budget);
  return project;
}

Project Project::FromRepositoryAt(const Repository& repo, CommitId commit, Config config,
                                  int jobs, const FaultInjector* fault,
                                  const ResourceBudget* budget) {
  Project project;
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& path : repo.ListFiles()) {
    std::optional<std::string> content = repo.FileAt(path, commit);
    if (content.has_value()) {
      files.emplace_back(path, std::move(*content));
    }
  }
  project.CompileAll(std::move(files), config, jobs, fault, budget);
  return project;
}

Project Project::FromSources(const std::vector<std::pair<std::string, std::string>>& files,
                             Config config, int jobs, const FaultInjector* fault,
                             const ResourceBudget* budget) {
  Project project;
  project.CompileAll(files, config, jobs, fault, budget);
  return project;
}

void Project::CompileAll(std::vector<std::pair<std::string, std::string>> files,
                         const Config& config, int jobs, const FaultInjector* fault,
                         const ResourceBudget* budget) {
  // File ids are assigned sequentially before any parallel work so ids (and
  // everything keyed on them) do not depend on worker scheduling.
  const size_t n = files.size();
  for (auto& [path, content] : files) {
    sm_.AddFile(path, std::move(content));
  }
  units_.resize(n);
  modules_.resize(n);
  pp_.resize(n);
  // Per-slot diagnostics and quarantine records persist as members so
  // incremental recompiles (UpsertFile) can rebuild the merged views later;
  // the SourceManager is only read during the parallel phase. Merging the
  // per-slot engines in file order below reproduces the serial diagnostic
  // stream exactly.
  slot_diags_.assign(n, DiagnosticEngine());
  slot_quarantine_.clear();
  slot_quarantine_.resize(n);
  // Memory tracking is decided once per build: per-file footprints fill
  // slot-indexed storage (order-independent), then merge into category
  // totals, so the counts are exact at any job count.
  if (MemoryTrackingEnabled()) {
    memory_collected_ = true;
    file_memory_.resize(n);
  }
  if (ProgressEnabled()) {
    ProgressMeter::Global().SetPhase("parse");
    ProgressMeter::Global().AddTotalFiles(n);
  }
  ParallelFor(jobs, n, [&](size_t i) { CompileSlot(i, config, fault, budget); });
  if (memory_collected_) {
    FileMemory total = ParseMemoryTotal();
    MemoryTracker& tracker = MemoryTracker::Global();
    tracker.Add(MemCategory::kAstNodes, total.ast);
    tracker.Add(MemCategory::kIrInstructions, total.ir);
    tracker.Add(MemCategory::kInternedStrings, total.strings);
    tracker.SampleRss();
  }
  unit_order_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    unit_order_[i] = i;
  }
  for (const DiagnosticEngine& engine : slot_diags_) {
    diags_.Append(engine);
  }
  for (const auto& record : slot_quarantine_) {
    if (record != nullptr) {
      quarantined_.push_back(*record);
    }
  }
  if (MetricsEnabled() && !quarantined_.empty()) {
    MetricsRegistry::Global().GetCounter("fault.quarantined.parse").Add(quarantined_.size());
  }
  if (MetricsEnabled()) {
    MetricsRegistry::Global().GetCounter("parse.files").Add(n);
  }
  {
    TraceSpan span("build_index", "parse");
    BuildIndex();
  }
  if (LogEnabled(LogLevel::kInfo)) {
    VC_LOG_INFO("parsed " + std::to_string(n) + " file(s), " +
                std::to_string(diags_.ErrorCount()) + " error(s), " +
                std::to_string(diags_.WarningCount()) + " warning(s)");
  }
}

void Project::CompileSlot(size_t i, const Config& config, const FaultInjector* fault,
                          const ResourceBudget* budget) {
  FileId file = static_cast<FileId>(i);
  Histogram* file_histogram =
      MetricsEnabled() ? &MetricsRegistry::Global().GetHistogram("parse.file_seconds")
                       : nullptr;
  const bool isolate = fault != nullptr || budget != nullptr;
  const double deadline_seconds =
      budget != nullptr ? budget->unit_deadline_seconds : 0.0;
  const int parse_depth = budget != nullptr ? budget->parse_depth_limit : 0;
  const bool track_memory = memory_collected_;
  TraceSpan span("parse_lower", "parse");
  span.Arg("file", sm_.Path(file));
  ScopedTimer timer(nullptr, file_histogram);
  if (RunEventsEnabled()) {
    RunEvent("stage_start").Str("stage", "parse_file").Str("file", sm_.Path(file)).Emit();
  }
  slot_diags_[i] = DiagnosticEngine();
  slot_quarantine_[i].reset();
  if (track_memory) {
    file_memory_[i] = FileMemory();
  }
  auto compile_one = [&] {
    const auto start = std::chrono::steady_clock::now();
    auto check_deadline = [&] {
      if (deadline_seconds <= 0.0) return;
      std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
      if (elapsed.count() > deadline_seconds) {
        throw BudgetExceededError("unit deadline exceeded");
      }
    };
    if (fault != nullptr) {
      fault->MaybeFault(fault_sites::kParseFile, sm_.Path(file));
    }
    pp_[i] = Preprocess(sm_.Content(file), config);
    for (const std::string& error : pp_[i].errors) {
      slot_diags_[i].Error({file, 1, 1}, "preprocessor: " + error);
    }
    check_deadline();
    TranslationUnit unit = ParseFile(sm_, file, config, slot_diags_[i], parse_depth);
    check_deadline();
    modules_[i] = LowerUnit(unit);
    units_[i] = std::move(unit);
  };
  if (!isolate) {
    compile_one();
  } else {
    // Isolation boundary: any exception (injected, deadline, or a real
    // front-end bug) quarantines this file only. The slot is rebuilt as an
    // empty-but-valid unit — downstream stages iterate modules() without
    // null checks — and its partial diagnostics are dropped so an injected
    // fault cannot masquerade as a source error and fail the run.
    try {
      compile_one();
    } catch (const std::exception& e) {
      slot_quarantine_[i] = std::make_unique<QuarantinedUnit>(
          QuarantinedUnit{sm_.Path(file), "", "parse", e.what(), ""});
      slot_diags_[i] = DiagnosticEngine();
      pp_[i] = PreprocessResult();
      units_[i] = TranslationUnit();
      units_[i].file = file;
      modules_[i] = std::make_unique<IrModule>();
      modules_[i]->file = file;
    }
  }
  if (track_memory) {
    FileMemory& mem = file_memory_[i];
    if (units_[i].context != nullptr) {
      mem.ast.bytes = units_[i].context->node_bytes();
      mem.ast.objects = units_[i].context->node_count();
    }
    IrFootprint ir_fp = ModuleFootprint(*modules_[i]);
    mem.ir.bytes = ir_fp.bytes;
    mem.ir.objects = ir_fp.instructions;
    // Identifier storage: function and slot names are the interning
    // candidate set (the payload a string-interner would deduplicate).
    for (const auto& func : modules_[i]->functions) {
      mem.strings.bytes += func->name.size();
      ++mem.strings.objects;
      for (int s = 0; s < func->slots.size(); ++s) {
        mem.strings.bytes += func->slots[s].name.size();
        ++mem.strings.objects;
      }
    }
  }
  if (RunEventsEnabled()) {
    RunEvent event("stage_end");
    event.Str("stage", "parse_file").Str("file", sm_.Path(file));
    if (track_memory) {
      const FileMemory& mem = file_memory_[i];
      event.Num("ast_bytes", mem.ast.bytes)
          .Num("ir_bytes", mem.ir.bytes)
          .Num("string_bytes", mem.strings.bytes);
    }
    event.Flag("quarantined", slot_quarantine_[i] != nullptr);
    event.Emit();
  }
  if (ProgressEnabled()) {
    ProgressMeter::Global().FileDone();
  }
}

FileId Project::UpsertFile(const std::string& path, std::string content, const Config& config,
                           const FaultInjector* fault, const ResourceBudget* budget) {
  if (live_.size() < units_.size()) {
    live_.resize(units_.size(), 1);
  }
  FileId file = sm_.FindByPath(path);
  if (file == kInvalidFileId) {
    file = sm_.AddFile(path, std::move(content));
    units_.emplace_back();
    modules_.emplace_back();
    pp_.emplace_back();
    slot_diags_.emplace_back();
    slot_quarantine_.emplace_back();
    live_.push_back(1);
    if (memory_collected_) {
      file_memory_.emplace_back();
    }
  } else {
    sm_.ReplaceContent(file, std::move(content));
    live_[file] = 1;
  }
  CompileSlot(file, config, fault, budget);
  if (memory_collected_) {
    const FileMemory& mem = file_memory_[file];
    MemoryTracker& tracker = MemoryTracker::Global();
    tracker.Add(MemCategory::kAstNodes, mem.ast);
    tracker.Add(MemCategory::kIrInstructions, mem.ir);
    tracker.Add(MemCategory::kInternedStrings, mem.strings);
  }
  if (MetricsEnabled()) {
    MetricsRegistry::Global().GetCounter("parse.files").Add(1);
  }
  return file;
}

bool Project::RemoveFile(const std::string& path) {
  FileId file = sm_.FindByPath(path);
  if (file == kInvalidFileId || !IsLive(file)) {
    return false;
  }
  if (live_.size() < units_.size()) {
    live_.resize(units_.size(), 1);
  }
  live_[file] = 0;
  sm_.ReplaceContent(file, "");
  pp_[file] = PreprocessResult();
  units_[file] = TranslationUnit();
  units_[file].file = file;
  modules_[file] = std::make_unique<IrModule>();
  modules_[file]->file = file;
  slot_diags_[file] = DiagnosticEngine();
  slot_quarantine_[file].reset();
  if (memory_collected_) {
    file_memory_[file] = FileMemory();
  }
  return true;
}

void Project::FinishUpdate() {
  if (live_.size() < units_.size()) {
    live_.resize(units_.size(), 1);
  }
  // Live slots in path-sorted order: the same order FromRepository compiles
  // files in (ListFiles is sorted), so index construction — in particular
  // which definition wins a duplicate name, and call-site order — matches a
  // from-scratch build over the same live contents.
  std::vector<std::pair<std::string, size_t>> by_path;
  by_path.reserve(units_.size());
  for (size_t i = 0; i < units_.size(); ++i) {
    if (live_[i] != 0) {
      by_path.emplace_back(sm_.Path(static_cast<FileId>(i)), i);
    }
  }
  std::sort(by_path.begin(), by_path.end());
  unit_order_.clear();
  unit_order_.reserve(by_path.size());
  for (const auto& [path, i] : by_path) {
    unit_order_.push_back(i);
  }
  diags_ = DiagnosticEngine();
  quarantined_.clear();
  index_.clear();
  for (size_t i : unit_order_) {
    diags_.Append(slot_diags_[i]);
    if (slot_quarantine_[i] != nullptr) {
      quarantined_.push_back(*slot_quarantine_[i]);
    }
  }
  BuildIndex();
}

void Project::BuildIndex() {
  // Both passes iterate unit_order_ — identity order for a fresh build,
  // path-sorted live slots after incremental mutations — so the index is the
  // same whichever way the project reached its current contents.
  // Pass 1: definitions.
  for (size_t i : unit_order_) {
    const TranslationUnit& unit = units_[i];
    for (const FunctionDecl* func : unit.functions) {
      if (!func->IsDefined()) {
        continue;
      }
      FunctionInfo& info = index_[func->name];
      info.name = func->name;
      info.def_decl = func;
      info.def_file = unit.file;
      info.ir = modules_[i]->FindFunction(func->name);
    }
  }
  // Pass 2: call sites (both to project functions and to externs).
  for (size_t i : unit_order_) {
    const auto& module = modules_[i];
    for (const auto& func : module->functions) {
      for (const CallSite& site : func->call_sites) {
        if (site.callee == nullptr) {
          continue;  // indirect call; resolved separately via points-to
        }
        FunctionInfo& info = index_[site.callee->name];
        if (info.name.empty()) {
          info.name = site.callee->name;
        }
        info.call_sites.push_back(site);
      }
    }
  }
}

Project::FileMemory Project::ParseMemoryTotal() const {
  FileMemory total;
  for (const FileMemory& mem : file_memory_) {
    total.ast += mem.ast;
    total.ir += mem.ir;
    total.strings += mem.strings;
  }
  return total;
}

int Project::TotalLines() const {
  int total = 0;
  for (int i = 0; i < sm_.NumFiles(); ++i) {
    int lines = sm_.NumLines(i);
    for (int line = 1; line <= lines; ++line) {
      if (!Trim(sm_.Line(i, line)).empty()) {
        ++total;
      }
    }
  }
  return total;
}

}  // namespace vc

// The incremental re-analysis engine (DESIGN.md §18).
//
// An IncrementalEngine consumes a repository's commits in order and, after
// each one, produces the COMPLETE analysis report as of that commit —
// byte-identical (findings, fingerprints, order, quarantine records) to a
// full Analysis::RunOnRepository over Repository::PrefixCopy(commit). The
// differential test battery (tests/incremental_equivalence_test.cc, the
// incremental_equivalence fuzz oracle) holds it to exactly that.
//
// Equivalence is by construction, not by patching:
//
//  * The engine owns a growing Repository replica fed commit-by-commit, so
//    blame, authorship, stale-code matching, and ranking familiarity all see
//    a repository whose head IS the analyzed commit — the same view a full
//    run over the prefix copy sees. Head blame advances through resumable
//    per-path replay states (O(commit delta), byte-identical to replay).
//  * A persistent Project recompiles only files whose content hash changed;
//    an unchanged file's parsed TU and lowered IR are never rebuilt, and its
//    slot (FileId) is stable, so carried results keep valid locations.
//  * Checkers re-run only on the commit's dirty slice: changed functions
//    plus callers, callees, and alias-affected functions (src/core/dep_graph.h).
//    Every other function's detect output is carried from the AnalysisCache
//    (memory tier always; a --cache-dir disk tier persists across processes).
//    A checker with function_local() == false disables carry-over entirely.
//  * Every stage after detection (authorship, cross-scope filter, pruning
//    with its GLOBAL peer statistics, ranking, fingerprints) re-runs each
//    commit over the complete assembled candidate set, through the same
//    Analysis::RunWithDetect code path a full run uses.

#ifndef VALUECHECK_SRC_CORE_INCREMENTAL_H_
#define VALUECHECK_SRC_CORE_INCREMENTAL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/analysis_cache.h"
#include "src/core/project.h"
#include "src/vcs/repository.h"

namespace vc {

struct IncrementalOptions {
  // Disk tier for the analysis cache; empty keeps the cache in memory only.
  std::string cache_dir;
};

// Result of per-commit incremental analysis.
struct IncrementalResult {
  // The complete report as of `commit` — equivalent to a full run over the
  // repository truncated at that commit.
  AnalysisReport report;
  CommitId commit = kInvalidCommit;
  // Work actually performed for this commit.
  int files_changed = 0;     // paths the commit batch touched (incl. deletes)
  int files_reparsed = 0;    // content-hash misses among them (recompiled)
  int functions_dirty = 0;   // functions re-run through the checkers
  int functions_total = 0;   // live functions at the commit
  // Fingerprint-keyed delta against the previous analyzed commit.
  int findings_carried = 0;  // same fingerprint as before
  int findings_new = 0;
  int findings_fixed = 0;    // present before, gone now
  // Cumulative engine cache telemetry (also published as cache.* metrics).
  CacheStats cache;
  double seconds = 0.0;      // this commit, end to end

  // Convenience accessor kept for callers that only consume findings.
  const std::vector<UnusedDefCandidate>& findings() const { return report.findings; }
};

class IncrementalEngine {
 public:
  explicit IncrementalEngine(AnalysisOptions options, IncrementalOptions inc = {});

  // Fast-forwards the engine's repository replica through `commit` without
  // analyzing (the touched paths stay pending until the next AnalyzeCommit).
  // Commits must be fed in id order; the engine replays any gap from its
  // current head itself, so callers may simply hand it the target commit.
  void ApplyCommit(const Repository& source, CommitId commit);

  // Feeds `commit` (replaying any skipped predecessors) and produces the
  // complete report at that commit.
  IncrementalResult AnalyzeCommit(const Repository& source, CommitId commit);

  // The next commit id the engine expects (== number of commits ingested).
  CommitId next_commit() const { return static_cast<CommitId>(repo_.NumCommits()); }

  const Repository& repo() const { return repo_; }
  const AnalysisOptions& options() const { return analysis_.options(); }
  const CacheStats& cache_stats() const { return cache_.stats(); }

  // Adjusts worker parallelism between commits. Jobs is deliberately absent
  // from MakeCacheConfigKey — findings are byte-identical at any job count —
  // so the daemon can honor a per-request `jobs` without invalidating the
  // warm cache or rebuilding the engine.
  void set_jobs(int jobs) { analysis_.options().jobs = jobs; }

 private:
  // Ingests exactly one commit into the replica and the pending-path set.
  void Ingest(const Repository& source, CommitId commit);

  Analysis analysis_;
  IncrementalOptions inc_;
  Repository repo_;    // replica; head == last ingested commit
  Project project_;    // persistent, mutated in place per commit
  AnalysisCache cache_;
  std::set<std::string> pending_;  // paths touched since the last analysis
  // Function names per live path as of the last analysis (the "old names"
  // half of the changed set when a file recompiles or disappears).
  std::map<std::string, std::vector<std::string>> file_functions_;
  // Fingerprints of the previous report's findings (carried/new/fixed delta).
  std::set<std::string> prev_fingerprints_;
};

// Canonical configuration key for the cache: folds in everything besides
// file content that invalidates cached detect results — preprocessor macros,
// the resolved checker list, project traits, budget and fault settings, and
// the cache schema version. Exposed for the stale-key tests.
std::string MakeCacheConfigKey(const AnalysisOptions& options);

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_INCREMENTAL_H_

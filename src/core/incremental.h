// Incremental per-commit analysis (§8.6): after a commit, only the functions
// whose line ranges intersect the commit's changed lines need re-analysis.
// This is what makes ValueCheck cheap enough to run in a development loop
// (the paper measures < 5 s per commit vs minutes for a full run).
//
// The implementation lives behind the vc::Analysis facade
// (Analysis::RunOnCommit, src/core/analysis.h — which also defines
// IncrementalResult); the free function below is a deprecated shim.

#ifndef VALUECHECK_SRC_CORE_INCREMENTAL_H_
#define VALUECHECK_SRC_CORE_INCREMENTAL_H_

#include "src/core/valuecheck.h"
#include "src/vcs/repository.h"

namespace vc {

// Deprecated: use Analysis(options).RunOnCommit(repo, commit). The separate
// `config` parameter overrides options.config.
IncrementalResult AnalyzeCommit(const Repository& repo, CommitId commit,
                                const ValueCheckOptions& options = ValueCheckOptions(),
                                Config config = Config());

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_INCREMENTAL_H_

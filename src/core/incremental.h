// Incremental per-commit analysis (§8.6): after a commit, only the functions
// whose line ranges intersect the commit's changed lines need re-analysis.
// This is what makes ValueCheck cheap enough to run in a development loop
// (the paper measures < 5 s per commit vs minutes for a full run).

#ifndef VALUECHECK_SRC_CORE_INCREMENTAL_H_
#define VALUECHECK_SRC_CORE_INCREMENTAL_H_

#include <vector>

#include "src/core/unused_def.h"
#include "src/core/valuecheck.h"
#include "src/vcs/repository.h"

namespace vc {

struct IncrementalResult {
  // Findings within the functions affected by the commit.
  std::vector<UnusedDefCandidate> findings;
  int files_analyzed = 0;
  int functions_analyzed = 0;
  double seconds = 0.0;
};

// Re-analyzes only the files `commit` touched and, within them, only the
// functions overlapping the changed lines. Authorship uses blame at that
// commit (not head), so results match what a CI hook would have seen.
IncrementalResult AnalyzeCommit(const Repository& repo, CommitId commit,
                                const ValueCheckOptions& options = ValueCheckOptions(),
                                Config config = Config());

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_INCREMENTAL_H_

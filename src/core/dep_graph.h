// Function-level dependency graph for the incremental engine's dirty-slice
// computation (DESIGN.md §18).
//
// When a commit changes a set of functions, the engine must re-run checkers
// on every function whose detect result *could* observe the change. The
// conservative rule implemented here:
//
//   dirty(changed) = changed
//                  ∪ callers(changed) ∪ callees(changed)     (direct edges)
//                  ∪ alias-affected                          (if changed ≠ ∅)
//
// where "alias-affected" is every function containing an indirect call
// (callee resolvable only through points-to) and every function whose address
// is taken (a potential indirect-call target): any edit can, in principle,
// reroute those edges, so they never trust the cache while anything changed.
//
// This over-approximates today's checkers — every function_local() checker is
// a pure function of its own file's content — but it is the contract that
// keeps the cache sound if a future checker starts peeking one call level
// deep, and it is cheap: edges come straight from the IR call sites the
// function index already records.

#ifndef VALUECHECK_SRC_CORE_DEP_GRAPH_H_
#define VALUECHECK_SRC_CORE_DEP_GRAPH_H_

#include <map>
#include <set>
#include <string>

#include "src/core/project.h"

namespace vc {

class DepGraph {
 public:
  // Builds edges from the live slots of `project` (unit_order iteration).
  explicit DepGraph(const Project& project);

  // The dirty slice seeded by `changed` function names. Names not defined in
  // the project (externs) still propagate to their callers.
  std::set<std::string> DirtyClosure(const std::set<std::string>& changed) const;

  const std::set<std::string>& alias_affected() const { return alias_affected_; }

 private:
  std::map<std::string, std::set<std::string>> callees_;  // f -> names f calls
  std::map<std::string, std::set<std::string>> callers_;  // f -> names calling f
  std::set<std::string> alias_affected_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_DEP_GRAPH_H_

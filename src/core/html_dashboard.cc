#include "src/core/html_dashboard.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <map>
#include <set>

#include "src/support/table_writer.h"

namespace vc {

namespace {

std::string EscapeHtml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FormatTimestamp(int64_t timestamp_ms) {
  if (timestamp_ms <= 0) {
    return "-";
  }
  std::time_t seconds = static_cast<std::time_t>(timestamp_ms / 1000);
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_utc);
  return buf;
}

double PruneRatePercent(const LedgerMetrics& m) {
  int64_t tested = 0;
  int64_t pruned = 0;
  for (const LedgerPrunePattern& pattern : m.prune_patterns) {
    tested += pattern.tested;
    pruned += pattern.pruned;
  }
  return tested > 0 ? 100.0 * static_cast<double>(pruned) / static_cast<double>(tested) : 0.0;
}

// One single-series sparkline: a 2px polyline plus hoverable point markers
// (native <title> tooltips — the zero-script stand-in for a tooltip layer).
// Single series, so no legend; the tile caption names it and the last value
// is direct-labeled. `labels` names each point in its tooltip (empty =
// "run N", the ledger-trend default); `empty_note` is shown when there are
// too few points to draw a line.
std::string LabeledSparkline(const std::vector<double>& values,
                             const std::vector<std::string>& labels, int decimals,
                             const std::string& empty_note) {
  const double width = 260.0;
  const double height = 56.0;
  const double pad = 6.0;
  std::string svg = "<svg class=\"spark\" viewBox=\"0 0 260 72\" role=\"img\" "
                    "preserveAspectRatio=\"none\">";
  if (values.size() < 2) {
    svg += "<text x=\"8\" y=\"40\" class=\"spark-empty\">" + EscapeHtml(empty_note) +
           "</text></svg>";
    return svg;
  }
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double span = hi - lo;
  if (span <= 0) {
    span = 1.0;  // flat line renders mid-height
  }
  auto x_at = [&](size_t i) {
    return pad + (width - 2 * pad) * static_cast<double>(i) /
               static_cast<double>(values.size() - 1);
  };
  auto y_at = [&](double v) { return pad + (height - 2 * pad) * (1.0 - (v - lo) / span) + 8.0; };

  std::string points;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!points.empty()) {
      points += ' ';
    }
    points += FormatDouble(x_at(i), 1) + "," + FormatDouble(y_at(values[i]), 1);
  }
  svg += "<polyline class=\"spark-line\" fill=\"none\" points=\"" + points + "\"/>";
  for (size_t i = 0; i < values.size(); ++i) {
    std::string label = i < labels.size() ? labels[i] : "run " + std::to_string(i + 1);
    svg += "<circle class=\"spark-dot\" cx=\"" + FormatDouble(x_at(i), 1) + "\" cy=\"" +
           FormatDouble(y_at(values[i]), 1) + "\" r=\"4\"><title>" + EscapeHtml(label) +
           ": " + FormatDouble(values[i], decimals) + "</title></circle>";
  }
  // Direct label on the newest value only (selective labeling).
  svg += "<text class=\"spark-label\" x=\"" + FormatDouble(x_at(values.size() - 1) - 4, 1) +
         "\" y=\"" + FormatDouble(std::max(14.0, y_at(values.back()) - 8), 1) +
         "\" text-anchor=\"end\">" + FormatDouble(values.back(), decimals) + "</text>";
  svg += "</svg>";
  return svg;
}

std::string Sparkline(const std::vector<double>& values, int decimals) {
  return LabeledSparkline(values, {}, decimals, "need \xe2\x89\xa5 2 runs for a trend");
}

void StatTile(std::string& out, const std::string& value, const std::string& caption,
              const std::string& badge_class = "") {
  out += "<div class=\"tile\"><div class=\"tile-value";
  if (!badge_class.empty()) {
    out += " " + badge_class;
  }
  out += "\">" + value + "</div><div class=\"tile-caption\">" + caption + "</div></div>";
}

const char* kStyle = R"css(
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --surface-2: #f0efec;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --series-1: #2a78d6;
  --status-good: #0ca30c;
  --status-critical: #d03b3b;
  --border: #dddcd8;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --surface-2: #262624;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --series-1: #3987e5;
    --border: #3c3b38;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 -apple-system, "Segoe UI", Roboto, "Helvetica Neue", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-2); border: 1px solid var(--border); border-radius: 8px;
  padding: 12px 16px; min-width: 130px;
}
.tile-value { font-size: 24px; font-weight: 600; font-variant-numeric: tabular-nums; }
.tile-caption { color: var(--text-secondary); font-size: 12px; }
.delta-new { color: var(--status-critical); }
.delta-fixed { color: var(--status-good); }
.cards { display: flex; flex-wrap: wrap; gap: 12px; }
.card {
  background: var(--surface-2); border: 1px solid var(--border); border-radius: 8px;
  padding: 12px 16px;
}
.card h3 { margin: 0 0 6px; font-size: 13px; font-weight: 600; color: var(--text-secondary); }
.spark { width: 260px; height: 72px; display: block; }
.spark-line { stroke: var(--series-1); stroke-width: 2; }
.spark-dot { fill: var(--series-1); stroke: var(--surface-2); stroke-width: 2; }
.spark-label { fill: var(--text-primary); font-size: 11px; font-weight: 600; }
.spark-empty { fill: var(--text-secondary); font-size: 11px; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 6px 10px; border-bottom: 1px solid var(--border); }
th { color: var(--text-secondary); font-size: 12px; font-weight: 600; }
td { font-variant-numeric: tabular-nums; }
tr:hover td { background: var(--surface-2); }
.badge {
  display: inline-block; padding: 1px 8px; border-radius: 10px; font-size: 11px;
  font-weight: 600; border: 1px solid var(--border); color: var(--text-secondary);
}
.badge-new { border-color: var(--status-critical); color: var(--status-critical); }
.badge-fixed { border-color: var(--status-good); color: var(--status-good); }
.fp { font-family: ui-monospace, SFMono-Regular, Menlo, monospace; font-size: 12px;
      color: var(--text-secondary); }
.empty { color: var(--text-secondary); padding: 24px 0; }
)css";

}  // namespace

std::string RenderHtmlDashboard(const std::vector<RunRecord>& runs) {
  std::string out;
  out += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
         "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n"
         "<title>valuecheck run ledger</title>\n<style>";
  out += kStyle;
  out += "</style>\n</head>\n<body>\n";
  out += "<h1>valuecheck run ledger</h1>\n";

  if (runs.empty()) {
    out += "<p class=\"empty\">The ledger has no runs yet. Record one with "
           "<code>valuecheck analyze --ledger DIR ...</code></p>\n</body>\n</html>\n";
    return out;
  }

  const RunRecord& latest = runs.back();
  const RunRecord* previous = runs.size() >= 2 ? &runs[runs.size() - 2] : nullptr;

  // New/fixed deltas against the previous run, keyed by the
  // (checker, fingerprint) pair (fingerprints are only unique per checker).
  auto finding_key = [](const LedgerFinding& finding) {
    return finding.checker + "\x1f" + finding.fingerprint;
  };
  std::set<std::string> latest_fps;
  std::set<std::string> prev_fps;
  for (const LedgerFinding& finding : latest.findings) {
    latest_fps.insert(finding_key(finding));
  }
  size_t new_count = 0;
  size_t fixed_count = 0;
  if (previous != nullptr) {
    for (const LedgerFinding& finding : previous->findings) {
      prev_fps.insert(finding_key(finding));
    }
    for (const std::string& fp : latest_fps) {
      if (!prev_fps.count(fp)) {
        ++new_count;
      }
    }
    for (const std::string& fp : prev_fps) {
      if (!latest_fps.count(fp)) {
        ++fixed_count;
      }
    }
  }

  out += "<p class=\"subtitle\">" + std::to_string(runs.size()) + " run(s) \xc2\xb7 latest " +
         EscapeHtml(latest.run_id) + " (" + FormatTimestamp(latest.timestamp_ms) + " UTC)" +
         (latest.label.empty() ? "" : " \xc2\xb7 " + EscapeHtml(latest.label)) + "</p>\n";

  out += "<div class=\"tiles\">";
  StatTile(out, std::to_string(latest.findings.size()), "findings (latest)");
  if (previous != nullptr) {
    StatTile(out, (new_count > 0 ? "+" : "") + std::to_string(new_count), "new vs " +
             EscapeHtml(previous->run_id), new_count > 0 ? "delta-new" : "");
    StatTile(out, "\xe2\x88\x92" + std::to_string(fixed_count), "fixed vs " +
             EscapeHtml(previous->run_id), fixed_count > 0 ? "delta-fixed" : "");
  }
  StatTile(out, FormatDouble(latest.metrics.analysis_seconds, 3) + "s", "analysis time");
  StatTile(out, std::to_string(latest.jobs), "jobs");
  StatTile(out, std::to_string(latest.metrics.functions_analyzed), "functions analyzed");
  out += "</div>\n";

  // Trends across every ledger run.
  std::vector<double> findings_trend;
  std::vector<double> seconds_trend;
  std::vector<double> prune_trend;
  std::vector<double> detect_trend;
  std::vector<double> parse_trend;
  for (const RunRecord& run : runs) {
    findings_trend.push_back(static_cast<double>(run.findings.size()));
    seconds_trend.push_back(run.metrics.analysis_seconds);
    prune_trend.push_back(PruneRatePercent(run.metrics));
    detect_trend.push_back(run.metrics.detect_seconds);
    parse_trend.push_back(run.metrics.parse_seconds);
  }
  out += "<h2>Trends (" + std::to_string(runs.size()) + " runs)</h2>\n<div class=\"cards\">";
  out += "<div class=\"card\"><h3>findings</h3>" + Sparkline(findings_trend, 0) + "</div>";
  out += "<div class=\"card\"><h3>analysis seconds</h3>" + Sparkline(seconds_trend, 3) + "</div>";
  out += "<div class=\"card\"><h3>prune rate %</h3>" + Sparkline(prune_trend, 1) + "</div>";
  out += "<div class=\"card\"><h3>parse seconds</h3>" + Sparkline(parse_trend, 3) + "</div>";
  out += "<div class=\"card\"><h3>detect seconds</h3>" + Sparkline(detect_trend, 3) + "</div>";
  out += "</div>\n";

  // Per-checker trends: findings count and precision (surviving findings /
  // raw candidates). Series are built per checker name over the runs that
  // recorded stats for it — pre-v2 records carry none and simply don't
  // contribute points, so mixed-version ledgers still render.
  std::vector<std::string> checker_names;
  for (const RunRecord& run : runs) {
    for (const LedgerCheckerStat& stat : run.checker_stats) {
      if (std::find(checker_names.begin(), checker_names.end(), stat.name) ==
          checker_names.end()) {
        checker_names.push_back(stat.name);
      }
    }
  }
  if (!checker_names.empty()) {
    out += "<h2>Per-checker trends</h2>\n<div class=\"cards\">";
    for (const std::string& name : checker_names) {
      std::vector<double> checker_findings;
      std::vector<double> checker_precision;
      for (const RunRecord& run : runs) {
        for (const LedgerCheckerStat& stat : run.checker_stats) {
          if (stat.name != name) {
            continue;
          }
          checker_findings.push_back(static_cast<double>(stat.findings));
          checker_precision.push_back(
              stat.candidates > 0
                  ? 100.0 * static_cast<double>(stat.findings) /
                        static_cast<double>(stat.candidates)
                  : 0.0);
        }
      }
      out += "<div class=\"card\"><h3>" + EscapeHtml(name) + " findings</h3>" +
             Sparkline(checker_findings, 0) + "</div>";
      out += "<div class=\"card\"><h3>" + EscapeHtml(name) +
             " precision % (findings/candidates)</h3>" + Sparkline(checker_precision, 1) +
             "</div>";
    }
    out += "</div>\n";
  }

  // Memory trends over the runs that collected accounting (--metrics). The
  // tracked series is exact and deterministic; peak RSS is a per-run sample.
  std::vector<double> mem_tracked_mb;
  std::vector<double> mem_rss_mb;
  for (const RunRecord& run : runs) {
    if (!run.metrics.mem_collected) {
      continue;
    }
    mem_tracked_mb.push_back(static_cast<double>(run.metrics.mem_tracked_bytes) / 1e6);
    mem_rss_mb.push_back(static_cast<double>(run.metrics.mem_peak_rss_bytes) / 1e6);
  }
  if (!mem_tracked_mb.empty()) {
    out += "<h2>Memory (" + std::to_string(mem_tracked_mb.size()) +
           " run(s) with accounting)</h2>\n<div class=\"cards\">";
    out += "<div class=\"card\"><h3>tracked MB (exact)</h3>" + Sparkline(mem_tracked_mb, 2) +
           "</div>";
    out += "<div class=\"card\"><h3>peak RSS MB (sampled)</h3>" + Sparkline(mem_rss_mb, 1) +
           "</div>";
    out += "</div>\n";
  }

  // Scalability observatory: utilization/imbalance/critical-path trends over
  // the runs that produced a perf report (--perf-report or the scalability
  // bench). Pre-v3 records carry no perf block and contribute no points.
  std::vector<double> util_trend;
  std::vector<double> imbalance_trend;
  std::vector<double> critical_trend;
  for (const RunRecord& run : runs) {
    if (!run.metrics.perf_collected) {
      continue;
    }
    util_trend.push_back(100.0 * run.metrics.perf_utilization);
    imbalance_trend.push_back(run.metrics.perf_imbalance_ratio);
    critical_trend.push_back(run.metrics.perf_critical_path_seconds);
  }
  if (!util_trend.empty()) {
    out += "<h2>Scalability (" + std::to_string(util_trend.size()) +
           " run(s) with perf reports)</h2>\n<div class=\"cards\">";
    out += "<div class=\"card\"><h3>worker utilization % (mean)</h3>" +
           Sparkline(util_trend, 1) + "</div>";
    out += "<div class=\"card\"><h3>imbalance (max/mean busy)</h3>" +
           Sparkline(imbalance_trend, 2) + "</div>";
    out += "<div class=\"card\"><h3>critical path seconds</h3>" +
           Sparkline(critical_trend, 3) + "</div>";
    out += "</div>\n";
  }

  // Incremental engine: full-vs-incremental trend over the runs that carry
  // the v4 metrics.incremental block (`analyze --incremental` replays and
  // bench_incremental's sampled points). For bench records analysis_seconds
  // holds the sampled full-run time, so the two seconds cards together are
  // the full-vs-incremental comparison; hit rate and dirty-slice cards track
  // whether the cache keeps doing the work.
  std::vector<double> inc_seconds_trend;
  std::vector<double> inc_full_trend;
  std::vector<double> inc_hit_trend;
  std::vector<double> inc_dirty_trend;
  for (const RunRecord& run : runs) {
    if (!run.metrics.inc_collected) {
      continue;
    }
    inc_seconds_trend.push_back(run.metrics.inc_seconds);
    inc_full_trend.push_back(run.metrics.analysis_seconds);
    inc_hit_trend.push_back(100.0 * run.metrics.inc_cache_hit_rate);
    inc_dirty_trend.push_back(
        run.metrics.inc_functions_total > 0
            ? 100.0 * static_cast<double>(run.metrics.inc_functions_dirty) /
                  static_cast<double>(run.metrics.inc_functions_total)
            : 0.0);
  }
  if (!inc_seconds_trend.empty()) {
    out += "<h2>Incremental engine (" + std::to_string(inc_seconds_trend.size()) +
           " incremental run(s))</h2>\n<div class=\"cards\">";
    out += "<div class=\"card\"><h3>incremental seconds per commit</h3>" +
           Sparkline(inc_seconds_trend, 4) + "</div>";
    out += "<div class=\"card\"><h3>full-run seconds (same commits)</h3>" +
           Sparkline(inc_full_trend, 4) + "</div>";
    out += "<div class=\"card\"><h3>detect cache hit rate %</h3>" +
           Sparkline(inc_hit_trend, 1) + "</div>";
    out += "<div class=\"card\"><h3>dirty slice % of functions</h3>" +
           Sparkline(inc_dirty_trend, 1) + "</div>";
    out += "</div>\n";
  }

  // Serve envelope: latency/throughput/robustness trends over the runs that
  // carry the v5 serve block (`valuecheck serve` drains and vc_loadgen
  // reports). Shed/degraded/deadline are plotted as a percentage of requests
  // so bursts of different sizes stay comparable.
  std::vector<double> serve_qps_trend;
  std::vector<double> serve_p50_trend;
  std::vector<double> serve_p99_trend;
  std::vector<double> serve_nonok_trend;
  for (const RunRecord& run : runs) {
    const LedgerMetrics& m = run.metrics;
    if (!m.serve_collected) {
      continue;
    }
    serve_qps_trend.push_back(m.serve_qps);
    serve_p50_trend.push_back(m.serve_p50_ms);
    serve_p99_trend.push_back(m.serve_p99_ms);
    const double requests = static_cast<double>(m.serve_requests);
    serve_nonok_trend.push_back(
        requests > 0
            ? 100.0 *
                  static_cast<double>(m.serve_shed + m.serve_degraded +
                                      m.serve_deadline + m.serve_failed) /
                  requests
            : 0.0);
  }
  if (!serve_qps_trend.empty()) {
    out += "<h2>Serve envelope (" + std::to_string(serve_qps_trend.size()) +
           " run(s) with serve blocks)</h2>\n<div class=\"cards\">";
    out += "<div class=\"card\"><h3>throughput QPS</h3>" +
           Sparkline(serve_qps_trend, 1) + "</div>";
    out += "<div class=\"card\"><h3>p50 latency ms</h3>" +
           Sparkline(serve_p50_trend, 1) + "</div>";
    out += "<div class=\"card\"><h3>p99 latency ms</h3>" +
           Sparkline(serve_p99_trend, 1) + "</div>";
    out += "<div class=\"card\"><h3>shed+degraded+deadline+failed %</h3>" +
           Sparkline(serve_nonok_trend, 1) + "</div>";
    out += "</div>\n";
  }

  // Speedup curves from the newest scalability bench sweep: records labeled
  // "bench:scalability <profile> jobs=N" by bench_table7_scalability. Newest
  // record wins per (profile, jobs); a curve renders once its profile has a
  // jobs=1 baseline.
  const std::string kBenchPrefix = "bench:scalability ";
  std::vector<std::string> sweep_profiles;                       // first-seen order
  std::map<std::string, std::map<int, double>> sweep_seconds;    // profile -> jobs -> s
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    if (it->label.rfind(kBenchPrefix, 0) != 0) {
      continue;
    }
    size_t jobs_pos = it->label.rfind(" jobs=");
    if (jobs_pos == std::string::npos || jobs_pos <= kBenchPrefix.size()) {
      continue;
    }
    std::string profile = it->label.substr(kBenchPrefix.size(), jobs_pos - kBenchPrefix.size());
    int jobs = std::atoi(it->label.c_str() + jobs_pos + 6);
    if (jobs < 1 || sweep_seconds[profile].count(jobs)) {
      continue;  // older duplicate of a point we already have
    }
    if (std::find(sweep_profiles.begin(), sweep_profiles.end(), profile) ==
        sweep_profiles.end()) {
      sweep_profiles.push_back(profile);
    }
    sweep_seconds[profile][jobs] = it->metrics.analysis_seconds;
  }
  if (!sweep_profiles.empty()) {
    out += "<h2>Speedup vs jobs (latest bench sweep)</h2>\n<div class=\"cards\">";
    for (const std::string& profile : sweep_profiles) {
      const std::map<int, double>& points = sweep_seconds[profile];
      auto base = points.find(1);
      if (base == points.end() || base->second <= 0.0) {
        continue;
      }
      std::vector<double> speedups;
      std::vector<std::string> labels;
      for (const auto& [jobs, seconds] : points) {
        speedups.push_back(seconds > 0.0 ? base->second / seconds : 0.0);
        labels.push_back("jobs=" + std::to_string(jobs));
      }
      out += "<div class=\"card\"><h3>" + EscapeHtml(profile) + " speedup</h3>" +
             LabeledSparkline(speedups, labels, 2, "need jobs=1 and one more point") +
             "</div>";
    }
    out += "</div>\n";
  }

  // Latest findings, new ones flagged (badge carries a text label, so the
  // state never rides on color alone).
  out += "<h2>Findings in " + EscapeHtml(latest.run_id) + "</h2>\n";
  if (latest.findings.empty()) {
    out += "<p class=\"empty\">No findings \xe2\x80\x94 clean run.</p>\n";
  } else {
    out += "<table>\n<tr><th>status</th><th>checker</th><th>fingerprint</th><th>file</th>"
           "<th>line</th><th>function</th><th>variable</th><th>kind</th>"
           "<th>familiarity</th></tr>\n";
    for (const LedgerFinding& finding : latest.findings) {
      bool is_new = previous != nullptr && !prev_fps.count(finding_key(finding));
      out += "<tr><td><span class=\"badge" + std::string(is_new ? " badge-new" : "") + "\">" +
             (is_new ? "new" : "persistent") + "</span></td>";
      out += "<td>" + EscapeHtml(finding.checker) + "</td>";
      out += "<td class=\"fp\">" + EscapeHtml(finding.fingerprint) + "</td>";
      out += "<td>" + EscapeHtml(finding.file) + "</td>";
      out += "<td>" + std::to_string(finding.line) + "</td>";
      out += "<td>" + EscapeHtml(finding.function) + "</td>";
      out += "<td>" + EscapeHtml(finding.variable) + "</td>";
      out += "<td>" + EscapeHtml(finding.kind) + "</td>";
      out += "<td>" + FormatDouble(finding.familiarity, 2) + "</td></tr>\n";
    }
    out += "</table>\n";
  }
  if (previous != nullptr && fixed_count > 0) {
    out += "<h2>Fixed since " + EscapeHtml(previous->run_id) + "</h2>\n<table>\n"
           "<tr><th>status</th><th>checker</th><th>fingerprint</th><th>file</th>"
           "<th>function</th><th>variable</th><th>kind</th></tr>\n";
    for (const LedgerFinding& finding : previous->findings) {
      if (latest_fps.count(finding_key(finding))) {
        continue;
      }
      out += "<tr><td><span class=\"badge badge-fixed\">fixed</span></td>";
      out += "<td>" + EscapeHtml(finding.checker) + "</td>";
      out += "<td class=\"fp\">" + EscapeHtml(finding.fingerprint) + "</td>";
      out += "<td>" + EscapeHtml(finding.file) + "</td>";
      out += "<td>" + EscapeHtml(finding.function) + "</td>";
      out += "<td>" + EscapeHtml(finding.variable) + "</td>";
      out += "<td>" + EscapeHtml(finding.kind) + "</td></tr>\n";
    }
    out += "</table>\n";
  }

  // Run history, newest first (the table view of every trend above).
  out += "<h2>Run history</h2>\n<table>\n<tr><th>run</th><th>timestamp (UTC)</th>"
         "<th>label</th><th>jobs</th><th>findings</th><th>analysis s</th>"
         "<th>prune rate %</th><th>options</th></tr>\n";
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    out += "<tr><td>" + EscapeHtml(it->run_id) + "</td>";
    out += "<td>" + FormatTimestamp(it->timestamp_ms) + "</td>";
    out += "<td>" + EscapeHtml(it->label) + "</td>";
    out += "<td>" + std::to_string(it->jobs) + "</td>";
    out += "<td>" + std::to_string(it->findings.size()) + "</td>";
    out += "<td>" + FormatDouble(it->metrics.analysis_seconds, 3) + "</td>";
    out += "<td>" + FormatDouble(PruneRatePercent(it->metrics), 1) + "</td>";
    out += "<td>" + EscapeHtml(it->options_summary) + "</td></tr>\n";
  }
  out += "</table>\n</body>\n</html>\n";
  return out;
}

}  // namespace vc

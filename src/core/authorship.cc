#include "src/core/authorship.h"

namespace vc {

AuthorId AuthorshipAnalyzer::AuthorOfLoc(const SourceLoc& loc) const {
  if (repo_ == nullptr || !loc.IsValid() || loc.file >= project_.sources().NumFiles()) {
    return kInvalidAuthor;
  }
  const std::string& path = project_.sources().Path(loc.file);
  const std::vector<LineOrigin>* blame_ptr;
  if (at_commit_ == kInvalidCommit) {
    blame_ptr = &repo_->Blame(path);
  } else {
    auto it = blame_cache_.find(path);
    if (it == blame_cache_.end()) {
      it = blame_cache_.emplace(path, repo_->BlameAt(path, at_commit_)).first;
    }
    blame_ptr = &it->second;
  }
  const std::vector<LineOrigin>& blame = *blame_ptr;
  int index = loc.line - 1;
  if (index < 0 || index >= static_cast<int>(blame.size())) {
    return kInvalidAuthor;
  }
  return blame[index].author;
}

bool AuthorshipAnalyzer::AllDifferent(AuthorId author,
                                      const std::vector<AuthorId>& others) const {
  if (author == kInvalidAuthor || others.empty()) {
    return false;
  }
  for (AuthorId other : others) {
    if (other == author || other == kInvalidAuthor) {
      return false;
    }
  }
  return true;
}

void AuthorshipAnalyzer::Classify(UnusedDefCandidate& cand) const {
  if (cand.from_baseline) {
    // Baseline tools have no cross-scope notion; their findings pass the
    // filter untouched (the corpus benchmark evaluates the raw tool output).
    cand.def_author = AuthorOfLoc(cand.def_loc);
    cand.responsible_author = cand.def_author;
    cand.cross_scope = true;
    return;
  }
  if (cand.checker != "unused-def") {
    ClassifyGeneric(cand);
    return;
  }
  cand.def_author = AuthorOfLoc(cand.def_loc);
  cand.cross_scope = false;
  cand.kind = CandidateKind::kPlainUnused;
  cand.responsible_author = cand.def_author;

  if (cand.is_param) {
    // Scenario 2. The "inside" author is whoever ignores or overwrites the
    // caller-provided value: the overwriting store's author when the
    // parameter is overwritten, otherwise the parameter's own author.
    AuthorId inside = cand.def_author;
    if (cand.overwritten && !cand.overwriter_locs.empty()) {
      inside = AuthorOfLoc(cand.overwriter_locs.front());
      cand.kind = CandidateKind::kOverwrittenParam;
    } else {
      cand.kind = CandidateKind::kUnusedParam;
    }
    cand.responsible_author = inside;

    const FunctionInfo* info = project_.FindFunction(cand.function);
    if (info == nullptr || inside == kInvalidAuthor) {
      return;
    }
    for (const CallSite& site : info->call_sites) {
      AuthorId caller = AuthorOfLoc(site.loc);
      if (caller != kInvalidAuthor && caller != inside) {
        cand.cross_scope = true;
        break;
      }
    }
    if (!cand.cross_scope) {
      cand.kind = CandidateKind::kPlainUnused;
    }
    return;
  }

  // Scenario 3: overwritten by other developers on all successor paths.
  bool overwritten_cross = false;
  if (cand.overwritten) {
    std::vector<AuthorId> overwriters;
    overwriters.reserve(cand.overwriter_locs.size());
    for (const SourceLoc& loc : cand.overwriter_locs) {
      overwriters.push_back(AuthorOfLoc(loc));
    }
    overwritten_cross = AllDifferent(cand.def_author, overwriters);
    if (overwritten_cross) {
      cand.responsible_author = overwriters.front();
    }
  }

  // Scenario 1: return value written by other developers (all return
  // statements of the callee), or by a library outside the project.
  bool retval_cross = false;
  if (cand.FromCall()) {
    const FunctionInfo* callee =
        !cand.callee_name.empty() ? project_.FindFunction(cand.callee_name) : nullptr;
    if (callee == nullptr || !callee->InProject() || callee->ir == nullptr) {
      // Library call: the implementer is by definition a different author.
      retval_cross = cand.def_author != kInvalidAuthor;
    } else {
      std::vector<AuthorId> ret_authors;
      for (const SourceLoc& loc : callee->ir->return_locs) {
        ret_authors.push_back(AuthorOfLoc(loc));
      }
      retval_cross = AllDifferent(cand.def_author, ret_authors);
    }
  }

  if (overwritten_cross) {
    cand.cross_scope = true;
    cand.kind = CandidateKind::kOverwrittenDef;
  } else if (retval_cross) {
    cand.cross_scope = true;
    cand.kind = CandidateKind::kUnusedRetVal;
    cand.responsible_author = cand.def_author;
  }
}

void AuthorshipAnalyzer::ClassifyGeneric(UnusedDefCandidate& cand) const {
  // Checkers other than unused-def pre-set their kind; authorship only
  // decides the cross-scope bit and the responsible author, reusing the two
  // §3.1 boundary rules that generalize beyond unused definitions:
  // overwriter-vs-definer (scenario 3) and call-site-vs-callee (scenario 1).
  cand.def_author = AuthorOfLoc(cand.def_loc);
  cand.cross_scope = false;
  cand.responsible_author = cand.def_author;

  if (cand.overwritten && !cand.overwriter_locs.empty()) {
    std::vector<AuthorId> overwriters;
    overwriters.reserve(cand.overwriter_locs.size());
    for (const SourceLoc& loc : cand.overwriter_locs) {
      overwriters.push_back(AuthorOfLoc(loc));
    }
    if (AllDifferent(cand.def_author, overwriters)) {
      cand.cross_scope = true;
      cand.responsible_author = overwriters.front();
    }
    return;
  }

  if (!cand.callee_name.empty()) {
    const FunctionInfo* callee = project_.FindFunction(cand.callee_name);
    if (callee == nullptr || !callee->InProject() || callee->ir == nullptr) {
      // Library call: the implementer is by definition a different author.
      cand.cross_scope = cand.def_author != kInvalidAuthor;
      return;
    }
    std::vector<AuthorId> ret_authors;
    for (const SourceLoc& loc : callee->ir->return_locs) {
      ret_authors.push_back(AuthorOfLoc(loc));
    }
    cand.cross_scope = AllDifferent(cand.def_author, ret_authors);
  }
}

}  // namespace vc

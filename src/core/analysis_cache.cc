#include "src/core/analysis_cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/support/json_reader.h"
#include "src/support/json_writer.h"
#include "src/support/metrics.h"

namespace vc {

namespace {

// Hex rendering for the content hash: JSON numbers lose precision past 2^53,
// so hashes travel as strings.
std::string HashHex(uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

void WriteLoc(JsonWriter& json, const SourceLoc& loc) {
  json.BeginObject()
      .Int("line", loc.line)
      .Int("col", loc.column)
      .EndObject();
}

SourceLoc ReadLoc(const JsonValue& value) {
  SourceLoc loc;
  // FileId is rebound by the engine against the live project; the serialized
  // form is file-relative by construction (one entry per source path).
  loc.file = kInvalidFileId;
  loc.line = static_cast<int32_t>(value.GetInt("line"));
  loc.column = static_cast<int32_t>(value.GetInt("col"));
  return loc;
}

// Serializes the detector-filled candidate fields. Pointer fields (var,
// ir_func, origin_callee) and the def_loc/overwriter FileIds are rebound by
// the engine on load; authorship/prune/rank fields are recomputed every
// commit, so caching them would be wasted bytes.
void WriteCandidate(JsonWriter& json, const UnusedDefCandidate& cand) {
  json.BeginObject()
      .String("function", cand.function)
      .String("slot_name", cand.slot_name)
      .String("file", cand.file);
  json.Key("def_loc");
  WriteLoc(json, cand.def_loc);
  json.Int("slot", cand.slot)
      .Bool("is_param", cand.is_param)
      .Bool("is_synthetic", cand.is_synthetic)
      .Bool("is_field_slot", cand.is_field_slot)
      .Bool("overwritten", cand.overwritten);
  json.Key("overwriter_locs").BeginArray();
  for (const SourceLoc& loc : cand.overwriter_locs) {
    WriteLoc(json, loc);
  }
  json.EndArray();
  json.String("callee_name", cand.callee_name)
      .Bool("is_increment", cand.is_increment)
      .Int("increment_amount", cand.increment_amount)
      .Int("kind", static_cast<int>(cand.kind))
      .String("checker", cand.checker)
      .String("fingerprint_ns", cand.fingerprint_ns)
      .Bool("from_baseline", cand.from_baseline)
      .String("note", cand.note)
      .EndObject();
}

UnusedDefCandidate ReadCandidate(const JsonValue& value) {
  UnusedDefCandidate cand;
  cand.function = value.GetString("function");
  cand.slot_name = value.GetString("slot_name");
  cand.file = value.GetString("file");
  cand.def_loc = ReadLoc(value.Get("def_loc"));
  cand.slot = static_cast<SlotId>(value.GetInt("slot", kInvalidSlot));
  cand.is_param = value.GetBool("is_param");
  cand.is_synthetic = value.GetBool("is_synthetic");
  cand.is_field_slot = value.GetBool("is_field_slot");
  cand.overwritten = value.GetBool("overwritten");
  for (const JsonValue& loc : value.Get("overwriter_locs").Items()) {
    cand.overwriter_locs.push_back(ReadLoc(loc));
  }
  cand.callee_name = value.GetString("callee_name");
  cand.is_increment = value.GetBool("is_increment");
  cand.increment_amount = value.GetInt("increment_amount");
  cand.kind = static_cast<CandidateKind>(value.GetInt("kind"));
  cand.checker = value.GetString("checker");
  cand.fingerprint_ns = value.GetString("fingerprint_ns");
  cand.from_baseline = value.GetBool("from_baseline");
  cand.note = value.GetString("note");
  return cand;
}

}  // namespace

uint64_t HashContent(std::string_view text) {
  uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

AnalysisCache::AnalysisCache(std::string cache_dir, std::string config_key)
    : cache_dir_(std::move(cache_dir)), config_key_(std::move(config_key)) {
  if (!cache_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cache_dir_, ec);
  }
}

const FileCacheEntry* AnalysisCache::Find(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

std::string AnalysisCache::DiskPath(const std::string& path) const {
  // Sanitized basename plus a path hash: readable when debugging, collision
  // free when two paths sanitize identically.
  std::string name;
  name.reserve(path.size());
  for (char c : path) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-';
    name.push_back(keep ? c : '_');
  }
  return (std::filesystem::path(cache_dir_) / (name + "-" + HashHex(HashContent(path)) + ".json"))
      .string();
}

bool AnalysisCache::LoadFromDisk(const std::string& path, uint64_t content_hash,
                                 FileCacheEntry& out, std::vector<QuarantinedUnit>& quarantine) {
  if (cache_dir_.empty()) {
    return false;
  }
  const std::string disk_path = DiskPath(path);
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) {
    return false;  // plain miss: never cached
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  std::optional<JsonValue> doc = ParseJson(buffer.str(), &error);
  if (!doc || !doc->IsObject()) {
    ++stats_.disk_corrupt;
    quarantine.push_back(
        {path, "", "cache", "corrupt cache entry: " + (error.empty() ? "not an object" : error),
         ""});
    return false;
  }
  if (doc->GetInt("schema_version") != kCacheSchemaVersion ||
      doc->GetString("config_key") != config_key_ ||
      doc->GetString("content_hash") != HashHex(content_hash)) {
    return false;  // stale: configuration or content moved on
  }
  const JsonValue& functions = doc->Get("functions");
  if (!functions.IsArray()) {
    ++stats_.disk_corrupt;
    quarantine.push_back({path, "", "cache", "corrupt cache entry: missing functions array", ""});
    return false;
  }
  FileCacheEntry loaded;
  loaded.content_hash = content_hash;
  for (const JsonValue& fn : functions.Items()) {
    if (!fn.IsObject() || !fn.Has("name")) {
      ++stats_.disk_corrupt;
      quarantine.push_back({path, "", "cache", "corrupt cache entry: malformed function record", ""});
      return false;
    }
    FunctionDetect detect;
    detect.points_to_bytes = static_cast<uint64_t>(fn.GetInt("points_to_bytes"));
    detect.points_to_entries = static_cast<uint64_t>(fn.GetInt("points_to_entries"));
    for (const JsonValue& cand : fn.Get("candidates").Items()) {
      detect.candidates.push_back(ReadCandidate(cand));
    }
    for (const JsonValue& unit : fn.Get("quarantined").Items()) {
      detect.quarantined.push_back({unit.GetString("path"), unit.GetString("function"),
                                    unit.GetString("stage"), unit.GetString("reason"),
                                    unit.GetString("checker")});
    }
    loaded.functions.emplace(fn.GetString("name"), std::move(detect));
  }
  out = std::move(loaded);
  ++stats_.disk_loads;
  return true;
}

void AnalysisCache::StoreToDisk(const std::string& path, const FileCacheEntry& entry) {
  if (cache_dir_.empty()) {
    return;
  }
  JsonWriter json;
  json.BeginObject()
      .Int("schema_version", kCacheSchemaVersion)
      .String("config_key", config_key_)
      .String("path", path)
      .String("content_hash", HashHex(entry.content_hash));
  json.Key("functions").BeginArray();
  for (const auto& [name, detect] : entry.functions) {
    json.BeginObject()
        .String("name", name)
        .Int("points_to_bytes", static_cast<int64_t>(detect.points_to_bytes))
        .Int("points_to_entries", static_cast<int64_t>(detect.points_to_entries));
    json.Key("candidates").BeginArray();
    for (const UnusedDefCandidate& cand : detect.candidates) {
      WriteCandidate(json, cand);
    }
    json.EndArray();
    json.Key("quarantined").BeginArray();
    for (const QuarantinedUnit& unit : detect.quarantined) {
      json.BeginObject()
          .String("path", unit.path)
          .String("function", unit.function)
          .String("stage", unit.stage)
          .String("reason", unit.reason)
          .String("checker", unit.checker)
          .EndObject();
    }
    json.EndArray().EndObject();
  }
  json.EndArray().EndObject();

  const std::string disk_path = DiskPath(path);
  const std::string tmp = disk_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return;  // unwritable cache dir degrades to no disk tier
    }
    out << json.str();
  }
  std::error_code ec;
  std::filesystem::rename(tmp, disk_path, ec);
  if (!ec) {
    ++stats_.disk_stores;
  }
}

void AnalysisCache::PublishMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const auto bump = [&registry](const char* name, uint64_t now, uint64_t& before) {
    if (now > before) {
      registry.GetCounter(name).Add(static_cast<int64_t>(now - before));
    }
    before = now;
  };
  bump("cache.parse.hits", stats_.parse_hits, published_.parse_hits);
  bump("cache.parse.misses", stats_.parse_misses, published_.parse_misses);
  bump("cache.detect.carried", stats_.detect_carried, published_.detect_carried);
  bump("cache.detect.recomputed", stats_.detect_recomputed, published_.detect_recomputed);
  bump("cache.disk.loads", stats_.disk_loads, published_.disk_loads);
  bump("cache.disk.stores", stats_.disk_stores, published_.disk_stores);
  bump("cache.disk.corrupt", stats_.disk_corrupt, published_.disk_corrupt);
  registry.GetGauge("cache.files").Set(static_cast<int64_t>(files_.size()));
  uint64_t functions = 0;
  for (const auto& [path, entry] : files_) {
    functions += entry.functions.size();
  }
  registry.GetGauge("cache.functions").Set(static_cast<int64_t>(functions));
}

}  // namespace vc

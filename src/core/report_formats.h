// Machine-readable exports of an analysis report:
//
//   * JSON — the full finding records (locations, kinds, checker identity,
//     authorship, familiarity, prune statistics) for downstream triage
//     tooling;
//   * SARIF 2.1.0 — the interchange format CI code-scanning UIs ingest
//     (one result per finding; rule ids per candidate kind for unused-def,
//     per checker name for every other checker).

#ifndef VALUECHECK_SRC_CORE_REPORT_FORMATS_H_
#define VALUECHECK_SRC_CORE_REPORT_FORMATS_H_

#include <string>

#include "src/core/analysis.h"
#include "src/vcs/repository.h"

namespace vc {

// `repo` resolves author ids to names; pass null to omit author names.
// `incremental`, when given, adds the schema-v8 "incremental" block (commit,
// work accounting, fingerprint deltas, cache hit rates) to the JSON.
struct IncrementalResult;
std::string ReportToJson(const AnalysisReport& report, const Repository* repo = nullptr,
                         const IncrementalResult* incremental = nullptr);

std::string ReportToSarif(const AnalysisReport& report);

// Aligned text table of the report's StageMetrics block: one row per pipeline
// stage (parse, detect, authorship, cross-scope filter, prune + one row per
// pruning pattern, rank) plus thread-pool activity. Empty string when the
// report was produced without collect_metrics.
std::string RenderStageMetricsTable(const AnalysisReport& report);

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_REPORT_FORMATS_H_

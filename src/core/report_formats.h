// Machine-readable exports of a ValueCheck report:
//
//   * JSON — the full finding records (locations, kinds, authorship,
//     familiarity, prune statistics) for downstream triage tooling;
//   * SARIF 2.1.0 — the interchange format CI code-scanning UIs ingest
//     (one result per finding, rule ids per candidate kind).

#ifndef VALUECHECK_SRC_CORE_REPORT_FORMATS_H_
#define VALUECHECK_SRC_CORE_REPORT_FORMATS_H_

#include <string>

#include "src/core/valuecheck.h"
#include "src/vcs/repository.h"

namespace vc {

// `repo` resolves author ids to names; pass null to omit author names.
std::string ReportToJson(const ValueCheckReport& report, const Repository* repo = nullptr);

std::string ReportToSarif(const ValueCheckReport& report);

// Aligned text table of the report's StageMetrics block: one row per pipeline
// stage (parse, detect, authorship, cross-scope filter, prune + one row per
// pruning pattern, rank) plus thread-pool activity. Empty string when the
// report was produced without collect_metrics.
std::string RenderStageMetricsTable(const ValueCheckReport& report);

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_REPORT_FORMATS_H_

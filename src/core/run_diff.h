// Run-to-run differencing over the run ledger: classifies findings as
// new/fixed/persistent by fingerprint and computes metric deltas with
// configurable regression thresholds. This is the layer `vc diff --check`
// gates CI on, and the measurement lens every perf PR is judged through.
//
// Determinism contract: everything in the diff except timing deltas is
// derived from fingerprints and slot-merge-ordered counters, so the default
// rendered diff (timings off) is byte-identical regardless of the --jobs
// value either run used.

#ifndef VALUECHECK_SRC_CORE_RUN_DIFF_H_
#define VALUECHECK_SRC_CORE_RUN_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/support/run_ledger.h"

namespace vc {

// Converts a finished report into the ledger's plain-data record.
// `timestamp_ms` is caller-supplied wall clock (the library takes no clock
// dependency); `label` is free-form provenance (corpus path, git rev, bench
// configuration). Findings must already carry fingerprints (Analysis::Run
// assigns them).
RunRecord MakeRunRecord(const AnalysisReport& report, const std::string& label,
                        int64_t timestamp_ms);

// Fills the ledger-v4 incremental slice of `metrics` from a per-commit
// engine result (work accounting + cache hit rate), marking it collected.
struct IncrementalResult;
void FillIncrementalMetrics(const IncrementalResult& result, LedgerMetrics& metrics);

// What counts as a regression when diffing run A (baseline) → run B.
struct RegressionThresholds {
  // Any new finding beyond this count fails the check. 0 = strict.
  int max_new_findings = 0;
  // A stage's seconds regress when after > before * stage_ratio AND the
  // absolute growth exceeds stage_floor_seconds — the floor keeps millisecond
  // jitter on small corpora from tripping the gate.
  double stage_ratio = 1.5;
  double stage_floor_seconds = 0.05;
  // A pruning pattern regresses when its prune rate (pruned/tested) drops by
  // more than this absolute amount (weaker pruning → more noise downstream).
  double prune_rate_drop = 0.10;
};

// One compared metric. `regressed` is set per the thresholds above; timing
// metrics are marked `timing` and machine-dependent point samples (peak RSS)
// are marked `sampled` so renderers can keep the deterministic sections
// separate.
struct MetricDelta {
  std::string name;
  double before = 0.0;
  double after = 0.0;
  bool timing = false;
  bool sampled = false;
  bool regressed = false;
};

struct RunDiff {
  std::string run_a;  // baseline run id
  std::string run_b;
  // (checker, fingerprint) classification. "new" = only in B, "fixed" = only
  // in A. A finding whose checker the other run did not enable is excluded
  // from these lists — enabling a checker is not "new bugs" and disabling one
  // is not "bugs fixed"; the checkers_added/checkers_removed note carries
  // that information instead.
  std::vector<LedgerFinding> added;
  std::vector<LedgerFinding> fixed;
  std::vector<LedgerFinding> persistent;
  // Checker-set drift between the runs (names only in B / only in A).
  std::vector<std::string> checkers_added;
  std::vector<std::string> checkers_removed;
  std::vector<MetricDelta> deltas;
  // Human-readable threshold breaches (one line each); empty = check passes.
  std::vector<std::string> regressions;

  bool HasRegressions() const { return !regressions.empty(); }
};

RunDiff ComputeRunDiff(const RunRecord& a, const RunRecord& b,
                       const RegressionThresholds& thresholds = RegressionThresholds());

// Text rendering. With include_timings=false (the default) the output holds
// only deterministic content — counts, fingerprints, counter deltas — and is
// byte-identical across reruns at any job count.
std::string RenderDiffText(const RunDiff& diff, bool include_timings = false);

// Machine form of the full diff (timings always included; consumers decide).
std::string DiffToJson(const RunDiff& diff);

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_RUN_DIFF_H_

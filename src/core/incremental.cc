#include "src/core/incremental.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/checkers/driver.h"
#include "src/checkers/registry.h"
#include "src/core/dep_graph.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace vc {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Restores pointer fields of a disk-loaded result against the live project:
// the function's IR, each candidate's slot-table VarDecl, and the FileIds of
// every location (locations in a per-file entry are file-relative by
// construction).
void RebindFunctionDetect(FunctionDetect& detect, const IrFunction* func, FileId file) {
  for (UnusedDefCandidate& cand : detect.candidates) {
    cand.ir_func = func;
    cand.var = (cand.slot != kInvalidSlot && cand.slot < func->slots.size())
                   ? func->slots[cand.slot].var
                   : nullptr;
    cand.def_loc.file = file;
    for (SourceLoc& loc : cand.overwriter_locs) {
      loc.file = file;
    }
  }
}

// A result is disk-serializable only when rebinding can reproduce it exactly:
// every candidate's VarDecl must be reachable through its slot. The clang and
// infer baselines attach AST VarDecls without a slot; their files stay in the
// memory tier (pointers remain valid there) and re-detect across processes.
bool DiskSafe(const FunctionDetect& detect, const IrFunction* func) {
  for (const UnusedDefCandidate& cand : detect.candidates) {
    if (cand.var == nullptr) {
      continue;
    }
    if (cand.slot == kInvalidSlot || cand.slot >= func->slots.size() ||
        func->slots[cand.slot].var != cand.var) {
      return false;
    }
  }
  return true;
}

// Cache map key: module-local function ordinal + name. The ordinal makes
// duplicate names within one file distinct; identical content parses to the
// same ordinals, so keys are stable exactly when the cache is valid.
std::string FunctionKey(size_t ordinal, const std::string& name) {
  return std::to_string(ordinal) + ":" + name;
}

}  // namespace

std::string MakeCacheConfigKey(const AnalysisOptions& options) {
  std::string key = "schema=" + std::to_string(kCacheSchemaVersion);
  key += ";macros=";
  for (const auto& [name, value] : options.config.macros()) {
    key += name + "=" + std::to_string(value) + ",";
  }
  key += ";checkers=";
  for (const Checker* checker : CheckerRegistry::Global().Resolve(options.checkers)) {
    key += checker->name() + ",";
  }
  key += ";traits=";
  key += options.traits.is_pure_c ? 'c' : 'x';
  key += options.traits.uses_kernel_extensions ? 'k' : '-';
  key += ";budget=" + std::to_string(options.budget.unit_deadline_seconds) + "," +
         std::to_string(options.budget.detect_step_limit) + "," +
         std::to_string(options.budget.parse_depth_limit) + "," +
         std::to_string(options.budget.pointer_iteration_limit);
  key += ";fault=" + std::to_string(options.fault.seed()) + ":" +
         std::to_string(options.fault.rate());
  key += ";authorship=";
  key += options.authorship ? '1' : '0';
  return key;
}

IncrementalEngine::IncrementalEngine(AnalysisOptions options, IncrementalOptions inc)
    : analysis_(std::move(options)),
      inc_(std::move(inc)),
      cache_(inc_.cache_dir, MakeCacheConfigKey(analysis_.options())) {}

void IncrementalEngine::Ingest(const Repository& source, CommitId commit) {
  while (repo_.NumAuthors() < source.NumAuthors()) {
    repo_.AddAuthor(source.GetAuthor(repo_.NumAuthors()).name);
  }
  const Commit& c = source.GetCommit(commit);
  repo_.AddCommit(c.author, c.timestamp, c.message, c.files, c.deleted);
  for (const auto& [path, content] : c.files) {
    pending_.insert(path);
  }
  for (const std::string& path : c.deleted) {
    pending_.insert(path);
  }
}

void IncrementalEngine::ApplyCommit(const Repository& source, CommitId commit) {
  if (commit < 0 || commit >= source.NumCommits()) {
    throw std::out_of_range("IncrementalEngine: commit " + std::to_string(commit) +
                            " not in source repository");
  }
  while (next_commit() <= commit) {
    Ingest(source, next_commit());
  }
}

IncrementalResult IncrementalEngine::AnalyzeCommit(const Repository& source, CommitId commit) {
  const AnalysisOptions& opt = analysis_.options();
  if (opt.collect_metrics) {
    MetricsRegistry::Global().Enable();
    MemoryTracker::Global().Enable();
  }
  TraceSpan commit_span("incremental.commit", "pipeline");
  commit_span.Arg("commit", static_cast<int64_t>(commit));
  auto start = std::chrono::steady_clock::now();
  IncrementalResult result;
  result.commit = commit;

  ApplyCommit(source, commit);

  // --- Parse stage: sync the persistent project with the replica's head ----
  auto parse_start = std::chrono::steady_clock::now();
  std::set<std::string> changed_functions;        // dirty-closure seed
  std::vector<QuarantinedUnit> cache_quarantine;  // corrupt disk entries
  // (path, FileId) of every recompiled file, in pending (sorted) order.
  std::vector<std::pair<std::string, FileId>> reparsed;
  std::set<std::string> disk_restored;
  result.files_changed = static_cast<int>(pending_.size());
  {
    TraceSpan span("incremental.sync", "pipeline");
    for (const std::string& path : pending_) {
      std::optional<std::string> head = repo_.Head(path);
      if (!head.has_value()) {
        // Deleted (or never-created) path: tombstone and forget.
        if (auto it = file_functions_.find(path); it != file_functions_.end()) {
          changed_functions.insert(it->second.begin(), it->second.end());
          file_functions_.erase(it);
        }
        project_.RemoveFile(path);
        cache_.Remove(path);
        continue;
      }
      const uint64_t hash = HashContent(*head);
      FileCacheEntry& entry = cache_.File(path);
      if (entry.content_hash == hash) {
        // Byte-identical content (touch, revert): parsed TU, IR, and every
        // cached detect result stay valid as-is.
        ++cache_.stats().parse_hits;
        continue;
      }
      ++cache_.stats().parse_misses;
      if (auto it = file_functions_.find(path); it != file_functions_.end()) {
        // Content changed during this engine's lifetime: the old and (below)
        // new function names both seed the dirty closure. A cold-start file
        // has no old state — its functions re-run via the missing-entry rule
        // unless the disk tier restores them.
        changed_functions.insert(it->second.begin(), it->second.end());
      }
      FileId file =
          project_.UpsertFile(path, std::move(*head), opt.config, &opt.fault, &opt.budget);
      entry.content_hash = hash;
      entry.functions.clear();
      FileCacheEntry loaded;
      if (cache_.LoadFromDisk(path, hash, loaded, cache_quarantine)) {
        entry.functions = std::move(loaded.functions);
        disk_restored.insert(path);
      }
      reparsed.emplace_back(path, file);
    }
    pending_.clear();
    result.files_reparsed = static_cast<int>(reparsed.size());
    project_.FinishUpdate();

    // Post-compile bookkeeping for recompiled files: record the new function
    // names (dirty seed + the next commit's "old names") and rebind any
    // disk-restored results against the fresh IR.
    for (const auto& [path, file] : reparsed) {
      const auto& module = project_.modules()[file];
      const bool was_known = file_functions_.count(path) > 0;
      std::vector<std::string>& names = file_functions_[path];
      names.clear();
      FileCacheEntry& entry = cache_.File(path);
      for (size_t fi = 0; fi < module->functions.size(); ++fi) {
        const IrFunction* func = module->functions[fi].get();
        names.push_back(func->name);
        if (was_known) {
          changed_functions.insert(func->name);
        }
        if (disk_restored.count(path) > 0) {
          if (auto it = entry.functions.find(FunctionKey(fi, func->name));
              it != entry.functions.end()) {
            RebindFunctionDetect(it->second, func, file);
          }
        }
      }
    }
  }
  const double parse_seconds = SecondsSince(parse_start);

  // --- Detect stage: dirty slice through the checkers, rest from cache -----
  auto detect_start = std::chrono::steady_clock::now();
  CheckerRunResult detect;
  std::vector<const Checker*> resolved = CheckerRegistry::Global().Resolve(opt.checkers);
  std::vector<const Checker*> runnable =
      GateCheckers(project_, resolved, opt.traits, detect.quarantined);
  // Cache-stage records sit between the gate records and the per-function
  // ones; a corrupt entry degrades to a miss, never to a failed run.
  for (QuarantinedUnit& unit : cache_quarantine) {
    detect.quarantined.push_back(std::move(unit));
  }
  bool carry_allowed = true;
  for (const Checker* checker : runnable) {
    if (!checker->function_local()) {
      // A project-global checker can change its verdict on any function after
      // any edit: the cache is unusable while it is enabled.
      carry_allowed = false;
    }
  }

  const DepGraph graph(project_);
  const std::set<std::string> dirty = graph.DirtyClosure(changed_functions);

  std::vector<CheckerWorkItem> work;
  std::vector<std::pair<std::string, std::string>> work_keys;  // (path, function key)
  int functions_total = 0;
  for (size_t m : project_.unit_order()) {
    const auto& module = project_.modules()[m];
    const std::string& path = project_.sources().Path(module->file);
    FileCacheEntry& entry = cache_.File(path);
    for (size_t fi = 0; fi < module->functions.size(); ++fi) {
      ++functions_total;
      const IrFunction* func = module->functions[fi].get();
      std::string key = FunctionKey(fi, func->name);
      if (carry_allowed && dirty.count(func->name) == 0 &&
          entry.functions.find(key) != entry.functions.end()) {
        continue;  // carried
      }
      work.push_back({module->file, func});
      work_keys.emplace_back(path, std::move(key));
    }
  }
  result.functions_total = functions_total;
  result.functions_dirty = static_cast<int>(work.size());
  cache_.stats().detect_recomputed += work.size();
  cache_.stats().detect_carried += static_cast<uint64_t>(functions_total) - work.size();

  std::vector<FunctionDetect> fresh = RunCheckersOnFunctions(
      project_, runnable, opt.jobs, &opt.budget, &opt.fault, /*isolate=*/true, work);
  std::set<std::string> updated_paths;
  for (size_t i = 0; i < fresh.size(); ++i) {
    cache_.File(work_keys[i].first).functions[work_keys[i].second] = std::move(fresh[i]);
    updated_paths.insert(work_keys[i].first);
  }

  // Assemble the COMPLETE detect outcome in full-run order (every live
  // function, carried or fresh) and merge it exactly as RunCheckers would.
  std::vector<FunctionDetect> all;
  all.reserve(static_cast<size_t>(functions_total));
  for (size_t m : project_.unit_order()) {
    const auto& module = project_.modules()[m];
    const std::string& path = project_.sources().Path(module->file);
    const FileCacheEntry& entry = cache_.File(path);
    for (size_t fi = 0; fi < module->functions.size(); ++fi) {
      all.push_back(entry.functions.at(FunctionKey(fi, module->functions[fi]->name)));
    }
  }
  MergeFunctionDetects(runnable, std::move(all), detect);
  const double detect_seconds = SecondsSince(detect_start);

  // Persist updated entries (skipping ones rebinding could not reproduce).
  if (cache_.has_disk_tier()) {
    for (const auto& [path, file] : reparsed) {
      updated_paths.insert(path);
    }
    for (const std::string& path : updated_paths) {
      const FileCacheEntry* entry = cache_.Find(path);
      FileId file = project_.sources().FindByPath(path);
      if (entry == nullptr || file == kInvalidFileId || !project_.IsLive(file)) {
        continue;
      }
      const auto& module = project_.modules()[file];
      bool safe = true;
      for (size_t fi = 0; fi < module->functions.size() && safe; ++fi) {
        auto it = entry->functions.find(FunctionKey(fi, module->functions[fi]->name));
        if (it != entry->functions.end() && !DiskSafe(it->second, module->functions[fi].get())) {
          safe = false;
        }
      }
      if (safe) {
        cache_.StoreToDisk(path, *entry);
      }
    }
  }

  // --- Every later stage runs in full over the assembled candidate set -----
  AnalysisReport report = analysis_.RunWithDetect(project_, &repo_, std::move(detect));
  report.parse_seconds = parse_seconds;
  report.detect_seconds = detect_seconds;
  report.analysis_seconds += parse_seconds;
  if (report.stage.collected) {
    report.stage.parse_seconds = parse_seconds;
    report.stage.detect_seconds = detect_seconds;
  }

  // Fingerprint-keyed delta against the previous analyzed commit.
  std::set<std::string> fingerprints;
  for (const UnusedDefCandidate& finding : report.findings) {
    fingerprints.insert(finding.fingerprint);
  }
  for (const std::string& fp : fingerprints) {
    prev_fingerprints_.count(fp) > 0 ? ++result.findings_carried : ++result.findings_new;
  }
  for (const std::string& fp : prev_fingerprints_) {
    if (fingerprints.count(fp) == 0) {
      ++result.findings_fixed;
    }
  }
  prev_fingerprints_ = std::move(fingerprints);

  if (opt.collect_metrics) {
    cache_.PublishMetrics();
  }
  result.cache = cache_.stats();
  result.report = std::move(report);
  result.seconds = SecondsSince(start);
  return result;
}

IncrementalResult Analysis::RunOnCommit(const Repository& repo, CommitId commit) const {
  // The facade keeps one warm engine for the common sequential-replay
  // pattern; any other access pattern (different repository, commit behind
  // the engine's head) rebuilds it — always correct, just colder.
  if (commit_engine_ == nullptr || commit_engine_repo_ != &repo ||
      commit < commit_engine_->next_commit() || repo.NumCommits() < commit_engine_->next_commit()) {
    commit_engine_ = std::make_shared<IncrementalEngine>(options_);
    commit_engine_repo_ = &repo;
  }
  return commit_engine_->AnalyzeCommit(repo, commit);
}

}  // namespace vc

#include <chrono>
#include <set>

#include "src/checkers/checker.h"
#include "src/checkers/checker_context.h"
#include "src/checkers/registry.h"
#include "src/core/analysis.h"
#include "src/core/authorship.h"
#include "src/core/detector.h"
#include "src/support/thread_pool.h"

namespace vc {

IncrementalResult Analysis::RunOnCommit(const Repository& repo, CommitId commit_id) const {
  auto start = std::chrono::steady_clock::now();
  IncrementalResult result;
  const Commit& commit = repo.GetCommit(commit_id);

  // Only the files the commit touched are recompiled.
  std::vector<std::pair<std::string, std::string>> files;
  std::vector<std::vector<int>> changed_lines;
  for (const auto& [path, content] : commit.files) {
    files.emplace_back(path, content);
    changed_lines.push_back(repo.ChangedLines(path, commit_id));
  }
  result.files_analyzed = static_cast<int>(files.size());
  if (files.empty()) {
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
  }

  Project project = Project::FromSources(files, options_.config, options_.jobs);

  // The same checker set a full run would use, minus any checker that cannot
  // analyze this project (the incremental path has no quarantine channel, so
  // unsupported checkers are simply skipped).
  std::vector<const Checker*> checkers;
  for (const Checker* checker : CheckerRegistry::Global().Resolve(options_.checkers)) {
    if (checker->Unsupported(project, options_.traits).empty()) {
      checkers.push_back(checker);
    }
  }

  // Detect only in functions whose range overlaps a changed line. The work
  // list is gathered serially (in unit/function order) and the per-function
  // results merged in that same order, so findings are deterministic at any
  // job count.
  struct WorkItem {
    FileId file;
    const IrFunction* func;
  };
  std::vector<WorkItem> work;
  for (size_t i = 0; i < project.units().size(); ++i) {
    const TranslationUnit& unit = project.units()[i];
    const std::vector<int>& lines = changed_lines[i];
    std::set<std::string> affected;
    for (const FunctionDecl* func : unit.functions) {
      if (!func->IsDefined()) {
        continue;
      }
      for (int line : lines) {
        if (func->range.ContainsLine(line)) {
          affected.insert(func->name);
          break;
        }
      }
    }
    result.functions_analyzed += static_cast<int>(affected.size());
    for (const auto& func : project.modules()[i]->functions) {
      if (affected.count(func->name) == 0) {
        continue;
      }
      work.push_back({project.modules()[i]->file, func.get()});
    }
  }

  std::vector<std::vector<UnusedDefCandidate>> per_function(work.size());
  ParallelFor(options_.jobs, work.size(), [&](size_t i) {
    CheckerContext ctx(project, work[i].file, *work[i].func);
    for (const Checker* checker : checkers) {
      std::vector<UnusedDefCandidate> found = checker->Check(ctx);
      for (UnusedDefCandidate& cand : found) {
        cand.checker = checker->name();
        cand.fingerprint_ns = checker->fingerprint_namespace();
        cand.from_baseline = checker->is_baseline();
        per_function[i].push_back(std::move(cand));
      }
    }
  });
  std::vector<UnusedDefCandidate> candidates;
  for (auto& found : per_function) {
    for (auto& cand : found) {
      candidates.push_back(std::move(cand));
    }
  }

  AuthorshipAnalyzer authorship(project, &repo, commit_id);
  authorship.ClassifyAll(candidates);
  RunPruning(project, candidates, options_.prune, nullptr, &repo);

  for (const UnusedDefCandidate& cand : candidates) {
    if (cand.pruned_by != PruneReason::kNone) {
      continue;
    }
    if (options_.cross_scope_only && !cand.cross_scope) {
      continue;
    }
    result.findings.push_back(cand);
  }
  RankCandidates(result.findings, &repo, options_.ranking);

  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace vc

// The unit of work flowing through ValueCheck's pipeline: one unused
// definition candidate, from detection (locations only), through authorship
// classification (cross-scope or not), pruning (reason recorded), to ranking
// (familiarity score attached).

#ifndef VALUECHECK_SRC_CORE_UNUSED_DEF_H_
#define VALUECHECK_SRC_CORE_UNUSED_DEF_H_

#include <string>
#include <vector>

#include "src/ir/ir.h"
#include "src/support/source_location.h"
#include "src/vcs/repository.h"

namespace vc {

// The cross-scope scenarios of §3.1 plus the non-cross-scope leftover.
enum class CandidateKind {
  kOverwrittenDef,    // scenario 3: definition overwritten by other authors
  kUnusedRetVal,      // scenario 1: ignored/overwritten function return value
  kUnusedParam,       // scenario 2: argument value never used in the callee
  kOverwrittenParam,  // scenario 2 variant: argument overwritten in the callee
  kPlainUnused,       // unused, but not one of the cross-scope shapes
  // Kinds owned by the non-unused-def checkers (src/checkers/). Appended so
  // the original five keep their serialized names and ordinals.
  kDoubleOverwrite,   // store killed by a second store, no read between
  kDeadGlobalStore,   // global store locally killed before any read or call
  kOutParamUnused,    // out-parameter filled by a call, never read after
  kStaleCopy,         // copy read after its source was modified
};

const char* CandidateKindName(CandidateKind kind);

enum class PruneReason {
  kNone,
  kConfigDependency,
  kCursor,
  kUnusedHint,
  kPeerDefinition,
  // Extension (paper §9.1 future work): legacy/debugging code identified
  // from commit history. Off by default.
  kStaleCode,
};

const char* PruneReasonName(PruneReason reason);

struct UnusedDefCandidate {
  // --- Filled by the detector ---
  std::string function;   // containing function name
  std::string slot_name;  // "v", "v#2", "_tmp0"
  std::string file;       // path of the containing file
  SourceLoc def_loc;      // the unused store (or the parameter declaration)
  const IrFunction* ir_func = nullptr;
  SlotId slot = kInvalidSlot;
  const VarDecl* var = nullptr;  // null for synthetic temps

  bool is_param = false;      // unused parameter (checked at function entry)
  bool is_synthetic = false;  // ignored call result
  bool is_field_slot = false;
  bool overwritten = false;   // a later definition kills this one on all paths
  std::vector<SourceLoc> overwriter_locs;

  // Set when the stored value came straight from a call; the callee is the
  // project-wide name (definition may live in another file).
  const FunctionDecl* origin_callee = nullptr;
  // Self-contained copy of origin_callee->name (reports outlive the AST).
  std::string callee_name;

  // Cursor-shape info for pruning.
  bool is_increment = false;
  long long increment_amount = 0;

  // --- Filled by the authorship phase ---
  bool cross_scope = false;
  CandidateKind kind = CandidateKind::kPlainUnused;
  AuthorId def_author = kInvalidAuthor;
  // The developer on the ignoring/overwriting side of the boundary — whose
  // familiarity the ranking stage scores (§6).
  AuthorId responsible_author = kInvalidAuthor;

  // --- Filled by pruning ---
  PruneReason pruned_by = PruneReason::kNone;

  // --- Filled by ranking ---
  double familiarity = 0.0;

  // --- Filled by the checker driver (src/checkers/driver.cc) ---
  // Which checker produced this candidate. The unused-definition detector —
  // the paper's tool — is "unused-def"; its fingerprint namespace is empty so
  // pre-framework fingerprints survive the migration byte-identical.
  std::string checker = "unused-def";
  std::string fingerprint_ns;  // prefixes the fingerprint content key
  bool from_baseline = false;  // produced by a §8.4 baseline checker
  // Free-text detail for checkers whose findings don't fit the kind taxonomy
  // (the baseline tools' original description strings live here).
  std::string note;

  // --- Filled at report assembly (src/core/fingerprint.h) ---
  // Stable content-based identity, line-shift-robust; what the run ledger
  // diffs on. 16 hex chars; empty until AssignFingerprints runs.
  std::string fingerprint;

  // callee_name (the self-contained copy) is the source of truth here, not
  // the origin_callee pointer: cache-restored candidates (incremental engine
  // disk tier) carry only the name, and downstream stages resolve the callee
  // through the live function index by name anyway.
  bool FromCall() const { return !callee_name.empty() || is_synthetic; }
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_UNUSED_DEF_H_

// Stable content-based finding identity for cross-run tracking.
//
// A finding's fingerprint must survive edits that do not touch the finding
// itself — inserting unrelated lines above it, renaming an unrelated
// variable, reordering the file list — because the run ledger diffs runs by
// fingerprint to classify findings as new/fixed/persistent. Line numbers are
// therefore excluded entirely; the identity is the *content shape* of the
// finding:
//
//   file path · function name · slot identity · candidate kind
//   · def/use shape (parameter? synthetic call result? overwritten, and by
//     how many later stores? increment pattern?) · origin callee
//
// Synthetic call-result slots are identified by their callee ("call:foo")
// rather than their "_tmpN" name: temp numbering is an artifact of IR
// lowering order and would shift when unrelated calls are added.
//
// Two findings in one function can share that whole shape (e.g. the same
// `ret = f(); ret = 0;` pattern pasted twice). Duplicates get a 1-based
// occurrence ordinal in source order — stable under line shifts, which
// preserve relative order — so every fingerprint in a report is distinct.
//
// The rendered fingerprint is 16 lowercase hex digits (64-bit FNV-1a of the
// key), exposed in report schema v4 as "fingerprint".

#ifndef VALUECHECK_SRC_CORE_FINGERPRINT_H_
#define VALUECHECK_SRC_CORE_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/unused_def.h"

namespace vc {

// The human-readable identity key, before hashing and occurrence
// disambiguation. Exposed for tests and for debugging fingerprint collisions.
std::string FingerprintKey(const UnusedDefCandidate& candidate);

// 64-bit FNV-1a, rendered as 16 hex digits.
std::string FingerprintHash(const std::string& key);

// Fills `fingerprint` on every candidate: hash of FingerprintKey plus a
// "#N" occurrence suffix for same-key duplicates, numbered in (line, column)
// order within the list. Deterministic for any input order — ties are
// resolved by source position, not list position.
void AssignFingerprints(std::vector<UnusedDefCandidate>& candidates);

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_FINGERPRINT_H_

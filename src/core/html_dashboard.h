// Zero-dependency single-file HTML dashboard over the run ledger: latest-run
// stat tiles, the new/fixed delta against the previous run, the latest
// findings table, trend sparklines (findings, analysis time, prune rate,
// candidates, worker utilization/imbalance from perf reports), speedup-vs-jobs
// curves from the newest scalability bench sweep, and the run history table.
// Everything
// is inline (CSS + SVG, no scripts, no network fetches) so the file can be
// attached to a CI artifact or mailed around and still render.

#ifndef VALUECHECK_SRC_CORE_HTML_DASHBOARD_H_
#define VALUECHECK_SRC_CORE_HTML_DASHBOARD_H_

#include <string>
#include <vector>

#include "src/support/run_ledger.h"

namespace vc {

// `runs` in append (chronological) order, as RunLedger::Load returns them.
// Renders a valid page for any count, including zero (an empty-state note);
// trends need >= 2 runs to draw a line.
std::string RenderHtmlDashboard(const std::vector<RunRecord>& runs);

}  // namespace vc

#endif  // VALUECHECK_SRC_CORE_HTML_DASHBOARD_H_

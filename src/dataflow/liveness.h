// Backward flow-sensitive liveness over memory slots (paper §2.1, §4.1).
//
// The analysis is field-sensitive (a struct-typed local's fields are separate
// slots) and struct-copy aware: loading a whole struct variable counts as a
// use of every field slot, and storing the whole variable kills them.
//
// Alias handling follows the paper's conservative rule: a slot whose address
// is taken is "referenced by pointers" and may be used through indirection,
// so kAddrSlot both generates a use and lands the slot in `address_taken`
// (the detector additionally suppresses all candidates on such slots).

#ifndef VALUECHECK_SRC_DATAFLOW_LIVENESS_H_
#define VALUECHECK_SRC_DATAFLOW_LIVENESS_H_

#include <vector>

#include "src/dataflow/slot_set.h"
#include "src/ir/ir.h"
#include "src/support/fault.h"

namespace vc {

struct LivenessResult {
  // Indexed by block id.
  std::vector<SlotSet> live_in;
  std::vector<SlotSet> live_out;
  // Slots whose address is taken anywhere in the function (plus, for struct
  // variables, their sibling field slots).
  SlotSet address_taken;
  // Number of worklist iterations until the fix point (loops need > 1).
  int iterations = 0;
};

// Applies one instruction's backward transfer function to `live`. Exposed so
// the detector can replay block-internal states from the block's live-out.
void ApplyLivenessTransfer(const IrFunction& func, const Instruction& inst, SlotSet& live);

// Runs the analysis to its fix point. A non-null `meter` is charged one step
// per instruction per pass and may throw BudgetExceededError, which the
// detector's per-unit isolation turns into a quarantine.
LivenessResult ComputeLiveness(const IrFunction& func, BudgetMeter* meter = nullptr);

// Computes the address-taken slot set alone (also part of LivenessResult).
SlotSet ComputeAddressTaken(const IrFunction& func);

}  // namespace vc

#endif  // VALUECHECK_SRC_DATAFLOW_LIVENESS_H_

// Dense bitset over a function's memory slots, the lattice element of the
// liveness analysis.

#ifndef VALUECHECK_SRC_DATAFLOW_SLOT_SET_H_
#define VALUECHECK_SRC_DATAFLOW_SLOT_SET_H_

#include <cstdint>
#include <vector>

#include "src/ir/ir.h"

namespace vc {

class SlotSet {
 public:
  SlotSet() = default;
  explicit SlotSet(int num_slots) : bits_(static_cast<size_t>(num_slots), false) {}

  void Resize(int num_slots) { bits_.resize(static_cast<size_t>(num_slots), false); }

  bool Contains(SlotId slot) const {
    return slot >= 0 && slot < static_cast<SlotId>(bits_.size()) && bits_[slot];
  }

  void Add(SlotId slot) {
    if (slot >= static_cast<SlotId>(bits_.size())) {
      bits_.resize(static_cast<size_t>(slot) + 1, false);
    }
    if (slot >= 0) {
      bits_[slot] = true;
    }
  }

  void Remove(SlotId slot) {
    if (slot >= 0 && slot < static_cast<SlotId>(bits_.size())) {
      bits_[slot] = false;
    }
  }

  // this |= other. Returns true if this changed.
  bool UnionWith(const SlotSet& other) {
    if (other.bits_.size() > bits_.size()) {
      bits_.resize(other.bits_.size(), false);
    }
    bool changed = false;
    for (size_t i = 0; i < other.bits_.size(); ++i) {
      if (other.bits_[i] && !bits_[i]) {
        bits_[i] = true;
        changed = true;
      }
    }
    return changed;
  }

  int Count() const {
    int n = 0;
    for (bool bit : bits_) {
      n += bit ? 1 : 0;
    }
    return n;
  }

  friend bool operator==(const SlotSet& a, const SlotSet& b) {
    size_t common = std::min(a.bits_.size(), b.bits_.size());
    for (size_t i = 0; i < common; ++i) {
      if (a.bits_[i] != b.bits_[i]) {
        return false;
      }
    }
    const auto& longer = a.bits_.size() > b.bits_.size() ? a.bits_ : b.bits_;
    for (size_t i = common; i < longer.size(); ++i) {
      if (longer[i]) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<bool> bits_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_DATAFLOW_SLOT_SET_H_

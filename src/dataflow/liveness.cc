#include "src/dataflow/liveness.h"

namespace vc {

namespace {

bool IsStructVarSlot(const IrFunction& func, SlotId slot) {
  const Slot& s = func.slots[slot];
  return s.var != nullptr && s.field_index < 0 && s.var->type != nullptr &&
         s.var->type->IsStruct();
}

// Applies `fn` to every field slot of the same variable as `slot` (which must
// be a whole-variable slot).
template <typename Fn>
void ForEachFieldSlot(const IrFunction& func, SlotId slot, Fn fn) {
  const VarDecl* var = func.slots[slot].var;
  for (SlotId other = 0; other < func.slots.size(); ++other) {
    const Slot& candidate = func.slots[other];
    if (candidate.var == var && candidate.field_index >= 0) {
      fn(other);
    }
  }
}

}  // namespace

void ApplyLivenessTransfer(const IrFunction& func, const Instruction& inst, SlotSet& live) {
  switch (inst.op) {
    case Opcode::kLoad:
      live.Add(inst.slot);
      if (IsStructVarSlot(func, inst.slot)) {
        // Reading the whole struct reads each field.
        ForEachFieldSlot(func, inst.slot, [&live](SlotId field) { live.Add(field); });
      }
      break;
    case Opcode::kStore:
      live.Remove(inst.slot);
      if (IsStructVarSlot(func, inst.slot)) {
        // Overwriting the whole struct overwrites each field.
        ForEachFieldSlot(func, inst.slot, [&live](SlotId field) { live.Remove(field); });
      }
      break;
    case Opcode::kAddrSlot:
      // Escaped address: the slot may be read through a pointer after this
      // point, so treat the address-taking itself as a use (conservative, the
      // paper's rule from §4.1 "Pointer and Alias").
      live.Add(inst.slot);
      if (IsStructVarSlot(func, inst.slot)) {
        ForEachFieldSlot(func, inst.slot, [&live](SlotId field) { live.Add(field); });
      }
      break;
    default:
      // Loads/stores through pointers and all value operations touch no slot
      // directly; escaped slots are handled by the address-taken suppression.
      break;
  }
}

SlotSet ComputeAddressTaken(const IrFunction& func) {
  SlotSet taken(func.slots.size());
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kAddrSlot) {
        taken.Add(inst.slot);
        if (IsStructVarSlot(func, inst.slot)) {
          ForEachFieldSlot(func, inst.slot, [&taken](SlotId field) { taken.Add(field); });
        }
        // Taking a field's address escapes that field; its parent variable
        // stays precise.
      }
    }
  }
  return taken;
}

LivenessResult ComputeLiveness(const IrFunction& func, BudgetMeter* meter) {
  LivenessResult result;
  const size_t num_blocks = func.blocks.size();
  result.live_in.assign(num_blocks, SlotSet(func.slots.size()));
  result.live_out.assign(num_blocks, SlotSet(func.slots.size()));
  result.address_taken = ComputeAddressTaken(func);

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    // Reverse block order converges quickly for reducible CFGs.
    for (size_t i = num_blocks; i-- > 0;) {
      const BasicBlock& block = *func.blocks[i];
      if (meter != nullptr) {
        meter->Charge(block.insts.size() + 1);
      }
      SlotSet out(func.slots.size());
      for (BlockId succ : block.succs) {
        out.UnionWith(result.live_in[succ]);
      }
      SlotSet in = out;
      for (size_t j = block.insts.size(); j-- > 0;) {
        ApplyLivenessTransfer(func, block.insts[j], in);
      }
      if (!(out == result.live_out[i])) {
        result.live_out[i] = std::move(out);
        changed = true;
      }
      if (!(in == result.live_in[i])) {
        result.live_in[i] = std::move(in);
        changed = true;
      }
    }
  }
  return result;
}

}  // namespace vc

// Backward "next definition" analysis — the paper's DefineSet (Fig. 3/4).
//
// For every program point it records, per slot, the set of nearest stores
// that overwrite the slot on some path to the exit. When the detector finds
// an unused store, the DefineSet at that point names the overwriting
// definitions; the authorship phase compares their authors against the
// store's author to classify a cross-scope overwritten definition (§3.1
// scenario 3 and the overwritten-parameter variant of scenario 2).

#ifndef VALUECHECK_SRC_DATAFLOW_DEFINE_SETS_H_
#define VALUECHECK_SRC_DATAFLOW_DEFINE_SETS_H_

#include <algorithm>
#include <map>
#include <vector>

#include "src/ir/ir.h"
#include "src/support/fault.h"

namespace vc {

// The nearest next definitions of each slot, keyed by slot id. Values are the
// source locations of the overwriting stores, sorted and deduplicated.
class DefineMap {
 public:
  void Replace(SlotId slot, SourceLoc loc) { defs_[slot] = {loc}; }

  void Clear(SlotId slot) { defs_.erase(slot); }

  const std::vector<SourceLoc>* Find(SlotId slot) const {
    auto it = defs_.find(slot);
    return it == defs_.end() ? nullptr : &it->second;
  }

  // this = union(this, other) per slot. Returns true if this changed.
  bool UnionWith(const DefineMap& other) {
    bool changed = false;
    for (const auto& [slot, locs] : other.defs_) {
      std::vector<SourceLoc>& mine = defs_[slot];
      for (const SourceLoc& loc : locs) {
        if (std::find(mine.begin(), mine.end(), loc) == mine.end()) {
          mine.push_back(loc);
          changed = true;
        }
      }
      std::sort(mine.begin(), mine.end());
    }
    return changed;
  }

  friend bool operator==(const DefineMap& a, const DefineMap& b) { return a.defs_ == b.defs_; }

 private:
  std::map<SlotId, std::vector<SourceLoc>> defs_;
};

struct DefineSetResult {
  // Indexed by block id: state at block entry (in) and exit (out), in
  // backward-analysis orientation (in = before the first instruction).
  std::vector<DefineMap> in;
  std::vector<DefineMap> out;
  int iterations = 0;
};

// Applies one instruction's backward transfer: a store to slot s replaces the
// next-definition set of s with {this store}.
void ApplyDefineTransfer(const IrFunction& func, const Instruction& inst, DefineMap& defs);

// A non-null `meter` is charged one step per instruction per pass and may
// throw BudgetExceededError (see ComputeLiveness).
DefineSetResult ComputeDefineSets(const IrFunction& func, BudgetMeter* meter = nullptr);

}  // namespace vc

#endif  // VALUECHECK_SRC_DATAFLOW_DEFINE_SETS_H_

#include "src/dataflow/define_sets.h"

namespace vc {

void ApplyDefineTransfer(const IrFunction& func, const Instruction& inst, DefineMap& defs) {
  if (inst.op != Opcode::kStore) {
    return;
  }
  defs.Replace(inst.slot, inst.loc);
}

DefineSetResult ComputeDefineSets(const IrFunction& func, BudgetMeter* meter) {
  DefineSetResult result;
  const size_t num_blocks = func.blocks.size();
  result.in.assign(num_blocks, DefineMap());
  result.out.assign(num_blocks, DefineMap());

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    for (size_t i = num_blocks; i-- > 0;) {
      const BasicBlock& block = *func.blocks[i];
      if (meter != nullptr) {
        meter->Charge(block.insts.size() + 1);
      }
      DefineMap out;
      for (BlockId succ : block.succs) {
        out.UnionWith(result.in[succ]);
      }
      DefineMap in = out;
      for (size_t j = block.insts.size(); j-- > 0;) {
        ApplyDefineTransfer(func, block.insts[j], in);
      }
      if (!(out == result.out[i])) {
        result.out[i] = std::move(out);
        changed = true;
      }
      if (!(in == result.in[i])) {
        result.in[i] = std::move(in);
        changed = true;
      }
    }
  }
  return result;
}

}  // namespace vc

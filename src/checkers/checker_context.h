// Per-function analysis context shared by every checker.
//
// N checkers pay for one liveness pass: the context computes each shared
// analysis (liveness, DefineSets, Andersen points-to) on first request and
// memoizes the result for the rest of the function's checkers. All analyses
// charge the same per-function BudgetMeter, so the PR-5 resource-budget
// contract extends unchanged to multi-checker runs — the meter's step count
// covers the union of whatever analyses the enabled checkers touched.

#ifndef VALUECHECK_SRC_CHECKERS_CHECKER_CONTEXT_H_
#define VALUECHECK_SRC_CHECKERS_CHECKER_CONTEXT_H_

#include <memory>
#include <string>

#include "src/core/project.h"
#include "src/dataflow/define_sets.h"
#include "src/dataflow/liveness.h"
#include "src/pointer/andersen.h"

namespace vc {

class CheckerContext {
 public:
  // `meter` may be null (unmetered run); it is shared across every analysis
  // and checker for this function.
  CheckerContext(const Project& project, FileId file, const IrFunction& func,
                 BudgetMeter* meter = nullptr);

  const Project& project() const { return project_; }
  FileId file() const { return file_; }
  const std::string& path() const { return path_; }
  const IrFunction& func() const { return func_; }
  BudgetMeter* meter() const { return meter_; }

  // Shared analyses, computed on first access and memoized. Access order
  // matters for budget accounting: the unused-definition checker requests
  // liveness then define sets, preserving the pre-framework charge order.
  const LivenessResult& liveness();
  const DefineSetResult& defines();
  const PointsTo& points_to();

  // Shorthand for liveness().address_taken (forces the liveness pass).
  const SlotSet& address_taken() { return liveness().address_taken; }

  // True once some checker has forced the points-to pass; lets the driver
  // attribute points-to memory without computing the analysis just to
  // measure it.
  bool points_to_computed() const { return points_to_ != nullptr; }

 private:
  const Project& project_;
  FileId file_;
  const std::string& path_;
  const IrFunction& func_;
  BudgetMeter* meter_;

  std::unique_ptr<LivenessResult> liveness_;
  std::unique_ptr<DefineSetResult> defines_;
  std::unique_ptr<PointsTo> points_to_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CHECKERS_CHECKER_CONTEXT_H_

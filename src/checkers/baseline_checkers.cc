#include "src/checkers/baseline_checkers.h"

#include <map>
#include <set>

#include "src/ast/walk.h"
#include "src/core/detector.h"

namespace vc {

namespace {

// Coverity CHECKED_RETURN thresholds: a callee needs at least this many call
// sites, and at least this fraction must consume the result, before ignored
// results are reported.
constexpr int kMinCallSites = 2;
constexpr double kCheckedFraction = 0.8;

// Shared candidate skeleton for AST-level baseline findings.
UnusedDefCandidate BaselineFinding(CheckerContext& ctx, SourceLoc loc, const std::string& slot,
                                   const std::string& description) {
  UnusedDefCandidate cand;
  cand.function = ctx.func().name;
  cand.slot_name = slot;
  cand.file = ctx.project().sources().Path(loc.file);
  cand.def_loc = loc;
  cand.ir_func = &ctx.func();
  cand.note = description;
  return cand;
}

// Collects, per variable, whether it is ever read (referenced outside the
// target position of an assignment) and whether it is ever written.
struct VarUsage {
  bool read = false;
  bool written = false;
  bool addr_taken = false;
};

void ScanFunction(const FunctionDecl* func, std::map<const VarDecl*, VarUsage>& usage) {
  // Mark assignment targets as writes; everything else that mentions the
  // variable is a read. The walk visits assignment LHS subtrees too, so we
  // pre-collect the exact Expr nodes that are "pure store targets": a bare
  // identifier on the LHS of '='.
  std::set<const Expr*> store_targets;
  ForEachExpr(func->body, [&store_targets](const Expr* expr) {
    if (expr->kind == ExprKind::kAssign) {
      const auto* assign = static_cast<const AssignExpr*>(expr);
      if (assign->op == TokenKind::kAssign && assign->lhs != nullptr &&
          assign->lhs->kind == ExprKind::kIdent) {
        store_targets.insert(assign->lhs);
      }
    }
  });

  ForEachExpr(func->body, [&](const Expr* expr) {
    if (expr->kind == ExprKind::kIdent) {
      const auto* ident = static_cast<const IdentExpr*>(expr);
      if (ident->var == nullptr) {
        return;
      }
      if (store_targets.count(expr) > 0) {
        usage[ident->var].written = true;
      } else {
        usage[ident->var].read = true;
      }
    } else if (expr->kind == ExprKind::kUnary) {
      const auto* unary = static_cast<const UnaryExpr*>(expr);
      if (unary->op == TokenKind::kAmp && unary->operand != nullptr &&
          unary->operand->kind == ExprKind::kIdent) {
        const auto* ident = static_cast<const IdentExpr*>(unary->operand);
        if (ident->var != nullptr) {
          usage[ident->var].addr_taken = true;
        }
      }
    }
  });

  // Initializers count as writes.
  ForEachStmt(func->body, [&usage](const Stmt* stmt) {
    if (stmt->kind == StmtKind::kDecl) {
      const auto* decl = static_cast<const DeclStmt*>(stmt);
      if (decl->init != nullptr) {
        usage[decl->var].written = true;
      } else {
        usage.try_emplace(decl->var);  // declared, maybe never touched
      }
    }
  });
}

}  // namespace

// --- baseline-clang ---------------------------------------------------------

std::vector<UnusedDefCandidate> ClangUnusedChecker::Check(CheckerContext& ctx) const {
  std::vector<UnusedDefCandidate> result;
  const FunctionDecl* func = ctx.func().decl;
  if (func == nullptr || !func->IsDefined()) {
    return result;
  }
  std::map<const VarDecl*, VarUsage> usage;
  ScanFunction(func, usage);
  for (const auto& [var, info] : usage) {
    if (var->is_global || var->is_param || var->has_unused_attr) {
      continue;
    }
    if (info.read || info.addr_taken) {
      continue;  // referenced somewhere: not reported (flow-insensitive)
    }
    UnusedDefCandidate cand = BaselineFinding(
        ctx, var->loc, var->name,
        info.written ? "variable set but never used" : "unused variable");
    cand.var = var;
    result.push_back(std::move(cand));
  }
  return result;
}

// --- baseline-smatch --------------------------------------------------------

std::string SmatchUnusedChecker::Unsupported(const Project& project,
                                             const ProjectTraits& traits) const {
  (void)project;
  if (!traits.is_pure_c) {
    return "sparse parse error: C++ constructs not supported";
  }
  return "";
}

std::vector<UnusedDefCandidate> SmatchUnusedChecker::Check(CheckerContext& ctx) const {
  std::vector<UnusedDefCandidate> result;
  const FunctionDecl* func = ctx.func().decl;
  if (func == nullptr || !func->IsDefined()) {
    return result;
  }

  // Flow-insensitive read set (same notion as the AST-walk warnings: any
  // non-store reference counts, wherever it appears).
  std::set<const VarDecl*> read;
  std::set<const Expr*> store_targets;
  ForEachExpr(func->body, [&store_targets](const Expr* expr) {
    if (expr->kind == ExprKind::kAssign) {
      const auto* assign = static_cast<const AssignExpr*>(expr);
      if (assign->op == TokenKind::kAssign && assign->lhs != nullptr &&
          assign->lhs->kind == ExprKind::kIdent) {
        store_targets.insert(assign->lhs);
      }
    }
  });
  ForEachExpr(func->body, [&](const Expr* expr) {
    if (expr->kind == ExprKind::kIdent && store_targets.count(expr) == 0) {
      const auto* ident = static_cast<const IdentExpr*>(expr);
      if (ident->var != nullptr) {
        read.insert(ident->var);
      }
    }
  });

  auto report = [&](const VarDecl* var, SourceLoc loc, const std::string& slot) {
    UnusedDefCandidate cand = BaselineFinding(ctx, loc, slot, "return value is never used");
    cand.var = var;
    result.push_back(std::move(cand));
  };

  // Pattern 1: `v = call(...)` (or `type v = call(...)`) where v is never
  // referenced on a right-hand side anywhere in the function.
  ForEachStmt(func->body, [&](const Stmt* stmt) {
    if (stmt->kind == StmtKind::kDecl) {
      const auto* decl = static_cast<const DeclStmt*>(stmt);
      if (decl->init != nullptr && decl->init->kind == ExprKind::kCall &&
          read.count(decl->var) == 0 && !decl->var->has_unused_attr) {
        report(decl->var, decl->loc, decl->var->name);
      }
    } else if (stmt->kind == StmtKind::kExpr) {
      const auto* expr_stmt = static_cast<const ExprStmt*>(stmt);
      const Expr* expr = expr_stmt->expr;
      if (expr == nullptr) {
        return;
      }
      if (expr->kind == ExprKind::kAssign) {
        const auto* assign = static_cast<const AssignExpr*>(expr);
        if (assign->op == TokenKind::kAssign && assign->lhs != nullptr &&
            assign->lhs->kind == ExprKind::kIdent && assign->rhs != nullptr &&
            assign->rhs->kind == ExprKind::kCall) {
          const auto* ident = static_cast<const IdentExpr*>(assign->lhs);
          if (ident->var != nullptr && read.count(ident->var) == 0 &&
              !ident->var->has_unused_attr) {
            report(ident->var, assign->loc, ident->var->name);
          }
        }
      } else if (expr->kind == ExprKind::kCall) {
        // Pattern 2: bare ignored call to a project-internal non-void
        // function (the kernel-style "must check" heuristic; externs are
        // whitelisted as ignorable).
        const auto* call = static_cast<const CallExpr*>(expr);
        if (call->resolved != nullptr && !call->resolved->is_implicit &&
            call->resolved->return_type != nullptr && !call->resolved->return_type->IsVoid()) {
          const FunctionInfo* info = ctx.project().FindFunction(call->resolved->name);
          if (info != nullptr && info->InProject()) {
            report(nullptr, call->loc, call->resolved->name);
          }
        }
      }
    }
  });
  return result;
}

// --- baseline-infer ---------------------------------------------------------

std::string InferUnusedChecker::Unsupported(const Project& project,
                                            const ProjectTraits& traits) const {
  (void)project;
  if (traits.uses_kernel_extensions) {
    return "capture failed: unsupported compiler extensions";
  }
  return "";
}

std::vector<UnusedDefCandidate> InferUnusedChecker::Check(CheckerContext& ctx) const {
  std::vector<UnusedDefCandidate> result;
  // Same flow-sensitive liveness engine (shared through the context),
  // different envelope: infer's dead store reports explicit assignments to
  // whole local variables only.
  for (UnusedDefCandidate& cand :
       DetectInFunctionWith(ctx.project(), ctx.file(), ctx.func(), ctx.liveness(),
                            ctx.defines(), ctx.meter())) {
    if (cand.is_param || cand.is_synthetic || cand.is_field_slot) {
      continue;  // outside the Dead Store checker's scope
    }
    if (cand.var == nullptr || cand.var->has_unused_attr) {
      continue;  // attribute suppression works in infer
    }
    if (cand.var->is_param) {
      continue;  // stores to formals are not reported by the Dead Store check
    }
    // Sentinel-value whitelist: `int x = 0;`-style defensive initializers
    // are not flagged by the real tool.
    const Instruction* store = nullptr;
    for (const auto& block : cand.ir_func->blocks) {
      for (const Instruction& inst : block->insts) {
        if (inst.op == Opcode::kStore && inst.slot == cand.slot && inst.loc == cand.def_loc) {
          store = &inst;
        }
      }
    }
    if (store != nullptr && store->is_decl_init && store->is_const_store &&
        store->const_value == 0) {
      continue;
    }
    cand.note = "dead store: value written is never read";
    // Reset the detector's classification inputs: the baseline has no
    // cross-scope notion of its own.
    cand.kind = CandidateKind::kPlainUnused;
    result.push_back(std::move(cand));
  }
  return result;
}

// --- baseline-coverity ------------------------------------------------------

std::vector<UnusedDefCandidate> CoverityUnusedChecker::Check(CheckerContext& ctx) const {
  std::vector<UnusedDefCandidate> result;
  const IrFunction& func = ctx.func();

  // --- UNUSED_VALUE: block-local dead-store scan. A store is flagged only
  // when a second store to the same slot follows in the same basic block with
  // no intervening read — the conservative, low-noise envelope of the
  // commercial checker. It will not chase a kill across branches, which is
  // why cross-block overwrites escape it while full liveness catches them.
  for (const auto& block : func.blocks) {
    std::map<SlotId, const Instruction*> pending;
    for (const Instruction& inst : block->insts) {
      switch (inst.op) {
        case Opcode::kLoad:
        case Opcode::kAddrSlot:
          pending.erase(inst.slot);
          break;
        case Opcode::kStore: {
          const Slot& slot = func.slots[inst.slot];
          auto it = pending.find(inst.slot);
          if (it != pending.end()) {
            const Instruction* dead = it->second;
            UnusedDefCandidate cand =
                BaselineFinding(ctx, dead->loc, slot.name, "UNUSED_VALUE: assigned value is not used");
            cand.var = slot.var;
            result.push_back(std::move(cand));
          }
          // Eligibility for being reported later: whole local variables only,
          // no formals, no cursor-shaped stores, no sentinel initializers,
          // no attribute-suppressed variables.
          bool eligible = !slot.is_synthetic && !slot.IsFieldSlot() && slot.var != nullptr &&
                          !slot.var->is_param && !slot.var->is_global &&
                          !slot.var->has_unused_attr && !inst.is_increment &&
                          !(inst.is_decl_init && inst.is_const_store && inst.const_value == 0);
          if (eligible) {
            pending[inst.slot] = &inst;
          } else {
            pending.erase(inst.slot);
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // --- CHECKED_RETURN: usage-ratio inference over call sites, re-keyed to
  // this function's ignored calls (the driver visits every function, so the
  // union over functions is the original whole-project scan). A site whose
  // assigned variable is itself a dead store still counts as "used" here —
  // the checker keys on the syntactic consumption, which is exactly why it
  // misses the paper's Fig. 8 bug.
  for (const auto& [name, info] : ctx.project().function_index()) {
    int total = static_cast<int>(info.call_sites.size());
    if (total < kMinCallSites) {
      continue;
    }
    int used = 0;
    for (const CallSite& site : info.call_sites) {
      used += site.result_assigned ? 1 : 0;
    }
    if (static_cast<double>(used) < kCheckedFraction * static_cast<double>(total)) {
      continue;
    }
    for (const CallSite& site : info.call_sites) {
      if (site.result_assigned || site.caller != &func) {
        continue;
      }
      result.push_back(
          BaselineFinding(ctx, site.loc, name, "CHECKED_RETURN: callers usually use the value"));
    }
  }
  return result;
}

}  // namespace vc

#include "src/checkers/driver.h"

#include <memory>
#include <string>

#include "src/checkers/checker_context.h"
#include "src/support/events.h"
#include "src/support/memstats.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace vc {

CheckerRunResult RunCheckers(const Project& project, const std::vector<const Checker*>& checkers,
                             const ProjectTraits& traits, int jobs,
                             const ResourceBudget* budget, const FaultInjector* fault,
                             bool isolate) {
  CheckerRunResult result;

  // Capability gate: a checker that cannot analyze this project at all is
  // quarantined project-wide (one record, stage "checker") and excluded from
  // the run, in registration order.
  std::vector<const Checker*> runnable;
  for (const Checker* checker : checkers) {
    std::string reason = checker->Unsupported(project, traits);
    if (reason.empty()) {
      runnable.push_back(checker);
    } else {
      result.quarantined.push_back(QuarantinedUnit{"", "", "checker", reason, checker->name()});
    }
  }

  // Flatten the iteration space so the pool can balance uneven functions,
  // then merge per-function results in the serial visit order (the
  // determinism barrier: output never depends on worker scheduling).
  struct WorkItem {
    FileId file;
    const IrFunction* func;
  };
  std::vector<WorkItem> work;
  for (const auto& module : project.modules()) {
    for (const auto& func : module->functions) {
      work.push_back({module->file, func.get()});
    }
  }

  // Observability: one span + histogram sample per function. The histogram
  // reference is resolved once out here (registration locks); per-function
  // clock reads only happen while metrics collection is on.
  Histogram* fn_histogram =
      MetricsEnabled() ? &MetricsRegistry::Global().GetHistogram("detect.function_seconds")
                       : nullptr;
  const bool metered = budget != nullptr && !budget->Unlimited();
  const bool track_memory = MemoryTrackingEnabled();
  std::vector<std::vector<UnusedDefCandidate>> per_function(work.size());
  // Slot-indexed like per_function, so the quarantine list merges in the same
  // deterministic serial order as the findings regardless of scheduling.
  std::vector<std::vector<QuarantinedUnit>> per_function_quarantine(work.size());
  // Slot-indexed points-to footprints: summing after the join is
  // order-independent, so the byte counts match at any job count.
  std::vector<PointsTo::Footprint> per_function_mem(track_memory ? work.size() : 0);
  if (ProgressEnabled()) {
    ProgressMeter::Global().SetPhase("detect");
    ProgressMeter::Global().AddTotalFunctions(work.size());
  }
  ParallelFor(jobs, work.size(), [&](size_t i) {
    TraceSpan span("detect_fn", "detect");
    span.Arg("function", work[i].func->name);
    ScopedTimer timer(nullptr, fn_histogram);
    const std::string& path = project.sources().Path(work[i].file);
    // Runs on every exit path: the progress heartbeat never misses a
    // function, quarantined or not.
    struct FunctionTick {
      ~FunctionTick() {
        if (ProgressEnabled()) {
          ProgressMeter::Global().FunctionDone();
        }
      }
    } tick;
    // Attributes the function's points-to state (if a checker forced the
    // analysis) before its context dies; called on each exit path below.
    auto record_points_to = [&](CheckerContext& ctx) {
      if (track_memory && ctx.points_to_computed()) {
        per_function_mem[i] = ctx.points_to().MemoryFootprint();
      }
    };

    auto run_one = [&](const Checker* checker, CheckerContext& ctx) {
      std::vector<UnusedDefCandidate> found = checker->Check(ctx);
      for (UnusedDefCandidate& cand : found) {
        cand.checker = checker->name();
        cand.fingerprint_ns = checker->fingerprint_namespace();
        cand.from_baseline = checker->is_baseline();
        per_function[i].push_back(std::move(cand));
      }
    };

    if (!isolate) {
      CheckerContext ctx(project, work[i].file, *work[i].func, nullptr);
      for (const Checker* checker : runnable) {
        run_one(checker, ctx);
      }
      record_points_to(ctx);
      return;
    }

    // Isolation boundary: an exception here (injected, budget, or a real
    // worker bug) quarantines at the scope that contains it. The catches
    // must live inside the worker body — ParallelFor rethrows and cancels
    // remaining chunks.
    try {
      if (fault != nullptr) {
        fault->MaybeFault(fault_sites::kDetectFunction, path + ":" + work[i].func->name);
      }
    } catch (const std::exception& e) {
      // Whole-function quarantine, same record shape as the pre-framework
      // detector (no checker attribution).
      per_function_quarantine[i].push_back(
          QuarantinedUnit{path, work[i].func->name, "detect", e.what(), ""});
      return;
    }
    std::unique_ptr<BudgetMeter> meter;
    if (metered) {
      meter = std::make_unique<BudgetMeter>(*budget);
    }
    CheckerContext ctx(project, work[i].file, *work[i].func, meter.get());
    for (const Checker* checker : runnable) {
      try {
        run_one(checker, ctx);
      } catch (const BudgetExceededError& e) {
        // The meter is shared across the function's checkers: once it blows,
        // the remaining checkers would throw on their first Charge too.
        per_function_quarantine[i].push_back(
            QuarantinedUnit{path, work[i].func->name, "detect", e.what(), checker->name()});
        break;
      } catch (const std::exception& e) {
        per_function_quarantine[i].push_back(
            QuarantinedUnit{path, work[i].func->name, "detect", e.what(), checker->name()});
      }
    }
    record_points_to(ctx);
  });

  std::vector<uint64_t> per_checker_counts(runnable.size(), 0);
  for (auto& found : per_function) {
    for (auto& cand : found) {
      for (size_t c = 0; c < runnable.size(); ++c) {
        if (runnable[c]->name() == cand.checker) {
          ++per_checker_counts[c];
          break;
        }
      }
      result.candidates.push_back(std::move(cand));
    }
  }
  size_t quarantine_count = 0;
  for (auto& records : per_function_quarantine) {
    for (auto& record : records) {
      result.quarantined.push_back(std::move(record));
      ++quarantine_count;
    }
  }
  for (size_t c = 0; c < runnable.size(); ++c) {
    result.per_checker.push_back({runnable[c]->name(), per_checker_counts[c]});
    if (RunEventsEnabled()) {
      RunEvent("checker_done")
          .Str("checker", runnable[c]->name())
          .Num("candidates", per_checker_counts[c])
          .Emit();
    }
  }
  if (track_memory) {
    for (const PointsTo::Footprint& fp : per_function_mem) {
      result.points_to_bytes += fp.bytes;
      result.points_to_entries += fp.entries;
    }
    MemoryTracker& tracker = MemoryTracker::Global();
    tracker.Add(MemCategory::kPointsToSets, result.points_to_bytes,
                result.points_to_entries);
    tracker.SampleRss();
  }
  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("detect.functions").Add(work.size());
    registry.GetCounter("detect.candidates").Add(result.candidates.size());
    for (size_t c = 0; c < runnable.size(); ++c) {
      registry.GetCounter("detect." + runnable[c]->name() + ".candidates")
          .Add(per_checker_counts[c]);
    }
    if (quarantine_count > 0) {
      registry.GetCounter("fault.quarantined.detect").Add(quarantine_count);
    }
  }
  return result;
}

}  // namespace vc

#include "src/checkers/driver.h"

#include <memory>
#include <string>

#include "src/checkers/checker_context.h"
#include "src/support/events.h"
#include "src/support/memstats.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace vc {

std::vector<FunctionDetect> RunCheckersOnFunctions(
    const Project& project, const std::vector<const Checker*>& runnable, int jobs,
    const ResourceBudget* budget, const FaultInjector* fault, bool isolate,
    const std::vector<CheckerWorkItem>& work) {
  // Observability: one span + histogram sample per function. The histogram
  // reference is resolved once out here (registration locks); per-function
  // clock reads only happen while metrics collection is on.
  Histogram* fn_histogram =
      MetricsEnabled() ? &MetricsRegistry::Global().GetHistogram("detect.function_seconds")
                       : nullptr;
  const bool metered = budget != nullptr && !budget->Unlimited();
  const bool track_memory = MemoryTrackingEnabled();
  // Slot-indexed per work item: results merge in the serial work order (the
  // determinism barrier: output never depends on worker scheduling).
  std::vector<FunctionDetect> per_function(work.size());
  if (ProgressEnabled()) {
    ProgressMeter::Global().SetPhase("detect");
    ProgressMeter::Global().AddTotalFunctions(work.size());
  }
  ParallelFor(jobs, work.size(), [&](size_t i) {
    TraceSpan span("detect_fn", "detect");
    span.Arg("function", work[i].func->name);
    ScopedTimer timer(nullptr, fn_histogram);
    const std::string& path = project.sources().Path(work[i].file);
    // Runs on every exit path: the progress heartbeat never misses a
    // function, quarantined or not.
    struct FunctionTick {
      ~FunctionTick() {
        if (ProgressEnabled()) {
          ProgressMeter::Global().FunctionDone();
        }
      }
    } tick;
    // Attributes the function's points-to state (if a checker forced the
    // analysis) before its context dies; called on each exit path below.
    auto record_points_to = [&](CheckerContext& ctx) {
      if (track_memory && ctx.points_to_computed()) {
        PointsTo::Footprint fp = ctx.points_to().MemoryFootprint();
        per_function[i].points_to_bytes = fp.bytes;
        per_function[i].points_to_entries = fp.entries;
      }
    };

    auto run_one = [&](const Checker* checker, CheckerContext& ctx) {
      std::vector<UnusedDefCandidate> found = checker->Check(ctx);
      for (UnusedDefCandidate& cand : found) {
        cand.checker = checker->name();
        cand.fingerprint_ns = checker->fingerprint_namespace();
        cand.from_baseline = checker->is_baseline();
        per_function[i].candidates.push_back(std::move(cand));
      }
    };

    if (!isolate) {
      CheckerContext ctx(project, work[i].file, *work[i].func, nullptr);
      for (const Checker* checker : runnable) {
        run_one(checker, ctx);
      }
      record_points_to(ctx);
      return;
    }

    // Isolation boundary: an exception here (injected, budget, or a real
    // worker bug) quarantines at the scope that contains it. The catches
    // must live inside the worker body — ParallelFor rethrows and cancels
    // remaining chunks.
    try {
      if (fault != nullptr) {
        fault->MaybeFault(fault_sites::kDetectFunction, path + ":" + work[i].func->name);
      }
    } catch (const std::exception& e) {
      // Whole-function quarantine, same record shape as the pre-framework
      // detector (no checker attribution).
      per_function[i].quarantined.push_back(
          QuarantinedUnit{path, work[i].func->name, "detect", e.what(), ""});
      return;
    }
    std::unique_ptr<BudgetMeter> meter;
    if (metered) {
      meter = std::make_unique<BudgetMeter>(*budget);
    }
    CheckerContext ctx(project, work[i].file, *work[i].func, meter.get());
    for (const Checker* checker : runnable) {
      try {
        run_one(checker, ctx);
      } catch (const BudgetExceededError& e) {
        // The meter is shared across the function's checkers: once it blows,
        // the remaining checkers would throw on their first Charge too.
        per_function[i].quarantined.push_back(
            QuarantinedUnit{path, work[i].func->name, "detect", e.what(), checker->name()});
        break;
      } catch (const std::exception& e) {
        per_function[i].quarantined.push_back(
            QuarantinedUnit{path, work[i].func->name, "detect", e.what(), checker->name()});
      }
    }
    record_points_to(ctx);
  });

  if (track_memory) {
    uint64_t bytes = 0;
    uint64_t entries = 0;
    for (const FunctionDetect& fn : per_function) {
      bytes += fn.points_to_bytes;
      entries += fn.points_to_entries;
    }
    MemoryTracker& tracker = MemoryTracker::Global();
    tracker.Add(MemCategory::kPointsToSets, bytes, entries);
    tracker.SampleRss();
  }
  if (MetricsEnabled()) {
    MetricsRegistry::Global().GetCounter("detect.functions").Add(work.size());
  }
  return per_function;
}

std::vector<const Checker*> GateCheckers(const Project& project,
                                         const std::vector<const Checker*>& checkers,
                                         const ProjectTraits& traits,
                                         std::vector<QuarantinedUnit>& quarantined) {
  // Capability gate: a checker that cannot analyze this project at all is
  // quarantined project-wide (one record, stage "checker") and excluded from
  // the run, in registration order.
  std::vector<const Checker*> runnable;
  for (const Checker* checker : checkers) {
    std::string reason = checker->Unsupported(project, traits);
    if (reason.empty()) {
      runnable.push_back(checker);
    } else {
      quarantined.push_back(QuarantinedUnit{"", "", "checker", reason, checker->name()});
    }
  }
  return runnable;
}

void MergeFunctionDetects(const std::vector<const Checker*>& runnable,
                          std::vector<FunctionDetect> per_function, CheckerRunResult& result) {
  std::vector<uint64_t> per_checker_counts(runnable.size(), 0);
  size_t quarantine_count = 0;
  for (FunctionDetect& fn : per_function) {
    for (auto& cand : fn.candidates) {
      for (size_t c = 0; c < runnable.size(); ++c) {
        if (runnable[c]->name() == cand.checker) {
          ++per_checker_counts[c];
          break;
        }
      }
      result.candidates.push_back(std::move(cand));
    }
    for (auto& record : fn.quarantined) {
      result.quarantined.push_back(std::move(record));
      ++quarantine_count;
    }
    result.points_to_bytes += fn.points_to_bytes;
    result.points_to_entries += fn.points_to_entries;
  }
  for (size_t c = 0; c < runnable.size(); ++c) {
    result.per_checker.push_back({runnable[c]->name(), per_checker_counts[c]});
    if (RunEventsEnabled()) {
      RunEvent("checker_done")
          .Str("checker", runnable[c]->name())
          .Num("candidates", per_checker_counts[c])
          .Emit();
    }
  }
  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("detect.candidates").Add(result.candidates.size());
    for (size_t c = 0; c < runnable.size(); ++c) {
      registry.GetCounter("detect." + runnable[c]->name() + ".candidates")
          .Add(per_checker_counts[c]);
    }
    if (quarantine_count > 0) {
      registry.GetCounter("fault.quarantined.detect").Add(quarantine_count);
    }
  }
}

CheckerRunResult RunCheckers(const Project& project, const std::vector<const Checker*>& checkers,
                             const ProjectTraits& traits, int jobs,
                             const ResourceBudget* budget, const FaultInjector* fault,
                             bool isolate) {
  CheckerRunResult result;
  std::vector<const Checker*> runnable = GateCheckers(project, checkers, traits, result.quarantined);

  // Flatten the iteration space so the pool can balance uneven functions.
  // unit_order() keeps the visit order stable whether the project was built
  // fresh or mutated incrementally.
  std::vector<CheckerWorkItem> work;
  for (size_t m : project.unit_order()) {
    const auto& module = project.modules()[m];
    for (const auto& func : module->functions) {
      work.push_back({module->file, func.get()});
    }
  }

  MergeFunctionDetects(runnable,
                       RunCheckersOnFunctions(project, runnable, jobs, budget, fault, isolate, work),
                       result);
  return result;
}

}  // namespace vc

// stale-copy: a local snapshot of another local (`copy = orig;`) that is
// read after `orig` was modified — the reader almost certainly wanted the
// current value, not the stale one.
//
// Not an unused definition at all (the copy IS read — that's the problem),
// but the same substrate answers it: the IR makes the copy relation explicit
// (kLoad orig feeding kStore copy), and a block-local forward scan tracks
// copy → source pairs, marks the copy stale when the source is re-stored,
// and reports the first read of a stale copy. Address-taken slots on either
// side leave the envelope (pointer writes could re-synchronize the pair).

#ifndef VALUECHECK_SRC_CHECKERS_STALE_COPY_H_
#define VALUECHECK_SRC_CHECKERS_STALE_COPY_H_

#include "src/checkers/checker.h"

namespace vc {

class StaleCopyChecker : public Checker {
 public:
  std::string name() const override { return "stale-copy"; }
  std::string description() const override {
    return "copy of a local read after the original was modified";
  }
  std::vector<UnusedDefCandidate> Check(CheckerContext& ctx) const override;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CHECKERS_STALE_COPY_H_

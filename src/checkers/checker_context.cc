#include "src/checkers/checker_context.h"

namespace vc {

CheckerContext::CheckerContext(const Project& project, FileId file, const IrFunction& func,
                               BudgetMeter* meter)
    : project_(project),
      file_(file),
      path_(project.sources().Path(file)),
      func_(func),
      meter_(meter) {}

const LivenessResult& CheckerContext::liveness() {
  if (liveness_ == nullptr) {
    liveness_ = std::make_unique<LivenessResult>(ComputeLiveness(func_, meter_));
  }
  return *liveness_;
}

const DefineSetResult& CheckerContext::defines() {
  if (defines_ == nullptr) {
    defines_ = std::make_unique<DefineSetResult>(ComputeDefineSets(func_, meter_));
  }
  return *defines_;
}

const PointsTo& CheckerContext::points_to() {
  if (points_to_ == nullptr) {
    points_to_ = std::make_unique<PointsTo>(func_);
  }
  return *points_to_;
}

}  // namespace vc

// out-param-unused: a call that fills a caller-local out-parameter
// (`fill(&x, ...)`) whose value is never read afterwards.
//
// The unused-definition detector cannot see this shape at either end: in the
// caller the write happens through a pointer (address-taken suppression), in
// the callee `*out = v` is an indirect store to another frame. But the
// caller-side liveness fix point already knows the answer — if the slot is
// not live immediately after the call, nothing ever reads what the callee
// wrote. Restricted to slots whose address is taken exactly once (at this
// call), so a pointer saved elsewhere cannot smuggle a later read.

#ifndef VALUECHECK_SRC_CHECKERS_OUT_PARAM_H_
#define VALUECHECK_SRC_CHECKERS_OUT_PARAM_H_

#include "src/checkers/checker.h"

namespace vc {

class OutParamChecker : public Checker {
 public:
  std::string name() const override { return "out-param-unused"; }
  std::string description() const override {
    return "out-parameter filled by a call but never read afterwards";
  }
  std::vector<UnusedDefCandidate> Check(CheckerContext& ctx) const override;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CHECKERS_OUT_PARAM_H_

#include "src/checkers/stale_copy.h"

#include <map>

namespace vc {

std::vector<UnusedDefCandidate> StaleCopyChecker::Check(CheckerContext& ctx) const {
  const IrFunction& func = ctx.func();
  const SlotSet& address_taken = ctx.address_taken();
  std::vector<UnusedDefCandidate> candidates;

  auto eligible = [&](SlotId id) {
    const Slot& slot = func.slots[id];
    return slot.var != nullptr && !slot.var->is_global && !slot.is_synthetic &&
           !slot.IsFieldSlot() && !address_taken.Contains(id);
  };

  struct CopyInfo {
    SlotId src = kInvalidSlot;
    SourceLoc copy_loc;
    bool stale = false;
    SourceLoc mod_loc;
  };

  for (const auto& block : func.blocks) {
    if (ctx.meter() != nullptr) {
      ctx.meter()->Charge(block->insts.size() + 1);
    }
    std::map<SlotId, CopyInfo> copies;       // keyed by the copy slot
    std::map<ValueId, SlotId> loaded_from;   // value -> slot it was loaded from
    for (const Instruction& inst : block->insts) {
      switch (inst.op) {
        case Opcode::kLoad: {
          auto it = copies.find(inst.slot);
          if (it != copies.end() && it->second.stale) {
            const Slot& slot = func.slots[inst.slot];
            UnusedDefCandidate cand;
            cand.function = func.name;
            cand.slot_name = slot.name;
            cand.file = ctx.path();
            cand.def_loc = it->second.copy_loc;
            cand.ir_func = &func;
            cand.slot = inst.slot;
            cand.var = slot.var;
            cand.overwritten = true;
            cand.overwriter_locs.push_back(it->second.mod_loc);
            cand.kind = CandidateKind::kStaleCopy;
            candidates.push_back(std::move(cand));
            copies.erase(it);  // one report per copy
          }
          if (inst.result != kNoValue && eligible(inst.slot)) {
            loaded_from[inst.result] = inst.slot;
          }
          break;
        }
        case Opcode::kStore: {
          // A store to the source invalidates its copies — unless it is the
          // cursor/post-increment idiom (`old = x; x++;` snapshots x on
          // purpose), which drops the pair instead of flagging it.
          for (auto it = copies.begin(); it != copies.end();) {
            if (it->second.src == inst.slot) {
              if (inst.is_increment) {
                it = copies.erase(it);
                continue;
              }
              it->second.stale = true;
              it->second.mod_loc = inst.loc;
            }
            ++it;
          }
          copies.erase(inst.slot);  // the copy itself was rewritten
          if (eligible(inst.slot) && !inst.is_increment && !inst.operands.empty()) {
            auto src = loaded_from.find(inst.operands[0]);
            if (src != loaded_from.end() && src->second != inst.slot) {
              copies[inst.slot] = CopyInfo{src->second, inst.loc, false, SourceLoc()};
            }
          }
          break;
        }
        case Opcode::kAddrSlot:
          // eligible() already excludes address-taken slots function-wide;
          // nothing tracked here can be affected.
          break;
        default:
          break;
      }
    }
  }
  return candidates;
}

}  // namespace vc

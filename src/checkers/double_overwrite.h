// double-overwrite: a store overwritten by a second store to the same slot
// with no intervening read, on every path between them.
//
// The unused-definition detector suppresses all candidates on address-taken
// slots (the paper's checkAlias rule), which is sound but blind: a store
// that is definitely killed by a later store — no load, no address use, no
// call that could reach the slot in between — is dead even when the slot's
// address escapes elsewhere in the function. This checker recovers exactly
// that envelope with a forward must-analysis (intersection meet), so it
// stays precise across branches: a read on any path between the two stores
// cancels the report. It runs on address-taken slots only — non-escaping
// slots are the unused-def checker's territory — so the two envelopes are
// disjoint and never double-report one dead store.

#ifndef VALUECHECK_SRC_CHECKERS_DOUBLE_OVERWRITE_H_
#define VALUECHECK_SRC_CHECKERS_DOUBLE_OVERWRITE_H_

#include "src/checkers/checker.h"

namespace vc {

class DoubleOverwriteChecker : public Checker {
 public:
  std::string name() const override { return "double-overwrite"; }
  std::string description() const override {
    return "store killed by a second store on every path, with no read in between";
  }
  std::vector<UnusedDefCandidate> Check(CheckerContext& ctx) const override;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CHECKERS_DOUBLE_OVERWRITE_H_

#include "src/checkers/double_overwrite.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace vc {

namespace {

// Must-analysis state: per slot, the one store location that is pending
// (written, not yet read) on every path reaching this point.
using PendingMap = std::map<SlotId, SourceLoc>;

// in = intersection of the pending maps (same slot, same store).
void IntersectInto(PendingMap& into, const PendingMap& other) {
  for (auto it = into.begin(); it != into.end();) {
    auto found = other.find(it->first);
    if (found == other.end() || !(found->second == it->second)) {
      it = into.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace

std::vector<UnusedDefCandidate> DoubleOverwriteChecker::Check(CheckerContext& ctx) const {
  const IrFunction& func = ctx.func();
  const SlotSet& address_taken = ctx.address_taken();

  // Only address-taken slots: everything else is already covered (better) by
  // the unused-def checker, and disjoint envelopes keep the two checkers'
  // findings from double-reporting one dead store.
  auto eligible = [&](SlotId id) {
    const Slot& slot = func.slots[id];
    return slot.var != nullptr && !slot.var->is_global && !slot.is_synthetic &&
           !slot.IsFieldSlot() && address_taken.Contains(id);
  };

  // One forward transfer of `inst` over `pending`; when `report` is non-null,
  // records (killed store, overwriter) pairs.
  auto transfer = [&](const Instruction& inst, PendingMap& pending,
                      std::vector<std::pair<SourceLoc, SourceLoc>>* report) {
    switch (inst.op) {
      case Opcode::kLoad:
        pending.erase(inst.slot);
        break;
      case Opcode::kAddrSlot:
        // The address flows somewhere; any later use could read the slot.
        pending.erase(inst.slot);
        break;
      case Opcode::kCall:
      case Opcode::kLoadInd:
      case Opcode::kStoreInd:
        // May read any slot whose address escaped.
        for (auto it = pending.begin(); it != pending.end();) {
          if (address_taken.Contains(it->first)) {
            it = pending.erase(it);
          } else {
            ++it;
          }
        }
        break;
      case Opcode::kStore: {
        if (!eligible(inst.slot)) {
          pending.erase(inst.slot);
          break;
        }
        auto it = pending.find(inst.slot);
        if (it != pending.end() && report != nullptr && !(it->second == inst.loc)) {
          report->push_back({it->second, inst.loc});
        }
        pending[inst.slot] = inst.loc;
        break;
      }
      default:
        break;
    }
  };

  // Fix point: "no out-state yet" is TOP. A block's in-state is the
  // intersection over the preds that have materialized an out-state; as more
  // preds materialize (or their outs shrink), that intersection only
  // shrinks, the transfer is monotone, so every out-state descends after its
  // first assignment and the iteration converges.
  //
  // The one trap is a block whose preds exist but have ALL still-TOP outs:
  // seeding it from the empty map would be BOTTOM, not TOP — its out-state
  // could later have to grow, and a grown state flowing around a loop can
  // oscillate against the intersection forever (a 1-core sweep over a
  // generated corpus found exactly that: recursion + address-taken local +
  // an if inside a loop never converged). Such blocks are skipped until a
  // pred materializes; blocks with no preds at all (the entry, or dead
  // code) correctly start from "nothing pending".
  const size_t num_blocks = func.blocks.size();
  std::vector<PendingMap> out(num_blocks);
  std::vector<bool> has_out(num_blocks, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& block : func.blocks) {
      if (ctx.meter() != nullptr) {
        ctx.meter()->Charge(block->insts.size() + 1);
      }
      PendingMap in;
      bool first = true;
      for (BlockId pred : block->preds) {
        if (!has_out[pred]) {
          continue;
        }
        if (first) {
          in = out[pred];
          first = false;
        } else {
          IntersectInto(in, out[pred]);
        }
      }
      if (first && !block->preds.empty()) {
        continue;  // every pred is still TOP: stay TOP, revisit next pass
      }
      for (const Instruction& inst : block->insts) {
        transfer(inst, in, nullptr);
      }
      if (!has_out[block->id] || !(out[block->id] == in)) {
        out[block->id] = std::move(in);
        has_out[block->id] = true;
        changed = true;
      }
    }
  }

  // Final replay from the converged in-states to collect the kills once.
  std::set<std::pair<SourceLoc, SourceLoc>> seen;
  std::vector<std::pair<SlotId, std::pair<SourceLoc, SourceLoc>>> kills;
  for (const auto& block : func.blocks) {
    PendingMap in;
    bool first = true;
    for (BlockId pred : block->preds) {
      if (!has_out[pred]) {
        continue;
      }
      if (first) {
        in = out[pred];
        first = false;
      } else {
        IntersectInto(in, out[pred]);
      }
    }
    std::vector<std::pair<SourceLoc, SourceLoc>> report;
    for (const Instruction& inst : block->insts) {
      SlotId slot = inst.slot;
      size_t before = report.size();
      transfer(inst, in, &report);
      for (size_t k = before; k < report.size(); ++k) {
        if (seen.insert(report[k]).second) {
          kills.push_back({slot, report[k]});
        }
      }
    }
  }

  std::sort(kills.begin(), kills.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  std::vector<UnusedDefCandidate> candidates;
  for (const auto& [slot_id, pair] : kills) {
    const Slot& slot = func.slots[slot_id];
    UnusedDefCandidate cand;
    cand.function = func.name;
    cand.slot_name = slot.name;
    cand.file = ctx.path();
    cand.def_loc = pair.first;
    cand.ir_func = &func;
    cand.slot = slot_id;
    cand.var = slot.var;
    cand.overwritten = true;
    cand.overwriter_locs.push_back(pair.second);
    cand.kind = CandidateKind::kDoubleOverwrite;
    candidates.push_back(std::move(cand));
  }
  return candidates;
}

}  // namespace vc

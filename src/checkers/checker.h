// The pluggable checker interface: many bug classes over one analysis
// substrate.
//
// The paper's detector is one bug class (unused definitions), but its real
// contribution is the substrate — CFG, liveness, DefineSets, points-to — that
// many narrow checkers can share. A `Checker` is one such bug class: a named,
// per-function detection pass that reads the shared analyses from a
// `CheckerContext` (computed once, memoized, metered) and returns candidates
// in the same `UnusedDefCandidate` shape the rest of the pipeline
// (authorship, pruning, ranking, fingerprinting, reports) already speaks.
//
// Contract:
//  * Check() must be deterministic and a pure function of (project, function)
//    — the driver merges per-function results in serial visit order, so any
//    hidden state would break byte-identical output across --jobs values.
//  * Check() runs under the per-function BudgetMeter; long loops should
//    charge it (the shared analyses already do) and may see
//    BudgetExceededError propagate.
//  * fingerprint_namespace() prefixes the fingerprint content key, keeping
//    checkers' findings in disjoint identity spaces. The unused-definition
//    checker returns "" so pre-framework fingerprints survive byte-identical.
//  * Unsupported() gates whole-project applicability (Table 5's "tool cannot
//    analyze this codebase" cells); the driver quarantines the checker with
//    the returned reason instead of running it.

#ifndef VALUECHECK_SRC_CHECKERS_CHECKER_H_
#define VALUECHECK_SRC_CHECKERS_CHECKER_H_

#include <string>
#include <vector>

#include "src/checkers/checker_context.h"
#include "src/core/project.h"
#include "src/core/unused_def.h"

namespace vc {

class Checker {
 public:
  virtual ~Checker() = default;

  // Stable CLI/report identity ("unused-def", "double-overwrite", ...).
  virtual std::string name() const = 0;

  // One-line description for --list-checkers and SARIF rule metadata.
  virtual std::string description() const = 0;

  // Prefix of the fingerprint content key. Defaults to the checker name;
  // the unused-definition checker overrides this to "" (migration gate:
  // byte-identical fingerprints vs the pre-framework detector).
  virtual std::string fingerprint_namespace() const { return name(); }

  // Baseline reimplementations of the §8.4 comparison tools are tagged so
  // default runs exclude them (they exist for the corpus benchmark).
  virtual bool is_baseline() const { return false; }

  // Non-empty when the checker cannot analyze this project at all (e.g. the
  // Smatch baseline on C++-heavy codebases). The driver records a
  // checker-stage quarantine with the returned reason and skips the checker.
  virtual std::string Unsupported(const Project& project, const ProjectTraits& traits) const {
    (void)project;
    (void)traits;
    return "";
  }

  // True when Check() reads only the context's own function and file — the
  // default contract. The incremental engine may then carry a function's
  // cached results across commits that did not touch its dependency slice.
  // Checkers that walk project-global state (the baseline tools iterate the
  // whole function index) return false, which forces the engine to re-run
  // every function on every commit instead of trusting the cache.
  virtual bool function_local() const { return true; }

  // Detects this checker's candidates in the context's function. Runs once
  // per (checker, function) pair under the driver's isolation boundary.
  virtual std::vector<UnusedDefCandidate> Check(CheckerContext& ctx) const = 0;

  // Optional hook: drop or mark candidates this checker produced before they
  // enter the shared pruning stage. `own` holds only this checker's
  // candidates. The default keeps everything.
  virtual void Prune(const Project& project, std::vector<UnusedDefCandidate>& own) const {
    (void)project;
    (void)own;
  }

  // Optional hook: adjust ranking inputs (e.g. familiarity) on this
  // checker's surviving findings. The default is a no-op.
  virtual void Rank(std::vector<UnusedDefCandidate>& own) const { (void)own; }
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CHECKERS_CHECKER_H_

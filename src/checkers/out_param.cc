#include "src/checkers/out_param.h"

#include <map>
#include <set>

namespace vc {

std::vector<UnusedDefCandidate> OutParamChecker::Check(CheckerContext& ctx) const {
  const IrFunction& func = ctx.func();
  const LivenessResult& liveness = ctx.liveness();
  std::vector<UnusedDefCandidate> candidates;

  // Prepass: which value is the address of which slot, and how many times
  // each slot's address is taken. A slot whose address is taken more than
  // once may be read later through a saved pointer — out of the envelope.
  std::map<ValueId, SlotId> addr_of;
  std::map<SlotId, int> addr_count;
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kAddrSlot && inst.result != kNoValue) {
        addr_of[inst.result] = inst.slot;
        ++addr_count[inst.slot];
      }
    }
  }
  if (addr_of.empty()) {
    return candidates;
  }

  auto eligible = [&](SlotId id) {
    const Slot& slot = func.slots[id];
    return slot.var != nullptr && !slot.var->is_global && !slot.is_synthetic &&
           !slot.IsFieldSlot() && addr_count[id] == 1;
  };

  // Backward replay from each block's live-out: at a direct call taking
  // &slot, the live set holds exactly the slots read on some path after the
  // call. Not live there means the callee's write is never consumed.
  for (const auto& block : func.blocks) {
    if (ctx.meter() != nullptr) {
      ctx.meter()->Charge(block->insts.size() + 1);
    }
    SlotSet live = liveness.live_out[block->id];
    for (size_t j = block->insts.size(); j-- > 0;) {
      const Instruction& inst = block->insts[j];
      if (inst.op == Opcode::kCall && inst.callee != nullptr) {
        std::set<SlotId> out_args;
        for (ValueId v : inst.operands) {
          auto it = addr_of.find(v);
          if (it != addr_of.end()) {
            out_args.insert(it->second);
          }
        }
        for (SlotId x : out_args) {
          if (!eligible(x) || live.Contains(x)) {
            continue;
          }
          const Slot& slot = func.slots[x];
          UnusedDefCandidate cand;
          cand.function = func.name;
          cand.slot_name = slot.name;
          cand.file = ctx.path();
          cand.def_loc = inst.loc;
          cand.ir_func = &func;
          cand.slot = x;
          cand.var = slot.var;
          cand.origin_callee = inst.callee;
          cand.callee_name = inst.callee->name;
          cand.kind = CandidateKind::kOutParamUnused;
          candidates.push_back(std::move(cand));
        }
      }
      ApplyLivenessTransfer(func, inst, live);
    }
  }
  return candidates;
}

}  // namespace vc

// dead-global-store: a store to a global variable that is overwritten later
// in the same basic block with no intervening read, address use, call, or
// indirect memory access.
//
// Globals are out of scope for the unused-definition detector (§3.1: other
// translation units may read them), but that argument only covers stores
// that survive to a point another function could observe. A global store
// locally killed — same block, nothing between that could observe it — is
// dead by local reasoning alone. The deliberately tight envelope (block-
// local, any call clears everything) keeps the checker sound in the presence
// of arbitrary cross-unit readers.

#ifndef VALUECHECK_SRC_CHECKERS_DEAD_GLOBAL_STORE_H_
#define VALUECHECK_SRC_CHECKERS_DEAD_GLOBAL_STORE_H_

#include "src/checkers/checker.h"

namespace vc {

class DeadGlobalStoreChecker : public Checker {
 public:
  std::string name() const override { return "dead-global-store"; }
  std::string description() const override {
    return "global store killed in its own block before any read, call, or escape";
  }
  std::vector<UnusedDefCandidate> Check(CheckerContext& ctx) const override;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CHECKERS_DEAD_GLOBAL_STORE_H_

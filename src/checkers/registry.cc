#include "src/checkers/registry.h"

#include <stdexcept>

#include "src/checkers/baseline_checkers.h"
#include "src/checkers/dead_global_store.h"
#include "src/checkers/double_overwrite.h"
#include "src/checkers/out_param.h"
#include "src/checkers/stale_copy.h"
#include "src/checkers/unused_def_checker.h"

namespace vc {

CheckerRegistry& CheckerRegistry::Global() {
  static CheckerRegistry* registry = [] {
    auto* r = new CheckerRegistry();
    // Registration order is merge order. unused-def must stay first: a
    // single-checker run of it is the byte-identical pre-framework detector.
    r->Register(std::make_unique<UnusedDefChecker>());
    r->Register(std::make_unique<DoubleOverwriteChecker>());
    r->Register(std::make_unique<DeadGlobalStoreChecker>());
    r->Register(std::make_unique<OutParamChecker>());
    r->Register(std::make_unique<StaleCopyChecker>());
    r->Register(std::make_unique<ClangUnusedChecker>());
    r->Register(std::make_unique<InferUnusedChecker>());
    r->Register(std::make_unique<SmatchUnusedChecker>());
    r->Register(std::make_unique<CoverityUnusedChecker>());
    return r;
  }();
  return *registry;
}

void CheckerRegistry::Register(std::unique_ptr<Checker> checker) {
  checkers_.push_back(std::move(checker));
}

const Checker* CheckerRegistry::Find(const std::string& name) const {
  for (const auto& checker : checkers_) {
    if (checker->name() == name) {
      return checker.get();
    }
  }
  return nullptr;
}

std::vector<const Checker*> CheckerRegistry::All() const {
  std::vector<const Checker*> all;
  for (const auto& checker : checkers_) {
    all.push_back(checker.get());
  }
  return all;
}

std::vector<const Checker*> CheckerRegistry::Defaults() const {
  std::vector<const Checker*> defaults;
  for (const auto& checker : checkers_) {
    if (!checker->is_baseline()) {
      defaults.push_back(checker.get());
    }
  }
  return defaults;
}

std::vector<const Checker*> CheckerRegistry::Resolve(const std::vector<std::string>& names) const {
  if (names.empty()) {
    return Defaults();
  }
  for (const std::string& name : names) {
    if (Find(name) == nullptr) {
      throw std::invalid_argument("unknown checker '" + name + "'");
    }
  }
  // Registration order, not request order: the merge order of a run must not
  // depend on how the user spelled --checkers.
  std::vector<const Checker*> resolved;
  for (const auto& checker : checkers_) {
    for (const std::string& name : names) {
      if (checker->name() == name) {
        resolved.push_back(checker.get());
        break;
      }
    }
  }
  return resolved;
}

}  // namespace vc

#include "src/checkers/dead_global_store.h"

#include <map>

namespace vc {

std::vector<UnusedDefCandidate> DeadGlobalStoreChecker::Check(CheckerContext& ctx) const {
  const IrFunction& func = ctx.func();
  std::vector<UnusedDefCandidate> candidates;

  auto eligible = [&](SlotId id) {
    const Slot& slot = func.slots[id];
    return slot.var != nullptr && slot.var->is_global && !slot.is_synthetic &&
           !slot.IsFieldSlot();
  };

  for (const auto& block : func.blocks) {
    if (ctx.meter() != nullptr) {
      ctx.meter()->Charge(block->insts.size() + 1);
    }
    // Pending global stores: written in this block, not yet observable.
    std::map<SlotId, const Instruction*> pending;
    for (const Instruction& inst : block->insts) {
      switch (inst.op) {
        case Opcode::kLoad:
        case Opcode::kAddrSlot:
          pending.erase(inst.slot);
          break;
        case Opcode::kCall:
        case Opcode::kLoadInd:
        case Opcode::kStoreInd:
          // A call (or indirect memory op) may read any global.
          pending.clear();
          break;
        case Opcode::kStore: {
          if (!eligible(inst.slot)) {
            pending.erase(inst.slot);
            break;
          }
          auto it = pending.find(inst.slot);
          if (it != pending.end() && !(it->second->loc == inst.loc)) {
            const Instruction* dead = it->second;
            const Slot& slot = func.slots[inst.slot];
            UnusedDefCandidate cand;
            cand.function = func.name;
            cand.slot_name = slot.name;
            cand.file = ctx.path();
            cand.def_loc = dead->loc;
            cand.ir_func = &func;
            cand.slot = inst.slot;
            cand.var = slot.var;
            cand.overwritten = true;
            cand.overwriter_locs.push_back(inst.loc);
            cand.kind = CandidateKind::kDeadGlobalStore;
            candidates.push_back(std::move(cand));
          }
          pending[inst.slot] = &inst;
          break;
        }
        default:
          break;
      }
    }
    // Stores still pending at the block's end survive to a point another
    // function could observe — not dead, not reported.
  }
  return candidates;
}

}  // namespace vc

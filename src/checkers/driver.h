// The checker driver: runs a set of checkers over every function of a
// project, in parallel across `jobs` worker lanes, with the determinism and
// fault-isolation contract of the pre-framework detector:
//
//  * Per-function results merge in module/function visit order, and within a
//    function in checker registration order — so output is byte-identical at
//    any job count, and a single-checker run equals that checker's slice of
//    a multi-checker run.
//  * With `quarantined` non-null, faults isolate at the finest scope that
//    contains them: an unsupported checker is quarantined project-wide
//    (stage "checker"), a tripped "detect.function" injection site
//    quarantines the whole function (stage "detect", no checker — matching
//    the pre-framework record), and a crash inside one checker quarantines
//    just that (checker, function) pair. A blown shared budget quarantines
//    the running checker and skips the function's remaining checkers (the
//    meter is per-function, not per-checker).

#ifndef VALUECHECK_SRC_CHECKERS_DRIVER_H_
#define VALUECHECK_SRC_CHECKERS_DRIVER_H_

#include <vector>

#include "src/checkers/checker.h"
#include "src/core/project.h"
#include "src/support/fault.h"

namespace vc {

struct CheckerRunResult {
  std::vector<UnusedDefCandidate> candidates;
  // Unsupported-checker records (stage "checker") first, then per-function
  // records in visit order.
  std::vector<QuarantinedUnit> quarantined;
  // Candidate count per runnable checker, in registration order (feeds
  // per-checker report/ledger stats and the dashboard precision trend).
  struct PerChecker {
    std::string name;
    uint64_t candidates = 0;
  };
  std::vector<PerChecker> per_checker;
  // Points-to memory attributed to this run (summed over every function
  // whose context forced the analysis); zeros when memory tracking is off.
  // Deterministic at any job count.
  uint64_t points_to_bytes = 0;
  uint64_t points_to_entries = 0;
};

// Runs `checkers` over every function. Candidates come back stamped with
// their checker's name, fingerprint namespace, and baseline tag. With
// `isolate` false, worker exceptions propagate (the pre-framework
// non-isolated path; unsupported checkers are still quarantined — that is a
// capability fact, not a fault); otherwise they quarantine as described
// above. Metrics: the legacy detect.functions / detect.candidates /
// fault.quarantined.detect counters plus per-checker
// detect.<name>.candidates.
CheckerRunResult RunCheckers(const Project& project, const std::vector<const Checker*>& checkers,
                             const ProjectTraits& traits, int jobs,
                             const ResourceBudget* budget, const FaultInjector* fault,
                             bool isolate);

// One (file, function) unit of detection work.
struct CheckerWorkItem {
  FileId file = kInvalidFileId;
  const IrFunction* func = nullptr;
};

// One function's complete detect-stage output — exactly what the incremental
// engine caches and carries over for functions outside a commit's dirty
// slice. Candidates are stamped; quarantine records use the driver's
// per-function shapes.
struct FunctionDetect {
  std::vector<UnusedDefCandidate> candidates;
  std::vector<QuarantinedUnit> quarantined;
  // Points-to footprint of the function's context (zeros when memory
  // tracking was off or no checker forced the analysis).
  uint64_t points_to_bytes = 0;
  uint64_t points_to_entries = 0;
};

// The capability gate alone: partitions `checkers` into the runnable subset,
// appending one "checker"-stage quarantine record per unsupported checker in
// registration order. RunCheckers applies this itself; the incremental
// engine calls it directly (the gate must re-evaluate on every commit — the
// project's contents factor into Unsupported()).
std::vector<const Checker*> GateCheckers(const Project& project,
                                         const std::vector<const Checker*>& checkers,
                                         const ProjectTraits& traits,
                                         std::vector<QuarantinedUnit>& quarantined);

// The merge step of RunCheckers: folds per-function results (already in work
// order) into `result` — candidates then quarantine records per function,
// per-checker counts in `runnable` order, points-to sums — and emits the
// detect.candidates / per-checker / fault.quarantined.detect metrics.
// `result.quarantined` may already hold gate (and cache) records; function
// records append after them, matching the full-run record order.
void MergeFunctionDetects(const std::vector<const Checker*>& runnable,
                          std::vector<FunctionDetect> per_function, CheckerRunResult& result);

// Work-list core of RunCheckers: runs already-capability-gated `runnable`
// over an explicit work list, returning per-item results in work order (the
// merge the full-project driver performs is then a plain concatenation).
// Emits the same detect.* metrics, scoped to the items actually run.
std::vector<FunctionDetect> RunCheckersOnFunctions(
    const Project& project, const std::vector<const Checker*>& runnable, int jobs,
    const ResourceBudget* budget, const FaultInjector* fault, bool isolate,
    const std::vector<CheckerWorkItem>& work);

}  // namespace vc

#endif  // VALUECHECK_SRC_CHECKERS_DRIVER_H_

#include "src/checkers/unused_def_checker.h"

#include "src/core/detector.h"

namespace vc {

std::vector<UnusedDefCandidate> UnusedDefChecker::Check(CheckerContext& ctx) const {
  // Liveness first, then define sets: the same meter charge order as the
  // pre-framework DetectInFunction, so budget quarantines land on the same
  // functions.
  const LivenessResult& liveness = ctx.liveness();
  const DefineSetResult& defines = ctx.defines();
  return DetectInFunctionWith(ctx.project(), ctx.file(), ctx.func(), liveness, defines,
                              ctx.meter());
}

}  // namespace vc

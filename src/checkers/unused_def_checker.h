// The paper's unused-definition detector as the first registered checker.
// A thin adapter over DetectInFunctionWith: the algorithm itself stays in
// src/core/detector.cc, the context supplies the memoized liveness and
// define-set fix points. Its fingerprint namespace is empty — the migration
// gate requires byte-identical findings and fingerprints vs the
// pre-framework detector.

#ifndef VALUECHECK_SRC_CHECKERS_UNUSED_DEF_CHECKER_H_
#define VALUECHECK_SRC_CHECKERS_UNUSED_DEF_CHECKER_H_

#include "src/checkers/checker.h"

namespace vc {

class UnusedDefChecker : public Checker {
 public:
  std::string name() const override { return "unused-def"; }
  std::string description() const override {
    return "unused definitions: stores and parameters never read (the paper's detector)";
  }
  std::string fingerprint_namespace() const override { return ""; }
  std::vector<UnusedDefCandidate> Check(CheckerContext& ctx) const override;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CHECKERS_UNUSED_DEF_CHECKER_H_

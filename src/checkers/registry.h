// Process-wide checker registry. Built-in checkers register on first access
// in a fixed order (the merge order of multi-checker runs): the
// unused-definition checker first — so single-checker runs reproduce the
// pre-framework detector byte-identically — then the new substrate checkers,
// then the §8.4 baselines (tagged, excluded from Defaults()).

#ifndef VALUECHECK_SRC_CHECKERS_REGISTRY_H_
#define VALUECHECK_SRC_CHECKERS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/checkers/checker.h"

namespace vc {

class CheckerRegistry {
 public:
  // The singleton with all built-in checkers registered.
  static CheckerRegistry& Global();

  void Register(std::unique_ptr<Checker> checker);

  // Lookup by name; null when unknown.
  const Checker* Find(const std::string& name) const;

  // Every registered checker, in registration order.
  std::vector<const Checker*> All() const;

  // The default-enabled set: every non-baseline checker, in order.
  std::vector<const Checker*> Defaults() const;

  // Resolves a CLI-style name list to checkers in registration order
  // (deduplicated). An empty list resolves to Defaults(). Throws
  // std::invalid_argument naming the first unknown checker.
  std::vector<const Checker*> Resolve(const std::vector<std::string>& names) const;

 private:
  std::vector<std::unique_ptr<Checker>> checkers_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CHECKERS_REGISTRY_H_

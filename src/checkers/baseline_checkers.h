// The §8.4 comparison tools as baseline-tagged checkers. Each reimplements,
// from scratch, the documented detection envelope of the corresponding
// real-world tool as the paper characterizes it:
//
//   baseline-clang    — compiler warnings: recursive AST walk, a variable is
//                       unused only if it is never referenced on a right-hand
//                       side anywhere (flow-insensitive).
//   baseline-infer    — fb-infer "Dead Store": flow-sensitive intraprocedural
//                       dead stores on whole local variables; no cross-scope
//                       notion, no cursor/config/peer pruning, no parameters
//                       or field definitions.
//   baseline-smatch   — AST-pattern unused return values only; C only
//                       (reports a parse error on the C++-heavy projects, as
//                       observed in the paper).
//   baseline-coverity — unused value + unchecked return value, where "should
//                       the return value be used" is inferred from the
//                       fraction of call sites that use it (>= 2 sites).
//
// is_baseline() excludes them from default runs; they exist so the corpus
// benchmark (Table 5) and the per-checker eval run through the same driver,
// fingerprinting, and report path as everything else. Tool-capability gaps
// (Smatch on C++, infer on kernel extensions) surface through Unsupported()
// as checker-stage quarantine records — the moral equivalent of the paper's
// "tool reports errors during analysis" cells.

#ifndef VALUECHECK_SRC_CHECKERS_BASELINE_CHECKERS_H_
#define VALUECHECK_SRC_CHECKERS_BASELINE_CHECKERS_H_

#include "src/checkers/checker.h"

namespace vc {

class ClangUnusedChecker : public Checker {
 public:
  std::string name() const override { return "baseline-clang"; }
  std::string description() const override {
    return "baseline: compiler-style flow-insensitive unused-variable warnings";
  }
  bool is_baseline() const override { return true; }
  std::vector<UnusedDefCandidate> Check(CheckerContext& ctx) const override;
};

class InferUnusedChecker : public Checker {
 public:
  std::string name() const override { return "baseline-infer"; }
  std::string description() const override {
    return "baseline: fb-infer-style intraprocedural dead stores on whole locals";
  }
  bool is_baseline() const override { return true; }
  std::string Unsupported(const Project& project, const ProjectTraits& traits) const override;
  std::vector<UnusedDefCandidate> Check(CheckerContext& ctx) const override;
};

class SmatchUnusedChecker : public Checker {
 public:
  std::string name() const override { return "baseline-smatch"; }
  std::string description() const override {
    return "baseline: Smatch-style AST patterns for unused return values (C only)";
  }
  bool is_baseline() const override { return true; }
  std::string Unsupported(const Project& project, const ProjectTraits& traits) const override;
  // Consults the project-wide function index to tell internal calls from
  // externs, so a change anywhere can flip its verdicts: not cacheable
  // per-function across commits.
  bool function_local() const override { return false; }
  std::vector<UnusedDefCandidate> Check(CheckerContext& ctx) const override;
};

class CoverityUnusedChecker : public Checker {
 public:
  std::string name() const override { return "baseline-coverity"; }
  std::string description() const override {
    return "baseline: Coverity-style UNUSED_VALUE + usage-ratio CHECKED_RETURN";
  }
  bool is_baseline() const override { return true; }
  // The usage-ratio CHECKED_RETURN heuristic aggregates call sites across
  // the whole function index: not cacheable per-function across commits.
  bool function_local() const override { return false; }
  std::vector<UnusedDefCandidate> Check(CheckerContext& ctx) const override;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CHECKERS_BASELINE_CHECKERS_H_

#include "src/ir/ir.h"

namespace vc {

SlotId SlotTable::ForVar(const VarDecl* var) { return ForField(var, -1); }

SlotId SlotTable::ForField(const VarDecl* var, int field_index) {
  auto key = std::make_pair(var, field_index);
  auto it = index_.find(key);
  if (it != index_.end()) {
    return it->second;
  }
  Slot slot;
  slot.var = var;
  slot.field_index = field_index;
  slot.name = var->name;
  if (field_index >= 0) {
    slot.name += "#" + std::to_string(field_index);
  } else {
    slot.is_param = var->is_param;
  }
  SlotId id = static_cast<SlotId>(slots_.size());
  slots_.push_back(std::move(slot));
  index_[key] = id;
  return id;
}

SlotId SlotTable::NewSyntheticTemp() {
  Slot slot;
  slot.name = "_tmp" + std::to_string(next_temp_++);
  slot.is_synthetic = true;
  SlotId id = static_cast<SlotId>(slots_.size());
  slots_.push_back(std::move(slot));
  return id;
}

void IrFunction::ComputeEdges() {
  for (auto& block : blocks) {
    block->succs.clear();
    block->preds.clear();
  }
  for (auto& block : blocks) {
    const Instruction* term = block->Terminator();
    if (term == nullptr) {
      continue;
    }
    if (term->op == Opcode::kBr) {
      block->succs.push_back(term->succ0);
    } else if (term->op == Opcode::kCondBr) {
      block->succs.push_back(term->succ0);
      block->succs.push_back(term->succ1);
    }
  }
  for (auto& block : blocks) {
    for (BlockId succ : block->succs) {
      blocks[succ]->preds.push_back(block->id);
    }
  }
}

namespace {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kConst:
      return "const";
    case Opcode::kLoad:
      return "load";
    case Opcode::kStore:
      return "store";
    case Opcode::kLoadInd:
      return "loadind";
    case Opcode::kStoreInd:
      return "storeind";
    case Opcode::kAddrSlot:
      return "addrslot";
    case Opcode::kAddrFunc:
      return "addrfunc";
    case Opcode::kFieldPtr:
      return "fieldptr";
    case Opcode::kBinOp:
      return "binop";
    case Opcode::kUnOp:
      return "unop";
    case Opcode::kCall:
      return "call";
    case Opcode::kRet:
      return "ret";
    case Opcode::kBr:
      return "br";
    case Opcode::kCondBr:
      return "condbr";
  }
  return "?";
}

}  // namespace

std::string IrFunction::Dump() const {
  std::string out = "function " + name + ":\n";
  for (const auto& block : blocks) {
    out += "bb" + std::to_string(block->id) + ":";
    if (!block->succs.empty()) {
      out += "  ; succs:";
      for (BlockId succ : block->succs) {
        out += " bb" + std::to_string(succ);
      }
    }
    out += "\n";
    for (const Instruction& inst : block->insts) {
      out += "  ";
      if (inst.result != kNoValue) {
        out += "%" + std::to_string(inst.result) + " = ";
      }
      out += OpcodeName(inst.op);
      if (inst.slot != kInvalidSlot) {
        out += " @" + slots[inst.slot].name;
      }
      if (inst.op == Opcode::kConst) {
        out += " " + std::to_string(inst.const_value);
      }
      if (inst.callee != nullptr) {
        out += " " + inst.callee->name;
      }
      for (ValueId operand : inst.operands) {
        out += " %" + std::to_string(operand);
      }
      if (inst.op == Opcode::kBr) {
        out += " bb" + std::to_string(inst.succ0);
      }
      if (inst.op == Opcode::kCondBr) {
        out += " bb" + std::to_string(inst.succ0) + " bb" + std::to_string(inst.succ1);
      }
      if (inst.is_synthetic_store) {
        out += "  ; ignored-result";
      }
      if (inst.is_increment) {
        out += "  ; increment " + std::to_string(inst.increment_amount);
      }
      out += "\n";
    }
  }
  return out;
}

IrFunction* IrModule::FindFunction(const std::string& name) const {
  for (const auto& func : functions) {
    if (func->name == name) {
      return func.get();
    }
  }
  return nullptr;
}

IrFootprint FunctionFootprint(const IrFunction& func) {
  IrFootprint fp;
  fp.bytes = sizeof(IrFunction);
  fp.bytes += static_cast<uint64_t>(func.slots.size()) * sizeof(Slot);
  fp.bytes += func.param_slots.size() * sizeof(SlotId);
  fp.bytes += func.return_locs.size() * sizeof(SourceLoc);
  fp.bytes += func.call_sites.size() * sizeof(CallSite);
  for (const auto& block : func.blocks) {
    fp.bytes += sizeof(BasicBlock);
    fp.bytes += (block->succs.size() + block->preds.size()) * sizeof(BlockId);
    fp.bytes += block->insts.size() * sizeof(Instruction);
    fp.instructions += block->insts.size();
    for (const Instruction& inst : block->insts) {
      fp.bytes += inst.operands.size() * sizeof(ValueId);
    }
  }
  return fp;
}

IrFootprint ModuleFootprint(const IrModule& module) {
  IrFootprint fp;
  for (const auto& func : module.functions) {
    fp += FunctionFootprint(*func);
  }
  return fp;
}

}  // namespace vc

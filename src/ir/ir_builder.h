// AST → IR lowering. Produces one IrFunction per defined function in a
// translation unit. See ir.h for the lowering contract (slots, synthetic
// temps for ignored call results, store annotations).

#ifndef VALUECHECK_SRC_IR_IR_BUILDER_H_
#define VALUECHECK_SRC_IR_IR_BUILDER_H_

#include <memory>

#include "src/ast/ast.h"
#include "src/ir/ir.h"

namespace vc {

// Lowers all defined functions of `unit`. The unit (and its AST arena) must
// outlive the returned module: IR instructions point into the AST.
std::unique_ptr<IrModule> LowerUnit(const TranslationUnit& unit);

// Lowers a single function (used by tests and incremental analysis).
std::unique_ptr<IrFunction> LowerFunction(const FunctionDecl* func);

}  // namespace vc

#endif  // VALUECHECK_SRC_IR_IR_BUILDER_H_

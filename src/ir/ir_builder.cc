#include "src/ir/ir_builder.h"

#include <utility>

namespace vc {

namespace {

// The value-or-slot result of lowering an lvalue expression. Direct slots
// keep field sensitivity; everything else degrades to an address value that
// is accessed indirectly (and therefore handled conservatively by liveness).
struct LValue {
  bool is_slot = false;
  SlotId slot = kInvalidSlot;
  ValueId addr = kNoValue;
};

const Expr* StripCasts(const Expr* expr) {
  while (expr != nullptr && expr->kind == ExprKind::kCast) {
    expr = static_cast<const CastExpr*>(expr)->operand;
  }
  return expr;
}

// True when `expr` is a literal constant; fills `value` if so.
bool IsConstExpr(const Expr* expr, long long* value) {
  if (expr == nullptr) {
    return false;
  }
  switch (expr->kind) {
    case ExprKind::kIntLit:
      *value = static_cast<const IntLitExpr*>(expr)->value;
      return true;
    case ExprKind::kCharLit:
      *value = static_cast<const CharLitExpr*>(expr)->value;
      return true;
    case ExprKind::kBoolLit:
      *value = static_cast<const BoolLitExpr*>(expr)->value ? 1 : 0;
      return true;
    case ExprKind::kNullLit:
      *value = 0;
      return true;
    default:
      return false;
  }
}

class FunctionLowering {
 public:
  explicit FunctionLowering(const FunctionDecl* decl) : decl_(decl) {
    func_ = std::make_unique<IrFunction>();
    func_->name = decl->name;
    func_->decl = decl;
  }

  // Registers the whole-variable slot and, for struct-typed variables, one
  // slot per field. Pre-creating field slots means the points-to analysis can
  // resolve `p->f` field-sensitively even when the field is never accessed
  // directly through the variable.
  SlotId EnsureSlots(const VarDecl* var) {
    SlotId slot = func_->slots.ForVar(var);
    if (var->type != nullptr && var->type->IsStruct() && var->type->struct_decl() != nullptr) {
      for (const FieldDecl* field : var->type->struct_decl()->fields) {
        func_->slots.ForField(var, field->index);
      }
    }
    return slot;
  }

  std::unique_ptr<IrFunction> Run() {
    cur_ = func_->NewBlock();
    for (const VarDecl* param : decl_->params) {
      func_->param_slots.push_back(EnsureSlots(param));
    }
    EmitStmt(decl_->body);
    if (!Terminated()) {
      Instruction ret;
      ret.op = Opcode::kRet;
      ret.loc = decl_->range.end.IsValid() ? decl_->range.end : decl_->loc;
      Append(std::move(ret));
    }
    func_->ComputeEdges();
    return std::move(func_);
  }

 private:
  // --- Instruction emission ----------------------------------------------

  bool Terminated() const {
    const Instruction* term = cur_->Terminator();
    if (term == nullptr) {
      return false;
    }
    return term->op == Opcode::kRet || term->op == Opcode::kBr ||
           term->op == Opcode::kCondBr;
  }

  ValueId Append(Instruction inst, bool produces_value = false) {
    if (Terminated()) {
      // Dead code after return/break/continue still lowers (its loads/stores
      // participate in liveness of unreachable blocks) into a fresh block.
      cur_ = func_->NewBlock();
    }
    if (produces_value) {
      inst.result = func_->next_value++;
    }
    cur_->insts.push_back(std::move(inst));
    return cur_->insts.back().result;
  }

  ValueId EmitConst(long long value, SourceLoc loc) {
    Instruction inst;
    inst.op = Opcode::kConst;
    inst.const_value = value;
    inst.loc = loc;
    return Append(std::move(inst), /*produces_value=*/true);
  }

  ValueId EmitLoadLValue(const LValue& lv, SourceLoc loc) {
    Instruction inst;
    inst.loc = loc;
    if (lv.is_slot) {
      inst.op = Opcode::kLoad;
      inst.slot = lv.slot;
    } else {
      inst.op = Opcode::kLoadInd;
      inst.operands.push_back(lv.addr);
    }
    return Append(std::move(inst), /*produces_value=*/true);
  }

  void EmitStoreLValue(const LValue& lv, ValueId value, Instruction annotations) {
    Instruction inst = std::move(annotations);  // carries loc + store flags
    inst.operands.clear();
    if (lv.is_slot) {
      inst.op = Opcode::kStore;
      inst.slot = lv.slot;
      inst.operands.push_back(value);
    } else {
      inst.op = Opcode::kStoreInd;
      inst.slot = kInvalidSlot;
      inst.operands.push_back(lv.addr);
      inst.operands.push_back(value);
    }
    Append(std::move(inst));
  }

  void EmitBr(BasicBlock* target, SourceLoc loc) {
    if (Terminated()) {
      return;
    }
    Instruction inst;
    inst.op = Opcode::kBr;
    inst.succ0 = target->id;
    inst.loc = loc;
    Append(std::move(inst));
  }

  void EmitCondBr(ValueId cond, BasicBlock* then_bb, BasicBlock* else_bb, SourceLoc loc) {
    Instruction inst;
    inst.op = Opcode::kCondBr;
    inst.operands.push_back(cond);
    inst.succ0 = then_bb->id;
    inst.succ1 = else_bb->id;
    inst.loc = loc;
    Append(std::move(inst));
  }

  // --- LValues -------------------------------------------------------------

  LValue EmitLValue(const Expr* expr) {
    expr = StripCasts(expr);
    LValue lv;
    if (expr == nullptr) {
      lv.is_slot = true;
      lv.slot = func_->slots.NewSyntheticTemp();
      return lv;
    }
    switch (expr->kind) {
      case ExprKind::kIdent: {
        const auto* ident = static_cast<const IdentExpr*>(expr);
        if (ident->var != nullptr) {
          lv.is_slot = true;
          lv.slot = func_->slots.ForVar(ident->var);
          return lv;
        }
        break;
      }
      case ExprKind::kMember: {
        const auto* member = static_cast<const MemberExpr*>(expr);
        const Expr* base = StripCasts(member->base);
        if (!member->is_arrow && base != nullptr && base->kind == ExprKind::kIdent) {
          const auto* base_ident = static_cast<const IdentExpr*>(base);
          if (base_ident->var != nullptr) {
            lv.is_slot = true;
            lv.slot = (member->field != nullptr)
                          ? func_->slots.ForField(base_ident->var, member->field->index)
                          : func_->slots.ForVar(base_ident->var);
            return lv;
          }
        }
        // p->f or nested member: compute an address and access indirectly.
        ValueId base_addr;
        if (member->is_arrow) {
          base_addr = EmitExpr(member->base);
        } else {
          LValue base_lv = EmitLValue(member->base);
          base_addr = LValueAddress(base_lv, member->loc);
        }
        Instruction inst;
        inst.op = Opcode::kFieldPtr;
        inst.operands.push_back(base_addr);
        inst.field_index = member->field != nullptr ? member->field->index : -1;
        inst.loc = member->loc;
        lv.addr = Append(std::move(inst), /*produces_value=*/true);
        return lv;
      }
      case ExprKind::kUnary: {
        const auto* unary = static_cast<const UnaryExpr*>(expr);
        if (unary->op == TokenKind::kStar && !unary->is_postfix) {
          lv.addr = EmitExpr(unary->operand);
          return lv;
        }
        break;
      }
      case ExprKind::kIndex: {
        const auto* index = static_cast<const IndexExpr*>(expr);
        ValueId base = EmitExpr(index->base);
        ValueId idx = EmitExpr(index->index);
        Instruction inst;
        inst.op = Opcode::kBinOp;
        inst.operands = {base, idx};
        inst.loc = index->loc;
        lv.addr = Append(std::move(inst), /*produces_value=*/true);
        return lv;
      }
      default:
        break;
    }
    // Non-lvalue fallback: write goes to a synthetic temp so lowering stays
    // total on malformed input.
    lv.is_slot = true;
    lv.slot = func_->slots.NewSyntheticTemp();
    return lv;
  }

  // Materializes the address of an lvalue (used for &x and nested members).
  ValueId LValueAddress(const LValue& lv, SourceLoc loc) {
    if (!lv.is_slot) {
      return lv.addr;
    }
    Instruction inst;
    inst.op = Opcode::kAddrSlot;
    inst.slot = lv.slot;
    inst.loc = loc;
    return Append(std::move(inst), /*produces_value=*/true);
  }

  // --- Expressions ----------------------------------------------------------

  ValueId EmitExpr(const Expr* expr) {
    if (expr == nullptr) {
      return EmitConst(0, SourceLoc{});
    }
    switch (expr->kind) {
      case ExprKind::kIntLit:
        return EmitConst(static_cast<const IntLitExpr*>(expr)->value, expr->loc);
      case ExprKind::kCharLit:
        return EmitConst(static_cast<const CharLitExpr*>(expr)->value, expr->loc);
      case ExprKind::kBoolLit:
        return EmitConst(static_cast<const BoolLitExpr*>(expr)->value ? 1 : 0, expr->loc);
      case ExprKind::kNullLit:
        return EmitConst(0, expr->loc);
      case ExprKind::kStrLit:
        return EmitConst(0, expr->loc);
      case ExprKind::kSizeof:
        return EmitConst(4, expr->loc);
      case ExprKind::kIdent: {
        const auto* ident = static_cast<const IdentExpr*>(expr);
        if (ident->func != nullptr) {
          Instruction inst;
          inst.op = Opcode::kAddrFunc;
          inst.callee = ident->func;
          inst.loc = ident->loc;
          return Append(std::move(inst), /*produces_value=*/true);
        }
        LValue lv = EmitLValue(expr);
        return EmitLoadLValue(lv, expr->loc);
      }
      case ExprKind::kMember:
      case ExprKind::kIndex: {
        LValue lv = EmitLValue(expr);
        return EmitLoadLValue(lv, expr->loc);
      }
      case ExprKind::kCast: {
        const auto* cast = static_cast<const CastExpr*>(expr);
        return EmitExpr(cast->operand);
      }
      case ExprKind::kBinary: {
        // && and || lower as strict binary operations (both sides evaluated);
        // uses are still recorded correctly, which is all liveness needs.
        const auto* bin = static_cast<const BinaryExpr*>(expr);
        ValueId lhs = EmitExpr(bin->lhs);
        ValueId rhs = EmitExpr(bin->rhs);
        Instruction inst;
        inst.op = Opcode::kBinOp;
        inst.operands = {lhs, rhs};
        inst.loc = bin->loc;
        return Append(std::move(inst), /*produces_value=*/true);
      }
      case ExprKind::kCond: {
        const auto* cond = static_cast<const CondExpr*>(expr);
        ValueId c = EmitExpr(cond->cond);
        ValueId t = EmitExpr(cond->then_expr);
        ValueId e = EmitExpr(cond->else_expr);
        Instruction inst;
        inst.op = Opcode::kBinOp;
        inst.operands = {c, t, e};
        inst.loc = cond->loc;
        return Append(std::move(inst), /*produces_value=*/true);
      }
      case ExprKind::kUnary:
        return EmitUnary(static_cast<const UnaryExpr*>(expr));
      case ExprKind::kAssign:
        return EmitAssign(static_cast<const AssignExpr*>(expr));
      case ExprKind::kCall:
        return EmitCall(static_cast<const CallExpr*>(expr), /*result_assigned=*/true);
    }
    return EmitConst(0, expr->loc);
  }

  ValueId EmitUnary(const UnaryExpr* unary) {
    switch (unary->op) {
      case TokenKind::kAmp: {
        const Expr* operand = StripCasts(unary->operand);
        if (operand != nullptr && operand->kind == ExprKind::kIdent) {
          const auto* ident = static_cast<const IdentExpr*>(operand);
          if (ident->func != nullptr) {
            Instruction inst;
            inst.op = Opcode::kAddrFunc;
            inst.callee = ident->func;
            inst.loc = unary->loc;
            return Append(std::move(inst), /*produces_value=*/true);
          }
        }
        LValue lv = EmitLValue(unary->operand);
        return LValueAddress(lv, unary->loc);
      }
      case TokenKind::kStar: {
        LValue lv = EmitLValue(unary);
        return EmitLoadLValue(lv, unary->loc);
      }
      case TokenKind::kPlusPlus:
      case TokenKind::kMinusMinus: {
        LValue lv = EmitLValue(unary->operand);
        ValueId old_value = EmitLoadLValue(lv, unary->loc);
        ValueId one = EmitConst(1, unary->loc);
        Instruction add;
        add.op = Opcode::kBinOp;
        add.operands = {old_value, one};
        add.loc = unary->loc;
        ValueId new_value = Append(std::move(add), /*produces_value=*/true);
        Instruction store;
        store.loc = unary->loc;
        store.is_increment = true;
        store.increment_amount = unary->op == TokenKind::kPlusPlus ? 1 : -1;
        EmitStoreLValue(lv, new_value, std::move(store));
        return unary->is_postfix ? old_value : new_value;
      }
      default: {
        ValueId operand = EmitExpr(unary->operand);
        Instruction inst;
        inst.op = Opcode::kUnOp;
        inst.operands.push_back(operand);
        inst.loc = unary->loc;
        return Append(std::move(inst), /*produces_value=*/true);
      }
    }
  }

  // Detects `lhs = lhs ± const` (possibly via compound assignment), the shape
  // the cursor pruning pattern looks for.
  static bool IsIncrementShape(const AssignExpr* assign, long long* amount) {
    const Expr* lhs = StripCasts(assign->lhs);
    if (lhs == nullptr || lhs->kind != ExprKind::kIdent) {
      return false;
    }
    const VarDecl* lhs_var = static_cast<const IdentExpr*>(lhs)->var;
    if (lhs_var == nullptr) {
      return false;
    }
    long long value = 0;
    if (assign->op == TokenKind::kPlusAssign && IsConstExpr(StripCasts(assign->rhs), &value)) {
      *amount = value;
      return true;
    }
    if (assign->op == TokenKind::kMinusAssign && IsConstExpr(StripCasts(assign->rhs), &value)) {
      *amount = -value;
      return true;
    }
    if (assign->op != TokenKind::kAssign) {
      return false;
    }
    const Expr* rhs = StripCasts(assign->rhs);
    if (rhs == nullptr || rhs->kind != ExprKind::kBinary) {
      return false;
    }
    const auto* bin = static_cast<const BinaryExpr*>(rhs);
    if (bin->op != TokenKind::kPlus && bin->op != TokenKind::kMinus) {
      return false;
    }
    const Expr* bin_lhs = StripCasts(bin->lhs);
    if (bin_lhs == nullptr || bin_lhs->kind != ExprKind::kIdent ||
        static_cast<const IdentExpr*>(bin_lhs)->var != lhs_var) {
      return false;
    }
    if (!IsConstExpr(StripCasts(bin->rhs), &value)) {
      return false;
    }
    *amount = bin->op == TokenKind::kPlus ? value : -value;
    return true;
  }

  ValueId EmitAssign(const AssignExpr* assign) {
    // Evaluate RHS first (C evaluation order is unspecified; RHS-first keeps
    // `x = x + 1` reading the old value).
    ValueId rhs;
    Instruction store;
    store.loc = assign->loc;

    const Expr* bare_rhs = StripCasts(assign->rhs);
    if (assign->op == TokenKind::kAssign) {
      rhs = EmitExpr(assign->rhs);
      if (bare_rhs != nullptr && bare_rhs->kind == ExprKind::kCall) {
        store.origin_callee = static_cast<const CallExpr*>(bare_rhs)->resolved;
      }
      long long const_value = 0;
      if (IsConstExpr(bare_rhs, &const_value)) {
        store.is_const_store = true;
        store.const_value = const_value;
      }
    } else {
      LValue lhs_lv = EmitLValue(assign->lhs);
      ValueId old_value = EmitLoadLValue(lhs_lv, assign->loc);
      ValueId rhs_value = EmitExpr(assign->rhs);
      Instruction bin;
      bin.op = Opcode::kBinOp;
      bin.operands = {old_value, rhs_value};
      bin.loc = assign->loc;
      rhs = Append(std::move(bin), /*produces_value=*/true);
    }

    long long amount = 0;
    if (IsIncrementShape(assign, &amount)) {
      store.is_increment = true;
      store.increment_amount = amount;
    }

    LValue lv = EmitLValue(assign->lhs);
    EmitStoreLValue(lv, rhs, std::move(store));
    return rhs;
  }

  ValueId EmitCall(const CallExpr* call, bool result_assigned) {
    Instruction inst;
    inst.op = Opcode::kCall;
    inst.loc = call->loc;
    inst.callee = call->resolved;
    if (call->resolved == nullptr) {
      // Indirect call: operand 0 is the callee value.
      inst.operands.push_back(EmitExpr(call->callee));
    }
    for (const Expr* arg : call->args) {
      inst.operands.push_back(EmitExpr(arg));
    }
    ValueId result = Append(std::move(inst), /*produces_value=*/true);

    CallSite site;
    site.callee = call->resolved;
    site.caller = func_.get();
    site.loc = call->loc;
    site.result_assigned = result_assigned;
    func_->call_sites.push_back(site);
    return result;
  }

  // --- Statements -----------------------------------------------------------

  void EmitStmt(const Stmt* stmt) {
    if (stmt == nullptr) {
      return;
    }
    switch (stmt->kind) {
      case StmtKind::kCompound:
        for (const Stmt* child : static_cast<const CompoundStmt*>(stmt)->body) {
          EmitStmt(child);
        }
        return;
      case StmtKind::kDecl: {
        const auto* decl = static_cast<const DeclStmt*>(stmt);
        EnsureSlots(decl->var);
        if (decl->init == nullptr) {
          return;
        }
        const Expr* bare_init = StripCasts(decl->init);
        ValueId value = EmitExpr(decl->init);
        Instruction store;
        store.loc = decl->loc;
        store.is_decl_init = true;
        if (bare_init != nullptr && bare_init->kind == ExprKind::kCall) {
          store.origin_callee = static_cast<const CallExpr*>(bare_init)->resolved;
        }
        long long const_value = 0;
        if (IsConstExpr(bare_init, &const_value)) {
          store.is_const_store = true;
          store.const_value = const_value;
        }
        LValue lv;
        lv.is_slot = true;
        lv.slot = func_->slots.ForVar(decl->var);
        EmitStoreLValue(lv, value, std::move(store));
        return;
      }
      case StmtKind::kExpr: {
        const Expr* expr = static_cast<const ExprStmt*>(stmt)->expr;
        if (expr != nullptr && expr->kind == ExprKind::kCall) {
          // Ignored call result: the paper's implicit definition
          // "[tmp] = printf()". Void callees produce no value to ignore.
          const auto* call = static_cast<const CallExpr*>(expr);
          bool returns_void = call->resolved != nullptr &&
                              call->resolved->return_type != nullptr &&
                              call->resolved->return_type->IsVoid();
          ValueId value = EmitCall(call, /*result_assigned=*/returns_void);
          if (!returns_void) {
            func_->call_sites.back().result_assigned = false;
            Instruction store;
            store.loc = call->loc;
            store.is_synthetic_store = true;
            store.origin_callee = call->resolved;
            LValue lv;
            lv.is_slot = true;
            lv.slot = func_->slots.NewSyntheticTemp();
            EmitStoreLValue(lv, value, std::move(store));
          }
          return;
        }
        EmitExpr(expr);
        return;
      }
      case StmtKind::kIf: {
        const auto* if_stmt = static_cast<const IfStmt*>(stmt);
        ValueId cond = EmitExpr(if_stmt->cond);
        BasicBlock* then_bb = func_->NewBlock();
        BasicBlock* merge_bb = func_->NewBlock();
        BasicBlock* else_bb = if_stmt->else_stmt != nullptr ? func_->NewBlock() : merge_bb;
        EmitCondBr(cond, then_bb, else_bb, if_stmt->loc);
        cur_ = then_bb;
        EmitStmt(if_stmt->then_stmt);
        EmitBr(merge_bb, if_stmt->loc);
        if (if_stmt->else_stmt != nullptr) {
          cur_ = else_bb;
          EmitStmt(if_stmt->else_stmt);
          EmitBr(merge_bb, if_stmt->loc);
        }
        cur_ = merge_bb;
        return;
      }
      case StmtKind::kWhile: {
        const auto* while_stmt = static_cast<const WhileStmt*>(stmt);
        BasicBlock* header = func_->NewBlock();
        EmitBr(header, while_stmt->loc);
        cur_ = header;
        ValueId cond = EmitExpr(while_stmt->cond);
        BasicBlock* body = func_->NewBlock();
        BasicBlock* exit = func_->NewBlock();
        EmitCondBr(cond, body, exit, while_stmt->loc);
        loops_.push_back({exit->id, header->id});
        cur_ = body;
        EmitStmt(while_stmt->body);
        EmitBr(header, while_stmt->loc);
        loops_.pop_back();
        cur_ = exit;
        return;
      }
      case StmtKind::kDoWhile: {
        const auto* do_stmt = static_cast<const DoWhileStmt*>(stmt);
        BasicBlock* body = func_->NewBlock();
        BasicBlock* cond_bb = func_->NewBlock();
        BasicBlock* exit = func_->NewBlock();
        EmitBr(body, do_stmt->loc);
        loops_.push_back({exit->id, cond_bb->id});
        cur_ = body;
        EmitStmt(do_stmt->body);
        EmitBr(cond_bb, do_stmt->loc);
        loops_.pop_back();
        cur_ = cond_bb;
        ValueId cond = EmitExpr(do_stmt->cond);
        EmitCondBr(cond, body, exit, do_stmt->loc);
        cur_ = exit;
        return;
      }
      case StmtKind::kSwitch: {
        const auto* switch_stmt = static_cast<const SwitchStmt*>(stmt);
        ValueId value = EmitExpr(switch_stmt->cond);
        BasicBlock* exit = func_->NewBlock();

        // One body block per arm, allocated up front so fallthrough edges can
        // point forward.
        std::vector<BasicBlock*> bodies;
        bodies.reserve(switch_stmt->cases.size());
        const SwitchCase* default_case = nullptr;
        size_t default_index = 0;
        for (size_t i = 0; i < switch_stmt->cases.size(); ++i) {
          bodies.push_back(func_->NewBlock());
          if (switch_stmt->cases[i].is_default) {
            default_case = &switch_stmt->cases[i];
            default_index = i;
          }
        }

        // Dispatch chain: compare against each case constant in order; the
        // final fallback is the default arm (wherever it appears) or exit.
        for (size_t i = 0; i < switch_stmt->cases.size(); ++i) {
          const SwitchCase& arm = switch_stmt->cases[i];
          if (arm.is_default) {
            continue;
          }
          ValueId constant = EmitConst(arm.value, arm.loc);
          Instruction cmp;
          cmp.op = Opcode::kBinOp;
          cmp.operands = {value, constant};
          cmp.loc = arm.loc;
          ValueId matched = Append(std::move(cmp), /*produces_value=*/true);
          BasicBlock* next_test = func_->NewBlock();
          EmitCondBr(matched, bodies[i], next_test, arm.loc);
          cur_ = next_test;
        }
        EmitBr(default_case != nullptr ? bodies[default_index] : exit, switch_stmt->loc);

        // Arm bodies with C fallthrough: an arm that does not break flows
        // into the next arm's body. `continue` still targets the enclosing
        // loop (kInvalidTarget when there is none).
        BlockId enclosing_continue = loops_.empty() ? -1 : loops_.back().continue_target;
        loops_.push_back({exit->id, enclosing_continue});
        for (size_t i = 0; i < switch_stmt->cases.size(); ++i) {
          cur_ = bodies[i];
          for (const Stmt* child : switch_stmt->cases[i].body) {
            EmitStmt(child);
          }
          EmitBr(i + 1 < bodies.size() ? bodies[i + 1] : exit, switch_stmt->loc);
        }
        loops_.pop_back();
        cur_ = exit;
        return;
      }
      case StmtKind::kFor: {
        const auto* for_stmt = static_cast<const ForStmt*>(stmt);
        EmitStmt(for_stmt->init);
        BasicBlock* header = func_->NewBlock();
        EmitBr(header, for_stmt->loc);
        cur_ = header;
        BasicBlock* body = func_->NewBlock();
        BasicBlock* step_bb = func_->NewBlock();
        BasicBlock* exit = func_->NewBlock();
        if (for_stmt->cond != nullptr) {
          ValueId cond = EmitExpr(for_stmt->cond);
          EmitCondBr(cond, body, exit, for_stmt->loc);
        } else {
          EmitBr(body, for_stmt->loc);
        }
        loops_.push_back({exit->id, step_bb->id});
        cur_ = body;
        EmitStmt(for_stmt->body);
        EmitBr(step_bb, for_stmt->loc);
        cur_ = step_bb;
        if (for_stmt->step != nullptr) {
          EmitExpr(for_stmt->step);
        }
        EmitBr(header, for_stmt->loc);
        loops_.pop_back();
        cur_ = exit;
        return;
      }
      case StmtKind::kReturn: {
        const auto* ret = static_cast<const ReturnStmt*>(stmt);
        Instruction inst;
        inst.op = Opcode::kRet;
        inst.loc = ret->loc;
        if (ret->value != nullptr) {
          inst.operands.push_back(EmitExpr(ret->value));
        }
        func_->return_locs.push_back(ret->loc);
        Append(std::move(inst));
        return;
      }
      case StmtKind::kBreak:
        if (!loops_.empty()) {
          Instruction inst;
          inst.op = Opcode::kBr;
          inst.succ0 = loops_.back().break_target;
          inst.loc = stmt->loc;
          Append(std::move(inst));
        }
        return;
      case StmtKind::kContinue:
        if (!loops_.empty() && loops_.back().continue_target >= 0) {
          Instruction inst;
          inst.op = Opcode::kBr;
          inst.succ0 = loops_.back().continue_target;
          inst.loc = stmt->loc;
          Append(std::move(inst));
        }
        return;
      case StmtKind::kEmpty:
        return;
    }
  }

  struct LoopContext {
    BlockId break_target;
    BlockId continue_target;
  };

  const FunctionDecl* decl_;
  std::unique_ptr<IrFunction> func_;
  BasicBlock* cur_ = nullptr;
  std::vector<LoopContext> loops_;
};

}  // namespace

std::unique_ptr<IrFunction> LowerFunction(const FunctionDecl* func) {
  FunctionLowering lowering(func);
  return lowering.Run();
}

std::unique_ptr<IrModule> LowerUnit(const TranslationUnit& unit) {
  auto module = std::make_unique<IrModule>();
  module->file = unit.file;
  for (const FunctionDecl* func : unit.functions) {
    if (func->IsDefined()) {
      module->functions.push_back(LowerFunction(func));
    }
  }
  return module;
}

}  // namespace vc

// Load/store intermediate representation with explicit control flow.
//
// ValueCheck's detection algorithm (paper Fig. 4) is phrased over load and
// store instructions on a control-flow graph: a store to a slot that is not
// live afterwards is an unused definition. This IR makes that direct:
//
//  * Every local variable, parameter, and field of a struct-typed local gets
//    a MemorySlot ("v" or "v#i", the paper's field-sensitive naming).
//  * Reads lower to kLoad, writes to kStore; pointer dereferences lower to
//    kLoadInd/kStoreInd through computed addresses.
//  * Ignored call results lower to a store into a synthetic temp slot — the
//    paper's "implicit definition [tmp] = printf()" — so unused return values
//    fall out of the same liveness pass.
//  * Stores carry annotations (call origin, constant, increment-of-self,
//    declaration initializer) consumed by the pruning passes.

#ifndef VALUECHECK_SRC_IR_IR_H_
#define VALUECHECK_SRC_IR_IR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ast/ast.h"
#include "src/support/source_location.h"

namespace vc {

// Index of a slot within its function's SlotTable.
using SlotId = int32_t;
inline constexpr SlotId kInvalidSlot = -1;

// Index of a basic block within its function.
using BlockId = int32_t;

// SSA-ish value number produced by an instruction; -1 = no result.
using ValueId = int32_t;
inline constexpr ValueId kNoValue = -1;

struct Slot {
  std::string name;              // "v" or "v#<field-index>" or "_tmp<N>"
  const VarDecl* var = nullptr;  // null for synthetic temps
  int field_index = -1;          // >= 0 when this is a field slot
  bool is_param = false;         // whole-variable slot of a parameter
  bool is_synthetic = false;     // temp for an ignored call result

  bool IsFieldSlot() const { return field_index >= 0; }
};

class SlotTable {
 public:
  // Returns the slot for `var` (whole variable), creating it if needed.
  SlotId ForVar(const VarDecl* var);
  // Returns the field-sensitive slot for `var` field `field_index`.
  SlotId ForField(const VarDecl* var, int field_index);
  // Creates a fresh synthetic temp slot (ignored call result).
  SlotId NewSyntheticTemp();

  // Const lookups that never create slots; return kInvalidSlot when absent.
  SlotId FindVar(const VarDecl* var) const { return Find(var, -1); }
  SlotId Find(const VarDecl* var, int field_index) const {
    auto it = index_.find(std::make_pair(var, field_index));
    return it == index_.end() ? kInvalidSlot : it->second;
  }

  const Slot& operator[](SlotId id) const { return slots_[id]; }
  int size() const { return static_cast<int>(slots_.size()); }

 private:
  std::vector<Slot> slots_;
  std::map<std::pair<const VarDecl*, int>, SlotId> index_;
  int next_temp_ = 0;
};

enum class Opcode {
  kConst,      // result = <const_value>
  kLoad,       // result = load <slot>
  kStore,      // store <operand0> -> <slot>
  kLoadInd,    // result = load *<operand0>
  kStoreInd,   // store <operand1> -> *<operand0>
  kAddrSlot,   // result = &<slot>
  kAddrFunc,   // result = &<callee>
  kFieldPtr,   // result = &(<operand0>-><field_index>)
  kBinOp,      // result = op(<operand0>, <operand1>)
  kUnOp,       // result = op(<operand0>)
  kCall,       // result = call <callee>(<operands>) | call *<operand0>(...)
  kRet,        // ret [<operand0>]
  kBr,         // br <succ0>
  kCondBr,     // condbr <operand0>, <succ0>, <succ1>
};

struct Instruction {
  Opcode op = Opcode::kConst;
  ValueId result = kNoValue;
  SlotId slot = kInvalidSlot;
  std::vector<ValueId> operands;
  SourceLoc loc;

  long long const_value = 0;  // kConst
  int field_index = -1;       // kFieldPtr

  // kCall: direct callee (possibly an implicit external prototype); null for
  // calls through a function pointer, in which case operands[0] is the callee
  // value and the remaining operands are arguments.
  const FunctionDecl* callee = nullptr;

  // kBr / kCondBr targets.
  BlockId succ0 = -1;
  BlockId succ1 = -1;

  // --- Store annotations (kStore only) ---
  // The stored value is directly the result of a call to `origin_callee`.
  const FunctionDecl* origin_callee = nullptr;
  // This store materializes an ignored call result into a synthetic temp.
  bool is_synthetic_store = false;
  // The stored value is `load(this->slot) ± const` (cursor-shaped).
  bool is_increment = false;
  long long increment_amount = 0;
  // The stored value is a literal constant.
  bool is_const_store = false;
  // The store comes from a declaration initializer ("int x = ...;").
  bool is_decl_init = false;
};

struct BasicBlock {
  BlockId id = 0;
  std::vector<Instruction> insts;
  std::vector<BlockId> succs;
  std::vector<BlockId> preds;

  const Instruction* Terminator() const {
    return insts.empty() ? nullptr : &insts.back();
  }
};

class IrFunction;

// One call site of a (possibly external) function, recorded for authorship
// lookup and peer-definition pruning.
struct CallSite {
  const FunctionDecl* callee = nullptr;
  const IrFunction* caller = nullptr;
  SourceLoc loc;
  // True when the call result is assigned/used at the call site; false when
  // the result is ignored (lowered to a synthetic temp store).
  bool result_assigned = false;
};

class IrFunction {
 public:
  std::string name;
  const FunctionDecl* decl = nullptr;
  SlotTable slots;
  std::vector<std::unique_ptr<BasicBlock>> blocks;
  std::vector<SlotId> param_slots;
  // Source locations of every return statement; the authorship phase compares
  // call-site authors against these (getRetAuthor in the paper's notation).
  std::vector<SourceLoc> return_locs;
  // Every call emitted from this function's body, with whether the result was
  // consumed at the call site. Feeds authorship lookup (call-site authors) and
  // peer-definition pruning (usage ratios across a callee's call sites).
  std::vector<CallSite> call_sites;
  ValueId next_value = 0;

  BasicBlock* Entry() const { return blocks.empty() ? nullptr : blocks.front().get(); }

  BasicBlock* NewBlock() {
    auto block = std::make_unique<BasicBlock>();
    block->id = static_cast<BlockId>(blocks.size());
    BasicBlock* raw = block.get();
    blocks.push_back(std::move(block));
    return raw;
  }

  // Populates succs/preds from terminators. Called once after construction.
  void ComputeEdges();

  // Debug listing of all instructions.
  std::string Dump() const;
};

// IR for one translation unit plus module-level indexes.
class IrModule {
 public:
  FileId file = kInvalidFileId;
  std::vector<std::unique_ptr<IrFunction>> functions;

  IrFunction* FindFunction(const std::string& name) const;
};

// Sizeof-based memory footprint of lowered IR, for the memory tracker.
// Counts element sizes (not vector capacities) so the result is exact and
// identical at any --jobs value; out-of-line string storage is attributed to
// the interned-strings category by the caller, not here.
struct IrFootprint {
  uint64_t bytes = 0;
  uint64_t instructions = 0;

  IrFootprint& operator+=(const IrFootprint& other) {
    bytes += other.bytes;
    instructions += other.instructions;
    return *this;
  }
};

IrFootprint FunctionFootprint(const IrFunction& func);
IrFootprint ModuleFootprint(const IrModule& module);

}  // namespace vc

#endif  // VALUECHECK_SRC_IR_IR_H_

#include "src/corpus/ground_truth.h"

namespace vc {

const char* SiteCategoryName(SiteCategory category) {
  switch (category) {
    case SiteCategory::kRealRetvalIgnored:
      return "real-retval-ignored";
    case SiteCategory::kRealRetvalIgnoredChecked:
      return "real-retval-ignored-checked";
    case SiteCategory::kRealRetvalOverwrittenSameBlock:
      return "real-retval-overwritten-same-block";
    case SiteCategory::kRealRetvalOverwrittenCrossBlock:
      return "real-retval-overwritten-cross-block";
    case SiteCategory::kRealParamUnused:
      return "real-param-unused";
    case SiteCategory::kRealFieldOverwritten:
      return "real-field-overwritten";
    case SiteCategory::kRealSameAuthorOverwrite:
      return "real-same-author-overwrite";
    case SiteCategory::kMinorDefect:
      return "minor-defect";
    case SiteCategory::kDebugCodeDefect:
      return "debug-code-defect";
    case SiteCategory::kBenignCursor:
      return "benign-cursor";
    case SiteCategory::kBenignConfig:
      return "benign-config";
    case SiteCategory::kBenignHintParam:
      return "benign-hint-param";
    case SiteCategory::kBenignHintVar:
      return "benign-hint-var";
    case SiteCategory::kBenignPeerInternal:
      return "benign-peer-internal";
    case SiteCategory::kBenignPeerExternal:
      return "benign-peer-external";
    case SiteCategory::kPrunedRealBug:
      return "pruned-real-bug";
    case SiteCategory::kDefensiveInit:
      return "defensive-init";
    case SiteCategory::kInferBait:
      return "infer-bait";
    case SiteCategory::kCoverityBaitOverwrite:
      return "coverity-bait-overwrite";
    case SiteCategory::kCoverityBaitChecked:
      return "coverity-bait-checked";
    case SiteCategory::kRealDoubleOverwrite:
      return "real-double-overwrite";
    case SiteCategory::kRealDeadGlobalStore:
      return "real-dead-global-store";
    case SiteCategory::kRealOutParamUnused:
      return "real-out-param-unused";
    case SiteCategory::kRealStaleCopy:
      return "real-stale-copy";
  }
  return "unknown";
}

int GroundTruth::Add(GtSite site) {
  site.id = static_cast<int>(sites_.size());
  by_location_[{site.file, site.line}] = site.id;
  if (site.alt_line > 0) {
    by_location_[{site.file, site.alt_line}] = site.id;
  }
  sites_.push_back(std::move(site));
  return sites_.back().id;
}

const GtSite* GroundTruth::Match(const std::string& file, int line) const {
  auto it = by_location_.find({file, line});
  return it == by_location_.end() ? nullptr : &sites_[it->second];
}

int GroundTruth::CountCategory(SiteCategory category) const {
  int count = 0;
  for (const GtSite& site : sites_) {
    count += site.category == category ? 1 : 0;
  }
  return count;
}

int GroundTruth::CountRealBugs() const {
  int count = 0;
  for (const GtSite& site : sites_) {
    count += site.is_real_bug ? 1 : 0;
  }
  return count;
}

}  // namespace vc

// Synthesizes one application: Mini-C source files, a multi-author commit
// history, and the exact ground-truth ledger of every injected site. See
// profile.h for what gets injected and DESIGN.md §1 for why synthesis is the
// right substitution for the paper's real codebases.

#ifndef VALUECHECK_SRC_CORPUS_GENERATOR_H_
#define VALUECHECK_SRC_CORPUS_GENERATOR_H_

#include <string>
#include <vector>

#include "src/core/project.h"
#include "src/corpus/ground_truth.h"
#include "src/corpus/profile.h"
#include "src/vcs/repository.h"

namespace vc {

struct GeneratedApp {
  std::string name;
  Repository repo;
  GroundTruth truth;
  ProjectTraits traits;
  std::vector<AuthorId> maintainers;
  std::vector<AuthorId> drive_by;
};

// Deterministic for a given profile (counts + seed).
GeneratedApp GenerateApp(const ProjectProfile& profile);

// Reference timestamp used as "now" when computing bug ages (paper Fig. 7c).
inline constexpr int64_t kCorpusNow = 1782000000;  // 2026-06-21 UTC
inline constexpr int64_t kSecondsPerDay = 86400;

}  // namespace vc

#endif  // VALUECHECK_SRC_CORPUS_GENERATOR_H_

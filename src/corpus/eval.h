// Scoring helpers: match tool findings against the ground-truth ledger and
// compute the found / real / false-positive-rate triples the paper's Table 5
// reports, plus the category-level breakdowns behind Tables 2-4.

#ifndef VALUECHECK_SRC_CORPUS_EVAL_H_
#define VALUECHECK_SRC_CORPUS_EVAL_H_

#include <set>
#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/corpus/ground_truth.h"

namespace vc {

struct ToolEval {
  std::string tool;
  bool ok = true;
  std::string error;
  int found = 0;      // deduplicated reported locations
  int real = 0;       // reports matching a real-bug site
  int unmatched = 0;  // reports matching no ledger site (generator escapees)
  std::set<int> real_site_ids;

  double FpRate() const {
    return found > 0 ? 1.0 - static_cast<double>(real) / static_cast<double>(found) : 0.0;
  }
};

// Scores a deduplicated set of (file, line) report locations.
ToolEval EvaluateLocations(const GroundTruth& truth, const std::string& tool,
                           const std::vector<std::pair<std::string, int>>& locations);

// Location extraction.
std::vector<std::pair<std::string, int>> LocationsOf(const AnalysisReport& report);
std::vector<std::pair<std::string, int>> LocationsOf(
    const std::vector<UnusedDefCandidate>& candidates);

// Scores one checker's slice of a report: only findings the named checker
// produced count, and a checker-stage quarantine record for it (an
// Unsupported() gate, Table 5's "tool cannot analyze this codebase" cells)
// propagates as ok=false with the quarantine reason.
ToolEval EvaluateChecker(const GroundTruth& truth, const std::string& tool,
                         const AnalysisReport& report, const std::string& checker);

}  // namespace vc

#endif  // VALUECHECK_SRC_CORPUS_EVAL_H_

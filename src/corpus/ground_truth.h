// Ground-truth ledger for synthesized applications.
//
// The paper evaluates on Linux, MySQL, OpenSSL and NFS-ganesha, with "real
// bug" decided by developer confirmation. The reproduction synthesizes
// applications whose populations of bugs and intentional unused-definition
// patterns mirror the paper's measured populations (Tables 2, 4, 5, 6 and
// Figures 7, 9) — and because the corpus is synthesized, every site has an
// exact label, so precision/recall are computed, not hand-estimated.
// DESIGN.md §1 documents this substitution.

#ifndef VALUECHECK_SRC_CORPUS_GROUND_TRUTH_H_
#define VALUECHECK_SRC_CORPUS_GROUND_TRUTH_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/unused_def.h"

namespace vc {

// Every injected site category. "Real" categories are developer-confirmed
// bugs; "minor"/"debug" are the paper's false-positive classes (§8.3.1);
// "benign" categories are intentional patterns the pruning stage must drop;
// the remaining ones exist to exercise specific baseline-tool envelopes.
enum class SiteCategory {
  // Cross-scope real bugs (ValueCheck's findings, confirmed).
  kRealRetvalIgnored,             // bare ignored call, dedicated project callee
  kRealRetvalIgnoredChecked,      // ignored call whose callee is mostly checked
  kRealRetvalOverwrittenSameBlock,
  kRealRetvalOverwrittenCrossBlock,
  kRealParamUnused,               // incl. the overwritten-parameter variant
  kRealFieldOverwritten,          // semantic, field-sensitive
  // Real bugs outside the cross-scope envelope (§8.4.4: Coverity finds them).
  kRealSameAuthorOverwrite,
  // ValueCheck false positives (§8.3.1).
  kMinorDefect,
  kDebugCodeDefect,
  // Intentional patterns, pruned (§5).
  kBenignCursor,
  kBenignConfig,
  kBenignHintParam,
  kBenignHintVar,
  kBenignPeerInternal,            // ignored returns of project logging helpers
  kBenignPeerExternal,            // ignored returns of library helpers
  // Real bugs wrongly pruned (§8.3.2's two recall misses; §8.3.4's sampled
  // pruning false negatives).
  kPrunedRealBug,
  // Non-cross-scope populations (visible only with the authorship ablation
  // or to specific baselines).
  kDefensiveInit,
  kInferBait,                     // same-author cross-block overwrite
  kCoverityBaitOverwrite,         // same-author same-block overwrite
  kCoverityBaitChecked,           // intentional ignore of a mostly-checked fn
  // Checker-framework bug classes (src/checkers/), injected only by profiles
  // with nonzero new-class counts — the per-checker precision/recall eval.
  kRealDoubleOverwrite,           // address-taken slot stored twice, no read
  kRealDeadGlobalStore,           // global stored twice in one block
  kRealOutParamUnused,            // out-parameter filled, never read by caller
  kRealStaleCopy,                 // copy read after its source was updated
};

const char* SiteCategoryName(SiteCategory category);

struct GtSite {
  int id = 0;
  SiteCategory category = SiteCategory::kRealRetvalIgnored;
  std::string file;
  int line = 0;      // the definition line a precise tool reports
  int alt_line = -1; // secondary acceptable line (e.g. the ignored call)

  bool is_real_bug = false;       // a developer would confirm and fix this
  bool expect_cross_scope = false;
  bool expect_pruned = false;
  PruneReason expect_prune_reason = PruneReason::kNone;
  bool prior_bug = false;         // member of the 39-known-bugs recall set
  bool missing_check = true;      // Table 3: missing-check vs semantic

  // Labels for Figure 7.
  std::string component;
  std::string severity;  // "high" / "medium" / "low"
  int age_days = 0;      // days between introduction and "now"
};

class GroundTruth {
 public:
  int Add(GtSite site);

  const std::vector<GtSite>& sites() const { return sites_; }

  // Matches a reported (file, line) against the ledger; null when the report
  // hits no injected site (an unexpected finding — tests treat those as
  // generator bugs).
  const GtSite* Match(const std::string& file, int line) const;

  int CountCategory(SiteCategory category) const;
  int CountRealBugs() const;

 private:
  std::vector<GtSite> sites_;
  std::map<std::pair<std::string, int>, int> by_location_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CORPUS_GROUND_TRUTH_H_

#include "src/corpus/profile.h"

#include <algorithm>
#include <cmath>

namespace vc {

namespace {

int Scale(int value, double factor) {
  if (value == 0) {
    return 0;
  }
  return std::max(1, static_cast<int>(std::lround(value * factor)));
}

}  // namespace

ProjectProfile ProjectProfile::Scaled(double factor) const {
  ProjectProfile scaled = *this;
  ProfileCounts& c = scaled.counts;
  c.retval_ignored = Scale(c.retval_ignored, factor);
  c.retval_ignored_checked = Scale(c.retval_ignored_checked, factor);
  c.retval_overwritten_same_block = Scale(c.retval_overwritten_same_block, factor);
  c.retval_overwritten_cross_block = Scale(c.retval_overwritten_cross_block, factor);
  c.param_unused = Scale(c.param_unused, factor);
  c.field_overwritten = Scale(c.field_overwritten, factor);
  c.same_author_overwrite = Scale(c.same_author_overwrite, factor);
  c.minor_defects = Scale(c.minor_defects, factor);
  c.debug_defects = Scale(c.debug_defects, factor);
  c.cursor = Scale(c.cursor, factor);
  c.config = Scale(c.config, factor);
  c.hint_param = Scale(c.hint_param, factor);
  c.hint_var = Scale(c.hint_var, factor);
  // Peer groups need > 10 occurrences for the pruning threshold to be
  // reachable, so nonzero peer populations never scale below one full group.
  c.peer_internal = c.peer_internal > 0 ? std::max(12, Scale(c.peer_internal, factor)) : 0;
  c.peer_external = c.peer_external > 0 ? std::max(12, Scale(c.peer_external, factor)) : 0;
  c.pruned_real = Scale(c.pruned_real, factor);
  c.defensive_init = Scale(c.defensive_init, factor);
  c.infer_bait = Scale(c.infer_bait, factor);
  c.coverity_bait_overwrite = Scale(c.coverity_bait_overwrite, factor);
  c.coverity_bait_checked = Scale(c.coverity_bait_checked, factor);
  c.double_overwrite = Scale(c.double_overwrite, factor);
  c.dead_global_store = Scale(c.dead_global_store, factor);
  c.out_param_unused = Scale(c.out_param_unused, factor);
  c.stale_copy = Scale(c.stale_copy, factor);
  c.filler_functions = Scale(c.filler_functions, factor);
  c.prior_bugs_detected = std::min(c.prior_bugs_detected,
                                   c.retval_ignored + c.retval_overwritten_same_block);
  return scaled;
}

// Calibration notes (see DESIGN.md §4 and the header comment):
//   confirmed = retval_ignored + retval_ignored_checked + same-/cross-block
//               overwrites + param_unused + field_overwritten   (Table 2)
//   VC found  = confirmed + minor_defects + debug_defects       (Table 5)
//   pre-prune = VC found + cursor + config + hints + peer totals (Table 4)
//   peer prune charge = peer_internal + peer_external + pruned_real

ProjectProfile LinuxProfile() {
  ProjectProfile p;
  p.name = "Linux";
  p.seed = 0x11c01;
  p.traits.is_pure_c = true;                  // Smatch runs
  p.traits.uses_kernel_extensions = true;     // fb-infer capture fails
  ProfileCounts& c = p.counts;
  c.retval_ignored = 25;
  c.retval_ignored_checked = 3;
  c.retval_overwritten_same_block = 6;
  c.retval_overwritten_cross_block = 3;
  c.param_unused = 4;
  c.field_overwritten = 3;                    // confirmed: 44
  c.same_author_overwrite = 47;               // Coverity-only real bugs
  c.minor_defects = 17;
  c.debug_defects = 2;                        // VC found: 63, FP 30%
  c.minor_defects_overwrite_shape = true;     // Coverity sees them (FP source)
  c.cursor = 22;
  c.config = 1;
  c.hint_param = 32;
  c.hint_var = 14;                            // hints: 46
  c.peer_internal = 119;                      // Smatch FP source
  c.peer_external = 4;
  c.pruned_real = 4;                          // peer charge: 127; orig: 259
  c.defensive_init = 663;
  c.infer_bait = 0;
  c.coverity_bait_overwrite = 82;             // Coverity found: 157
  c.coverity_bait_checked = 0;
  c.filler_functions = 60;
  c.maintainers = 6;
  c.drive_by = 24;
  c.prior_bugs_detected = 15;
  c.prior_bugs_pruned = 0;
  c.non_cross_drive_by_fraction = 0.022;
  return p;
}

ProjectProfile NfsGaneshaProfile() {
  ProjectProfile p;
  p.name = "NFS-ganesha";
  p.seed = 0x4f51;
  p.traits.is_pure_c = false;  // Smatch's build interception fails here
  p.traits.uses_kernel_extensions = false;
  ProfileCounts& c = p.counts;
  c.retval_ignored = 10;
  c.retval_ignored_checked = 1;
  c.retval_overwritten_same_block = 2;
  c.retval_overwritten_cross_block = 0;
  c.param_unused = 3;
  c.field_overwritten = 2;                    // confirmed: 18
  c.same_author_overwrite = 0;
  c.minor_defects = 4;
  c.debug_defects = 0;                        // VC found: 22, FP 18%
  c.minor_defects_overwrite_shape = false;
  c.cursor = 7;
  c.config = 7;
  c.hint_param = 600;
  c.hint_var = 239;                           // hints: 839
  c.peer_internal = 0;
  c.peer_external = 21;
  c.pruned_real = 2;                          // peer charge: 23; orig: 898
  c.defensive_init = 150;
  c.infer_bait = 6;                           // infer: 8 found / 2 real
  c.coverity_bait_overwrite = 0;
  c.coverity_bait_checked = 0;                // Coverity: 3/3
  c.filler_functions = 30;
  c.maintainers = 4;
  c.drive_by = 14;
  c.prior_bugs_detected = 5;
  c.prior_bugs_pruned = 2;                    // §8.3.2's two recall misses
  c.non_cross_drive_by_fraction = 1.0;
  return p;
}

ProjectProfile MysqlProfile() {
  ProjectProfile p;
  p.name = "MySQL";
  p.seed = 0x5157;
  p.traits.is_pure_c = false;  // C++ codebase: Smatch cannot parse it
  p.traits.uses_kernel_extensions = false;
  ProfileCounts& c = p.counts;
  c.retval_ignored = 45;
  c.retval_ignored_checked = 0;
  c.retval_overwritten_same_block = 1;
  c.retval_overwritten_cross_block = 8;
  c.param_unused = 12;
  c.field_overwritten = 8;                    // confirmed: 74
  c.same_author_overwrite = 0;
  c.minor_defects = 22;
  c.debug_defects = 3;                        // VC found: 99, FP 25%
  c.minor_defects_overwrite_shape = false;
  c.cursor = 83;
  c.config = 37;
  c.hint_param = 2200;
  c.hint_var = 831;                           // hints: 3031
  c.peer_internal = 0;
  c.peer_external = 4264;
  c.pruned_real = 229;                        // peer charge: 4493; orig: 7743
  c.defensive_init = 800;
  c.infer_bait = 36;                          // infer: 45 found / 9 real
  c.coverity_bait_overwrite = 0;
  c.coverity_bait_checked = 3;                // Coverity: 4 found / 1 real
  c.filler_functions = 80;
  c.maintainers = 6;
  c.drive_by = 20;
  c.prior_bugs_detected = 12;
  c.prior_bugs_pruned = 0;
  c.non_cross_drive_by_fraction = 0.073;
  return p;
}

ProjectProfile OpensslProfile() {
  ProjectProfile p;
  p.name = "OpenSSL";
  p.seed = 0x055e;
  p.traits.is_pure_c = false;  // Smatch build interception fails
  p.traits.uses_kernel_extensions = false;
  ProfileCounts& c = p.counts;
  c.retval_ignored = 9;
  c.retval_ignored_checked = 2;
  c.retval_overwritten_same_block = 2;
  c.retval_overwritten_cross_block = 1;
  c.param_unused = 2;
  c.field_overwritten = 2;                    // confirmed: 18
  c.same_author_overwrite = 0;
  c.minor_defects = 8;
  c.debug_defects = 0;                        // VC found: 26, FP 31%
  c.minor_defects_overwrite_shape = false;
  c.cursor = 74;
  c.config = 18;
  c.hint_param = 230;
  c.hint_var = 92;                            // hints: 322
  c.peer_internal = 0;
  c.peer_external = 196;
  c.pruned_real = 6;                          // peer charge: 202; orig: 642
  c.defensive_init = 250;
  c.infer_bait = 10;                          // infer: 13 found / 3 real
  c.coverity_bait_overwrite = 0;
  c.coverity_bait_checked = 2;                // Coverity: 6 found / 4 real
  c.minor_low_dok = 1;
  c.filler_functions = 30;
  c.maintainers = 4;
  c.drive_by = 14;
  c.prior_bugs_detected = 5;
  c.prior_bugs_pruned = 0;
  c.non_cross_drive_by_fraction = 1.0;
  return p;
}

std::vector<ProjectProfile> AllProfiles() {
  return {LinuxProfile(), NfsGaneshaProfile(), MysqlProfile(), OpensslProfile()};
}

}  // namespace vc

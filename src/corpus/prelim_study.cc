#include "src/corpus/prelim_study.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/core/authorship.h"
#include "src/core/detector.h"
#include "src/core/project.h"
#include "src/support/rng.h"

namespace vc {

namespace {

constexpr int64_t kDay = 86400;
constexpr int64_t k2019 = 1546300800;  // 2019-01-01
constexpr int64_t k2021 = 1609459200;  // 2021-01-01

struct SitePlan {
  bool bug_fix = false;
  bool cross_author = false;
  int file = 0;
};

}  // namespace

PrelimStudyData GeneratePrelimStudy(const PrelimStudySpec& spec) {
  PrelimStudyData data;
  Rng rng(spec.seed);

  std::vector<AuthorId> authors;
  for (int i = 0; i < 10; ++i) {
    authors.push_back(data.repo.AddAuthor("hist_dev_" + std::to_string(i)));
  }
  auto pick = [&](AuthorId not_this = kInvalidAuthor) {
    AuthorId who = authors[rng.NextBelow(authors.size())];
    while (who == not_this) {
      who = authors[rng.NextBelow(authors.size())];
    }
    return who;
  };

  // Plan the population.
  std::vector<SitePlan> plans(static_cast<size_t>(spec.total_differential));
  const int num_files = std::max(1, spec.total_differential / 40);
  for (size_t i = 0; i < plans.size(); ++i) {
    plans[i].bug_fix = static_cast<int>(i) < spec.bug_fix_removals;
    plans[i].cross_author = plans[i].bug_fix && rng.NextBool(spec.cross_author_fraction);
    plans[i].file = static_cast<int>(i) % num_files;
  }
  rng.Shuffle(plans);

  // Build the 2019 files. Each site is a small function with one unused
  // definition: `int r_N = helper_N(m);` immediately overwritten. For
  // cross-author sites the overwrite line lands in a second, later commit by
  // a different developer.
  struct FileState {
    std::vector<std::string> lines;       // content at 2019
    std::vector<int> site_ids;            // sites hosted by this file
  };
  std::vector<FileState> files(static_cast<size_t>(num_files));
  std::map<int, std::pair<int, int>> site_line_span;  // site -> [begin,end) in its file

  for (size_t site = 0; site < plans.size(); ++site) {
    FileState& file = files[static_cast<size_t>(plans[site].file)];
    const std::string t = std::to_string(site);
    int begin = static_cast<int>(file.lines.size());
    file.lines.push_back("static int hist_helper_" + t + "(int m) {");
    file.lines.push_back("  return m + " + std::to_string(site % 7 + 1) + ";");
    file.lines.push_back("}");
    file.lines.push_back("int hist_op_" + t + "(int m) {");
    file.lines.push_back("  int hr_" + t + " = hist_helper_" + t + "(m);");
    file.lines.push_back("  hr_" + t + " = m * 2;");
    file.lines.push_back("  return hr_" + t + ";");
    file.lines.push_back("}");
    site_line_span[static_cast<int>(site)] = {begin, static_cast<int>(file.lines.size())};
    file.site_ids.push_back(static_cast<int>(site));
  }

  auto path_of = [](int file_index) {
    return "hist/f" + std::to_string(file_index) + ".c";
  };
  auto content_of = [](const FileState& file) {
    std::string content;
    for (const std::string& line : file.lines) {
      content += line + "\n";
    }
    return content;
  };

  // Commit wave 1 (2018): base versions. Cross-author sites first appear
  // WITHOUT the overwrite line; it arrives in wave 2 by a different author.
  std::map<int, AuthorId> base_author;
  {
    int64_t ts = k2019 - 200 * kDay;
    for (int f = 0; f < num_files; ++f) {
      FileState base = files[static_cast<size_t>(f)];
      // Strip the overwrite lines of cross-author sites.
      std::vector<std::string> stripped;
      for (size_t i = 0; i < base.lines.size(); ++i) {
        bool drop = false;
        for (int site : base.site_ids) {
          if (!plans[static_cast<size_t>(site)].cross_author) {
            continue;
          }
          auto [begin, end] = site_line_span[site];
          if (static_cast<int>(i) == begin + 5) {  // the overwrite line
            drop = true;
          }
        }
        if (!drop) {
          stripped.push_back(base.lines[i]);
        }
      }
      std::string content;
      for (const std::string& line : stripped) {
        content += line + "\n";
      }
      AuthorId author = pick();
      for (int site : base.site_ids) {
        base_author[site] = author;
      }
      data.repo.AddCommit(author, ts, "add module " + path_of(f), {{path_of(f), content}});
      ts += kDay;
    }
    // Wave 2: insert cross-author overwrites, each by a different developer.
    for (int f = 0; f < num_files; ++f) {
      bool any = false;
      for (int site : files[static_cast<size_t>(f)].site_ids) {
        any |= plans[static_cast<size_t>(site)].cross_author;
      }
      if (!any) {
        continue;
      }
      AuthorId other = pick(base_author[files[static_cast<size_t>(f)].site_ids.front()]);
      data.repo.AddCommit(other, ts, "rework result handling in " + path_of(f),
                          {{path_of(f), content_of(files[static_cast<size_t>(f)])}});
      ts += kDay;
    }
    data.snapshot_2019 = data.repo.AddCommit(pick(), k2019, "snapshot 2019 marker", {});
  }

  // Removal wave (2019-2020): every site's unused definition disappears —
  // bug sites via "fix:" commits that start using the helper's value,
  // cleanup sites via "cleanup:" commits that drop the redundant call.
  {
    int64_t ts = k2019 + 30 * kDay;
    for (size_t site = 0; site < plans.size(); ++site) {
      FileState& file = files[static_cast<size_t>(plans[site].file)];
      auto [begin, end] = site_line_span[static_cast<int>(site)];
      const std::string t = std::to_string(site);
      if (plans[site].bug_fix) {
        // The fix makes the first definition's value flow into the result.
        file.lines[static_cast<size_t>(begin) + 5] =
            "  hr_" + t + " = hr_" + t + " + m;";
      } else {
        // Cleanup: drop the redundant call entirely; both remaining
        // definitions are used, so no unused definition survives.
        file.lines[static_cast<size_t>(begin) + 4] = "  int hr_" + t + " = m * 2 + 1;";
        file.lines[static_cast<size_t>(begin) + 5] = "  hr_" + t + " = hr_" + t + " - 1;";
      }
      std::string message =
          plans[site].bug_fix
              ? "fix: use hist_helper_" + t + " status in hist_op_" + t
              : "cleanup: drop redundant hist_helper_" + t + " call in hist_op_" + t;
      data.repo.AddCommit(pick(), ts, message,
                          {{path_of(plans[site].file),
                            content_of(file)}});
      ts += kDay / 4;
    }
    data.snapshot_2021 = data.repo.AddCommit(pick(), k2021, "snapshot 2021 marker", {});
  }

  return data;
}

PrelimStudyOutcome RunPrelimStudy(const PrelimStudyData& data, const PrelimStudySpec& spec) {
  PrelimStudyOutcome outcome;

  // 1. Plain liveness on both snapshots (no authorship filter, no pruning:
  //    the paper used the "original liveness analysis" here).
  Project old_project = Project::FromRepositoryAt(data.repo, data.snapshot_2019);
  Project new_project = Project::FromRepositoryAt(data.repo, data.snapshot_2021);
  std::vector<UnusedDefCandidate> old_candidates = DetectAll(old_project);
  std::vector<UnusedDefCandidate> new_candidates = DetectAll(new_project);

  // 2. Differential comparison keyed by (function, slot): line numbers shift
  //    across two years of commits, function identities do not.
  std::set<std::pair<std::string, std::string>> still_present;
  for (const UnusedDefCandidate& cand : new_candidates) {
    still_present.insert({cand.function, cand.slot_name});
  }
  std::vector<const UnusedDefCandidate*> removed;
  for (const UnusedDefCandidate& cand : old_candidates) {
    if (still_present.count({cand.function, cand.slot_name}) == 0) {
      removed.push_back(&cand);
    }
  }
  outcome.differential = static_cast<int>(removed.size());

  // 3. Random sample (the paper: serial numbers + random draw).
  Rng rng(spec.seed ^ 0x5a5a5a5a);
  std::vector<const UnusedDefCandidate*> sample = removed;
  rng.Shuffle(sample);
  if (static_cast<int>(sample.size()) > spec.sample_size) {
    sample.resize(static_cast<size_t>(spec.sample_size));
  }
  outcome.sampled = static_cast<int>(sample.size());

  // 4. Commit-message inspection: find the commit that removed the unused
  //    definition (the first commit after the 2019 snapshot whose message
  //    names the function) and classify it.
  AuthorshipAnalyzer authorship(old_project, &data.repo, data.snapshot_2019);
  for (const UnusedDefCandidate* cand : sample) {
    bool bug_fix = false;
    for (CommitId id = data.snapshot_2019 + 1; id < data.repo.NumCommits(); ++id) {
      const Commit& commit = data.repo.GetCommit(id);
      if (commit.message.find(cand->function + " ") != std::string::npos ||
          commit.message.rfind(cand->function) ==
              commit.message.size() - cand->function.size()) {
        bug_fix = commit.message.rfind("fix:", 0) == 0;
        break;
      }
    }
    if (!bug_fix) {
      continue;
    }
    ++outcome.bug_related;
    // 5. Cross-scope classification at the old snapshot.
    UnusedDefCandidate classified = *cand;
    authorship.Classify(classified);
    outcome.cross_author += classified.cross_scope ? 1 : 0;
  }
  return outcome;
}

}  // namespace vc

// Reproduction of the paper's preliminary study (§3.1): two snapshots of a
// project taken two years apart, where the later snapshot has removed a
// population of unused definitions — some via bug-fix commits (mostly
// cross-author), the rest via cleanups. The study re-runs the paper's
// methodology: plain liveness on the old snapshot, differential comparison
// against the new one, random sampling, commit-message inspection, and
// cross-scope classification of the sampled bug fixes.

#ifndef VALUECHECK_SRC_CORPUS_PRELIM_STUDY_H_
#define VALUECHECK_SRC_CORPUS_PRELIM_STUDY_H_

#include <string>
#include <vector>

#include "src/vcs/repository.h"

namespace vc {

struct PrelimStudySpec {
  // Unused definitions present in the 2019 snapshot and gone by 2021.
  int total_differential = 325;
  // How many of those were removed by bug-fix commits (the paper sampled 60
  // and found 42 bug-related, i.e. ~70% of the population).
  int bug_fix_removals = 228;
  // Fraction of the bug fixes whose unused definition crossed author scopes
  // (the paper: 39 of 42).
  double cross_author_fraction = 0.93;
  int sample_size = 60;
  uint64_t seed = 0x2019;
};

struct PrelimStudyData {
  Repository repo;
  CommitId snapshot_2019 = kInvalidCommit;
  CommitId snapshot_2021 = kInvalidCommit;
};

PrelimStudyData GeneratePrelimStudy(const PrelimStudySpec& spec);

struct PrelimStudyOutcome {
  int differential = 0;   // unused defs in 2019 snapshot, gone in 2021
  int sampled = 0;        // randomly sampled for manual inspection
  int bug_related = 0;    // removal commit is a fix (commit-message check)
  int cross_author = 0;   // of the bug-related, cross author scopes
};

// Runs the full §3.1 methodology over the generated history.
PrelimStudyOutcome RunPrelimStudy(const PrelimStudyData& data, const PrelimStudySpec& spec);

}  // namespace vc

#endif  // VALUECHECK_SRC_CORPUS_PRELIM_STUDY_H_

#include "src/corpus/eval.h"

#include <algorithm>

namespace vc {

ToolEval EvaluateLocations(const GroundTruth& truth, const std::string& tool,
                           const std::vector<std::pair<std::string, int>>& locations) {
  ToolEval eval;
  eval.tool = tool;
  std::set<std::pair<std::string, int>> deduped(locations.begin(), locations.end());
  std::set<int> matched_sites;
  for (const auto& [file, line] : deduped) {
    const GtSite* site = truth.Match(file, line);
    if (site == nullptr) {
      ++eval.unmatched;
      ++eval.found;
      continue;
    }
    if (matched_sites.insert(site->id).second) {
      ++eval.found;
      if (site->is_real_bug) {
        ++eval.real;
        eval.real_site_ids.insert(site->id);
      }
    }
  }
  return eval;
}

std::vector<std::pair<std::string, int>> LocationsOf(const AnalysisReport& report) {
  std::vector<std::pair<std::string, int>> locations;
  locations.reserve(report.findings.size());
  for (const UnusedDefCandidate& cand : report.findings) {
    locations.emplace_back(cand.file, cand.def_loc.line);
  }
  return locations;
}

std::vector<std::pair<std::string, int>> LocationsOf(
    const std::vector<UnusedDefCandidate>& candidates) {
  std::vector<std::pair<std::string, int>> locations;
  locations.reserve(candidates.size());
  for (const UnusedDefCandidate& cand : candidates) {
    locations.emplace_back(cand.file, cand.def_loc.line);
  }
  return locations;
}

ToolEval EvaluateChecker(const GroundTruth& truth, const std::string& tool,
                         const AnalysisReport& report, const std::string& checker) {
  for (const QuarantinedUnit& unit : report.quarantined) {
    if (unit.stage == "checker" && unit.checker == checker) {
      ToolEval eval;
      eval.tool = tool;
      eval.ok = false;
      eval.error = unit.reason;
      return eval;
    }
  }
  std::vector<std::pair<std::string, int>> locations;
  for (const UnusedDefCandidate& cand : report.findings) {
    if (cand.checker == checker) {
      locations.emplace_back(cand.file, cand.def_loc.line);
    }
  }
  return EvaluateLocations(truth, tool, locations);
}

}  // namespace vc

// Per-application corpus profiles. Counts are calibrated so the synthesized
// populations reproduce the paper's measured structure:
//
//   * Table 2 / Table 5: #detected and #confirmed per application and the
//     per-tool detection envelopes;
//   * Table 4: pre-prune cross-scope candidates and the per-pattern prune
//     breakdown;
//   * §8.5.1: the ~2259 post-prune candidates when the authorship filter is
//     ablated (defensive-init and bait populations);
//   * §8.3.2 / §8.3.4: recall on prior bugs and pruning false negatives.
//
// The generator only plants *populations*; every reported number in the
// benches is computed by actually running the analyses over the generated
// code and history.

#ifndef VALUECHECK_SRC_CORPUS_PROFILE_H_
#define VALUECHECK_SRC_CORPUS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/project.h"

namespace vc {

struct ProfileCounts {
  // Cross-scope real bugs (ValueCheck findings, confirmed).
  int retval_ignored = 0;
  int retval_ignored_checked = 0;
  int retval_overwritten_same_block = 0;
  int retval_overwritten_cross_block = 0;
  int param_unused = 0;
  int field_overwritten = 0;
  // Real bugs outside the cross-scope envelope.
  int same_author_overwrite = 0;
  // ValueCheck false positives.
  int minor_defects = 0;
  int debug_defects = 0;
  // Whether minor/debug defects take the same-block-overwrite shape (visible
  // to Coverity's UNUSED_VALUE, as on Linux) or the rarely-checked-ignored-
  // return shape (invisible to every baseline).
  bool minor_defects_overwrite_shape = false;
  // Pruned populations (cross-scope; Table 4 columns).
  int cursor = 0;
  int config = 0;
  int hint_param = 0;
  int hint_var = 0;
  int peer_internal = 0;
  int peer_external = 0;
  int pruned_real = 0;  // real bugs lost to peer pruning (recall misses)
  // Non-cross-scope populations.
  int defensive_init = 0;
  int infer_bait = 0;
  int coverity_bait_overwrite = 0;
  int coverity_bait_checked = 0;
  // Checker-framework bug classes (src/checkers/). Emitted after every other
  // population, so the paper-calibrated profiles (which keep these at zero)
  // draw an unchanged rng stream and their table numbers stay locked.
  int double_overwrite = 0;
  int dead_global_store = 0;
  int out_param_unused = 0;
  int stale_copy = 0;
  // Background.
  int filler_functions = 0;
  // Author pool sizes.
  int maintainers = 4;
  int drive_by = 12;
  // Number of minor defects whose responsible developer is nonetheless a
  // low-familiarity newcomer — the occasional false positive that cracks the
  // top of the ranking (Fig. 9's 97.5% rather than 100% at cutoff 10).
  int minor_low_dok = 0;
  // Prior-bug recall set contribution (drawn from the confirmed categories).
  int prior_bugs_detected = 0;  // plus pruned_real sites flagged prior when
  int prior_bugs_pruned = 0;    // this is nonzero
  // Fraction of defensive-init/bait sites authored by drive-by developers
  // (governs how hard the w/o-Authorship ablation gets flooded, Table 6).
  double non_cross_drive_by_fraction = 0.5;
};

struct ProjectProfile {
  std::string name;
  ProfileCounts counts;
  ProjectTraits traits;
  uint64_t seed = 1;

  // Scales every population count by `factor` (minimum 1 where nonzero), for
  // fast unit tests. Table-reproducing benches use scale 1.
  ProjectProfile Scaled(double factor) const;
};

// The four evaluated applications (§8.1.1), calibrated to the paper.
ProjectProfile LinuxProfile();
ProjectProfile NfsGaneshaProfile();
ProjectProfile MysqlProfile();
ProjectProfile OpensslProfile();
std::vector<ProjectProfile> AllProfiles();

}  // namespace vc

#endif  // VALUECHECK_SRC_CORPUS_PROFILE_H_

#include "src/corpus/generator.h"

#include <memory>
#include <utility>

#include "src/corpus/synthetic_file.h"
#include "src/support/rng.h"

namespace vc {

namespace {

// Survivor-site kinds that get interleaved across shared files (so detection
// order mixes real bugs and false positives, as in a real codebase).
enum class EmitKind {
  kRetvalIgnored,
  kRetvalIgnoredChecked,
  kOverwrittenSameBlock,
  kOverwrittenCrossBlock,
  kParamOverwritten,
  kParamPlain,
  kFieldOverwritten,
  kSameAuthorOverwrite,
  kMinorDefect,
  kDebugDefect,
  kInferBait,
  kCoverityBaitOverwrite,
  kCoverityBaitChecked,
  kDefensiveInit,
  kFiller,
};

std::string AppPrefix(const std::string& name) {
  std::string prefix;
  for (char c : name) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      prefix += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (prefix.size() == 3) {
      break;
    }
  }
  return prefix.empty() ? "app" : prefix;
}

class AppGenerator {
 public:
  explicit AppGenerator(const ProjectProfile& profile)
      : profile_(profile), counts_(profile.counts), rng_(profile.seed) {
    app_.name = profile.name;
    app_.traits = profile.traits;
    prefix_ = AppPrefix(profile.name);
    for (int i = 0; i < counts_.maintainers; ++i) {
      app_.maintainers.push_back(
          app_.repo.AddAuthor(prefix_ + "_maint_" + std::to_string(i)));
    }
    for (int i = 0; i < counts_.drive_by; ++i) {
      app_.drive_by.push_back(app_.repo.AddAuthor(prefix_ + "_dev_" + std::to_string(i)));
    }
  }

  GeneratedApp Run() {
    EmitInterleavedSites();
    EmitCursorSites();
    EmitConfigSites();
    EmitHintParamSites();
    EmitHintVarSites();
    EmitPeerSites();
    // The checker-framework populations come last: profiles that keep them at
    // zero (all four paper-calibrated apps) consume an identical rng stream,
    // so their locked table numbers cannot drift.
    EmitDoubleOverwriteSites();
    EmitDeadGlobalStoreSites();
    EmitOutParamSites();
    EmitStaleCopySites();
    CloseFile();
    return std::move(app_);
  }

 private:
  // --- Author selection ----------------------------------------------------

  AuthorId Maintainer() { return app_.maintainers[rng_.NextBelow(app_.maintainers.size())]; }
  AuthorId DriveBy() { return app_.drive_by[rng_.NextBelow(app_.drive_by.size())]; }

  // The developer on the ignoring side of a confirmed bug: predominantly a
  // low-familiarity contributor (this is what makes the DOK ranking work,
  // §6 / Fig. 9).
  AuthorId PickBugResponsible() { return rng_.NextBool(0.85) ? DriveBy() : Maintainer(); }

  // The developer responsible for an intentional/minor unused definition:
  // predominantly a maintainer with high familiarity.
  AuthorId PickCalmResponsible() { return rng_.NextBool(0.90) ? Maintainer() : DriveBy(); }

  // Authors of non-cross-scope sites (defensive inits, baits). With
  // probability `non_cross_drive_by_fraction` the author is a low-familiarity
  // newcomer (these compete with real bugs for the top ranks when the
  // authorship filter is ablated, §8.5.1 / Table 6); otherwise the site
  // belongs to the file's founding maintainer, whose first-authorship and
  // delivery counts push it far down the DOK ranking.
  AuthorId PickNonCrossAuthor() {
    return rng_.NextBool(counts_.non_cross_drive_by_fraction) ? DriveBy() : owner_;
  }

  AuthorId DifferentFrom(AuthorId other, bool maintainer_pool) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      AuthorId candidate = maintainer_pool ? Maintainer() : DriveBy();
      if (candidate != other) {
        return candidate;
      }
    }
    // Pools always have >= 2 members; fall back to a linear scan.
    const std::vector<AuthorId>& pool = maintainer_pool ? app_.maintainers : app_.drive_by;
    for (AuthorId candidate : pool) {
      if (candidate != other) {
        return candidate;
      }
    }
    return other;
  }

  // --- File management -------------------------------------------------------

  void OpenFile() {
    CloseFile();
    char name[32];
    std::snprintf(name, sizeof(name), "%s_src/f%04d.c", prefix_.c_str(), file_seq_++);
    file_ = std::make_unique<SyntheticFile>(name);
    // Randomized size budget: file commit counts (and so every author's AC
    // value) vary across files, like real modules.
    file_budget_ = static_cast<int>(rng_.NextInRange(380, 650));
    // 82% of files carry old history (bugs older than 1000 days, Fig. 7c).
    age_days_ = rng_.NextBool(0.82) ? rng_.NextInRange(1400, 2400) : rng_.NextInRange(120, 900);
    owner_ = Maintainer();
    int round = NewRound(owner_, "create " + file_->path());
    file_->AddLine(round, "/* " + profile_.name + " synthesized module " + file_->path() + " */");
    file_->AddLine(round, "int g_sink;");
  }

  void CloseFile() {
    if (file_ != nullptr) {
      file_->CommitTo(app_.repo);
      file_.reset();
    }
  }

  void RotateIfLarge() {
    if (file_ == nullptr || file_->NumLines() > file_budget_) {
      OpenFile();
    }
  }

  int NewRound(AuthorId author, const std::string& message) {
    age_days_ -= rng_.NextInRange(4, 18);
    if (age_days_ < 20) {
      age_days_ = 20;
    }
    last_round_age_ = age_days_;
    return file_->AddRound(author, kCorpusNow - age_days_ * kSecondsPerDay, message);
  }

  int NextId() { return site_counter_++; }

  std::string Tag(int id) { return std::to_string(id); }

  // --- Ground-truth helpers ---------------------------------------------------

  GtSite BaseSite(SiteCategory category, int line) {
    GtSite site;
    site.category = category;
    site.file = file_->path();
    site.line = line;
    site.age_days = last_round_age_;
    return site;
  }

  void LabelBug(GtSite& site, bool missing_check) {
    site.is_real_bug = true;
    site.missing_check = missing_check;
    static const std::vector<std::string> kComponents = {
        "file-system", "security", "driver", "network", "memory", "other"};
    static const std::vector<double> kComponentWeights = {0.38, 0.17, 0.15, 0.12, 0.08, 0.10};
    static const std::vector<std::string> kSeverities = {"high", "medium", "low"};
    static const std::vector<double> kSeverityWeights = {0.15, 0.59, 0.26};
    site.component = kComponents[rng_.NextWeighted(kComponentWeights)];
    site.severity = kSeverities[rng_.NextWeighted(kSeverityWeights)];
    // The prior-bug recall set (§8.3.2) only contains bugs ValueCheck's
    // envelope can reach: cross-scope and not pruned.
    if (site.is_real_bug && site.expect_cross_scope && !site.expect_pruned &&
        prior_detected_left_ > 0) {
      site.prior_bug = true;
      --prior_detected_left_;
    }
  }

  void LabelMinor(GtSite& site) {
    site.is_real_bug = false;
    site.component = "other";
    site.severity = "low";
  }

  // --- Interleaved survivor sites ----------------------------------------------

  void EmitInterleavedSites() {
    prior_detected_left_ = counts_.prior_bugs_detected;
    minor_low_dok_left_ = counts_.minor_low_dok;
    std::vector<EmitKind> plan;
    auto add = [&plan](EmitKind kind, int count) {
      for (int i = 0; i < count; ++i) {
        plan.push_back(kind);
      }
    };
    add(EmitKind::kRetvalIgnored, counts_.retval_ignored);
    add(EmitKind::kRetvalIgnoredChecked, counts_.retval_ignored_checked);
    add(EmitKind::kOverwrittenSameBlock, counts_.retval_overwritten_same_block);
    add(EmitKind::kOverwrittenCrossBlock, counts_.retval_overwritten_cross_block);
    add(EmitKind::kParamOverwritten, (counts_.param_unused + 1) / 2);
    add(EmitKind::kParamPlain, counts_.param_unused / 2);
    add(EmitKind::kFieldOverwritten, counts_.field_overwritten);
    add(EmitKind::kSameAuthorOverwrite, counts_.same_author_overwrite);
    add(EmitKind::kMinorDefect, counts_.minor_defects);
    add(EmitKind::kDebugDefect, counts_.debug_defects);
    add(EmitKind::kInferBait, counts_.infer_bait);
    add(EmitKind::kCoverityBaitOverwrite, counts_.coverity_bait_overwrite);
    add(EmitKind::kCoverityBaitChecked, counts_.coverity_bait_checked);
    // Defensive initializers share the interleaved files so their authors'
    // AC values are drawn from the same distribution as the bug authors' —
    // the w/o-Authorship ablation then mixes the populations exactly as the
    // paper observes.
    add(EmitKind::kDefensiveInit, counts_.defensive_init);
    add(EmitKind::kFiller, counts_.filler_functions);
    rng_.Shuffle(plan);

    for (EmitKind kind : plan) {
      RotateIfLarge();
      switch (kind) {
        case EmitKind::kRetvalIgnored:
          EmitRetvalIgnored();
          break;
        case EmitKind::kRetvalIgnoredChecked:
          EmitRetvalIgnoredChecked();
          break;
        case EmitKind::kOverwrittenSameBlock:
          EmitOverwritten(/*cross_block=*/false, SiteCategory::kRealRetvalOverwrittenSameBlock);
          break;
        case EmitKind::kOverwrittenCrossBlock:
          EmitOverwritten(/*cross_block=*/true, SiteCategory::kRealRetvalOverwrittenCrossBlock);
          break;
        case EmitKind::kParamOverwritten:
          EmitParamBug(/*overwritten=*/true);
          break;
        case EmitKind::kParamPlain:
          EmitParamBug(/*overwritten=*/false);
          break;
        case EmitKind::kFieldOverwritten:
          EmitFieldOverwritten();
          break;
        case EmitKind::kSameAuthorOverwrite:
          EmitSameAuthorOverwrite();
          break;
        case EmitKind::kMinorDefect:
          EmitMinorOrDebug(SiteCategory::kMinorDefect);
          break;
        case EmitKind::kDebugDefect:
          EmitMinorOrDebug(SiteCategory::kDebugCodeDefect);
          break;
        case EmitKind::kInferBait:
          EmitInferBait();
          break;
        case EmitKind::kCoverityBaitOverwrite:
          EmitCoverityBaitOverwrite();
          break;
        case EmitKind::kCoverityBaitChecked:
          EmitCoverityBaitChecked();
          break;
        case EmitKind::kDefensiveInit:
          EmitDefensiveInit();
          break;
        case EmitKind::kFiller:
          EmitFiller();
          break;
      }
    }
  }

  // Scenario 1 bug: a status-returning callee, implemented by one developer,
  // whose result a different developer ignores at the (single) call site.
  void EmitRetvalIgnored() {
    int id = NextId();
    const std::string t = Tag(id);
    AuthorId author_y = PickCalmResponsible();
    AuthorId author_x = PickBugResponsible();
    if (author_x == author_y) {
      author_x = DifferentFrom(author_y, /*maintainer_pool=*/false);
    }
    int ry = NewRound(author_y, "add " + prefix_ + "_dev_status_" + t);
    file_->AddLine(ry, "static int " + prefix_ + "_dev_status_" + t + "(int code) {");
    file_->AddLine(ry, "  if (code > " + std::to_string(id % 5) + ") {");
    file_->AddLine(ry, "    return code + " + std::to_string(id % 7 + 1) + ";");
    file_->AddLine(ry, "  }");
    file_->AddLine(ry, "  return 0 - code;");
    file_->AddLine(ry, "}");
    int rx = NewRound(author_x, "handle request path " + t);
    file_->AddLine(rx, "int " + prefix_ + "_handle_req_" + t + "(int req) {");
    int site_line = file_->AddLine(rx, "  " + prefix_ + "_dev_status_" + t + "(req);");
    file_->AddLine(rx, "  g_sink = req + " + std::to_string(id % 9) + ";");
    file_->AddLine(rx, "  return req * 2;");
    file_->AddLine(rx, "}");

    GtSite site = BaseSite(SiteCategory::kRealRetvalIgnored, site_line);
    site.expect_cross_scope = true;
    LabelBug(site, /*missing_check=*/true);
    app_.truth.Add(site);
  }

  // Scenario 1 bug variant whose callee is checked at 9 other call sites —
  // visible to Coverity's CHECKED_RETURN ratio inference.
  void EmitRetvalIgnoredChecked() {
    int id = NextId();
    const std::string t = Tag(id);
    AuthorId author_y = PickCalmResponsible();
    AuthorId author_x = PickBugResponsible();
    if (author_x == author_y) {
      author_x = DifferentFrom(author_y, /*maintainer_pool=*/false);
    }
    int ry = NewRound(author_y, "add init stage " + t);
    file_->AddLine(ry, "static int " + prefix_ + "_init_stage_" + t + "(int v) {");
    file_->AddLine(ry, "  if (v > 1) {");
    file_->AddLine(ry, "    return v;");
    file_->AddLine(ry, "  }");
    file_->AddLine(ry, "  return 1;");
    file_->AddLine(ry, "}");
    int rc = NewRound(author_y, "wire init stage callers " + t);
    for (int k = 0; k < 9; ++k) {
      const std::string tk = t + "_" + std::to_string(k);
      file_->AddLine(rc, "int " + prefix_ + "_warm_" + tk + "(int v) {");
      file_->AddLine(rc, "  int st_" + tk + " = " + prefix_ + "_init_stage_" + t + "(v);");
      file_->AddLine(rc, "  if (st_" + tk + " > 0) {");
      file_->AddLine(rc, "    return st_" + tk + ";");
      file_->AddLine(rc, "  }");
      file_->AddLine(rc, "  return 0;");
      file_->AddLine(rc, "}");
    }
    int rx = NewRound(author_x, "fast path skips init check " + t);
    file_->AddLine(rx, "int " + prefix_ + "_fast_path_" + t + "(int v) {");
    int site_line = file_->AddLine(rx, "  " + prefix_ + "_init_stage_" + t + "(v);");
    file_->AddLine(rx, "  return v + 3;");
    file_->AddLine(rx, "}");

    GtSite site = BaseSite(SiteCategory::kRealRetvalIgnoredChecked, site_line);
    site.expect_cross_scope = true;
    LabelBug(site, /*missing_check=*/true);
    app_.truth.Add(site);
  }

  // Scenario 3 bug (paper Fig. 8): one developer's `ret = f(...)` definition
  // is later shadowed by another developer's `ret = g(...)`; the subsequent
  // `if (ret)` now checks the wrong status.
  void EmitOverwritten(bool cross_block, SiteCategory category) {
    int id = NextId();
    const std::string t = Tag(id);
    AuthorId author_x = PickCalmResponsible();
    AuthorId author_b = PickBugResponsible();
    if (author_b == author_x) {
      author_b = DifferentFrom(author_x, /*maintainer_pool=*/false);
    }
    int ra = NewRound(author_x, "add permset helpers " + t);
    file_->AddLine(ra, "static int " + prefix_ + "_get_permset_" + t + "(int en) {");
    file_->AddLine(ra, "  return en + " + std::to_string(id % 5 + 1) + ";");
    file_->AddLine(ra, "}");
    file_->AddLine(ra, "static int " + prefix_ + "_calc_mask_" + t + "(int m) {");
    file_->AddLine(ra, "  return m * 2;");
    file_->AddLine(ra, "}");
    file_->AddLine(ra, "int " + prefix_ + "_acl_build_" + t + "(int en, int m) {");
    int site_line =
        file_->AddLine(ra, "  int ret_" + t + " = " + prefix_ + "_get_permset_" + t + "(en);");
    if (cross_block) {
      file_->AddLine(ra, "  if (en > 9) {");
      file_->AddLine(ra, "    m = m + en;");
      file_->AddLine(ra, "  }");
    }
    int rb = NewRound(author_b, "recompute mask in acl build " + t);
    file_->AddLine(rb, "  ret_" + t + " = " + prefix_ + "_calc_mask_" + t + "(m);");
    file_->AddLine(ra, "  if (ret_" + t + ") {");
    file_->AddLine(ra, "    return 0;");
    file_->AddLine(ra, "  }");
    file_->AddLine(ra, "  return 1;");
    file_->AddLine(ra, "}");

    GtSite site = BaseSite(category, site_line);
    site.expect_cross_scope = true;
    LabelBug(site, /*missing_check=*/true);
    app_.truth.Add(site);
  }

  // Scenario 2 bug (paper Fig. 1b): the callee overwrites (or ignores) a
  // caller-provided argument, silently voiding the caller's configuration.
  void EmitParamBug(bool overwritten) {
    int id = NextId();
    const std::string t = Tag(id);
    AuthorId author_y = PickBugResponsible();  // the callee implementer
    AuthorId author_x = Maintainer();
    if (author_x == author_y) {
      author_x = DifferentFrom(author_y, /*maintainer_pool=*/true);
    }
    int ry = NewRound(author_y, "implement module open " + t);
    int header_line;
    if (overwritten) {
      header_line = file_->AddLine(
          ry, "int " + prefix_ + "_log_open_" + t + "(int lpath, int bufsz_" + t + ") {");
      file_->AddLine(ry, "  bufsz_" + t + " = 1400;");
      file_->AddLine(ry, "  if (bufsz_" + t + " > lpath) {");
      file_->AddLine(ry, "    return bufsz_" + t + ";");
      file_->AddLine(ry, "  }");
      file_->AddLine(ry, "  return lpath;");
      file_->AddLine(ry, "}");
    } else {
      header_line = file_->AddLine(
          ry, "int " + prefix_ + "_log_open_" + t + "(int lpath, int flags_" + t + ") {");
      file_->AddLine(ry, "  g_sink = lpath;");
      file_->AddLine(ry, "  return lpath + 5;");
      file_->AddLine(ry, "}");
    }
    int rx = NewRound(author_x, "open headers log " + t);
    file_->AddLine(rx, "int " + prefix_ + "_open_hdr_" + t + "(int p1) {");
    file_->AddLine(rx, "  int h_" + t + " = " + prefix_ + "_log_open_" + t + "(p1, 0);");
    file_->AddLine(rx, "  return h_" + t + ";");
    file_->AddLine(rx, "}");

    GtSite site = BaseSite(SiteCategory::kRealParamUnused, header_line);
    site.expect_cross_scope = true;
    LabelBug(site, /*missing_check=*/true);
    app_.truth.Add(site);
  }

  // Field-sensitive semantic bug (paper Fig. 6b shape): a struct field is
  // assigned a meaningful value that a later reset (by another developer)
  // clobbers before use.
  void EmitFieldOverwritten() {
    int id = NextId();
    const std::string t = Tag(id);
    AuthorId author_x = PickCalmResponsible();
    AuthorId author_b = PickBugResponsible();
    if (author_b == author_x) {
      author_b = DifferentFrom(author_x, /*maintainer_pool=*/false);
    }
    int rx = NewRound(author_x, "add security context setup " + t);
    file_->AddLine(rx, "struct " + prefix_ + "_ctx_" + t + " { int host; int port; };");
    file_->AddLine(rx, "int " + prefix_ + "_setup_" + t + "(int hv, int pv) {");
    file_->AddLine(rx, "  struct " + prefix_ + "_ctx_" + t + " sc_" + t + ";");
    int site_line = file_->AddLine(rx, "  sc_" + t + ".host = hv;");
    int rb = NewRound(author_b, "reset host before send " + t);
    file_->AddLine(rb, "  sc_" + t + ".host = 0;");
    file_->AddLine(rx, "  sc_" + t + ".port = pv;");
    file_->AddLine(rx, "  return sc_" + t + ".host + sc_" + t + ".port;");
    file_->AddLine(rx, "}");

    GtSite site = BaseSite(SiteCategory::kRealFieldOverwritten, site_line);
    site.expect_cross_scope = true;
    LabelBug(site, /*missing_check=*/false);
    app_.truth.Add(site);
  }

  // A real bug entirely inside one developer's code: outside ValueCheck's
  // cross-scope envelope (§8.4.5) but visible to Coverity's UNUSED_VALUE.
  void EmitSameAuthorOverwrite() {
    int id = NextId();
    const std::string t = Tag(id);
    AuthorId author_z = PickNonCrossAuthor();
    int rz = NewRound(author_z, "bus read/write path " + t);
    file_->AddLine(rz, "static int " + prefix_ + "_bus_rd_" + t + "(int a) {");
    file_->AddLine(rz, "  return a + 2;");
    file_->AddLine(rz, "}");
    file_->AddLine(rz, "static int " + prefix_ + "_bus_wr_" + t + "(int b) {");
    file_->AddLine(rz, "  return b + 4;");
    file_->AddLine(rz, "}");
    file_->AddLine(rz, "int " + prefix_ + "_bus_xfer_" + t + "(int a, int b) {");
    int site_line =
        file_->AddLine(rz, "  int bst_" + t + " = " + prefix_ + "_bus_rd_" + t + "(a);");
    file_->AddLine(rz, "  bst_" + t + " = " + prefix_ + "_bus_wr_" + t + "(b);");
    file_->AddLine(rz, "  if (bst_" + t + ") {");
    file_->AddLine(rz, "    return 1;");
    file_->AddLine(rz, "  }");
    file_->AddLine(rz, "  return 0;");
    file_->AddLine(rz, "}");

    GtSite site = BaseSite(SiteCategory::kRealSameAuthorOverwrite, site_line);
    site.expect_cross_scope = false;
    LabelBug(site, /*missing_check=*/true);
    app_.truth.Add(site);
  }

  // ValueCheck false positives (§8.3.1): unused definitions developers admit
  // but will not fix. Shape depends on the application (see profile.h).
  void EmitMinorOrDebug(SiteCategory category) {
    int id = NextId();
    const std::string t = Tag(id);
    // The developer who leaves the intentional unused definition is the
    // file's founder: first authorship plus accumulated deliveries keep these
    // out of the top ranks (and make the FA factor load-bearing for the
    // Table 6 w/o-FA ablation). A profile-controlled handful are left by
    // newcomers instead — the rare false positive near the top of Fig. 9.
    // Half founder (FA-backed rank), half heavy contributor (DL-backed rank):
    // zeroing either DOK factor in the Table 6 ablations then demotes the
    // corresponding half of these false positives into the bug range.
    bool heavy = rng_.NextBool(0.5);
    AuthorId author_b = heavy ? DifferentFrom(owner_, /*maintainer_pool=*/true) : owner_;
    if (minor_low_dok_left_ > 0) {
      author_b = DriveBy();
      heavy = false;
      --minor_low_dok_left_;
    }
    AuthorId author_x = PickCalmResponsible();
    if (author_b == author_x) {
      author_x = DifferentFrom(author_b, /*maintainer_pool=*/true);
    }
    const bool is_debug = category == SiteCategory::kDebugCodeDefect;
    const std::string msg_tag = is_debug ? "add debug counters " : "";
    int site_line;
    if (counts_.minor_defects_overwrite_shape) {
      // Same-block overwrite, cross-author (the overwriter is a maintainer
      // who knows the first call cannot fail in this context).
      int ra = NewRound(author_x, msg_tag.empty() ? "probe helpers " + t : msg_tag + t);
      file_->AddLine(ra, "static int " + prefix_ + "_probe_a_" + t + "(int a) {");
      file_->AddLine(ra, "  return a + 1;");
      file_->AddLine(ra, "}");
      file_->AddLine(ra, "static int " + prefix_ + "_probe_b_" + t + "(int b) {");
      file_->AddLine(ra, "  return b + 3;");
      file_->AddLine(ra, "}");
      file_->AddLine(ra, "int " + prefix_ + "_mon_" + t + "(int a, int b) {");
      site_line =
          file_->AddLine(ra, "  int mst_" + t + " = " + prefix_ + "_probe_a_" + t + "(a);");
      int rb = NewRound(author_b, "prefer probe_b status " + t);
      file_->AddLine(rb, "  mst_" + t + " = " + prefix_ + "_probe_b_" + t + "(b);");
      file_->AddLine(ra, "  if (mst_" + t + ") {");
      file_->AddLine(ra, "    return 1;");
      file_->AddLine(ra, "  }");
      file_->AddLine(ra, "  return 0;");
      file_->AddLine(ra, "}");
    } else {
      // Rarely-checked ignored return: a 2-call-site callee where the other
      // site checks; the ignoring site is intentional ("cannot fail here").
      AuthorId author_y = author_x;  // callee implementer
      int ry = NewRound(author_y, "add refresh helper " + t);
      file_->AddLine(ry, "static int " + prefix_ + "_refresh_" + t + "(int v) {");
      file_->AddLine(ry, "  if (v > 2) {");
      file_->AddLine(ry, "    return v - 2;");
      file_->AddLine(ry, "  }");
      file_->AddLine(ry, "  return 0;");
      file_->AddLine(ry, "}");
      file_->AddLine(ry, "int " + prefix_ + "_refresh_chk_" + t + "(int v) {");
      file_->AddLine(ry, "  int rst_" + t + " = " + prefix_ + "_refresh_" + t + "(v);");
      file_->AddLine(ry, "  if (rst_" + t + " > 0) {");
      file_->AddLine(ry, "    return rst_" + t + ";");
      file_->AddLine(ry, "  }");
      file_->AddLine(ry, "  return 0;");
      file_->AddLine(ry, "}");
      int rx = NewRound(author_b, msg_tag.empty() ? "periodic tick " + t : msg_tag + t);
      file_->AddLine(rx, "int " + prefix_ + "_tick_" + t + "(int v) {");
      site_line = file_->AddLine(rx, "  " + prefix_ + "_refresh_" + t + "(v);");
      file_->AddLine(rx, "  return v + 9;");
      file_->AddLine(rx, "}");
    }

    if (heavy) {
      // Several additional deliveries to this file give the contributor a
      // high DL count without first authorship.
      for (int k = 0; k < 6; ++k) {
        int extra = NextId();
        int rh = NewRound(author_b, "maintenance pass " + Tag(extra));
        file_->AddLine(rh, "int " + prefix_ + "_mx_" + Tag(extra) + "(int av) {");
        file_->AddLine(rh, "  return av + " + std::to_string(k + 1) + ";");
        file_->AddLine(rh, "}");
      }
    }

    GtSite site = BaseSite(category, site_line);
    site.expect_cross_scope = true;
    LabelMinor(site);
    if (category == SiteCategory::kDebugCodeDefect) {
      site.component = "debug";
    }
    app_.truth.Add(site);
  }

  // Same-author cross-block overwrite: invisible to ValueCheck (authorship)
  // and Coverity (block-local), a false positive for fb-infer's dead store.
  void EmitInferBait() {
    int id = NextId();
    const std::string t = Tag(id);
    AuthorId author_z = PickNonCrossAuthor();
    int rz = NewRound(author_z, "scan position handling " + t);
    file_->AddLine(rz, "int " + prefix_ + "_scan_" + t + "(int av) {");
    int site_line = file_->AddLine(rz, "  int pos_" + t + " = av + 1;");
    file_->AddLine(rz, "  if (av > 3) {");
    file_->AddLine(rz, "    g_sink = av;");
    file_->AddLine(rz, "  }");
    file_->AddLine(rz, "  pos_" + t + " = av + 2;");
    file_->AddLine(rz, "  return pos_" + t + ";");
    file_->AddLine(rz, "}");

    GtSite site = BaseSite(SiteCategory::kInferBait, site_line);
    site.expect_cross_scope = false;
    LabelMinor(site);
    app_.truth.Add(site);
  }

  // Same-author same-block overwrite: Coverity UNUSED_VALUE false positive.
  void EmitCoverityBaitOverwrite() {
    int id = NextId();
    const std::string t = Tag(id);
    AuthorId author_z = PickNonCrossAuthor();
    int rz = NewRound(author_z, "staged computation " + t);
    file_->AddLine(rz, "int " + prefix_ + "_cbo_" + t + "(int av, int bv) {");
    int site_line = file_->AddLine(rz, "  int cst_" + t + " = av + 1;");
    file_->AddLine(rz, "  cst_" + t + " = bv + 2;");
    file_->AddLine(rz, "  if (cst_" + t + " > av) {");
    file_->AddLine(rz, "    return cst_" + t + ";");
    file_->AddLine(rz, "  }");
    file_->AddLine(rz, "  return bv;");
    file_->AddLine(rz, "}");

    GtSite site = BaseSite(SiteCategory::kCoverityBaitOverwrite, site_line);
    site.expect_cross_scope = false;
    LabelMinor(site);
    app_.truth.Add(site);
  }

  // One intentional ignore of a same-author callee that 9 sibling call sites
  // check: a CHECKED_RETURN false positive, same-author so ValueCheck is
  // silent.
  void EmitCoverityBaitChecked() {
    int id = NextId();
    const std::string t = Tag(id);
    AuthorId author_z = PickNonCrossAuthor();
    int rz = NewRound(author_z, "retry helpers " + t);
    file_->AddLine(rz, "static int " + prefix_ + "_try_" + t + "(int v) {");
    file_->AddLine(rz, "  if (v > 0) {");
    file_->AddLine(rz, "    return v;");
    file_->AddLine(rz, "  }");
    file_->AddLine(rz, "  return 1;");
    file_->AddLine(rz, "}");
    for (int k = 0; k < 9; ++k) {
      const std::string tk = t + "_" + std::to_string(k);
      file_->AddLine(rz, "int " + prefix_ + "_retry_" + tk + "(int v) {");
      file_->AddLine(rz, "  int ts_" + tk + " = " + prefix_ + "_try_" + t + "(v);");
      file_->AddLine(rz, "  if (ts_" + tk + " > 0) {");
      file_->AddLine(rz, "    return ts_" + tk + ";");
      file_->AddLine(rz, "  }");
      file_->AddLine(rz, "  return 0;");
      file_->AddLine(rz, "}");
    }
    file_->AddLine(rz, "int " + prefix_ + "_fire_" + t + "(int v) {");
    int site_line = file_->AddLine(rz, "  " + prefix_ + "_try_" + t + "(v);");
    file_->AddLine(rz, "  return v + 1;");
    file_->AddLine(rz, "}");

    GtSite site = BaseSite(SiteCategory::kCoverityBaitChecked, site_line);
    site.expect_cross_scope = false;
    LabelMinor(site);
    app_.truth.Add(site);
  }

  // Clean background code: every definition is used.
  void EmitFiller() {
    int id = NextId();
    const std::string t = Tag(id);
    AuthorId author = PickCalmResponsible();
    int r = NewRound(author, "utility " + t);
    file_->AddLine(r, "int " + prefix_ + "_util_" + t + "(int av, int bv) {");
    file_->AddLine(r, "  int t_" + t + " = av * 2 + bv;");
    file_->AddLine(r, "  if (t_" + t + " > bv) {");
    file_->AddLine(r, "    t_" + t + " = t_" + t + " - bv;");
    file_->AddLine(r, "  }");
    file_->AddLine(r, "  return t_" + t + ";");
    file_->AddLine(r, "}");
  }

  // --- Bulk pruned populations ---------------------------------------------

  // §5.2 cursors: cross-author (the reset that overwrites the final increment
  // was added later by a different developer), so they reach the pruning
  // stage and are charged to the cursor pattern.
  void EmitCursorSites() {
    for (int i = 0; i < counts_.cursor; ++i) {
      RotateIfLarge();
      int id = NextId();
      const std::string t = Tag(id);
      AuthorId author_x = PickCalmResponsible();
      AuthorId author_b = DifferentFrom(author_x, /*maintainer_pool=*/false);
      int rx = NewRound(author_x, "buffer formatter " + t);
      file_->AddLine(rx, "void " + prefix_ + "_fmt_" + t + "(char *co_" + t + ", char *cb_" + t +
                             ", int cv) {");
      file_->AddLine(rx, "  *co_" + t + " = cv;");
      file_->AddLine(rx, "  co_" + t + " = co_" + t + " + 1;");
      file_->AddLine(rx, "  *co_" + t + " = 0;");
      int site_line = file_->AddLine(rx, "  co_" + t + " = co_" + t + " + 1;");
      int rb = NewRound(author_b, "second pass over buffer " + t);
      file_->AddLine(rb, "  co_" + t + " = cb_" + t + ";");
      file_->AddLine(rb, "  *co_" + t + " = 9;");
      file_->AddLine(rx, "}");

      GtSite site = BaseSite(SiteCategory::kBenignCursor, site_line);
      site.expect_cross_scope = true;
      site.expect_pruned = true;
      site.expect_prune_reason = PruneReason::kCursor;
      LabelMinor(site);
      app_.truth.Add(site);
    }
  }

  // §5.1 configuration dependency: the only use of the definition lives in a
  // conditional region that the analyzed configuration disables.
  void EmitConfigSites() {
    for (int i = 0; i < counts_.config; ++i) {
      RotateIfLarge();
      int id = NextId();
      const std::string t = Tag(id);
      AuthorId author_y = Maintainer();
      AuthorId author_x = DifferentFrom(author_y, /*maintainer_pool=*/false);
      int ry = NewRound(author_y, "host helper " + t);
      file_->AddLine(ry, "static int " + prefix_ + "_mk_host_" + t + "(int x) {");
      file_->AddLine(ry, "  return x + 11;");
      file_->AddLine(ry, "}");
      int rx = NewRound(author_x, "icmp probe " + t);
      file_->AddLine(rx, "struct " + prefix_ + "_nc_" + t + " { int host; int flags; };");
      file_->AddLine(rx, "int " + prefix_ + "_netprobe_" + t + "(int xv) {");
      file_->AddLine(rx, "  struct " + prefix_ + "_nc_" + t + " ncv_" + t + ";");
      int site_line =
          file_->AddLine(rx, "  ncv_" + t + ".host = " + prefix_ + "_mk_host_" + t + "(xv);");
      file_->AddLine(rx, "  ncv_" + t + ".flags = xv + 1;");
      file_->AddLine(rx, "#if CONFIG_" + prefix_ + "_ICMP_" + t);
      file_->AddLine(rx, "  xv = icmp_ping_" + t + "(ncv_" + t + ".host);");
      file_->AddLine(rx, "#endif");
      file_->AddLine(rx, "  return ncv_" + t + ".flags + xv;");
      file_->AddLine(rx, "}");

      GtSite site = BaseSite(SiteCategory::kBenignConfig, site_line);
      site.expect_cross_scope = true;
      site.expect_pruned = true;
      site.expect_prune_reason = PruneReason::kConfigDependency;
      LabelMinor(site);
      app_.truth.Add(site);
    }
  }

  // §5.3 unused hints, parameter form: compatibility callbacks whose extra
  // parameter is attribute-marked.
  void EmitHintParamSites() {
    int remaining = counts_.hint_param;
    while (remaining > 0) {
      RotateIfLarge();
      int batch = std::min(remaining, 20);
      remaining -= batch;
      AuthorId author_y = Maintainer();
      AuthorId author_x = DifferentFrom(author_y, /*maintainer_pool=*/false);
      int ry = NewRound(author_y, "compat callbacks batch");
      std::vector<std::string> names;
      for (int k = 0; k < batch; ++k) {
        int id = NextId();
        const std::string t = Tag(id);
        const std::string name = prefix_ + "_hcb_" + t;
        int header = file_->AddLine(
            ry, "void " + name + "(int av, int bv_" + t + " [[maybe_unused]]) {");
        file_->AddLine(ry, "  g_sink = av;");
        file_->AddLine(ry, "}");
        names.push_back(name);

        GtSite site = BaseSite(SiteCategory::kBenignHintParam, header);
        site.expect_cross_scope = true;
        site.expect_pruned = true;
        site.expect_prune_reason = PruneReason::kUnusedHint;
        LabelMinor(site);
        app_.truth.Add(site);
      }
      int rx = NewRound(author_x, "register compat callbacks");
      int id = NextId();
      file_->AddLine(rx, "void " + prefix_ + "_hreg_" + Tag(id) + "(int rv) {");
      for (size_t k = 0; k < names.size(); ++k) {
        file_->AddLine(rx, "  " + names[k] + "(rv, " + std::to_string(k) + ");");
      }
      file_->AddLine(rx, "}");
    }
  }

  // §5.3 unused hints, variable form: attribute-marked results of library
  // probes.
  void EmitHintVarSites() {
    int remaining = counts_.hint_var;
    while (remaining > 0) {
      RotateIfLarge();
      int batch = std::min(remaining, 8);
      remaining -= batch;
      AuthorId author = PickCalmResponsible();
      int r = NewRound(author, "probe block");
      int fn_id = NextId();
      file_->AddLine(r, "int " + prefix_ + "_hv_fn_" + Tag(fn_id) + "(int v) {");
      for (int k = 0; k < batch; ++k) {
        int id = NextId();
        const std::string t = Tag(id);
        int line = file_->AddLine(
            r, "  int hv_" + t + " [[maybe_unused]] = ext_probe_" + prefix_ + "_" + t + "(v);");
        GtSite site = BaseSite(SiteCategory::kBenignHintVar, line);
        site.expect_cross_scope = true;  // library return value
        site.expect_pruned = true;
        site.expect_prune_reason = PruneReason::kUnusedHint;
        LabelMinor(site);
        app_.truth.Add(site);
      }
      file_->AddLine(r, "  return v + 1;");
      file_->AddLine(r, "}");
    }
  }

  // §5.4 peer definitions: logging/trace helpers whose return value nearly
  // every call site ignores. Internal groups (project-defined callee) feed
  // Smatch's false positives on Linux; external groups model libc-style
  // callees. A slice of the external sites are real bugs that peer pruning
  // wrongly drops (§8.3.2's recall misses, §8.3.4's pruning false negatives).
  void EmitPeerSites() {
    EmitPeerGroups(counts_.peer_internal, /*internal=*/true, /*real_slice=*/0);
    EmitPeerGroups(counts_.peer_external + counts_.pruned_real, /*internal=*/false,
                   /*real_slice=*/counts_.pruned_real);
  }

  void EmitPeerGroups(int total_sites, bool internal, int real_slice) {
    int remaining = total_sites;
    int real_left = real_slice;
    int prior_pruned_left = counts_.prior_bugs_pruned;
    while (remaining > 0) {
      RotateIfLarge();
      // Each group: one callee with > 10 call sites, nearly all ignoring the
      // result. Groups smaller than 12 are padded with *checking* call sites
      // (used results are not candidates, so the Table 4 counts stay exact,
      // and the unused fraction stays above the 0.5 threshold).
      int group_sites = std::min(remaining, 36);
      remaining -= group_sites;
      int pad = group_sites < 12 ? 12 - group_sites : 0;
      int id = NextId();
      const std::string g = Tag(id);
      std::string callee;
      AuthorId author_y = Maintainer();
      if (internal) {
        callee = prefix_ + "_klog_" + g;
        int ry = NewRound(author_y, "logging helper " + g);
        file_->AddLine(ry, "int " + callee + "(int lvl) {");
        file_->AddLine(ry, "  g_sink = lvl;");
        file_->AddLine(ry, "  return lvl;");
        file_->AddLine(ry, "}");
      } else {
        callee = "ext_trace_" + prefix_ + "_" + g;
      }
      int emitted = 0;
      while (emitted < group_sites) {
        AuthorId author_x = DifferentFrom(author_y, /*maintainer_pool=*/false);
        int rx = NewRound(author_x, "instrument path " + g + "_" + std::to_string(emitted));
        int fn_id = NextId();
        file_->AddLine(rx, "void " + prefix_ + "_pth_" + Tag(fn_id) + "(int v) {");
        int calls = std::min(6, group_sites - emitted);
        for (int k = 0; k < calls; ++k) {
          int line =
              file_->AddLine(rx, "  " + callee + "(v + " + std::to_string(emitted) + ");");
          ++emitted;
          GtSite site = BaseSite(internal ? SiteCategory::kBenignPeerInternal
                                          : SiteCategory::kBenignPeerExternal,
                                 line);
          site.expect_cross_scope = true;
          site.expect_pruned = true;
          site.expect_prune_reason = PruneReason::kPeerDefinition;
          if (real_left > 0) {
            site.category = SiteCategory::kPrunedRealBug;
            site.is_real_bug = true;
            site.missing_check = true;
            site.component = "other";
            site.severity = "medium";
            --real_left;
            if (prior_pruned_left > 0) {
              site.prior_bug = true;
              --prior_pruned_left;
            }
          } else {
            LabelMinor(site);
          }
          app_.truth.Add(site);
        }
        file_->AddLine(rx, "}");
      }
      if (pad > 0) {
        // Checking call sites: consume the result so they never become
        // candidates, while keeping the group above the occurrence threshold.
        AuthorId author_x = DifferentFrom(author_y, /*maintainer_pool=*/false);
        int rx = NewRound(author_x, "checked instrumentation " + g);
        for (int k = 0; k < pad; ++k) {
          const std::string tk = g + "p" + std::to_string(k);
          file_->AddLine(rx, "int " + prefix_ + "_pchk_" + tk + "(int v) {");
          file_->AddLine(rx, "  int pcv_" + tk + " = " + callee + "(v);");
          file_->AddLine(rx, "  return pcv_" + tk + ";");
          file_->AddLine(rx, "}");
        }
      }
    }
  }

  // --- Checker-framework bug classes -----------------------------------------
  //
  // These sites target the non-unused-def checkers (src/checkers/) and are
  // invisible to the unused-definition detector by construction: the slots
  // are address-taken, global, or genuinely read. Labels are set inline (no
  // LabelBug) so the prior-bug budget and the weighted-category rng draws of
  // the paper populations are untouched.

  // double-overwrite: an address-taken local stored by one developer and
  // stored again by another before any read.
  void EmitDoubleOverwriteSites() {
    for (int i = 0; i < counts_.double_overwrite; ++i) {
      RotateIfLarge();
      int id = NextId();
      const std::string t = Tag(id);
      AuthorId author_a = PickCalmResponsible();
      AuthorId author_b = PickBugResponsible();
      if (author_b == author_a) {
        author_b = DifferentFrom(author_a, /*maintainer_pool=*/false);
      }
      int ra = NewRound(author_a, "stage device state " + t);
      file_->AddLine(ra, "static int " + prefix_ + "_dov_rd_" + t + "(int *p) {");
      file_->AddLine(ra, "  return *p + 1;");
      file_->AddLine(ra, "}");
      file_->AddLine(ra, "int " + prefix_ + "_dov_" + t + "(int av) {");
      int site_line = file_->AddLine(ra, "  int dv_" + t + " = av + 1;");
      int rb = NewRound(author_b, "restage device state " + t);
      file_->AddLine(rb, "  dv_" + t + " = av + 7;");
      // The read keeps dv live after the call, so the out-param checker stays
      // silent here; the address-taken slot keeps unused-def silent.
      file_->AddLine(ra, "  return " + prefix_ + "_dov_rd_" + t + "(&dv_" + t + ") + dv_" + t +
                             ";");
      file_->AddLine(ra, "}");

      GtSite site = BaseSite(SiteCategory::kRealDoubleOverwrite, site_line);
      site.is_real_bug = true;
      site.missing_check = false;
      site.expect_cross_scope = true;
      site.component = "other";
      site.severity = "medium";
      app_.truth.Add(site);
    }
  }

  // dead-global-store: a global assigned by one developer and reset by
  // another in the same block with no intervening read or call.
  void EmitDeadGlobalStoreSites() {
    for (int i = 0; i < counts_.dead_global_store; ++i) {
      RotateIfLarge();
      int id = NextId();
      const std::string t = Tag(id);
      AuthorId author_a = PickCalmResponsible();
      AuthorId author_b = PickBugResponsible();
      if (author_b == author_a) {
        author_b = DifferentFrom(author_a, /*maintainer_pool=*/false);
      }
      int ra = NewRound(author_a, "export status flag " + t);
      file_->AddLine(ra, "int g_" + prefix_ + "_st_" + t + ";");
      file_->AddLine(ra, "int " + prefix_ + "_dgs_" + t + "(int v) {");
      int site_line = file_->AddLine(ra, "  g_" + prefix_ + "_st_" + t + " = v + 1;");
      int rb = NewRound(author_b, "clear status flag " + t);
      file_->AddLine(rb, "  g_" + prefix_ + "_st_" + t + " = 0;");
      file_->AddLine(ra, "  return v;");
      file_->AddLine(ra, "}");

      GtSite site = BaseSite(SiteCategory::kRealDeadGlobalStore, site_line);
      site.is_real_bug = true;
      site.missing_check = false;
      site.expect_cross_scope = true;
      site.component = "other";
      site.severity = "medium";
      app_.truth.Add(site);
    }
  }

  // out-param-unused: a callee (one developer) fills an out-parameter whose
  // value the caller (another developer) never reads.
  void EmitOutParamSites() {
    for (int i = 0; i < counts_.out_param_unused; ++i) {
      RotateIfLarge();
      int id = NextId();
      const std::string t = Tag(id);
      AuthorId author_y = PickCalmResponsible();  // callee implementer
      AuthorId author_x = PickBugResponsible();   // forgetful caller
      if (author_x == author_y) {
        author_x = DifferentFrom(author_y, /*maintainer_pool=*/false);
      }
      int ry = NewRound(author_y, "fill result record " + t);
      file_->AddLine(ry, "static int " + prefix_ + "_fill_" + t + "(int *out, int v) {");
      file_->AddLine(ry, "  *out = v + 3;");
      file_->AddLine(ry, "  return 0;");
      file_->AddLine(ry, "}");
      int rx = NewRound(author_x, "query record status " + t);
      file_->AddLine(rx, "int " + prefix_ + "_opu_" + t + "(int v) {");
      file_->AddLine(rx, "  int q_" + t + " = 0;");
      int site_line =
          file_->AddLine(rx, "  if (" + prefix_ + "_fill_" + t + "(&q_" + t + ", v) > 0) {");
      file_->AddLine(rx, "    g_sink = v;");
      file_->AddLine(rx, "  }");
      file_->AddLine(rx, "  return v + 1;");
      file_->AddLine(rx, "}");

      GtSite site = BaseSite(SiteCategory::kRealOutParamUnused, site_line);
      site.is_real_bug = true;
      site.missing_check = true;
      site.expect_cross_scope = true;
      site.component = "other";
      site.severity = "medium";
      app_.truth.Add(site);
    }
  }

  // stale-copy: one developer snapshots a value, another updates the source,
  // and the snapshot is read afterwards.
  void EmitStaleCopySites() {
    for (int i = 0; i < counts_.stale_copy; ++i) {
      RotateIfLarge();
      int id = NextId();
      const std::string t = Tag(id);
      AuthorId author_a = PickCalmResponsible();
      AuthorId author_b = PickBugResponsible();
      if (author_b == author_a) {
        author_b = DifferentFrom(author_a, /*maintainer_pool=*/false);
      }
      int ra = NewRound(author_a, "snapshot baseline " + t);
      file_->AddLine(ra, "int " + prefix_ + "_stc_" + t + "(int v) {");
      file_->AddLine(ra, "  int base_" + t + " = v + 2;");
      int site_line = file_->AddLine(ra, "  int snap_" + t + " = base_" + t + ";");
      int rb = NewRound(author_b, "rebase before publish " + t);
      file_->AddLine(rb, "  base_" + t + " = v + 9;");
      file_->AddLine(ra, "  g_sink = snap_" + t + ";");
      file_->AddLine(ra, "  return base_" + t + ";");
      file_->AddLine(ra, "}");

      GtSite site = BaseSite(SiteCategory::kRealStaleCopy, site_line);
      site.is_real_bug = true;
      site.missing_check = false;
      site.expect_cross_scope = true;
      site.component = "other";
      site.severity = "medium";
      app_.truth.Add(site);
    }
  }

  // Non-cross-scope survivors: defensive zero initializers overwritten by the
  // same author. Invisible to every baseline (sentinel whitelists) and to
  // cross-scope ValueCheck; they flood the w/o-Authorship ablation (§8.5.1).
  void EmitDefensiveInit() {
    int id = NextId();
    const std::string t = Tag(id);
    AuthorId author = PickNonCrossAuthor();
    int r = NewRound(author, "compute helper " + t);
    file_->AddLine(r, "int " + prefix_ + "_dcalc_" + t + "(int av, int bv) {");
    int site_line = file_->AddLine(r, "  int dres_" + t + " = 0;");
    file_->AddLine(r, "  dres_" + t + " = av * 3 + bv;");
    file_->AddLine(r, "  return dres_" + t + ";");
    file_->AddLine(r, "}");

    GtSite site = BaseSite(SiteCategory::kDefensiveInit, site_line);
    site.expect_cross_scope = false;
    LabelMinor(site);
    app_.truth.Add(site);
  }

  const ProjectProfile& profile_;
  const ProfileCounts& counts_;
  Rng rng_;
  GeneratedApp app_;
  std::string prefix_;

  std::unique_ptr<SyntheticFile> file_;
  int file_budget_ = 520;
  int file_seq_ = 0;
  AuthorId owner_ = kInvalidAuthor;
  int64_t age_days_ = 2400;
  int64_t last_round_age_ = 2400;
  int site_counter_ = 0;
  int prior_detected_left_ = 0;
  int minor_low_dok_left_ = 0;
};

}  // namespace

GeneratedApp GenerateApp(const ProjectProfile& profile) {
  AppGenerator generator(profile);
  return generator.Run();
}

}  // namespace vc

#include "src/corpus/synthetic_file.h"

namespace vc {

int SyntheticFile::AddRound(AuthorId author, int64_t timestamp, std::string message) {
  rounds_.push_back({author, timestamp, std::move(message)});
  return static_cast<int>(rounds_.size()) - 1;
}

int SyntheticFile::AddLine(int round, std::string text) {
  lines_.push_back({round, std::move(text)});
  return static_cast<int>(lines_.size());
}

void SyntheticFile::CommitTo(Repository& repo) const {
  for (size_t r = 0; r < rounds_.size(); ++r) {
    bool has_lines = false;
    std::string content;
    for (const Line& line : lines_) {
      if (line.round <= static_cast<int>(r)) {
        content += line.text;
        content += '\n';
      }
      if (line.round == static_cast<int>(r)) {
        has_lines = true;
      }
    }
    if (!has_lines) {
      continue;  // no-op rounds are skipped
    }
    repo.AddCommit(rounds_[r].author, rounds_[r].timestamp, rounds_[r].message,
                   {{path_, content}});
  }
}

}  // namespace vc

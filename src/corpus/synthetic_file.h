// Builds one source file together with its commit history.
//
// Lines are appended in final (head) order, each tagged with the round that
// introduces it; version r of the file consists of the lines with round <= r
// in order. Committing replays the rounds into the Repository so blame
// attributes every line to its round's author — giving the generator exact
// control over line-level authorship, which the cross-scope sites depend on.

#ifndef VALUECHECK_SRC_CORPUS_SYNTHETIC_FILE_H_
#define VALUECHECK_SRC_CORPUS_SYNTHETIC_FILE_H_

#include <string>
#include <vector>

#include "src/vcs/repository.h"

namespace vc {

class SyntheticFile {
 public:
  explicit SyntheticFile(std::string path) : path_(std::move(path)) {}

  // Rounds must be added with non-decreasing timestamps.
  int AddRound(AuthorId author, int64_t timestamp, std::string message);

  // Appends a line introduced in `round`; returns its 1-based head line
  // number. Critical lines (definitions, overwrites, call sites) must be
  // textually unique within the file so the diff-based blame replay cannot
  // mis-attribute them; the generator guarantees this via per-site naming.
  int AddLine(int round, std::string text);

  int NumLines() const { return static_cast<int>(lines_.size()); }
  int NumRounds() const { return static_cast<int>(rounds_.size()); }
  const std::string& path() const { return path_; }

  // Emits one commit per non-empty round.
  void CommitTo(Repository& repo) const;

 private:
  struct Round {
    AuthorId author;
    int64_t timestamp;
    std::string message;
  };
  struct Line {
    int round;
    std::string text;
  };

  std::string path_;
  std::vector<Round> rounds_;
  std::vector<Line> lines_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_CORPUS_SYNTHETIC_FILE_H_

// The `valuecheck serve` daemon core (DESIGN.md §19).
//
// AnalysisServer owns the listening socket (Unix-domain or TCP loopback), an
// accept thread, one thread per client connection, the AdmissionController
// that bounds concurrent work, and the per-project ProjectHost map that keeps
// IncrementalEngine state warm across requests. The robustness envelope:
//
//   * per-request deadlines — a request's deadline_ms becomes the analysis
//     unit budget (ResourceBudget::unit_deadline_seconds), so an over-budget
//     unit quarantines and the request degrades to partial results instead of
//     hanging; a request whose deadline already expired while queued is
//     answered "deadline" without running at all;
//   * bounded admission — over max_inflight requests queue, over max_queue
//     they shed with RETRY_AFTER (see admission.h);
//   * per-request quarantine — any exception a request provokes (malformed
//     config, unknown checker, analysis fault) is caught at the request
//     boundary and returned as an error frame; the process and the other
//     connections are untouched;
//   * slow-loris guard — a connection idling mid-frame past
//     idle_read_timeout_seconds is dropped with a protocol error;
//   * drain — RequestDrain() stops accepting, sheds queued work, lets
//     in-flight requests finish and respond, then Wait() returns so the
//     caller can flush ledger/metrics artifacts. SIGTERM in the CLI maps
//     straight onto this pair.
//
// The server publishes a vc_serve_* metric family through the global
// MetricsRegistry and keeps its own exact ServeTotals (including a latency
// histogram) for the drain-time ledger record.

#ifndef VALUECHECK_SRC_SERVER_SERVER_H_
#define VALUECHECK_SRC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/analysis.h"
#include "src/server/admission.h"
#include "src/server/project_host.h"
#include "src/server/request.h"
#include "src/support/metrics.h"

namespace vc {

struct ServerOptions {
  // Unix-domain socket path; empty selects TCP on the loopback interface.
  std::string socket_path;
  // TCP port (0 = kernel-assigned ephemeral; read it back via port()).
  int tcp_port = 0;
  // Admission envelope.
  int max_inflight = 2;
  int max_queue = 8;
  // Drop a connection idling mid-frame longer than this (slow-loris guard).
  double idle_read_timeout_seconds = 30.0;
  // Deadline applied when a request carries none (0 = unlimited).
  double default_deadline_ms = 0.0;
  // Per-project summary ring size (history/diff/report answers).
  size_t history_limit = 64;
  // Honor the request debug_sleep_ms field. Tests only: lets a request hold
  // an execution slot deterministically to provoke queueing and shedding.
  bool allow_debug_sleep = false;
  // Base analysis configuration (macros, traits, prune patterns). Per-request
  // checkers/jobs/fault/deadline are folded on top per request.
  AnalysisOptions analysis;
};

// Exact end-of-run accounting (the chaos-run invariant:
// requests == succeeded + degraded + shed + deadline + failed).
struct ServeTotals {
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t succeeded = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t deadline = 0;
  uint64_t failed = 0;
  uint64_t protocol_errors = 0;
  uint64_t cached = 0;
  uint64_t engine_rebuilds = 0;
  uint64_t projects = 0;
  int inflight_high_water = 0;
  int queue_high_water = 0;
  double wall_seconds = 0.0;
  uint64_t latency_count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  uint64_t Accounted() const {
    return succeeded + degraded + shed + deadline + failed;
  }
};

class AnalysisServer {
 public:
  explicit AnalysisServer(ServerOptions options);
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  // Binds, listens, and starts the accept thread. False (with *error) on any
  // socket failure.
  bool Start(std::string* error);

  // Resolved TCP port (after Start, TCP mode only).
  int port() const { return port_; }
  // "unix:<path>" or "tcp:127.0.0.1:<port>" — for log lines and clients.
  std::string address() const;

  // Begins the drain: stop accepting, shed queued work, finish in-flight.
  // Idempotent; also triggered by a client "shutdown" request.
  void RequestDrain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  // Joins every thread. Returns once all connections are closed and all
  // admitted requests have responded.
  void Wait();

  ServeTotals totals() const;

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);
  // Handles one request payload end to end; returns the response payload.
  std::string HandleRequest(const std::string& payload);
  std::string HandleAnalyze(const ServeRequest& request,
                            std::chrono::steady_clock::time_point arrival);
  std::string HandleProjectQuery(const ServeRequest& request);
  ProjectHost& HostFor(const std::string& project);
  // Folds one request's overrides into the base AnalysisOptions. Throws
  // std::invalid_argument on a bad fault spec.
  AnalysisOptions OptionsFor(const ServeRequest& request) const;

  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::thread accept_thread_;
  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;

  AdmissionController admission_;
  mutable std::mutex hosts_mutex_;
  std::map<std::string, std::unique_ptr<ProjectHost>> hosts_;

  // Exact totals (relaxed atomics; read coherently after Wait()).
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> succeeded_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> cached_{0};
  Histogram request_latency_;  // exact percentiles for the ledger record
  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point end_time_;
  std::atomic<bool> ended_{false};

  // vc_serve_* registry family (Prometheus export / vc_obs_lint).
  Counter& m_requests_;
  Counter& m_ok_;
  Counter& m_degraded_;
  Counter& m_shed_;
  Counter& m_deadline_;
  Counter& m_failed_;
  Counter& m_protocol_errors_;
  Counter& m_connections_;
  Counter& m_cached_;
  Counter& m_engine_rebuilds_;
  Histogram& m_request_seconds_;
  Histogram& m_queue_wait_seconds_;
  Gauge& m_inflight_hwm_;
  Gauge& m_queue_depth_hwm_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SERVER_SERVER_H_

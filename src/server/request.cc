#include "src/server/request.h"

#include "src/support/json_reader.h"
#include "src/support/json_writer.h"

namespace vc {

const char* ServeMethodName(ServeMethod method) {
  switch (method) {
    case ServeMethod::kPing:
      return "ping";
    case ServeMethod::kAnalyze:
      return "analyze";
    case ServeMethod::kDiff:
      return "diff";
    case ServeMethod::kHistory:
      return "history";
    case ServeMethod::kReport:
      return "report";
    case ServeMethod::kShutdown:
      return "shutdown";
  }
  return "?";
}

bool ParseServeRequest(const std::string& payload, ServeRequest* out, std::string* error) {
  std::string parse_error;
  std::optional<JsonValue> value = ParseJson(payload, &parse_error);
  if (!value.has_value()) {
    *error = "invalid JSON payload: " + parse_error;
    return false;
  }
  if (!value->IsObject()) {
    *error = "request payload must be a JSON object";
    return false;
  }
  out->id = value->GetString("id");
  const std::string method = value->GetString("method");
  if (method == "ping") {
    out->method = ServeMethod::kPing;
  } else if (method == "analyze") {
    out->method = ServeMethod::kAnalyze;
  } else if (method == "diff") {
    out->method = ServeMethod::kDiff;
  } else if (method == "history") {
    out->method = ServeMethod::kHistory;
  } else if (method == "report") {
    out->method = ServeMethod::kReport;
  } else if (method == "shutdown") {
    out->method = ServeMethod::kShutdown;
  } else if (method.empty()) {
    *error = "request has no \"method\"";
    return false;
  } else {
    *error = "unknown method \"" + method + "\"";
    return false;
  }
  out->project = value->GetString("project");
  const bool needs_project = out->method != ServeMethod::kPing &&
                             out->method != ServeMethod::kShutdown;
  if (needs_project && out->project.empty()) {
    *error = std::string(ServeMethodName(out->method)) + " request has no \"project\"";
    return false;
  }
  if (value->Has("sources")) {
    const JsonValue& sources = value->Get("sources");
    if (!sources.IsArray()) {
      *error = "\"sources\" must be an array";
      return false;
    }
    for (const JsonValue& entry : sources.Items()) {
      std::string path = entry.GetString("path");
      if (path.empty()) {
        *error = "source entry has no \"path\"";
        return false;
      }
      out->sources.emplace_back(std::move(path), entry.GetString("content"));
    }
  }
  if (out->method == ServeMethod::kAnalyze && out->sources.empty()) {
    *error = "analyze request has no \"sources\"";
    return false;
  }
  out->jobs = static_cast<int>(value->GetInt("jobs", 1));
  if (out->jobs < 0) {
    *error = "\"jobs\" must be >= 0";
    return false;
  }
  if (value->Has("checkers")) {
    for (const JsonValue& entry : value->Get("checkers").Items()) {
      out->checkers.push_back(entry.AsString());
    }
  }
  out->fault_spec = value->GetString("fault_inject");
  out->deadline_ms = value->GetDouble("deadline_ms", 0.0);
  out->render = value->GetString("render", "csv");
  if (out->render != "csv" && out->render != "json") {
    *error = "\"render\" must be \"csv\" or \"json\"";
    return false;
  }
  out->debug_sleep_ms = value->GetInt("debug_sleep_ms", 0);
  return true;
}

std::string MakeErrorResponse(const std::string& id, const std::string& code,
                              const std::string& message) {
  JsonWriter json;
  json.BeginObject();
  json.String("id", id);
  json.String("status", "error");
  json.String("code", code);
  json.String("message", message);
  json.EndObject();
  return json.str();
}

std::string MakeShedResponse(const std::string& id, int64_t retry_after_ms,
                             const std::string& reason) {
  JsonWriter json;
  json.BeginObject();
  json.String("id", id);
  json.String("status", "shed");
  json.Int("retry_after_ms", retry_after_ms);
  json.String("reason", reason);
  json.EndObject();
  return json.str();
}

std::string MakeDeadlineResponse(const std::string& id, double waited_ms) {
  JsonWriter json;
  json.BeginObject();
  json.String("id", id);
  json.String("status", "deadline");
  json.Double("waited_ms", waited_ms);
  json.EndObject();
  return json.str();
}

std::string MakePongResponse(const std::string& id) {
  JsonWriter json;
  json.BeginObject();
  json.String("id", id);
  json.String("status", "ok");
  json.String("method", "ping");
  json.EndObject();
  return json.str();
}

}  // namespace vc

// Admission control for the serve daemon (DESIGN.md §19).
//
// The controller enforces the two-number overload contract: at most
// `max_inflight` requests execute concurrently, and at most `max_queue`
// requests wait for a slot. Everything past that is SHED — refused with an
// explicit RETRY_AFTER hint — instead of growing an unbounded backlog whose
// queueing delay would blow every deadline anyway (the classic overload
// collapse). Draining is a one-way admission state: new arrivals shed
// immediately while in-flight work runs to completion.
//
// State machine per request:
//
//   arrive ──> shed(draining)            when draining
//          ──> shed(queue_full)          when waiters == max_queue
//          ──> wait ──> admitted ──> Leave()
//                   └─> shed(draining)   drain began while queued
//
// The controller is pure synchronization (mutex + condvar + counters): no
// sockets, no analysis types, so overload scenarios are unit-testable with
// plain threads.

#ifndef VALUECHECK_SRC_SERVER_ADMISSION_H_
#define VALUECHECK_SRC_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace vc {

class AdmissionController {
 public:
  struct Options {
    int max_inflight = 2;
    int max_queue = 8;
  };

  enum class Outcome {
    kAdmitted,
    kShedQueueFull,
    kShedDraining,
  };

  explicit AdmissionController(Options options);

  // Blocks until a slot is free (kAdmitted — caller MUST Leave() when done)
  // or the request is shed. Never blocks when shedding.
  Outcome Enter();

  // Releases an admitted request's slot.
  void Leave();

  // Flips to draining: queued waiters wake and shed, future arrivals shed.
  void BeginDrain();
  bool draining() const;

  // Blocks until no request is in flight or queued (drain completion).
  void WaitIdle();

  // Suggested client back-off when shedding: one mean service time per
  // waiter ahead of the client, floored at 10ms. Monotone in load, so
  // loadgen's backoff scales with actual pressure.
  int64_t RetryAfterMs() const;

  // Observability (sampled; exact under the lock).
  int inflight() const;
  int queued() const;
  int inflight_high_water() const;
  int queued_high_water() const;
  const Options& options() const { return options_; }

  // Feeds the RetryAfterMs estimate; call with each completed request's
  // execution seconds.
  void RecordServiceSeconds(double seconds);

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  std::condition_variable idle_;
  int inflight_ = 0;
  int queued_ = 0;
  int inflight_hwm_ = 0;
  int queued_hwm_ = 0;
  bool draining_ = false;
  double mean_service_seconds_ = 0.05;  // prior until real samples arrive
  int64_t service_samples_ = 0;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SERVER_ADMISSION_H_

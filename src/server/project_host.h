// Warm per-project analysis state for the serve daemon (DESIGN.md §19).
//
// A ProjectHost is the daemon-side identity of one client project (a TPC-C
// "warehouse"): it owns a Repository replica whose commits are the project's
// analyzed snapshots, an IncrementalEngine kept warm across requests, and a
// bounded in-memory history of analysis summaries that the diff/history/
// report methods answer from without re-running anything.
//
// Equivalence contract (locked by tests/server_test.cc at jobs 1/2/8): an
// analyze response's findings are byte-identical to a batch
// `valuecheck analyze` over the same sources with the same checker set. The
// host therefore analyzes with the batch sources-mode option shape
// (cross_scope_only off, ranking off — no real authorship exists for pasted
// sources) while still commit-feeding the engine, whose carry-over machinery
// is itself proven byte-identical to full runs (DESIGN.md §18).
//
// Request flow per analyze:
//   snapshot == head, same config  -> cached response (no analysis)
//   otherwise                      -> synthetic commit (full-snapshot diff
//                                     against head) -> engine AnalyzeCommit
//   config key changed             -> engine rebuilt (correctness over
//                                     warmth), then fed as above
//
// Thread safety: all public methods serialize on a per-host mutex, so two
// clients analyzing the same warehouse never interleave engine state; hosts
// for different projects run fully in parallel.

#ifndef VALUECHECK_SRC_SERVER_PROJECT_HOST_H_
#define VALUECHECK_SRC_SERVER_PROJECT_HOST_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/incremental.h"
#include "src/vcs/repository.h"

namespace vc {

// One past analysis, summarized for diff/history/report answers.
struct ProjectRunSummary {
  int64_t commit = -1;        // replica commit analyzed (-1: cached repeat)
  int64_t request_ordinal = 0;
  int findings = 0;
  bool degraded = false;
  int quarantined = 0;
  int files_changed = 0;
  int functions_dirty = 0;
  int findings_new = 0;
  int findings_fixed = 0;
  double seconds = 0.0;
  std::vector<std::string> fingerprints;  // finding identity set at the commit
  std::vector<AnalysisReport::CheckerStat> checker_stats;
};

struct ProjectAnalyzeOutcome {
  AnalysisReport report;
  bool cached = false;       // snapshot + config unchanged; report replayed
  bool rebuilt_engine = false;
  int64_t commit = -1;
  int files_changed = 0;
  int functions_dirty = 0;
  int findings_new = 0;
  int findings_fixed = 0;
};

class ProjectHost {
 public:
  // `base` supplies everything a request doesn't override (config, traits,
  // prune/rank toggles). `history_limit` bounds the summary ring.
  ProjectHost(std::string name, AnalysisOptions base, size_t history_limit = 64);

  const std::string& name() const { return name_; }

  // Runs (or replays) analysis of `sources` under `options`. `options` must
  // already carry the request's checkers/fault/budget/jobs folded into the
  // base; the host only decides engine reuse vs rebuild.
  ProjectAnalyzeOutcome Analyze(
      const std::vector<std::pair<std::string, std::string>>& sources,
      const AnalysisOptions& options);

  // Most recent summaries, newest first, up to `limit`.
  std::vector<ProjectRunSummary> History(size_t limit) const;

  // Newest summary; false when the project was never analyzed.
  bool Latest(ProjectRunSummary* out) const;

  // Fingerprint delta between the two newest distinct analyses. False when
  // fewer than two analyses exist.
  bool Diff(std::vector<std::string>* added, std::vector<std::string>* removed) const;

  int64_t analyses() const;
  int64_t engine_rebuilds() const;

 private:
  const std::string name_;
  const AnalysisOptions base_;
  const size_t history_limit_;

  mutable std::mutex mutex_;
  Repository repo_;               // authoritative snapshot history
  AuthorId serve_author_ = kInvalidAuthor;
  std::unique_ptr<IncrementalEngine> engine_;
  std::string engine_key_;        // MakeCacheConfigKey of the live engine
  std::shared_ptr<AnalysisReport> last_report_;  // for cached replays
  int64_t request_ordinal_ = 0;   // deterministic commit timestamps
  int64_t analyses_ = 0;
  int64_t engine_rebuilds_ = 0;
  std::deque<ProjectRunSummary> history_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SERVER_PROJECT_HOST_H_

#include "src/server/protocol.h"

namespace vc {

namespace {

constexpr size_t kPrefixBytes = 4;

uint32_t DecodePrefix(const std::string& buffer) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(buffer[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(buffer[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(buffer[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(buffer[3]));
}

}  // namespace

std::string EncodeFrame(const std::string& payload) {
  uint32_t n = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kPrefixBytes + payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>(n & 0xff));
  frame += payload;
  return frame;
}

void FrameDecoder::Feed(const char* data, size_t n) {
  if (error_) {
    return;
  }
  buffer_.append(data, n);
  // One Feed can complete several frames (a client may batch requests into a
  // single write); drain every complete one.
  while (buffer_.size() >= kPrefixBytes) {
    uint32_t length = DecodePrefix(buffer_);
    if (length > kMaxFramePayload) {
      error_ = true;
      error_message_ = "frame payload of " + std::to_string(length) +
                       " bytes exceeds the " + std::to_string(kMaxFramePayload) +
                       "-byte limit";
      buffer_.clear();
      return;
    }
    if (buffer_.size() < kPrefixBytes + length) {
      return;  // payload still arriving
    }
    ready_.push_back(buffer_.substr(kPrefixBytes, length));
    buffer_.erase(0, kPrefixBytes + length);
  }
}

bool FrameDecoder::Pop(std::string* payload) {
  if (ready_.empty()) {
    return false;
  }
  *payload = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

}  // namespace vc

#include "src/server/admission.h"

namespace vc {

AdmissionController::AdmissionController(Options options) : options_(options) {
  if (options_.max_inflight < 1) {
    options_.max_inflight = 1;
  }
  if (options_.max_queue < 0) {
    options_.max_queue = 0;
  }
}

AdmissionController::Outcome AdmissionController::Enter() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (draining_) {
    return Outcome::kShedDraining;
  }
  if (inflight_ < options_.max_inflight) {
    ++inflight_;
    if (inflight_ > inflight_hwm_) {
      inflight_hwm_ = inflight_;
    }
    return Outcome::kAdmitted;
  }
  if (queued_ >= options_.max_queue) {
    return Outcome::kShedQueueFull;
  }
  ++queued_;
  if (queued_ > queued_hwm_) {
    queued_hwm_ = queued_;
  }
  slot_free_.wait(lock, [this] {
    return draining_ || inflight_ < options_.max_inflight;
  });
  --queued_;
  if (draining_) {
    if (inflight_ == 0 && queued_ == 0) {
      idle_.notify_all();
    }
    return Outcome::kShedDraining;
  }
  ++inflight_;
  if (inflight_ > inflight_hwm_) {
    inflight_hwm_ = inflight_;
  }
  return Outcome::kAdmitted;
}

void AdmissionController::Leave() {
  std::lock_guard<std::mutex> lock(mutex_);
  --inflight_;
  slot_free_.notify_one();
  if (inflight_ == 0 && queued_ == 0) {
    idle_.notify_all();
  }
}

void AdmissionController::BeginDrain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
  slot_free_.notify_all();
  if (inflight_ == 0 && queued_ == 0) {
    idle_.notify_all();
  }
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void AdmissionController::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return inflight_ == 0 && queued_ == 0; });
}

int64_t AdmissionController::RetryAfterMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double estimate_ms = mean_service_seconds_ * 1e3 * static_cast<double>(queued_ + 1);
  return estimate_ms < 10.0 ? 10 : static_cast<int64_t>(estimate_ms);
}

int AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_;
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

int AdmissionController::inflight_high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_hwm_;
}

int AdmissionController::queued_high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_hwm_;
}

void AdmissionController::RecordServiceSeconds(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Running mean; enough signal for a back-off hint.
  ++service_samples_;
  mean_service_seconds_ +=
      (seconds - mean_service_seconds_) / static_cast<double>(service_samples_);
}

}  // namespace vc

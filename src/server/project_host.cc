#include "src/server/project_host.h"

#include <algorithm>
#include <map>
#include <set>

namespace vc {

namespace {

// Fingerprints of a report's findings, sorted so set differences are
// deterministic regardless of ranking order.
std::vector<std::string> SortedFingerprints(const AnalysisReport& report) {
  std::vector<std::string> prints;
  prints.reserve(report.findings.size());
  for (const UnusedDefCandidate& finding : report.findings) {
    prints.push_back(finding.fingerprint);
  }
  std::sort(prints.begin(), prints.end());
  return prints;
}

}  // namespace

ProjectHost::ProjectHost(std::string name, AnalysisOptions base, size_t history_limit)
    : name_(std::move(name)), base_(std::move(base)), history_limit_(history_limit) {}

ProjectAnalyzeOutcome ProjectHost::Analyze(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const AnalysisOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  ProjectAnalyzeOutcome outcome;

  // Snapshot in sorted path order — the same order the batch CLI's directory
  // walk feeds RunOnSources, so slot ids (and with them merge order and CSV
  // bytes) line up between daemon and batch.
  std::map<std::string, std::string> snapshot(sources.begin(), sources.end());

  // Delta against the replica head.
  std::map<std::string, std::string> changed;
  std::set<std::string> deleted;
  for (const std::string& path : repo_.ListFiles()) {
    auto it = snapshot.find(path);
    if (it == snapshot.end()) {
      deleted.insert(path);
    }
  }
  for (const auto& [path, content] : snapshot) {
    std::optional<std::string> head = repo_.Head(path);
    if (!head.has_value() || *head != content) {
      changed[path] = content;
    }
  }
  const bool snapshot_unchanged =
      changed.empty() && deleted.empty() && repo_.NumCommits() > 0;

  const std::string key = MakeCacheConfigKey(options);
  if (snapshot_unchanged && engine_ != nullptr && key == engine_key_ &&
      last_report_ != nullptr) {
    // Identical snapshot under an identical configuration: the previous
    // report IS this request's report (jobs never changes results).
    outcome.report = *last_report_;
    outcome.cached = true;
    outcome.commit = repo_.NumCommits() - 1;
    return outcome;
  }

  if (engine_ == nullptr || key != engine_key_) {
    // A different checker set / budget / fault spec invalidates carried
    // detect results wholesale; rebuild rather than risk stale carry-over.
    // The fresh engine replays the replica's commit history by itself.
    engine_ = std::make_unique<IncrementalEngine>(options);
    engine_key_ = key;
    if (repo_.NumCommits() > 0) {
      ++engine_rebuilds_;
      outcome.rebuilt_engine = true;
    }
  }

  if (!snapshot_unchanged || repo_.NumCommits() == 0) {
    if (serve_author_ == kInvalidAuthor) {
      serve_author_ = repo_.AddAuthor("serve");
    }
    // Deterministic timestamp: the per-project request ordinal, so replica
    // history (and everything derived from it) is reproducible run to run.
    repo_.AddCommit(serve_author_, request_ordinal_,
                    "serve snapshot " + std::to_string(request_ordinal_),
                    std::move(changed), std::move(deleted));
  }
  ++request_ordinal_;

  engine_->set_jobs(options.jobs);
  const CommitId head = static_cast<CommitId>(repo_.NumCommits() - 1);
  IncrementalResult result = engine_->AnalyzeCommit(repo_, head);

  outcome.report = result.report;
  outcome.commit = head;
  outcome.files_changed = result.files_changed;
  outcome.functions_dirty = result.functions_dirty;
  outcome.findings_new = result.findings_new;
  outcome.findings_fixed = result.findings_fixed;

  last_report_ = std::make_shared<AnalysisReport>(result.report);
  ++analyses_;

  ProjectRunSummary summary;
  summary.commit = head;
  summary.request_ordinal = request_ordinal_ - 1;
  summary.findings = static_cast<int>(result.report.findings.size());
  summary.degraded = result.report.degraded;
  summary.quarantined = static_cast<int>(result.report.quarantined.size());
  summary.files_changed = result.files_changed;
  summary.functions_dirty = result.functions_dirty;
  summary.findings_new = result.findings_new;
  summary.findings_fixed = result.findings_fixed;
  summary.seconds = result.seconds;
  summary.fingerprints = SortedFingerprints(result.report);
  summary.checker_stats = result.report.checker_stats;
  history_.push_back(std::move(summary));
  while (history_.size() > history_limit_) {
    history_.pop_front();
  }
  return outcome;
}

std::vector<ProjectRunSummary> ProjectHost::History(size_t limit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ProjectRunSummary> out;
  for (auto it = history_.rbegin(); it != history_.rend() && out.size() < limit; ++it) {
    out.push_back(*it);
  }
  return out;
}

bool ProjectHost::Latest(ProjectRunSummary* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (history_.empty()) {
    return false;
  }
  *out = history_.back();
  return true;
}

bool ProjectHost::Diff(std::vector<std::string>* added,
                       std::vector<std::string>* removed) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (history_.size() < 2) {
    return false;
  }
  const std::vector<std::string>& prev = history_[history_.size() - 2].fingerprints;
  const std::vector<std::string>& now = history_.back().fingerprints;
  added->clear();
  removed->clear();
  std::set_difference(now.begin(), now.end(), prev.begin(), prev.end(),
                      std::back_inserter(*added));
  std::set_difference(prev.begin(), prev.end(), now.begin(), now.end(),
                      std::back_inserter(*removed));
  return true;
}

int64_t ProjectHost::analyses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return analyses_;
}

int64_t ProjectHost::engine_rebuilds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engine_rebuilds_;
}

}  // namespace vc

#include "src/server/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <utility>

#include "src/core/report_formats.h"
#include "src/server/protocol.h"
#include "src/support/events.h"
#include "src/support/json_writer.h"

namespace vc {

namespace {

// Sends the whole buffer; MSG_NOSIGNAL turns a dead peer into EPIPE instead
// of a process-wide SIGPIPE (the daemon must survive any client behavior).
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

double ElapsedSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

}  // namespace

AnalysisServer::AnalysisServer(ServerOptions options)
    : options_(std::move(options)),
      admission_({options_.max_inflight, options_.max_queue}),
      m_requests_(MetricsRegistry::Global().GetCounter("serve.requests")),
      m_ok_(MetricsRegistry::Global().GetCounter("serve.ok")),
      m_degraded_(MetricsRegistry::Global().GetCounter("serve.degraded")),
      m_shed_(MetricsRegistry::Global().GetCounter("serve.shed")),
      m_deadline_(MetricsRegistry::Global().GetCounter("serve.deadline")),
      m_failed_(MetricsRegistry::Global().GetCounter("serve.failed")),
      m_protocol_errors_(MetricsRegistry::Global().GetCounter("serve.protocol_errors")),
      m_connections_(MetricsRegistry::Global().GetCounter("serve.connections")),
      m_cached_(MetricsRegistry::Global().GetCounter("serve.cached_responses")),
      m_engine_rebuilds_(MetricsRegistry::Global().GetCounter("serve.engine_rebuilds")),
      m_request_seconds_(MetricsRegistry::Global().GetHistogram("serve.request_seconds")),
      m_queue_wait_seconds_(
          MetricsRegistry::Global().GetHistogram("serve.queue_wait_seconds")),
      m_inflight_hwm_(MetricsRegistry::Global().GetGauge("serve.inflight_hwm")),
      m_queue_depth_hwm_(MetricsRegistry::Global().GetGauge("serve.queue_depth_hwm")) {}

AnalysisServer::~AnalysisServer() {
  if (started_.load(std::memory_order_relaxed)) {
    RequestDrain();
    Wait();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
}

bool AnalysisServer::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = what + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (!options_.socket_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return fail("socket(AF_UNIX)");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) {
        *error = "socket path too long: " + options_.socket_path;
      }
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(options_.socket_path.c_str());  // stale socket from a dead daemon
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      return fail("bind(" + options_.socket_path + ")");
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return fail("socket(AF_INET)");
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      return fail("bind(127.0.0.1:" + std::to_string(options_.tcp_port) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      return fail("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) < 0) {
    return fail("listen");
  }
  start_time_ = std::chrono::steady_clock::now();
  started_.store(true, std::memory_order_relaxed);
  RunEvent("serve_start")
      .Str("address", address())
      .Num("max_inflight", static_cast<int64_t>(options_.max_inflight))
      .Num("max_queue", static_cast<int64_t>(options_.max_queue));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

std::string AnalysisServer::address() const {
  if (!options_.socket_path.empty()) {
    return "unix:" + options_.socket_path;
  }
  return "tcp:127.0.0.1:" + std::to_string(port_);
}

void AnalysisServer::RequestDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true, std::memory_order_relaxed)) {
    return;
  }
  RunEvent("serve_drain").Str("address", address());
  admission_.BeginDrain();
  // Breaks the accept loop's poll/accept immediately.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void AnalysisServer::Wait() {
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Connection threads observe the drain flag within one poll slice and exit
  // once their buffered requests have been answered.
  for (;;) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> lock(threads_mutex_);
      batch.swap(connection_threads_);
    }
    if (batch.empty()) {
      break;
    }
    for (std::thread& t : batch) {
      t.join();
    }
  }
  if (!ended_.exchange(true, std::memory_order_relaxed)) {
    end_time_ = std::chrono::steady_clock::now();
    RunEvent("serve_end")
        .Num("requests", requests_.load(std::memory_order_relaxed))
        .Num("shed", shed_.load(std::memory_order_relaxed))
        .Num("failed", failed_.load(std::memory_order_relaxed));
  }
}

ServeTotals AnalysisServer::totals() const {
  ServeTotals t;
  t.connections = connections_.load(std::memory_order_relaxed);
  t.requests = requests_.load(std::memory_order_relaxed);
  t.succeeded = succeeded_.load(std::memory_order_relaxed);
  t.degraded = degraded_.load(std::memory_order_relaxed);
  t.shed = shed_.load(std::memory_order_relaxed);
  t.deadline = deadline_.load(std::memory_order_relaxed);
  t.failed = failed_.load(std::memory_order_relaxed);
  t.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  t.cached = cached_.load(std::memory_order_relaxed);
  t.inflight_high_water = admission_.inflight_high_water();
  t.queue_high_water = admission_.queued_high_water();
  {
    std::lock_guard<std::mutex> lock(hosts_mutex_);
    t.projects = hosts_.size();
    for (const auto& [name, host] : hosts_) {
      t.engine_rebuilds += static_cast<uint64_t>(host->engine_rebuilds());
    }
  }
  t.wall_seconds = ended_.load(std::memory_order_relaxed)
                       ? std::chrono::duration<double>(end_time_ - start_time_).count()
                       : ElapsedSeconds(start_time_);
  t.latency_count = request_latency_.count();
  t.p50_ms = request_latency_.ValueAtQuantile(0.50) * 1e3;
  t.p95_ms = request_latency_.ValueAtQuantile(0.95) * 1e3;
  t.p99_ms = request_latency_.ValueAtQuantile(0.99) * 1e3;
  return t;
}

void AnalysisServer::AcceptLoop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;  // signal; re-check the drain flag
      }
      break;
    }
    if (ready == 0) {
      continue;
    }
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      break;  // listen socket shut down (drain) or fatal
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    m_connections_.Add();
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
}

void AnalysisServer::ConnectionLoop(int fd) {
  FrameDecoder decoder;
  auto last_byte = std::chrono::steady_clock::now();
  bool alive = true;
  while (alive) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready > 0) {
      char buf[64 * 1024];
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        // Peer closed (or reset). Mid-frame close = truncated frame.
        if (decoder.mid_frame()) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          m_protocol_errors_.Add();
        }
        break;
      }
      last_byte = std::chrono::steady_clock::now();
      decoder.Feed(buf, static_cast<size_t>(n));
      if (decoder.error()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        m_protocol_errors_.Add();
        SendAll(fd, EncodeFrame(MakeErrorResponse("", "protocol",
                                                  decoder.error_message())));
        break;
      }
      std::string payload;
      while (decoder.Pop(&payload)) {
        std::string response = HandleRequest(payload);
        if (!SendAll(fd, EncodeFrame(response))) {
          alive = false;  // peer vanished mid-response; nothing to salvage
          break;
        }
      }
    } else if (decoder.mid_frame() &&
               ElapsedSeconds(last_byte) > options_.idle_read_timeout_seconds) {
      // Slow-loris: a frame started but its bytes stopped coming. Answer with
      // a protocol error and drop the connection rather than hold the fd (and
      // Wait()) hostage forever.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      m_protocol_errors_.Add();
      SendAll(fd, EncodeFrame(MakeErrorResponse(
                      "", "timeout", "frame read timed out (slow client)")));
      break;
    }
    if (draining_.load(std::memory_order_relaxed) && !decoder.mid_frame()) {
      // Drain: everything buffered has been answered; close instead of
      // reading further requests.
      break;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

std::string AnalysisServer::HandleRequest(const std::string& payload) {
  const auto arrival = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  m_requests_.Add();

  ServeRequest request;
  std::string parse_error;
  if (!ParseServeRequest(payload, &request, &parse_error)) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    m_failed_.Add();
    return MakeErrorResponse(request.id, "bad_request", parse_error);
  }

  // Ping and shutdown skip admission: health checks must answer under full
  // load, and the drain trigger must never be shed by the very overload it
  // is meant to relieve.
  if (request.method == ServeMethod::kPing) {
    succeeded_.fetch_add(1, std::memory_order_relaxed);
    m_ok_.Add();
    request_latency_.Record(ElapsedSeconds(arrival));
    m_request_seconds_.Record(ElapsedSeconds(arrival));
    return MakePongResponse(request.id);
  }
  if (request.method == ServeMethod::kShutdown) {
    RequestDrain();
    succeeded_.fetch_add(1, std::memory_order_relaxed);
    m_ok_.Add();
    JsonWriter json;
    json.BeginObject();
    json.String("id", request.id);
    json.String("status", "ok");
    json.String("method", "shutdown");
    json.Bool("draining", true);
    json.EndObject();
    return json.str();
  }

  AdmissionController::Outcome admitted = admission_.Enter();
  m_queue_depth_hwm_.UpdateMax(admission_.queued_high_water());
  m_inflight_hwm_.UpdateMax(admission_.inflight_high_water());
  if (admitted != AdmissionController::Outcome::kAdmitted) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    m_shed_.Add();
    const char* reason = admitted == AdmissionController::Outcome::kShedDraining
                             ? "draining"
                             : "queue_full";
    return MakeShedResponse(request.id, admission_.RetryAfterMs(), reason);
  }

  // Admitted. Everything from here on must Leave() exactly once.
  std::string response;
  const double waited_ms = ElapsedSeconds(arrival) * 1e3;
  m_queue_wait_seconds_.Record(waited_ms / 1e3);
  double deadline_ms = request.deadline_ms > 0.0 ? request.deadline_ms
                                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0 && waited_ms >= deadline_ms) {
    // The deadline burned away in queue; running now would only return an
    // answer the client has already given up on.
    deadline_.fetch_add(1, std::memory_order_relaxed);
    m_deadline_.Add();
    response = MakeDeadlineResponse(request.id, waited_ms);
  } else {
    try {
      if (options_.allow_debug_sleep && request.debug_sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(request.debug_sleep_ms));
      }
      if (request.method == ServeMethod::kAnalyze) {
        response = HandleAnalyze(request, arrival);
      } else {
        response = HandleProjectQuery(request);
        succeeded_.fetch_add(1, std::memory_order_relaxed);
        m_ok_.Add();
      }
    } catch (const std::exception& e) {
      // Per-request quarantine: a poisoned input fails ITS request, not the
      // daemon. The connection stays usable for the next frame.
      failed_.fetch_add(1, std::memory_order_relaxed);
      m_failed_.Add();
      response = MakeErrorResponse(request.id, "internal", e.what());
    } catch (...) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      m_failed_.Add();
      response = MakeErrorResponse(request.id, "internal", "unknown error");
    }
  }
  const double total_seconds = ElapsedSeconds(arrival);
  admission_.RecordServiceSeconds(total_seconds - waited_ms / 1e3);
  admission_.Leave();
  request_latency_.Record(total_seconds);
  m_request_seconds_.Record(total_seconds);
  return response;
}

AnalysisOptions AnalysisServer::OptionsFor(const ServeRequest& request) const {
  AnalysisOptions options = options_.analysis;
  // Batch sources-mode shape: pasted snapshots carry no real authorship, so
  // the cross-scope filter and ranking are off — exactly what
  // `valuecheck analyze DIR` does, which is what the equivalence test pins.
  options.cross_scope_only = false;
  options.ranking.enabled = false;
  // The synthetic per-request commit log exists for incrementality, not
  // provenance; classifying against it would diverge from the repo-less batch
  // run (single-author blame downgrades candidate kinds).
  options.authorship = false;
  options.checkers = request.checkers;
  options.jobs = request.jobs;
  double deadline_ms = request.deadline_ms > 0.0 ? request.deadline_ms
                                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    // The full deadline as the per-unit budget (not the remaining slice):
    // keeps the engine config key stable across requests so warm state
    // survives, while still bounding every unit's wall clock.
    options.budget.unit_deadline_seconds = deadline_ms / 1e3;
  }
  if (!request.fault_spec.empty()) {
    std::string fault_error;
    std::optional<FaultInjector> fault = FaultInjector::Parse(request.fault_spec,
                                                             &fault_error);
    if (!fault.has_value()) {
      throw std::invalid_argument("bad fault_inject spec: " + fault_error);
    }
    options.fault = *fault;
  }
  return options;
}

ProjectHost& AnalysisServer::HostFor(const std::string& project) {
  std::lock_guard<std::mutex> lock(hosts_mutex_);
  std::unique_ptr<ProjectHost>& slot = hosts_[project];
  if (slot == nullptr) {
    slot = std::make_unique<ProjectHost>(project, options_.analysis,
                                         options_.history_limit);
  }
  return *slot;
}

std::string AnalysisServer::HandleAnalyze(
    const ServeRequest& request, std::chrono::steady_clock::time_point arrival) {
  AnalysisOptions options = OptionsFor(request);
  ProjectHost& host = HostFor(request.project);
  ProjectAnalyzeOutcome outcome = host.Analyze(request.sources, options);
  if (outcome.cached) {
    cached_.fetch_add(1, std::memory_order_relaxed);
    m_cached_.Add();
  }
  if (outcome.rebuilt_engine) {
    m_engine_rebuilds_.Add();
  }
  const AnalysisReport& report = outcome.report;
  if (report.degraded) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
    m_degraded_.Add();
  } else {
    succeeded_.fetch_add(1, std::memory_order_relaxed);
    m_ok_.Add();
  }

  JsonWriter json;
  json.BeginObject();
  json.String("id", request.id);
  json.String("status", report.degraded ? "degraded" : "ok");
  json.String("method", "analyze");
  json.String("project", request.project);
  json.Int("commit", outcome.commit);
  json.Bool("cached", outcome.cached);
  json.Int("findings", static_cast<int64_t>(report.findings.size()));
  json.Int("quarantined", static_cast<int64_t>(report.quarantined.size()));
  json.Int("files_changed", outcome.files_changed);
  json.Int("functions_dirty", outcome.functions_dirty);
  json.Int("findings_new", outcome.findings_new);
  json.Int("findings_fixed", outcome.findings_fixed);
  json.Double("elapsed_ms", ElapsedSeconds(arrival) * 1e3);
  if (request.render == "json") {
    json.Raw("report", ReportToJson(report));
  } else {
    json.String("csv", report.ToCsv());
  }
  json.EndObject();
  return json.str();
}

std::string AnalysisServer::HandleProjectQuery(const ServeRequest& request) {
  ProjectHost& host = HostFor(request.project);
  JsonWriter json;
  json.BeginObject();
  json.String("id", request.id);
  json.String("status", "ok");
  json.String("method", ServeMethodName(request.method));
  json.String("project", request.project);
  if (request.method == ServeMethod::kDiff) {
    std::vector<std::string> added;
    std::vector<std::string> removed;
    const bool available = host.Diff(&added, &removed);
    json.Bool("available", available);
    json.Key("new").BeginArray();
    for (const std::string& fp : added) {
      json.StringValue(fp);
    }
    json.EndArray();
    json.Key("fixed").BeginArray();
    for (const std::string& fp : removed) {
      json.StringValue(fp);
    }
    json.EndArray();
  } else if (request.method == ServeMethod::kHistory) {
    json.Key("runs").BeginArray();
    for (const ProjectRunSummary& run : host.History(16)) {
      json.BeginObject();
      json.Int("commit", run.commit);
      json.Int("findings", run.findings);
      json.Bool("degraded", run.degraded);
      json.Int("quarantined", run.quarantined);
      json.Int("files_changed", run.files_changed);
      json.Int("functions_dirty", run.functions_dirty);
      json.Double("seconds", run.seconds);
      json.EndObject();
    }
    json.EndArray();
  } else {  // report
    ProjectRunSummary latest;
    const bool available = host.Latest(&latest);
    json.Bool("available", available);
    if (available) {
      json.Key("latest").BeginObject();
      json.Int("commit", latest.commit);
      json.Int("findings", latest.findings);
      json.Bool("degraded", latest.degraded);
      json.Int("quarantined", latest.quarantined);
      json.Int("findings_new", latest.findings_new);
      json.Int("findings_fixed", latest.findings_fixed);
      json.Key("checkers").BeginArray();
      for (const AnalysisReport::CheckerStat& stat : latest.checker_stats) {
        json.BeginObject();
        json.String("checker", stat.name);
        json.Int("candidates", static_cast<int64_t>(stat.candidates));
        json.Int("findings", static_cast<int64_t>(stat.findings));
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
    }
  }
  json.EndObject();
  return json.str();
}

}  // namespace vc

#include "src/server/loadgen.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/server/client.h"
#include "src/support/json_reader.h"
#include "src/support/json_writer.h"
#include "src/support/metrics.h"
#include "src/support/rng.h"
#include "src/testing/testgen.h"

namespace vc {

namespace {

using Sources = std::vector<std::pair<std::string, std::string>>;

// One warehouse's codebase: the pristine snapshot plus a few pre-built edited
// variants. Everything is generated up front (deterministic in the seed) and
// read-only afterwards, so client threads share it without locks.
struct Warehouse {
  std::string name;
  std::vector<Sources> variants;  // [0] = pristine
};

std::vector<Warehouse> BuildWarehouses(const LoadGenOptions& options) {
  std::vector<Warehouse> warehouses;
  for (int w = 0; w < options.warehouses; ++w) {
    Warehouse warehouse;
    warehouse.name = "w" + std::to_string(w);
    testing::GenOptions gen;
    gen.min_files = options.files_per_warehouse;
    gen.max_files = options.files_per_warehouse;
    gen.ident_prefix = warehouse.name + "_";
    gen.file_prefix = warehouse.name + "/";
    testing::TestProgram program =
        testing::GenerateProgram(options.seed * 1000 + static_cast<uint64_t>(w), gen);
    Sources base = program.ToSources();
    warehouse.variants.push_back(base);
    // Edited variants append one fresh function to the last file — a change
    // the daemon's incremental engine sees as a single-file delta.
    for (int v = 1; v <= 4; ++v) {
      Sources edited = base;
      std::string fn = warehouse.name + "_extra" + std::to_string(v);
      edited.back().second += "\nint " + fn + "(int a) {\n  int x;\n  x = a + " +
                              std::to_string(v) + ";\n  int y;\n  y = x * 2;\n" +
                              "  return x;\n}\n";
      warehouse.variants.push_back(std::move(edited));
    }
    warehouses.push_back(std::move(warehouse));
  }
  return warehouses;
}

enum class Tx { kAnalyze, kDiff, kHistory, kReport, kPing };

std::string BuildRequest(const LoadGenOptions& options, const std::string& id, Tx tx,
                         const Warehouse& warehouse, const Sources* sources) {
  JsonWriter json;
  json.BeginObject();
  json.String("id", id);
  switch (tx) {
    case Tx::kAnalyze:
      json.String("method", "analyze");
      break;
    case Tx::kDiff:
      json.String("method", "diff");
      break;
    case Tx::kHistory:
      json.String("method", "history");
      break;
    case Tx::kReport:
      json.String("method", "report");
      break;
    case Tx::kPing:
      json.String("method", "ping");
      break;
  }
  if (tx != Tx::kPing) {
    json.String("project", warehouse.name);
  }
  if (tx == Tx::kAnalyze && sources != nullptr) {
    json.Key("sources").BeginArray();
    for (const auto& [path, content] : *sources) {
      json.BeginObject();
      json.String("path", path);
      json.String("content", content);
      json.EndObject();
    }
    json.EndArray();
    if (!options.fault_spec.empty()) {
      json.String("fault_inject", options.fault_spec);
    }
  }
  json.Int("jobs", options.jobs);
  if (options.deadline_ms > 0.0) {
    json.Double("deadline_ms", options.deadline_ms);
  }
  json.EndObject();
  return json.str();
}

// Per-thread tallies merged into the report at the end.
struct ClientTally {
  uint64_t transactions = 0;
  uint64_t succeeded = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t deadline = 0;
  uint64_t failed = 0;
  uint64_t retried = 0;
  uint64_t kills = 0;
  uint64_t reconnects = 0;
  uint64_t by_tx[5] = {0, 0, 0, 0, 0};
};

std::unique_ptr<ServeClient> Connect(const LoadGenOptions& options, std::string* error) {
  if (!options.socket_path.empty()) {
    return ServeClient::ConnectUnix(options.socket_path, error);
  }
  return ServeClient::ConnectTcp(options.tcp_port, error);
}

void SleepBackoff(const LoadGenOptions& options, Rng& rng, int attempt,
                  int64_t floor_ms) {
  double delay = options.backoff_base_ms * static_cast<double>(uint64_t{1} << attempt);
  delay = std::min(delay, options.backoff_cap_ms);
  // Deterministic jitter in [delay/2, delay): desynchronizes retry herds
  // without losing reproducibility for a fixed seed.
  double jittered = delay / 2.0 + rng.NextDouble() * delay / 2.0;
  jittered = std::max(jittered, static_cast<double>(floor_ms));
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(jittered));
}

void RunClient(const LoadGenOptions& options, int client_index,
               const std::vector<Warehouse>& warehouses, ClientTally& tally,
               Histogram& latency) {
  Rng rng(options.seed ^ (0x5bd1e995ULL * static_cast<uint64_t>(client_index + 1)));
  const std::vector<double> weights = {options.weight_analyze, options.weight_diff,
                                       options.weight_history, options.weight_report,
                                       options.weight_ping};
  std::unique_ptr<ServeClient> client;

  for (int t = 0; t < options.transactions_per_client; ++t) {
    const Tx tx = static_cast<Tx>(rng.NextWeighted(weights));
    const Warehouse& warehouse = warehouses[rng.NextBelow(warehouses.size())];
    const Sources* sources = nullptr;
    if (tx == Tx::kAnalyze) {
      size_t variant = rng.NextBool(options.edit_rate)
                           ? 1 + rng.NextBelow(warehouse.variants.size() - 1)
                           : 0;
      sources = &warehouse.variants[variant];
    }
    const std::string id =
        "c" + std::to_string(client_index) + "-t" + std::to_string(t);
    const std::string request = BuildRequest(options, id, tx, warehouse, sources);

    ++tally.transactions;
    ++tally.by_tx[static_cast<int>(tx)];

    bool resolved = false;
    bool last_was_shed = false;
    for (int attempt = 0; attempt <= options.max_retries && !resolved; ++attempt) {
      if (attempt > 0) {
        ++tally.retried;
      }
      if (client == nullptr || !client->connected()) {
        std::string connect_error;
        client = Connect(options, &connect_error);
        if (client == nullptr) {
          ++tally.reconnects;
          last_was_shed = false;
          SleepBackoff(options, rng, attempt, 0);
          continue;
        }
        if (attempt > 0) {
          ++tally.reconnects;
        }
      }
      const auto sent_at = std::chrono::steady_clock::now();
      if (!client->SendFrame(request)) {
        client.reset();
        last_was_shed = false;
        SleepBackoff(options, rng, attempt, 0);
        continue;
      }
      if (options.kill_rate > 0.0 && rng.NextBool(options.kill_rate)) {
        // Chaos: yank the connection with the request in flight. The server
        // must absorb this (and account the request) without us listening.
        ++tally.kills;
        client->Close();
        client.reset();
        last_was_shed = false;
        SleepBackoff(options, rng, attempt, 0);
        continue;
      }
      std::string response_json;
      std::string receive_error;
      if (!client->ReceiveFrame(&response_json, &receive_error,
                                options.request_timeout_seconds)) {
        client.reset();
        last_was_shed = false;
        SleepBackoff(options, rng, attempt, 0);
        continue;
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - sent_at)
              .count();
      std::optional<JsonValue> response = ParseJson(response_json);
      const std::string status =
          response.has_value() ? response->GetString("status") : "";
      if (status == "shed") {
        last_was_shed = true;
        int64_t retry_after = response->GetInt("retry_after_ms", 10);
        SleepBackoff(options, rng, attempt, retry_after);
        continue;
      }
      latency.Record(seconds);
      resolved = true;
      if (status == "ok") {
        ++tally.succeeded;
      } else if (status == "degraded") {
        ++tally.degraded;
      } else if (status == "deadline") {
        ++tally.deadline;
      } else {
        ++tally.failed;  // error frame or unparsable response
      }
    }
    if (!resolved) {
      // Retries exhausted: attribute the transaction to its terminal mode.
      if (last_was_shed) {
        ++tally.shed;
      } else {
        ++tally.failed;
      }
    }
  }
}

}  // namespace

LoadGenReport RunLoadGen(const LoadGenOptions& options) {
  const std::vector<Warehouse> warehouses = BuildWarehouses(options);
  std::vector<ClientTally> tallies(static_cast<size_t>(options.clients));
  Histogram latency;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.clients));
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      RunClient(options, c, warehouses, tallies[static_cast<size_t>(c)], latency);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  LoadGenReport report;
  for (const ClientTally& tally : tallies) {
    report.transactions += tally.transactions;
    report.succeeded += tally.succeeded;
    report.degraded += tally.degraded;
    report.shed += tally.shed;
    report.deadline += tally.deadline;
    report.failed += tally.failed;
    report.retried += tally.retried;
    report.kills += tally.kills;
    report.reconnects += tally.reconnects;
    report.analyze += tally.by_tx[0];
    report.diff += tally.by_tx[1];
    report.history += tally.by_tx[2];
    report.report_q += tally.by_tx[3];
    report.ping += tally.by_tx[4];
  }
  report.wall_seconds = wall;
  report.qps = wall > 0.0 ? static_cast<double>(report.transactions) / wall : 0.0;
  report.latency_count = latency.count();
  report.p50_ms = latency.ValueAtQuantile(0.50) * 1e3;
  report.p95_ms = latency.ValueAtQuantile(0.95) * 1e3;
  report.p99_ms = latency.ValueAtQuantile(0.99) * 1e3;
  report.mean_ms = latency.mean_seconds() * 1e3;
  report.max_ms = latency.max_seconds() * 1e3;
  return report;
}

std::string LoadGenReport::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Int("transactions", static_cast<int64_t>(transactions));
  json.Int("succeeded", static_cast<int64_t>(succeeded));
  json.Int("degraded", static_cast<int64_t>(degraded));
  json.Int("shed", static_cast<int64_t>(shed));
  json.Int("deadline", static_cast<int64_t>(deadline));
  json.Int("failed", static_cast<int64_t>(failed));
  json.Int("retried", static_cast<int64_t>(retried));
  json.Int("kills", static_cast<int64_t>(kills));
  json.Int("reconnects", static_cast<int64_t>(reconnects));
  json.Bool("balanced", Balanced());
  json.Key("mix").BeginObject();
  json.Int("analyze", static_cast<int64_t>(analyze));
  json.Int("diff", static_cast<int64_t>(diff));
  json.Int("history", static_cast<int64_t>(history));
  json.Int("report", static_cast<int64_t>(report_q));
  json.Int("ping", static_cast<int64_t>(ping));
  json.EndObject();
  json.Double("wall_seconds", wall_seconds);
  json.Double("qps", qps);
  json.Key("latency").BeginObject();
  json.Int("count", static_cast<int64_t>(latency_count));
  json.Double("p50_ms", p50_ms);
  json.Double("p95_ms", p95_ms);
  json.Double("p99_ms", p99_ms);
  json.Double("mean_ms", mean_ms);
  json.Double("max_ms", max_ms);
  json.EndObject();
  json.EndObject();
  return json.str();
}

}  // namespace vc

#include "src/server/client.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace vc {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

ServeClient::~ServeClient() { Close(); }

std::unique_ptr<ServeClient> ServeClient::ConnectUnix(const std::string& path,
                                                      std::string* error) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = Errno("socket(AF_UNIX)");
    }
    return nullptr;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path too long: " + path;
    }
    ::close(fd);
    return nullptr;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) {
      *error = Errno("connect(" + path + ")");
    }
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<ServeClient>(new ServeClient(fd));
}

std::unique_ptr<ServeClient> ServeClient::ConnectTcp(int port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = Errno("socket(AF_INET)");
    }
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) {
      *error = Errno("connect(127.0.0.1:" + std::to_string(port) + ")");
    }
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<ServeClient>(new ServeClient(fd));
}

bool ServeClient::Call(const std::string& request_json, std::string* response_json,
                       std::string* error, double timeout_seconds) {
  if (!SendFrame(request_json)) {
    if (error != nullptr) {
      *error = Errno("send");
    }
    return false;
  }
  return ReceiveFrame(response_json, error, timeout_seconds);
}

bool ServeClient::SendBytes(const void* data, size_t n) {
  if (fd_ < 0) {
    return false;
  }
  const char* bytes = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd_, bytes + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

bool ServeClient::ReceiveFrame(std::string* payload, std::string* error,
                               double timeout_seconds) {
  if (decoder_.Pop(payload)) {
    return true;  // a previous read already buffered it
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (fd_ >= 0) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      if (error != nullptr) {
        *error = "timed out waiting for response frame";
      }
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (error != nullptr) {
        *error = Errno("poll");
      }
      return false;
    }
    if (ready == 0) {
      continue;  // re-check the deadline
    }
    char buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (error != nullptr) {
        *error = Errno("recv");
      }
      return false;
    }
    if (n == 0) {
      if (error != nullptr) {
        *error = "connection closed by server";
      }
      return false;
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
    if (decoder_.error()) {
      if (error != nullptr) {
        *error = "protocol error from server: " + decoder_.error_message();
      }
      return false;
    }
    if (decoder_.Pop(payload)) {
      return true;
    }
  }
  if (error != nullptr) {
    *error = "client not connected";
  }
  return false;
}

void ServeClient::CloseSend() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_WR);
  }
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace vc

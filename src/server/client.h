// Blocking client for the serve protocol — used by vc_loadgen, the server
// tests, and anyone scripting the daemon from C++. One connection, one
// outstanding request at a time (the loadgen's closed-loop model); the raw
// send/receive surface is exposed so tests can write partial frames, garbage
// prefixes, and mid-stream disconnects.

#ifndef VALUECHECK_SRC_SERVER_CLIENT_H_
#define VALUECHECK_SRC_SERVER_CLIENT_H_

#include <cstddef>
#include <memory>
#include <string>

#include "src/server/protocol.h"

namespace vc {

class ServeClient {
 public:
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  static std::unique_ptr<ServeClient> ConnectUnix(const std::string& path,
                                                  std::string* error);
  static std::unique_ptr<ServeClient> ConnectTcp(int port, std::string* error);

  // Frames and sends `request_json`, then blocks (up to `timeout_seconds`)
  // for one response payload. False on any transport failure or timeout.
  bool Call(const std::string& request_json, std::string* response_json,
            std::string* error, double timeout_seconds = 30.0);

  // Raw building blocks for protocol-abuse tests and chaos clients.
  bool SendBytes(const void* data, size_t n);
  bool SendFrame(const std::string& payload) { return SendBytes(EncodeFrame(payload).data(), payload.size() + 4); }
  bool ReceiveFrame(std::string* payload, std::string* error,
                    double timeout_seconds = 30.0);

  // Half-close the write side (server sees EOF) / hard-close the socket.
  void CloseSend();
  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SERVER_CLIENT_H_

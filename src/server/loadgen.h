// TPC-C-style closed-loop load harness for the serve daemon (DESIGN.md §19).
//
// The mapping follows the TPC-C shape the ROADMAP names: a *warehouse* is one
// daemon project ("w0", "w1", ...), each with its own deterministically
// generated Mini-C codebase (src/testing/testgen.h), and the *transaction
// mix* is weighted analyze / diff / history / report / ping requests. Clients
// are closed-loop: each thread issues one request, waits for the response,
// then issues the next — so offered load self-regulates with server latency
// instead of overrunning it (open-loop would just measure the queue).
//
// Robustness behaviors under test:
//   * shed responses are retried with exponential backoff + deterministic
//     jitter, honoring the server's retry_after_ms hint as the floor;
//   * transport failures (server drain, injected connection kills) reconnect
//     and retry the same transaction up to max_retries;
//   * chaos: --fault-inject forwards a SEED:RATE spec inside analyze
//     requests (server-side quarantine), and kill_rate makes the client
//     close its own connection right after sending (mid-stream disconnect).
//
// Every transaction terminates in exactly one outcome —
// succeeded/degraded/shed/deadline/failed — so the report's accounting
// identity (transactions == sum of outcomes) is checkable; shed counts the
// transactions that exhausted retries while shed, not each shed response
// (those are `retried`).

#ifndef VALUECHECK_SRC_SERVER_LOADGEN_H_
#define VALUECHECK_SRC_SERVER_LOADGEN_H_

#include <cstdint>
#include <string>

namespace vc {

struct LoadGenOptions {
  // Target daemon: unix socket path, or TCP loopback port when path empty.
  std::string socket_path;
  int tcp_port = 0;

  int clients = 4;
  int warehouses = 2;
  int transactions_per_client = 25;
  uint64_t seed = 1;

  // Transaction mix weights (TPC-C style; normalized internally).
  double weight_analyze = 45;
  double weight_diff = 20;
  double weight_history = 15;
  double weight_report = 15;
  double weight_ping = 5;

  // Per-request knobs forwarded to the server.
  int jobs = 1;
  double deadline_ms = 0.0;
  std::string fault_spec;  // "SEED:RATE" chaos forwarded in analyze requests

  // Probability an analyze carries an edited snapshot (exercises the warm
  // incremental path; 0 = every analyze resends the pristine warehouse).
  double edit_rate = 0.5;

  // Chaos: probability of killing the connection right after sending.
  double kill_rate = 0.0;

  // Retry envelope.
  int max_retries = 6;
  double backoff_base_ms = 5.0;
  double backoff_cap_ms = 500.0;

  double request_timeout_seconds = 60.0;

  // Generated warehouse size.
  int files_per_warehouse = 3;
};

struct LoadGenReport {
  uint64_t transactions = 0;  // == succeeded+degraded+shed+deadline+failed
  uint64_t succeeded = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;      // gave up while shed (retries exhausted)
  uint64_t deadline = 0;
  uint64_t failed = 0;
  uint64_t retried = 0;   // individual retry attempts across all transactions
  uint64_t kills = 0;     // chaos connection kills performed
  uint64_t reconnects = 0;

  uint64_t analyze = 0;
  uint64_t diff = 0;
  uint64_t history = 0;
  uint64_t report_q = 0;
  uint64_t ping = 0;

  double wall_seconds = 0.0;
  double qps = 0.0;       // completed transactions / wall
  uint64_t latency_count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;

  bool Balanced() const {
    return transactions == succeeded + degraded + shed + deadline + failed;
  }
  // One JSON document (the result/BENCH_serve.json payload body).
  std::string ToJson() const;
};

LoadGenReport RunLoadGen(const LoadGenOptions& options);

}  // namespace vc

#endif  // VALUECHECK_SRC_SERVER_LOADGEN_H_

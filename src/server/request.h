// Request/response model for the serve protocol (DESIGN.md §19).
//
// A request frame is one JSON object:
//
//   {"id": "c3-17",            // client-chosen echo token
//    "method": "analyze",      // ping|analyze|diff|history|report|shutdown
//    "project": "w1",          // warehouse/project key (warm-state bucket)
//    "sources": [{"path": "a.c", "content": "..."}, ...],   // analyze only
//    "jobs": 2,                // worker lanes for this request (optional)
//    "checkers": ["unused-def"],        // optional; empty = defaults
//    "fault_inject": "42:0.1",          // optional chaos spec (SEED:RATE)
//    "deadline_ms": 500,                // optional per-request deadline
//    "render": "csv",                   // analyze payload: "csv" (default
//                                       //   and equivalence-comparable) or
//                                       //   "json" (full report document)
//    "debug_sleep_ms": 0}               // test-only; see ServerOptions
//
// A response frame echoes the id and carries a status:
//
//   ok        request completed; method-specific payload fields
//   degraded  completed, but units were quarantined (partial results) —
//             payload fields present, plus quarantine accounting
//   shed      not executed: admission refused it (queue full or draining);
//             carries retry_after_ms — the RETRY_AFTER contract
//   deadline  not executed: its deadline had already expired in queue
//   error     request is malformed or poisoned; carries code + message.
//             The connection stays usable — errors quarantine the request,
//             never the server.
//
// Parsing lives here, free of socket types, so malformed-payload handling is
// unit-testable next to the frame decoder.

#ifndef VALUECHECK_SRC_SERVER_REQUEST_H_
#define VALUECHECK_SRC_SERVER_REQUEST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vc {

enum class ServeMethod {
  kPing,
  kAnalyze,
  kDiff,      // findings delta between the project's last two analyses
  kHistory,   // recent analyses of the project
  kReport,    // current summary (findings/checker stats) of the project
  kShutdown,  // begin drain (for tests and orchestration; SIGTERM does same)
};

const char* ServeMethodName(ServeMethod method);

struct ServeRequest {
  std::string id;
  ServeMethod method = ServeMethod::kPing;
  std::string project;
  std::vector<std::pair<std::string, std::string>> sources;  // analyze
  int jobs = 1;
  std::vector<std::string> checkers;
  std::string fault_spec;     // "" = no injection
  double deadline_ms = 0.0;   // <= 0 = server default
  std::string render = "csv";
  int64_t debug_sleep_ms = 0;
};

// Parses one request payload. On failure returns false with a message in
// *error; *out keeps whatever `id` was recoverable so the error response can
// still echo it.
bool ParseServeRequest(const std::string& payload, ServeRequest* out, std::string* error);

// Response builders (shared by the server and by tests asserting shapes).
// Every response is a complete JSON object; the caller frames it.
std::string MakeErrorResponse(const std::string& id, const std::string& code,
                              const std::string& message);
std::string MakeShedResponse(const std::string& id, int64_t retry_after_ms,
                             const std::string& reason);
std::string MakeDeadlineResponse(const std::string& id, double waited_ms);
std::string MakePongResponse(const std::string& id);

}  // namespace vc

#endif  // VALUECHECK_SRC_SERVER_REQUEST_H_

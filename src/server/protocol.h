// Wire framing for the `valuecheck serve` daemon (DESIGN.md §19).
//
// Every message in either direction is one frame: a 4-byte big-endian
// unsigned payload length followed by exactly that many bytes of UTF-8 JSON.
// Length-prefixing (rather than newline-delimited JSONL alone) lets the
// server pre-validate a frame's size before buffering it — an oversized
// prefix is rejected immediately instead of letting one client balloon the
// server's memory — and makes truncation detectable: a connection that closes
// mid-frame is a protocol error, not a silently shortened document.
//
// FrameDecoder is a pure push-parser over received bytes, deliberately free
// of any socket dependency so the framing edge cases (truncated frames,
// oversized prefixes, pathological split points) are unit-testable without a
// server (tests/server_protocol_test.cc).

#ifndef VALUECHECK_SRC_SERVER_PROTOCOL_H_
#define VALUECHECK_SRC_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

namespace vc {

// Hard ceiling on one frame's payload. Large enough for a full project
// snapshot plus its JSON escaping; small enough that a malicious length
// prefix (up to 4 GiB) is refused before any buffering happens.
inline constexpr uint32_t kMaxFramePayload = 32u << 20;  // 32 MiB

// Renders `payload` as one wire frame (prefix + bytes).
std::string EncodeFrame(const std::string& payload);

class FrameDecoder {
 public:
  // Consumes `n` raw bytes from the stream. No-op once in the error state.
  void Feed(const char* data, size_t n);
  void Feed(const std::string& bytes) { Feed(bytes.data(), bytes.size()); }

  // Pops the oldest complete payload; false when none is ready.
  bool Pop(std::string* payload);

  // Sticky protocol-error state (oversized length prefix). The connection
  // carrying this stream cannot be resynchronized and must be dropped.
  bool error() const { return error_; }
  const std::string& error_message() const { return error_message_; }

  // True while a frame has started (prefix or payload bytes buffered) but not
  // finished — a stream ending here was truncated, and a stream *idling* here
  // is a slow-loris candidate for the server's read timeout.
  bool mid_frame() const { return !buffer_.empty(); }

  // Bytes buffered for the in-progress frame (diagnostics only).
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;              // prefix + partial payload of one frame
  std::deque<std::string> ready_;   // completed payloads in arrival order
  bool error_ = false;
  std::string error_message_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_SERVER_PROTOCOL_H_

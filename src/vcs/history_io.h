// Plain-text serialization of a Repository — the "vchist" format the CLI
// consumes so real projects can feed ValueCheck authorship data without a
// git binding. One block per commit:
//
//   commit
//   author <name>
//   time <unix-seconds>
//   message <single line>
//   write <path>
//   <<<
//   ...file content verbatim...
//   >>>
//   delete <path>
//   end
//
// `write`/`delete` may repeat within a commit; `#` starts a comment line
// outside content blocks. SaveHistory emits the same format, so histories
// round-trip.

#ifndef VALUECHECK_SRC_VCS_HISTORY_IO_H_
#define VALUECHECK_SRC_VCS_HISTORY_IO_H_

#include <optional>
#include <string>

#include "src/vcs/repository.h"

namespace vc {

// Parses `text`; on failure returns nullopt and fills *error with a
// line-numbered message.
std::optional<Repository> LoadHistory(const std::string& text, std::string* error);

std::string SaveHistory(const Repository& repo);

}  // namespace vc

#endif  // VALUECHECK_SRC_VCS_HISTORY_IO_H_

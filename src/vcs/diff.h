// Line-oriented diff using Myers' O(ND) greedy algorithm. The repository uses
// it to replay history for blame (line-level authorship) and to compute the
// changed-line sets that drive incremental analysis (§8.6).

#ifndef VALUECHECK_SRC_VCS_DIFF_H_
#define VALUECHECK_SRC_VCS_DIFF_H_

#include <string>
#include <string_view>
#include <vector>

namespace vc {

enum class EditOp {
  kKeep,    // line unchanged: old_index and new_index both valid
  kDelete,  // line removed from the old side: old_index valid
  kInsert,  // line added on the new side: new_index valid
};

struct Edit {
  EditOp op = EditOp::kKeep;
  int old_index = -1;  // 0-based index into the old line vector
  int new_index = -1;  // 0-based index into the new line vector
};

// Splits content into lines without trailing newlines. "a\nb\n" -> {"a","b"}.
std::vector<std::string_view> SplitLines(std::string_view content);

// Computes a minimal edit script from `a` to `b`. The script covers every
// line of both sides exactly once, in order.
std::vector<Edit> DiffLines(const std::vector<std::string_view>& a,
                            const std::vector<std::string_view>& b);

// Applies an edit script produced by DiffLines(a, b) back onto `a`, returning
// b's lines; used by the property tests to validate round-tripping.
std::vector<std::string> ApplyEdits(const std::vector<std::string_view>& a,
                                    const std::vector<std::string_view>& b,
                                    const std::vector<Edit>& edits);

}  // namespace vc

#endif  // VALUECHECK_SRC_VCS_DIFF_H_

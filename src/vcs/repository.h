// In-memory version-control store — the reproduction's stand-in for git.
//
// ValueCheck's authorship lookup and DOK familiarity metrics (§4.2, §6) need
// two capabilities from version control: line-level authorship of the current
// file contents (git blame) and per-file commit logs (who delivered how many
// commits to which file). The repository stores snapshot-based commits and
// reconstructs blame by replaying the history with Myers diffs: unchanged
// lines keep their attribution, inserted lines are attributed to the commit
// that introduced them.

#ifndef VALUECHECK_SRC_VCS_REPOSITORY_H_
#define VALUECHECK_SRC_VCS_REPOSITORY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/vcs/diff.h"

namespace vc {

using AuthorId = int32_t;
using CommitId = int32_t;
inline constexpr AuthorId kInvalidAuthor = -1;
inline constexpr CommitId kInvalidCommit = -1;

struct Author {
  std::string name;
};

struct Commit {
  CommitId id = kInvalidCommit;
  AuthorId author = kInvalidAuthor;
  int64_t timestamp = 0;  // seconds; drives "days before detected" (Fig. 7c)
  std::string message;
  // Full new content of every file changed by this commit.
  std::map<std::string, std::string> files;
  std::set<std::string> deleted;
};

// Line-level authorship: which commit (and author) introduced each line.
struct LineOrigin {
  CommitId commit = kInvalidCommit;
  AuthorId author = kInvalidAuthor;
};

// Resumable blame replay for one path: the fold state after applying a prefix
// of the path's commit log. Advancing one commit at a time yields exactly the
// same attribution as a from-scratch replay — this is what makes per-commit
// incremental blame O(commit delta) instead of O(history) while staying
// byte-identical to Blame()/BlameAt().
struct BlameReplayState {
  std::vector<LineOrigin> attribution;
  std::string content;  // file content at the replay point
  bool exists = false;
  size_t log_index = 0;  // next entry of the path's commit log to apply
};

class Repository {
 public:
  AuthorId AddAuthor(std::string name);
  const Author& GetAuthor(AuthorId id) const { return authors_[id]; }
  int NumAuthors() const { return static_cast<int>(authors_.size()); }
  AuthorId FindAuthor(const std::string& name) const;

  CommitId AddCommit(AuthorId author, int64_t timestamp, std::string message,
                     std::map<std::string, std::string> changed_files,
                     std::set<std::string> deleted_files = {});
  const Commit& GetCommit(CommitId id) const { return commits_[id]; }
  int NumCommits() const { return static_cast<int>(commits_.size()); }

  // File contents as of `commit` (inclusive); nullopt if absent or deleted.
  std::optional<std::string> FileAt(const std::string& path, CommitId commit) const;
  std::optional<std::string> Head(const std::string& path) const;
  std::vector<std::string> ListFiles() const;

  // Commits that changed `path`, oldest first.
  std::vector<CommitId> LogOf(const std::string& path) const;

  // Line attribution for head (or historical) contents. One entry per line.
  // Head results are cached as resumable replay states: a commit touching the
  // path advances the cached fold instead of replaying the whole log.
  const std::vector<LineOrigin>& Blame(const std::string& path) const;
  std::vector<LineOrigin> BlameAt(const std::string& path, CommitId commit) const;

  // Advances `state` through every log entry of `path` with id <= up_to.
  // Starting from a default state this reproduces BlameAt(path, up_to);
  // callers that keep the state across commits pay only for the new entries.
  void AdvanceBlame(const std::string& path, CommitId up_to, BlameReplayState& state) const;

  // A new repository containing the same authors and commits 0..up_to — the
  // repository as it existed right after `up_to` landed. This is the baseline
  // the incremental engine is proven equivalent against: analyzing
  // PrefixCopy(c) from scratch must match the engine's per-commit result.
  Repository PrefixCopy(CommitId up_to) const;

  // 1-based line numbers (in the post-commit file) that `commit` introduced
  // or modified in `path`; empty when the commit did not touch the path.
  // Feeds incremental analysis: only functions overlapping these lines need
  // re-analysis after the commit.
  std::vector<int> ChangedLines(const std::string& path, CommitId commit) const;

 private:
  std::vector<LineOrigin> ReplayBlame(const std::string& path, CommitId up_to) const;

  std::vector<Author> authors_;
  std::vector<Commit> commits_;
  // Per path: ids of commits touching it (including deletions), oldest first.
  std::map<std::string, std::vector<CommitId>> file_log_;
  // Head-blame cache as resumable states; Blame() advances a path's state to
  // the current head on demand, so AddCommit never discards earlier work.
  mutable std::map<std::string, BlameReplayState> blame_cache_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_VCS_REPOSITORY_H_

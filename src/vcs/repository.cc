#include "src/vcs/repository.h"

#include <utility>

namespace vc {

AuthorId Repository::AddAuthor(std::string name) {
  authors_.push_back({std::move(name)});
  return static_cast<AuthorId>(authors_.size() - 1);
}

AuthorId Repository::FindAuthor(const std::string& name) const {
  for (size_t i = 0; i < authors_.size(); ++i) {
    if (authors_[i].name == name) {
      return static_cast<AuthorId>(i);
    }
  }
  return kInvalidAuthor;
}

CommitId Repository::AddCommit(AuthorId author, int64_t timestamp, std::string message,
                               std::map<std::string, std::string> changed_files,
                               std::set<std::string> deleted_files) {
  Commit commit;
  commit.id = static_cast<CommitId>(commits_.size());
  commit.author = author;
  commit.timestamp = timestamp;
  commit.message = std::move(message);
  commit.files = std::move(changed_files);
  commit.deleted = std::move(deleted_files);
  // Cached blame states are NOT invalidated here: they record how far into
  // the per-file log they have folded, and Blame() lazily advances them over
  // the new entries.
  for (const auto& [path, content] : commit.files) {
    file_log_[path].push_back(commit.id);
  }
  for (const std::string& path : commit.deleted) {
    file_log_[path].push_back(commit.id);
  }
  commits_.push_back(std::move(commit));
  return commits_.back().id;
}

std::optional<std::string> Repository::FileAt(const std::string& path, CommitId commit) const {
  auto it = file_log_.find(path);
  if (it == file_log_.end()) {
    return std::nullopt;
  }
  // Walk the per-file log backwards to the newest touch <= commit.
  const std::vector<CommitId>& log = it->second;
  for (size_t i = log.size(); i-- > 0;) {
    if (log[i] > commit) {
      continue;
    }
    const Commit& c = commits_[log[i]];
    if (c.deleted.count(path) > 0) {
      return std::nullopt;
    }
    auto file_it = c.files.find(path);
    if (file_it != c.files.end()) {
      return file_it->second;
    }
  }
  return std::nullopt;
}

std::optional<std::string> Repository::Head(const std::string& path) const {
  if (commits_.empty()) {
    return std::nullopt;
  }
  return FileAt(path, static_cast<CommitId>(commits_.size() - 1));
}

std::vector<std::string> Repository::ListFiles() const {
  std::vector<std::string> files;
  for (const auto& [path, log] : file_log_) {
    if (Head(path).has_value()) {
      files.push_back(path);
    }
  }
  return files;
}

std::vector<CommitId> Repository::LogOf(const std::string& path) const {
  auto it = file_log_.find(path);
  return it == file_log_.end() ? std::vector<CommitId>{} : it->second;
}

void Repository::AdvanceBlame(const std::string& path, CommitId up_to,
                              BlameReplayState& state) const {
  auto it = file_log_.find(path);
  if (it == file_log_.end()) {
    return;
  }
  const std::vector<CommitId>& log = it->second;
  for (; state.log_index < log.size(); ++state.log_index) {
    CommitId commit_id = log[state.log_index];
    if (commit_id > up_to) {
      break;
    }
    const Commit& commit = commits_[commit_id];
    if (commit.deleted.count(path) > 0) {
      state.attribution.clear();
      state.content.clear();
      state.exists = false;
      continue;
    }
    auto file_it = commit.files.find(path);
    if (file_it == commit.files.end()) {
      continue;
    }
    const std::string& next = file_it->second;
    if (!state.exists) {
      // (Re)creation: every line belongs to this commit.
      state.attribution.assign(SplitLines(next).size(), {commit_id, commit.author});
      state.content = next;
      state.exists = true;
      continue;
    }
    std::vector<std::string_view> old_lines = SplitLines(state.content);
    std::vector<std::string_view> new_lines = SplitLines(next);
    std::vector<Edit> edits = DiffLines(old_lines, new_lines);
    std::vector<LineOrigin> next_attr;
    next_attr.reserve(new_lines.size());
    for (const Edit& edit : edits) {
      if (edit.op == EditOp::kKeep) {
        next_attr.push_back(state.attribution[edit.old_index]);
      } else if (edit.op == EditOp::kInsert) {
        next_attr.push_back({commit_id, commit.author});
      }
    }
    state.attribution = std::move(next_attr);
    state.content = next;
  }
}

std::vector<LineOrigin> Repository::ReplayBlame(const std::string& path, CommitId up_to) const {
  BlameReplayState state;
  AdvanceBlame(path, up_to, state);
  return std::move(state.attribution);
}

const std::vector<LineOrigin>& Repository::Blame(const std::string& path) const {
  CommitId head = commits_.empty() ? kInvalidCommit : static_cast<CommitId>(commits_.size() - 1);
  BlameReplayState& state = blame_cache_[path];
  AdvanceBlame(path, head, state);
  return state.attribution;
}

std::vector<LineOrigin> Repository::BlameAt(const std::string& path, CommitId commit) const {
  return ReplayBlame(path, commit);
}

Repository Repository::PrefixCopy(CommitId up_to) const {
  Repository copy;
  for (const Author& author : authors_) {
    copy.AddAuthor(author.name);
  }
  for (const Commit& commit : commits_) {
    if (commit.id > up_to) {
      break;
    }
    copy.AddCommit(commit.author, commit.timestamp, commit.message, commit.files,
                   commit.deleted);
  }
  return copy;
}

std::vector<int> Repository::ChangedLines(const std::string& path, CommitId commit) const {
  const Commit& c = commits_[commit];
  auto file_it = c.files.find(path);
  if (file_it == c.files.end()) {
    return {};
  }
  // Find the previous content.
  std::optional<std::string> prev;
  if (commit > 0) {
    prev = FileAt(path, commit - 1);
  }
  std::vector<std::string_view> new_lines = SplitLines(file_it->second);
  if (!prev.has_value()) {
    std::vector<int> all(new_lines.size());
    for (size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<int>(i) + 1;
    }
    return all;
  }
  std::vector<std::string_view> old_lines = SplitLines(*prev);
  std::vector<int> changed;
  for (const Edit& edit : DiffLines(old_lines, new_lines)) {
    if (edit.op == EditOp::kInsert) {
      changed.push_back(edit.new_index + 1);
    }
  }
  return changed;
}

}  // namespace vc

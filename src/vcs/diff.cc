#include "src/vcs/diff.h"

namespace vc {

std::vector<std::string_view> SplitLines(std::string_view content) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < content.size()) {
    size_t pos = content.find('\n', start);
    if (pos == std::string_view::npos) {
      lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, pos - start));
    start = pos + 1;
  }
  return lines;
}

std::vector<Edit> DiffLines(const std::vector<std::string_view>& a,
                            const std::vector<std::string_view>& b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const int max_d = n + m;

  // Myers' greedy algorithm. `v[k]` holds the furthest x on diagonal k; we
  // keep a copy of v per step to backtrack the edit script. One padding slot
  // on each side keeps the k±1 reads in bounds at the extreme diagonals
  // (notably k = -d = max_d = 0 when both inputs are empty).
  std::vector<std::vector<int>> trace;
  std::vector<int> v(2 * max_d + 3, 0);
  auto vk = [&](std::vector<int>& vec, int k) -> int& { return vec[k + max_d + 1]; };

  int final_d = -1;
  for (int d = 0; d <= max_d; ++d) {
    for (int k = -d; k <= d; k += 2) {
      int x;
      if (k == -d || (k != d && vk(v, k - 1) < vk(v, k + 1))) {
        x = vk(v, k + 1);  // move down (insert from b)
      } else {
        x = vk(v, k - 1) + 1;  // move right (delete from a)
      }
      int y = x - k;
      while (x < n && y < m && a[x] == b[y]) {
        ++x;
        ++y;
      }
      vk(v, k) = x;
      if (x >= n && y >= m) {
        final_d = d;
        break;
      }
    }
    trace.push_back(v);
    if (final_d >= 0) {
      break;
    }
  }

  // Backtrack from (n, m).
  std::vector<Edit> reversed;
  int x = n;
  int y = m;
  for (int d = final_d; d > 0; --d) {
    std::vector<int>& prev = trace[d - 1];
    int k = x - y;
    int prev_k;
    if (k == -d || (k != d && vk(prev, k - 1) < vk(prev, k + 1))) {
      prev_k = k + 1;
    } else {
      prev_k = k - 1;
    }
    int prev_x = vk(prev, prev_k);
    int prev_y = prev_x - prev_k;
    while (x > prev_x && y > prev_y) {
      reversed.push_back({EditOp::kKeep, x - 1, y - 1});
      --x;
      --y;
    }
    if (x == prev_x) {
      reversed.push_back({EditOp::kInsert, -1, y - 1});
      --y;
    } else {
      reversed.push_back({EditOp::kDelete, x - 1, -1});
      --x;
    }
  }
  while (x > 0 && y > 0) {
    reversed.push_back({EditOp::kKeep, x - 1, y - 1});
    --x;
    --y;
  }
  while (x > 0) {
    reversed.push_back({EditOp::kDelete, x - 1, -1});
    --x;
  }
  while (y > 0) {
    reversed.push_back({EditOp::kInsert, -1, y - 1});
    --y;
  }

  return {reversed.rbegin(), reversed.rend()};
}

std::vector<std::string> ApplyEdits(const std::vector<std::string_view>& a,
                                    const std::vector<std::string_view>& b,
                                    const std::vector<Edit>& edits) {
  std::vector<std::string> out;
  for (const Edit& edit : edits) {
    switch (edit.op) {
      case EditOp::kKeep:
        out.emplace_back(a[edit.old_index]);
        break;
      case EditOp::kInsert:
        out.emplace_back(b[edit.new_index]);
        break;
      case EditOp::kDelete:
        break;
    }
  }
  return out;
}

}  // namespace vc

#include "src/vcs/history_io.h"

#include <cstdlib>
#include <map>

#include "src/support/string_util.h"
#include "src/vcs/diff.h"

namespace vc {

namespace {

struct Cursor {
  std::vector<std::string_view> lines;
  size_t index = 0;

  bool Done() const { return index >= lines.size(); }
  std::string_view Peek() const { return lines[index]; }
  std::string_view Take() { return lines[index++]; }
  int LineNo() const { return static_cast<int>(index) + 1; }
};

bool Fail(std::string* error, int line, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + message;
  }
  return false;
}

}  // namespace

std::optional<Repository> LoadHistory(const std::string& text, std::string* error) {
  Repository repo;
  std::map<std::string, AuthorId> authors;
  Cursor cursor;
  cursor.lines = SplitLines(text);

  auto intern_author = [&](const std::string& name) {
    auto it = authors.find(name);
    if (it != authors.end()) {
      return it->second;
    }
    AuthorId id = repo.AddAuthor(name);
    authors[name] = id;
    return id;
  };

  while (!cursor.Done()) {
    std::string_view line = Trim(cursor.Peek());
    if (line.empty() || line.front() == '#') {
      cursor.Take();
      continue;
    }
    if (line != "commit") {
      Fail(error, cursor.LineNo(), "expected 'commit', got '" + std::string(line) + "'");
      return std::nullopt;
    }
    cursor.Take();

    std::string author_name;
    int64_t timestamp = 0;
    std::string message;
    std::map<std::string, std::string> writes;
    std::set<std::string> deletes;
    bool ended = false;

    while (!cursor.Done() && !ended) {
      int at = cursor.LineNo();
      std::string_view directive = Trim(cursor.Take());
      if (directive.empty() || directive.front() == '#') {
        continue;
      }
      if (directive == "end") {
        ended = true;
      } else if (directive.rfind("author ", 0) == 0) {
        author_name = std::string(Trim(directive.substr(7)));
      } else if (directive.rfind("time ", 0) == 0) {
        timestamp = std::strtoll(std::string(Trim(directive.substr(5))).c_str(), nullptr, 10);
      } else if (directive.rfind("message ", 0) == 0) {
        message = std::string(Trim(directive.substr(8)));
      } else if (directive.rfind("delete ", 0) == 0) {
        deletes.insert(std::string(Trim(directive.substr(7))));
      } else if (directive.rfind("write ", 0) == 0) {
        std::string path(Trim(directive.substr(6)));
        if (cursor.Done() || Trim(cursor.Take()) != "<<<") {
          Fail(error, at, "expected '<<<' after 'write " + path + "'");
          return std::nullopt;
        }
        std::string content;
        bool closed = false;
        while (!cursor.Done()) {
          std::string_view content_line = cursor.Take();
          if (Trim(content_line) == ">>>") {
            closed = true;
            break;
          }
          content += std::string(content_line);
          content += '\n';
        }
        if (!closed) {
          Fail(error, at, "unterminated content block for '" + path + "'");
          return std::nullopt;
        }
        writes[path] = std::move(content);
      } else {
        Fail(error, at, "unknown directive '" + std::string(directive) + "'");
        return std::nullopt;
      }
    }
    if (!ended) {
      Fail(error, cursor.LineNo(), "commit block missing 'end'");
      return std::nullopt;
    }
    if (author_name.empty()) {
      Fail(error, cursor.LineNo(), "commit block missing 'author'");
      return std::nullopt;
    }
    repo.AddCommit(intern_author(author_name), timestamp, std::move(message),
                   std::move(writes), std::move(deletes));
  }
  return repo;
}

std::string SaveHistory(const Repository& repo) {
  std::string out;
  for (CommitId id = 0; id < repo.NumCommits(); ++id) {
    const Commit& commit = repo.GetCommit(id);
    out += "commit\n";
    out += "author " + repo.GetAuthor(commit.author).name + "\n";
    out += "time " + std::to_string(commit.timestamp) + "\n";
    out += "message " + commit.message + "\n";
    for (const auto& [path, content] : commit.files) {
      out += "write " + path + "\n<<<\n";
      out += content;
      if (!content.empty() && content.back() != '\n') {
        out += '\n';
      }
      out += ">>>\n";
    }
    for (const std::string& path : commit.deleted) {
      out += "delete " + path + "\n";
    }
    out += "end\n";
  }
  return out;
}

}  // namespace vc

#include "src/ast/ast_printer.h"

#include "src/lexer/token.h"

namespace vc {

namespace {

std::string OpName(TokenKind op) { return TokenKindName(op); }

}  // namespace

std::string PrintExpr(const Expr* expr) {
  if (expr == nullptr) {
    return "<null>";
  }
  switch (expr->kind) {
    case ExprKind::kIntLit:
      return std::to_string(static_cast<const IntLitExpr*>(expr)->value);
    case ExprKind::kCharLit:
      return "'" + std::to_string(static_cast<const CharLitExpr*>(expr)->value) + "'";
    case ExprKind::kStrLit:
      return "\"" + static_cast<const StrLitExpr*>(expr)->value + "\"";
    case ExprKind::kBoolLit:
      return static_cast<const BoolLitExpr*>(expr)->value ? "true" : "false";
    case ExprKind::kNullLit:
      return "null";
    case ExprKind::kIdent:
      return static_cast<const IdentExpr*>(expr)->name;
    case ExprKind::kBinary: {
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      return "(" + OpName(bin->op) + " " + PrintExpr(bin->lhs) + " " + PrintExpr(bin->rhs) + ")";
    }
    case ExprKind::kUnary: {
      const auto* un = static_cast<const UnaryExpr*>(expr);
      std::string tag = un->is_postfix ? "post" : "pre";
      return "(" + tag + OpName(un->op) + " " + PrintExpr(un->operand) + ")";
    }
    case ExprKind::kAssign: {
      const auto* assign = static_cast<const AssignExpr*>(expr);
      return "(" + OpName(assign->op) + " " + PrintExpr(assign->lhs) + " " +
             PrintExpr(assign->rhs) + ")";
    }
    case ExprKind::kCall: {
      const auto* call = static_cast<const CallExpr*>(expr);
      std::string out = "(call " + PrintExpr(call->callee);
      for (const Expr* arg : call->args) {
        out += " " + PrintExpr(arg);
      }
      return out + ")";
    }
    case ExprKind::kMember: {
      const auto* member = static_cast<const MemberExpr*>(expr);
      return "(" + std::string(member->is_arrow ? "->" : ".") + " " + PrintExpr(member->base) +
             " " + member->member + ")";
    }
    case ExprKind::kIndex: {
      const auto* index = static_cast<const IndexExpr*>(expr);
      return "(index " + PrintExpr(index->base) + " " + PrintExpr(index->index) + ")";
    }
    case ExprKind::kCast: {
      const auto* cast = static_cast<const CastExpr*>(expr);
      return "(cast " + (cast->target ? cast->target->ToString() : std::string("?")) + " " +
             PrintExpr(cast->operand) + ")";
    }
    case ExprKind::kCond: {
      const auto* cond = static_cast<const CondExpr*>(expr);
      return "(?: " + PrintExpr(cond->cond) + " " + PrintExpr(cond->then_expr) + " " +
             PrintExpr(cond->else_expr) + ")";
    }
    case ExprKind::kSizeof:
      return "(sizeof)";
  }
  return "<bad-expr>";
}

std::string PrintStmt(const Stmt* stmt) {
  if (stmt == nullptr) {
    return "<null>";
  }
  switch (stmt->kind) {
    case StmtKind::kCompound: {
      const auto* compound = static_cast<const CompoundStmt*>(stmt);
      std::string out = "{";
      for (const Stmt* child : compound->body) {
        out += " " + PrintStmt(child);
      }
      return out + " }";
    }
    case StmtKind::kDecl: {
      const auto* decl = static_cast<const DeclStmt*>(stmt);
      std::string out = "(decl " + decl->var->type->ToString() + " " + decl->var->name;
      if (decl->init != nullptr) {
        out += " = " + PrintExpr(decl->init);
      }
      return out + ")";
    }
    case StmtKind::kExpr:
      return PrintExpr(static_cast<const ExprStmt*>(stmt)->expr) + ";";
    case StmtKind::kIf: {
      const auto* if_stmt = static_cast<const IfStmt*>(stmt);
      std::string out =
          "(if " + PrintExpr(if_stmt->cond) + " " + PrintStmt(if_stmt->then_stmt);
      if (if_stmt->else_stmt != nullptr) {
        out += " else " + PrintStmt(if_stmt->else_stmt);
      }
      return out + ")";
    }
    case StmtKind::kWhile: {
      const auto* while_stmt = static_cast<const WhileStmt*>(stmt);
      return "(while " + PrintExpr(while_stmt->cond) + " " + PrintStmt(while_stmt->body) + ")";
    }
    case StmtKind::kDoWhile: {
      const auto* do_stmt = static_cast<const DoWhileStmt*>(stmt);
      return "(do " + PrintStmt(do_stmt->body) + " while " + PrintExpr(do_stmt->cond) + ")";
    }
    case StmtKind::kSwitch: {
      const auto* switch_stmt = static_cast<const SwitchStmt*>(stmt);
      std::string out = "(switch " + PrintExpr(switch_stmt->cond);
      for (const SwitchCase& arm : switch_stmt->cases) {
        out += arm.is_default ? " (default" : " (case " + std::to_string(arm.value);
        for (const Stmt* child : arm.body) {
          out += " " + PrintStmt(child);
        }
        out += ")";
      }
      return out + ")";
    }
    case StmtKind::kFor: {
      const auto* for_stmt = static_cast<const ForStmt*>(stmt);
      return "(for " + PrintStmt(for_stmt->init) + " " + PrintExpr(for_stmt->cond) + " " +
             PrintExpr(for_stmt->step) + " " + PrintStmt(for_stmt->body) + ")";
    }
    case StmtKind::kReturn: {
      const auto* ret = static_cast<const ReturnStmt*>(stmt);
      return ret->value != nullptr ? "(return " + PrintExpr(ret->value) + ")" : "(return)";
    }
    case StmtKind::kBreak:
      return "(break)";
    case StmtKind::kContinue:
      return "(continue)";
    case StmtKind::kEmpty:
      return "(empty)";
  }
  return "<bad-stmt>";
}

std::string PrintFunction(const FunctionDecl* func) {
  std::string out = func->return_type->ToString() + " " + func->name + "(";
  for (size_t i = 0; i < func->params.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += func->params[i]->type->ToString() + " " + func->params[i]->name;
  }
  out += ")";
  if (func->body != nullptr) {
    out += " " + PrintStmt(func->body);
  } else {
    out += ";";
  }
  return out;
}

std::string PrintUnit(const TranslationUnit& unit) {
  std::string out;
  for (const StructDecl* s : unit.structs) {
    out += "struct " + s->name + " {";
    for (const FieldDecl* field : s->fields) {
      out += " " + field->type->ToString() + " " + field->name + ";";
    }
    out += " };\n";
  }
  for (const FunctionDecl* func : unit.functions) {
    out += PrintFunction(func) + "\n";
  }
  return out;
}

}  // namespace vc

// Mini-C type system. Types are interned in a TypeTable and referenced by
// const pointer; identity comparison is therefore pointer comparison.
//
// The integer-ish C types (int, long, unsigned, size_t) all map to the single
// kInt type: ValueCheck's analysis is width-agnostic, it only needs to know
// what is a struct (for field sensitivity) and what is a pointer (for alias
// analysis).

#ifndef VALUECHECK_SRC_AST_TYPE_H_
#define VALUECHECK_SRC_AST_TYPE_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

namespace vc {

struct StructDecl;

enum class TypeKind {
  kVoid,
  kInt,
  kChar,
  kBool,
  kStruct,
  kPointer,
};

class Type {
 public:
  TypeKind kind() const { return kind_; }
  bool IsVoid() const { return kind_ == TypeKind::kVoid; }
  bool IsInt() const { return kind_ == TypeKind::kInt; }
  bool IsBool() const { return kind_ == TypeKind::kBool; }
  bool IsStruct() const { return kind_ == TypeKind::kStruct; }
  bool IsPointer() const { return kind_ == TypeKind::kPointer; }
  bool IsScalar() const { return !IsStruct() && !IsVoid(); }

  // For kPointer.
  const Type* pointee() const { return pointee_; }
  // For kStruct.
  const StructDecl* struct_decl() const { return struct_decl_; }

  std::string ToString() const;

 private:
  friend class TypeTable;
  explicit Type(TypeKind kind) : kind_(kind) {}

  TypeKind kind_;
  const Type* pointee_ = nullptr;
  const StructDecl* struct_decl_ = nullptr;
};

class TypeTable {
 public:
  TypeTable();

  const Type* VoidType() const { return void_; }
  const Type* IntType() const { return int_; }
  const Type* CharType() const { return char_; }
  const Type* BoolType() const { return bool_; }

  const Type* PointerTo(const Type* pointee);
  const Type* StructTypeFor(const StructDecl* decl);

 private:
  Type* Alloc(TypeKind kind);

  std::deque<Type> storage_;
  const Type* void_;
  const Type* int_;
  const Type* char_;
  const Type* bool_;
  std::map<const Type*, const Type*> pointer_types_;
  std::map<const StructDecl*, const Type*> struct_types_;
};

}  // namespace vc

#endif  // VALUECHECK_SRC_AST_TYPE_H_

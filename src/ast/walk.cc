#include "src/ast/walk.h"

namespace vc {

void WalkExpr(const Expr* expr, const std::function<void(const Expr*)>& fn) {
  if (expr == nullptr) {
    return;
  }
  fn(expr);
  switch (expr->kind) {
    case ExprKind::kBinary: {
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      WalkExpr(bin->lhs, fn);
      WalkExpr(bin->rhs, fn);
      break;
    }
    case ExprKind::kUnary:
      WalkExpr(static_cast<const UnaryExpr*>(expr)->operand, fn);
      break;
    case ExprKind::kAssign: {
      const auto* assign = static_cast<const AssignExpr*>(expr);
      WalkExpr(assign->lhs, fn);
      WalkExpr(assign->rhs, fn);
      break;
    }
    case ExprKind::kCall: {
      const auto* call = static_cast<const CallExpr*>(expr);
      WalkExpr(call->callee, fn);
      for (const Expr* arg : call->args) {
        WalkExpr(arg, fn);
      }
      break;
    }
    case ExprKind::kMember:
      WalkExpr(static_cast<const MemberExpr*>(expr)->base, fn);
      break;
    case ExprKind::kIndex: {
      const auto* index = static_cast<const IndexExpr*>(expr);
      WalkExpr(index->base, fn);
      WalkExpr(index->index, fn);
      break;
    }
    case ExprKind::kCast:
      WalkExpr(static_cast<const CastExpr*>(expr)->operand, fn);
      break;
    case ExprKind::kCond: {
      const auto* cond = static_cast<const CondExpr*>(expr);
      WalkExpr(cond->cond, fn);
      WalkExpr(cond->then_expr, fn);
      WalkExpr(cond->else_expr, fn);
      break;
    }
    case ExprKind::kSizeof:
      WalkExpr(static_cast<const SizeofExpr*>(expr)->arg_expr, fn);
      break;
    default:
      break;
  }
}

void ForEachStmt(const Stmt* stmt, const std::function<void(const Stmt*)>& fn) {
  if (stmt == nullptr) {
    return;
  }
  fn(stmt);
  switch (stmt->kind) {
    case StmtKind::kCompound:
      for (const Stmt* child : static_cast<const CompoundStmt*>(stmt)->body) {
        ForEachStmt(child, fn);
      }
      break;
    case StmtKind::kIf: {
      const auto* if_stmt = static_cast<const IfStmt*>(stmt);
      ForEachStmt(if_stmt->then_stmt, fn);
      ForEachStmt(if_stmt->else_stmt, fn);
      break;
    }
    case StmtKind::kWhile:
      ForEachStmt(static_cast<const WhileStmt*>(stmt)->body, fn);
      break;
    case StmtKind::kDoWhile:
      ForEachStmt(static_cast<const DoWhileStmt*>(stmt)->body, fn);
      break;
    case StmtKind::kSwitch:
      for (const SwitchCase& arm : static_cast<const SwitchStmt*>(stmt)->cases) {
        for (const Stmt* child : arm.body) {
          ForEachStmt(child, fn);
        }
      }
      break;
    case StmtKind::kFor: {
      const auto* for_stmt = static_cast<const ForStmt*>(stmt);
      ForEachStmt(for_stmt->init, fn);
      ForEachStmt(for_stmt->body, fn);
      break;
    }
    default:
      break;
  }
}

void ForEachExpr(const Stmt* stmt, const std::function<void(const Expr*)>& fn) {
  ForEachStmt(stmt, [&fn](const Stmt* node) {
    switch (node->kind) {
      case StmtKind::kDecl:
        WalkExpr(static_cast<const DeclStmt*>(node)->init, fn);
        break;
      case StmtKind::kExpr:
        WalkExpr(static_cast<const ExprStmt*>(node)->expr, fn);
        break;
      case StmtKind::kIf:
        WalkExpr(static_cast<const IfStmt*>(node)->cond, fn);
        break;
      case StmtKind::kWhile:
        WalkExpr(static_cast<const WhileStmt*>(node)->cond, fn);
        break;
      case StmtKind::kDoWhile:
        WalkExpr(static_cast<const DoWhileStmt*>(node)->cond, fn);
        break;
      case StmtKind::kSwitch:
        WalkExpr(static_cast<const SwitchStmt*>(node)->cond, fn);
        break;
      case StmtKind::kFor: {
        const auto* for_stmt = static_cast<const ForStmt*>(node);
        WalkExpr(for_stmt->cond, fn);
        WalkExpr(for_stmt->step, fn);
        break;
      }
      case StmtKind::kReturn:
        WalkExpr(static_cast<const ReturnStmt*>(node)->value, fn);
        break;
      default:
        break;
    }
  });
}

}  // namespace vc

// Generic AST traversal helpers. Callbacks see every node in source order;
// used by the AST-level baseline analyzers (Clang-style and Smatch-style
// checks operate on the AST, not on the IR).

#ifndef VALUECHECK_SRC_AST_WALK_H_
#define VALUECHECK_SRC_AST_WALK_H_

#include <functional>

#include "src/ast/ast.h"

namespace vc {

// Visits `stmt` and all statements beneath it (pre-order).
void ForEachStmt(const Stmt* stmt, const std::function<void(const Stmt*)>& fn);

// Visits every expression beneath `stmt` (pre-order, including subexprs).
void ForEachExpr(const Stmt* stmt, const std::function<void(const Expr*)>& fn);

// Visits every expression beneath `expr`, including `expr` itself.
void WalkExpr(const Expr* expr, const std::function<void(const Expr*)>& fn);

}  // namespace vc

#endif  // VALUECHECK_SRC_AST_WALK_H_

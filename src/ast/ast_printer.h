// S-expression-style dumper for AST nodes, used by parser tests to assert on
// tree shapes without poking at node internals.

#ifndef VALUECHECK_SRC_AST_AST_PRINTER_H_
#define VALUECHECK_SRC_AST_AST_PRINTER_H_

#include <string>

#include "src/ast/ast.h"

namespace vc {

std::string PrintExpr(const Expr* expr);
std::string PrintStmt(const Stmt* stmt);
std::string PrintFunction(const FunctionDecl* func);
std::string PrintUnit(const TranslationUnit& unit);

}  // namespace vc

#endif  // VALUECHECK_SRC_AST_AST_PRINTER_H_

#include "src/ast/type.h"

#include "src/ast/ast.h"

namespace vc {

TypeTable::TypeTable() {
  void_ = Alloc(TypeKind::kVoid);
  int_ = Alloc(TypeKind::kInt);
  char_ = Alloc(TypeKind::kChar);
  bool_ = Alloc(TypeKind::kBool);
}

Type* TypeTable::Alloc(TypeKind kind) {
  storage_.push_back(Type(kind));
  return &storage_.back();
}

const Type* TypeTable::PointerTo(const Type* pointee) {
  auto it = pointer_types_.find(pointee);
  if (it != pointer_types_.end()) {
    return it->second;
  }
  Type* type = Alloc(TypeKind::kPointer);
  type->pointee_ = pointee;
  pointer_types_[pointee] = type;
  return type;
}

const Type* TypeTable::StructTypeFor(const StructDecl* decl) {
  auto it = struct_types_.find(decl);
  if (it != struct_types_.end()) {
    return it->second;
  }
  Type* type = Alloc(TypeKind::kStruct);
  type->struct_decl_ = decl;
  struct_types_[decl] = type;
  return type;
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kInt:
      return "int";
    case TypeKind::kChar:
      return "char";
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kStruct:
      return "struct " + (struct_decl_ ? struct_decl_->name : std::string("<anon>"));
    case TypeKind::kPointer:
      return (pointee_ ? pointee_->ToString() : std::string("?")) + "*";
  }
  return "<bad-type>";
}

}  // namespace vc

// Mini-C abstract syntax tree.
//
// All nodes are allocated through an AstContext arena and referenced by raw
// pointer; the arena owns every node for the lifetime of a translation unit.
// Identifier expressions are resolved to their declarations by the parser, so
// downstream passes (IR lowering, baselines that walk the AST) never do name
// lookup themselves.

#ifndef VALUECHECK_SRC_AST_AST_H_
#define VALUECHECK_SRC_AST_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ast/type.h"
#include "src/lexer/token.h"
#include "src/support/source_location.h"

namespace vc {

class AstNode {
 public:
  virtual ~AstNode() = default;
};

// Arena that owns every AST node of one translation unit plus its type table.
class AstContext {
 public:
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = node.get();
    node_bytes_ += sizeof(T);
    ++node_count_;
    nodes_.push_back(std::move(node));
    return raw;
  }

  TypeTable& types() { return types_; }
  const TypeTable& types() const { return types_; }

  // Exact sizeof-footprint of the arena's nodes (excludes out-of-line vectors
  // and strings): the arena is per-file single-threaded, so plain counters
  // stay exact and deterministic. Consumed by the memory tracker.
  uint64_t node_bytes() const { return node_bytes_; }
  uint64_t node_count() const { return node_count_; }

 private:
  TypeTable types_;
  std::vector<std::unique_ptr<AstNode>> nodes_;
  uint64_t node_bytes_ = 0;
  uint64_t node_count_ = 0;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct FunctionDecl;

struct FieldDecl : AstNode {
  std::string name;
  const Type* type = nullptr;
  int index = 0;  // position within the struct; forms the slot name "v#index"
  SourceLoc loc;
};

struct StructDecl : AstNode {
  std::string name;
  std::vector<FieldDecl*> fields;
  SourceLoc loc;

  const FieldDecl* FindField(const std::string& field_name) const {
    for (const FieldDecl* field : fields) {
      if (field->name == field_name) {
        return field;
      }
    }
    return nullptr;
  }
};

struct VarDecl : AstNode {
  std::string name;
  const Type* type = nullptr;
  SourceLoc loc;
  bool is_param = false;
  int param_index = -1;
  // True when the declaration carries an unused-intent attribute
  // ([[maybe_unused]] / __attribute__((unused))).
  bool has_unused_attr = false;
  bool is_global = false;
  const FunctionDecl* owner = nullptr;  // enclosing function, null for globals
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kIntLit,
  kCharLit,
  kStrLit,
  kBoolLit,
  kNullLit,
  kIdent,
  kBinary,
  kUnary,
  kAssign,
  kCall,
  kMember,
  kIndex,
  kCast,
  kCond,
  kSizeof,
};

struct Expr : AstNode {
  explicit Expr(ExprKind k) : kind(k) {}
  ExprKind kind;
  SourceLoc loc;
  const Type* type = nullptr;
};

struct IntLitExpr : Expr {
  IntLitExpr() : Expr(ExprKind::kIntLit) {}
  long long value = 0;
};

struct CharLitExpr : Expr {
  CharLitExpr() : Expr(ExprKind::kCharLit) {}
  long long value = 0;
};

struct StrLitExpr : Expr {
  StrLitExpr() : Expr(ExprKind::kStrLit) {}
  std::string value;
};

struct BoolLitExpr : Expr {
  BoolLitExpr() : Expr(ExprKind::kBoolLit) {}
  bool value = false;
};

struct NullLitExpr : Expr {
  NullLitExpr() : Expr(ExprKind::kNullLit) {}
};

// A reference to a variable or (when used as a callee or with unary &) a
// function. Exactly one of `var` / `func` is set after resolution.
struct IdentExpr : Expr {
  IdentExpr() : Expr(ExprKind::kIdent) {}
  std::string name;
  VarDecl* var = nullptr;
  FunctionDecl* func = nullptr;
};

struct BinaryExpr : Expr {
  BinaryExpr() : Expr(ExprKind::kBinary) {}
  TokenKind op = TokenKind::kPlus;
  Expr* lhs = nullptr;
  Expr* rhs = nullptr;
};

// Prefix or postfix unary operation; ops: - ! ~ * & ++ --.
struct UnaryExpr : Expr {
  UnaryExpr() : Expr(ExprKind::kUnary) {}
  TokenKind op = TokenKind::kMinus;
  bool is_postfix = false;
  Expr* operand = nullptr;
};

// Simple or compound assignment: = += -= *= /= &= |=.
struct AssignExpr : Expr {
  AssignExpr() : Expr(ExprKind::kAssign) {}
  TokenKind op = TokenKind::kAssign;
  Expr* lhs = nullptr;
  Expr* rhs = nullptr;
};

struct CallExpr : Expr {
  CallExpr() : Expr(ExprKind::kCall) {}
  Expr* callee = nullptr;  // IdentExpr (direct) or arbitrary expr (indirect)
  std::vector<Expr*> args;
  // Resolved for direct calls to functions declared in the same translation
  // unit (definition or prototype); null for indirect calls through pointers.
  FunctionDecl* resolved = nullptr;
};

struct MemberExpr : Expr {
  MemberExpr() : Expr(ExprKind::kMember) {}
  Expr* base = nullptr;
  std::string member;
  bool is_arrow = false;
  const FieldDecl* field = nullptr;  // resolved when base type is known
};

struct IndexExpr : Expr {
  IndexExpr() : Expr(ExprKind::kIndex) {}
  Expr* base = nullptr;
  Expr* index = nullptr;
};

struct CastExpr : Expr {
  CastExpr() : Expr(ExprKind::kCast) {}
  const Type* target = nullptr;
  Expr* operand = nullptr;
  // (void)x — the idiomatic "value intentionally unused" marker.
  bool is_void_cast = false;
};

struct CondExpr : Expr {
  CondExpr() : Expr(ExprKind::kCond) {}
  Expr* cond = nullptr;
  Expr* then_expr = nullptr;
  Expr* else_expr = nullptr;
};

struct SizeofExpr : Expr {
  SizeofExpr() : Expr(ExprKind::kSizeof) {}
  const Type* arg_type = nullptr;
  Expr* arg_expr = nullptr;  // either type or expr form
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kCompound,
  kDecl,
  kExpr,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kSwitch,
  kReturn,
  kBreak,
  kContinue,
  kEmpty,
};

struct Stmt : AstNode {
  explicit Stmt(StmtKind k) : kind(k) {}
  StmtKind kind;
  SourceLoc loc;
};

struct CompoundStmt : Stmt {
  CompoundStmt() : Stmt(StmtKind::kCompound) {}
  std::vector<Stmt*> body;
};

struct DeclStmt : Stmt {
  DeclStmt() : Stmt(StmtKind::kDecl) {}
  VarDecl* var = nullptr;
  Expr* init = nullptr;  // nullable
};

struct ExprStmt : Stmt {
  ExprStmt() : Stmt(StmtKind::kExpr) {}
  Expr* expr = nullptr;
};

struct IfStmt : Stmt {
  IfStmt() : Stmt(StmtKind::kIf) {}
  Expr* cond = nullptr;
  Stmt* then_stmt = nullptr;
  Stmt* else_stmt = nullptr;  // nullable
};

struct WhileStmt : Stmt {
  WhileStmt() : Stmt(StmtKind::kWhile) {}
  Expr* cond = nullptr;
  Stmt* body = nullptr;
};

struct DoWhileStmt : Stmt {
  DoWhileStmt() : Stmt(StmtKind::kDoWhile) {}
  Stmt* body = nullptr;
  Expr* cond = nullptr;
};

// One `case <constant>:` (or `default:`) arm with its statements. C-style
// fallthrough applies: without a break, control continues into the next arm.
struct SwitchCase {
  bool is_default = false;
  long long value = 0;
  SourceLoc loc;
  std::vector<Stmt*> body;
};

struct SwitchStmt : Stmt {
  SwitchStmt() : Stmt(StmtKind::kSwitch) {}
  Expr* cond = nullptr;
  std::vector<SwitchCase> cases;
};

struct ForStmt : Stmt {
  ForStmt() : Stmt(StmtKind::kFor) {}
  Stmt* init = nullptr;  // DeclStmt or ExprStmt or kEmpty
  Expr* cond = nullptr;  // nullable
  Expr* step = nullptr;  // nullable
  Stmt* body = nullptr;
};

struct ReturnStmt : Stmt {
  ReturnStmt() : Stmt(StmtKind::kReturn) {}
  Expr* value = nullptr;  // nullable
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(StmtKind::kBreak) {}
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(StmtKind::kContinue) {}
};

struct EmptyStmt : Stmt {
  EmptyStmt() : Stmt(StmtKind::kEmpty) {}
};

// ---------------------------------------------------------------------------
// Functions and translation units
// ---------------------------------------------------------------------------

struct FunctionDecl : AstNode {
  std::string name;
  const Type* return_type = nullptr;
  std::vector<VarDecl*> params;
  CompoundStmt* body = nullptr;  // null for prototypes / external functions
  SourceLoc loc;                 // location of the function name
  SourceRange range;             // whole definition, for per-function scans
  bool is_static = false;
  // Created on first use for callees with no declaration in the unit; treated
  // as library functions by the authorship phase (§4.2: a library callee
  // counts as a different author).
  bool is_implicit = false;

  bool IsDefined() const { return body != nullptr; }
};

// One parsed source file. The AstContext arena inside owns all nodes.
struct TranslationUnit {
  FileId file = kInvalidFileId;
  std::unique_ptr<AstContext> context;
  std::vector<StructDecl*> structs;
  std::vector<FunctionDecl*> functions;  // definitions and prototypes
  std::vector<VarDecl*> globals;

  FunctionDecl* FindFunction(const std::string& name) const {
    for (FunctionDecl* func : functions) {
      if (func->name == name) {
        return func;
      }
    }
    return nullptr;
  }
};

}  // namespace vc

#endif  // VALUECHECK_SRC_AST_AST_H_

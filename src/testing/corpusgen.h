// Paper-scale corpus profiles over the Mini-C generator.
//
// The paper's scalability subjects are shaped very differently: Linux is
// tens of thousands of small files, MySQL is far fewer but much larger
// translation units. A CorpusProfile captures one such shape — a file
// count plus the per-file GenOptions that produce it — at three scales
// (small ~10k LOC for smokes, medium ~100k+ LOC for acceptance runs,
// large ~1M+ LOC for real sweeps).
//
// Streaming determinism: file `index` of a profile is generated from a
// seed derived only from (profile.seed, index), with identifier prefix
// "u<index>_" and path prefix "m<index>_" so independently generated files
// never collide when combined into one project. Generation is therefore
// O(one file) in memory — vc_corpusgen streams a million-LOC corpus to
// disk without ever holding it resident — and WriteCorpus /
// GenerateCorpusSources / GenerateCorpusFile all agree byte-for-byte.

#ifndef VALUECHECK_SRC_TESTING_CORPUSGEN_H_
#define VALUECHECK_SRC_TESTING_CORPUSGEN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/testing/testgen.h"

namespace vc {
namespace testing {

// One corpus shape: `files` files, each generated with `per_file`
// (min_files == max_files == 1; prefixes are filled per index).
struct CorpusProfile {
  std::string name;    // "linux-like" | "mysql-like"
  std::string scale;   // "small" | "medium" | "large"
  uint64_t seed = 1;
  int files = 0;
  GenOptions per_file;
};

// Known profile/scale names, in presentation order.
std::vector<std::string> CorpusProfileNames();
std::vector<std::string> CorpusScaleNames();

// Builds a named profile. Returns false (leaving `out` untouched) for an
// unknown profile or scale name.
bool MakeCorpusProfile(const std::string& name, const std::string& scale,
                       uint64_t seed, CorpusProfile* out);

// File `index` (0-based) of the profile; depends only on (seed, index,
// shape).
SourceFile GenerateCorpusFile(const CorpusProfile& profile, int index);

// Whole corpus as (path, content) pairs for Project::FromSources — for
// tests and benches; prefer WriteCorpus at large scale.
std::vector<std::pair<std::string, std::string>> GenerateCorpusSources(
    const CorpusProfile& profile);

struct CorpusStats {
  int files = 0;
  int64_t lines = 0;
  int64_t bytes = 0;
};

// Streams the corpus file-by-file into `dir` (created if missing). Holds at
// most one file in memory. Returns false and fills `error` on I/O failure.
bool WriteCorpus(const CorpusProfile& profile, const std::string& dir,
                 CorpusStats* stats, std::string* error);

}  // namespace testing
}  // namespace vc

#endif  // VALUECHECK_SRC_TESTING_CORPUSGEN_H_

// The fuzz campaign driver: generate → check oracles → on failure, minimize
// and write a reproducer. This is the engine behind the vc_fuzz CLI and the
// fuzz_smoke ctest target.
//
// Determinism: iteration i analyzes the program GenerateProgram derives from
// (seed, i) alone, and the metamorphic transforms are seeded the same way —
// so one (seed, iterations) pair names an exact, replayable campaign, and a
// failure report's program_seed replays just that program with
// `vc_fuzz --replay <program_seed>`.

#ifndef VALUECHECK_SRC_TESTING_FUZZ_H_
#define VALUECHECK_SRC_TESTING_FUZZ_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/testing/minimizer.h"
#include "src/testing/oracle.h"
#include "src/testing/testgen.h"

namespace vc {
namespace testing {

struct FuzzOptions {
  uint64_t seed = 1;
  int iterations = 100;
  // Wall-clock cap; 0 = none. A truncated campaign reports how far it got.
  double time_budget_seconds = 0.0;
  GenOptions gen;
  OracleOptions oracle;
  // Directory reproducers are written into (one subdirectory per failure);
  // empty = keep reproducers in memory only.
  std::string corpus_dir;
  bool minimize = true;
  // Progress notes (iteration milestones, failures); null = silent.
  std::ostream* progress = nullptr;
  int progress_every = 100;
};

struct FuzzFailure {
  uint64_t program_seed = 0;
  int iteration = 0;
  OracleKind oracle = OracleKind::kCleanFrontend;
  std::string transform;
  std::string detail;
  TestProgram reproducer;  // minimized when FuzzOptions::minimize
  MinimizeStats minimize_stats;
  std::string reproducer_dir;  // set when corpus_dir was given
};

struct FuzzResult {
  int iterations_run = 0;
  double seconds = 0.0;
  std::vector<FuzzFailure> failures;

  bool Clean() const { return failures.empty(); }
};

// The seed iteration i fuzzes under a campaign seed (exposed so tests and
// reproduction instructions can name single programs).
uint64_t ProgramSeedFor(uint64_t campaign_seed, int iteration);

FuzzResult RunFuzzCampaign(const FuzzOptions& options);

// Writes `program` plus a MANIFEST.txt (seed, oracle, detail, replay
// command) into `dir`, creating it. Returns false on filesystem errors.
bool WriteReproducer(const std::string& dir, const TestProgram& program,
                     const FuzzFailure& failure);

}  // namespace testing
}  // namespace vc

#endif  // VALUECHECK_SRC_TESTING_FUZZ_H_

// Delta-debugging minimizer: shrinks an oracle-failing program to a small
// reproducer while the caller's predicate keeps holding.
//
// Reduction runs three passes to fixpoint: drop whole files, then
// ddmin-style line-chunk removal per file (chunk size halving from n/2 down
// to single lines), then a final single-line sweep. The predicate decides
// what "still failing" means — the fuzz campaign's predicate requires the
// same oracle kind to fail AND the candidate to still parse cleanly, so
// reduction can never wander into syntactically broken territory and call it
// a reproduction.
//
// Fully deterministic: no randomness, fixed scan order, so the same failing
// input always reduces to the same reproducer.

#ifndef VALUECHECK_SRC_TESTING_MINIMIZER_H_
#define VALUECHECK_SRC_TESTING_MINIMIZER_H_

#include <functional>

#include "src/testing/testgen.h"

namespace vc {
namespace testing {

using ProgramPredicate = std::function<bool(const TestProgram&)>;

struct MinimizeStats {
  int predicate_runs = 0;
  int initial_lines = 0;
  int final_lines = 0;
};

// `still_fails(failing)` must be true on entry; returns the smallest program
// the passes reach with the predicate still true. `max_predicate_runs`
// bounds total work (the reduction stops early, keeping its best-so-far).
TestProgram MinimizeProgram(const TestProgram& failing, const ProgramPredicate& still_fails,
                            MinimizeStats* stats = nullptr, int max_predicate_runs = 4000);

}  // namespace testing
}  // namespace vc

#endif  // VALUECHECK_SRC_TESTING_MINIMIZER_H_

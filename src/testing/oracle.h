// Differential oracles over the vc::Analysis pipeline.
//
// Each oracle states an invariant the analyzer promises for *any* input
// program; the fuzzer generates programs and this runner checks every enabled
// invariant on each one:
//
//   clean_frontend    — generated programs parse with zero diagnostics errors
//   jobs_determinism  — findings/raw candidates/prune stats/diagnostics are
//                       byte-identical at --jobs 1, 2, 8
//   metrics_parity    — collect_metrics on vs. off does not change findings
//   json_round_trip   — ReportToJson output parses back through json_reader
//                       with every finding field intact
//   metamorphic       — the (checker, fingerprint) set is stable under every
//                       semantics-preserving transform in mutator.h
//   degraded_run      — under deterministic fault injection the pipeline
//                       still completes, reports degraded, and the surviving
//                       fingerprints are a subset of the clean run's; the
//                       quarantine list and findings are identical at every
//                       job count
//   incremental_equivalence — replaying the program as a commit-per-file
//                       history (plus a final edit) through the incremental
//                       engine yields, at every commit, exactly the findings
//                       and raw candidates a full run over the truncated
//                       repository yields
//
// OracleOptions::parallel_fault is the harness's own test hook: a corruption
// applied to parallel (jobs > 1) reports before comparison, simulating a
// detector merge bug. It exists so the test suite can prove the oracle +
// minimizer actually catch and shrink an injected defect (vc_fuzz
// --inject-bug demos the same end to end).

#ifndef VALUECHECK_SRC_TESTING_ORACLE_H_
#define VALUECHECK_SRC_TESTING_ORACLE_H_

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/testing/mutator.h"
#include "src/testing/testgen.h"

namespace vc {
namespace testing {

enum class OracleKind {
  kCleanFrontend,
  kJobsDeterminism,
  kMetricsParity,
  kJsonRoundTrip,
  kMetamorphic,
  kDegradedRun,
  kIncrementalEquivalence,
};

const char* OracleKindName(OracleKind kind);
std::optional<OracleKind> OracleKindFromName(const std::string& name);
std::vector<OracleKind> AllOracles();

struct OracleFailure {
  OracleKind oracle = OracleKind::kCleanFrontend;
  std::string transform;  // metamorphic failures name the transform
  std::string detail;
};

struct OracleVerdict {
  std::vector<OracleFailure> failures;

  bool Passed() const { return failures.empty(); }
  bool Failed(OracleKind kind) const;
};

struct OracleOptions {
  // Checkers the analyzed runs enable (AnalysisOptions::checkers); empty
  // means the registry's default set. Every oracle then covers the whole
  // multi-checker surface: fingerprints are compared checker-qualified.
  std::vector<std::string> checkers;
  // Job counts the determinism oracle compares; the first entry is the
  // serial baseline the others must match byte for byte.
  std::vector<int> jobs = {1, 2, 8};
  // Empty = run every oracle.
  std::set<OracleKind> enabled;
  // Seed for the metamorphic transforms (so a whole campaign iteration is
  // reproducible from one number).
  uint64_t mutation_seed = 0;
  // Per-site fault probability the degraded_run oracle injects. High enough
  // that most programs quarantine something, low enough that some units
  // survive to exercise the subset check.
  double fault_rate = 0.2;
  // Test hook; see file comment.
  std::function<void(AnalysisReport&)> parallel_fault;
};

class OracleRunner {
 public:
  OracleRunner() = default;
  explicit OracleRunner(OracleOptions options);

  const OracleOptions& options() const { return options_; }

  OracleVerdict Check(const TestProgram& program) const;

  // Runs the pipeline on the program with the harness's fixed analysis
  // configuration (cross_scope_only off — source-mode analysis has no
  // authorship), applying the parallel fault hook when jobs > 1.
  AnalysisReport Analyze(const TestProgram& program, int jobs, bool collect_metrics) const;

  // Deterministic serialization of everything the determinism contract
  // covers: findings (with fingerprints), raw candidates, prune statistics,
  // diagnostics counts. Timings and pool stats are deliberately excluded.
  static std::string SerializeFindings(const AnalysisReport& report);

  // The checker-qualified fingerprint set ("checker:fingerprint") the
  // metamorphic oracle compares (ordinal suffixes make duplicates distinct,
  // so a set is lossless).
  static std::set<std::string> FingerprintSet(const AnalysisReport& report);

 private:
  bool Enabled(OracleKind kind) const {
    return options_.enabled.empty() || options_.enabled.count(kind) > 0;
  }

  OracleOptions options_;
};

// Canned parallel fault: parallel runs lose every overwritten-definition
// finding — the shape of a real slot-merge bug. Used by --inject-bug and the
// harness self-tests.
std::function<void(AnalysisReport&)> DropOverwrittenFindingsFault();

}  // namespace testing
}  // namespace vc

#endif  // VALUECHECK_SRC_TESTING_ORACLE_H_

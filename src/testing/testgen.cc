#include "src/testing/testgen.h"

#include <algorithm>

#include "src/support/rng.h"

namespace vc {
namespace testing {

std::string SourceFile::Content() const {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> TestProgram::ToSources() const {
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const SourceFile& file : files) {
    sources.emplace_back(file.path, file.Content());
  }
  return sources;
}

int TestProgram::TotalLines() const {
  int total = 0;
  for (const SourceFile& file : files) {
    total += static_cast<int>(file.lines.size());
  }
  return total;
}

namespace {

// Type categories the generator tracks. Mini-C collapses the integer family,
// so Int covers int/long/size_t; Char and Bool exist for grammar coverage.
enum class Kind { kInt, kPtrInt, kChar, kBool, kStructVal };

struct Var {
  std::string name;
  Kind kind = Kind::kInt;
  int struct_index = -1;  // into Planner::structs_ when kind == kStructVal
};

struct StructPlan {
  std::string name;
  std::vector<std::string> fields;
  int file = 0;
};

struct FuncPlan {
  std::string name;
  Kind return_kind = Kind::kInt;  // kBool stands in for "void" never; see returns_void
  bool returns_void = false;
  bool is_static = false;
  std::vector<Kind> param_kinds;
  std::vector<int> param_structs;  // struct index per param (struct-ptr params)
  int file = 0;
};

struct EnumPlan {
  std::vector<std::pair<std::string, int>> constants;
  int file = 0;
};

class Generator {
 public:
  Generator(uint64_t seed, const GenOptions& options) : rng_(seed), options_(options) {}

  TestProgram Run(uint64_t seed) {
    TestProgram program;
    program.seed = seed;
    Plan();
    for (int f = 0; f < num_files_; ++f) {
      program.files.push_back(EmitFile(f));
    }
    return program;
  }

 private:
  // --- Planning: signatures first so bodies can call forward/cross-file ----

  void Plan() {
    num_files_ = static_cast<int>(
        rng_.NextInRange(options_.min_files, std::max(options_.min_files, options_.max_files)));
    for (int f = 0; f < num_files_; ++f) {
      if (options_.gen_structs && rng_.NextBool(0.6)) {
        StructPlan st;
        st.name = MintName("st");
        st.file = f;
        int nfields = static_cast<int>(rng_.NextInRange(2, 3));
        for (int i = 0; i < nfields; ++i) {
          st.fields.push_back(MintName("fd"));
        }
        structs_.push_back(st);
      }
      if (options_.gen_enums && rng_.NextBool(0.4)) {
        EnumPlan en;
        en.file = f;
        int n = static_cast<int>(rng_.NextInRange(2, 3));
        for (int i = 0; i < n; ++i) {
          en.constants.emplace_back(MintName("EN"),
                                    static_cast<int>(rng_.NextInRange(0, 40)));
        }
        enums_.push_back(en);
      }
      if (options_.gen_typedefs && rng_.NextBool(0.3)) {
        typedefs_.push_back({MintName("td"), f});
      }
      if (options_.gen_globals && rng_.NextBool(0.5)) {
        int n = static_cast<int>(rng_.NextInRange(1, 2));
        for (int i = 0; i < n; ++i) {
          globals_.push_back({MintName("g"), f});
        }
      }
      int nfuncs = static_cast<int>(rng_.NextInRange(1, options_.max_functions_per_file));
      for (int i = 0; i < nfuncs; ++i) {
        FuncPlan fn;
        fn.name = MintName("fn");
        fn.file = f;
        fn.is_static = rng_.NextBool(0.15);
        double which = rng_.NextDouble();
        if (which < 0.15) {
          fn.returns_void = true;
        } else if (which < 0.3 && options_.gen_pointers) {
          fn.return_kind = Kind::kPtrInt;
        } else {
          fn.return_kind = Kind::kInt;
        }
        int nparams = static_cast<int>(rng_.NextInRange(0, 3));
        for (int p = 0; p < nparams; ++p) {
          double pick = rng_.NextDouble();
          if (pick < 0.55) {
            fn.param_kinds.push_back(Kind::kInt);
            fn.param_structs.push_back(-1);
          } else if (pick < 0.7 && options_.gen_pointers) {
            fn.param_kinds.push_back(Kind::kPtrInt);
            fn.param_structs.push_back(-1);
          } else if (pick < 0.8) {
            fn.param_kinds.push_back(Kind::kChar);
            fn.param_structs.push_back(-1);
          } else if (pick < 0.9) {
            fn.param_kinds.push_back(Kind::kBool);
            fn.param_structs.push_back(-1);
          } else if (FileStruct(f) >= 0) {
            fn.param_kinds.push_back(Kind::kStructVal);  // passed as struct*
            fn.param_structs.push_back(FileStruct(f));
          } else {
            fn.param_kinds.push_back(Kind::kInt);
            fn.param_structs.push_back(-1);
          }
        }
        funcs_.push_back(fn);
      }
    }
  }

  // First struct declared in `file`, or -1.
  int FileStruct(int file) const {
    for (size_t i = 0; i < structs_.size(); ++i) {
      if (structs_[i].file == file) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  // --- Emission ------------------------------------------------------------

  SourceFile EmitFile(int f) {
    SourceFile file;
    file.path = options_.file_prefix + "gen" + std::to_string(f) + ".c";
    lines_ = &file.lines;

    for (const StructPlan& st : structs_) {
      if (st.file != f) {
        continue;
      }
      Line("struct " + st.name + " {");
      for (const std::string& field : st.fields) {
        Line("  int " + field + ";");
      }
      Line("};");
    }
    for (const EnumPlan& en : enums_) {
      if (en.file != f) {
        continue;
      }
      std::string decl = "enum {";
      for (size_t i = 0; i < en.constants.size(); ++i) {
        if (i > 0) {
          decl += ",";
        }
        decl += " " + en.constants[i].first + " = " + std::to_string(en.constants[i].second);
      }
      decl += " };";
      Line(decl);
    }
    for (const auto& [name, tf] : typedefs_) {
      if (tf == f) {
        Line("typedef int " + name + ";");
      }
    }
    for (const auto& [name, gf] : globals_) {
      if (gf == f) {
        Line("int " + name + " = " + std::to_string(rng_.NextInRange(0, 9)) + ";");
      }
    }

    for (const FuncPlan& fn : funcs_) {
      if (fn.file != f) {
        continue;
      }
      Line("");
      EmitFunction(fn);
    }
    lines_ = nullptr;
    return file;
  }

  void EmitFunction(const FuncPlan& fn) {
    scope_.clear();
    current_file_ = fn.file;

    std::string sig;
    if (fn.is_static) {
      sig += "static ";
    }
    sig += fn.returns_void ? "void" : TypeName(fn.return_kind, -1);
    sig += " " + fn.name + "(";
    for (size_t p = 0; p < fn.param_kinds.size(); ++p) {
      if (p > 0) {
        sig += ", ";
      }
      Var param;
      param.name = MintName("v");
      param.kind = fn.param_kinds[p];
      param.struct_index = fn.param_structs[p];
      if (param.kind == Kind::kStructVal) {
        // Struct parameters travel as pointers; tracked separately so value
        // accessors (dot syntax) never apply to them.
        sig += "struct " + structs_[static_cast<size_t>(param.struct_index)].name + "* " +
               param.name;
        struct_ptr_params_.push_back(param.name);
      } else {
        sig += TypeName(param.kind, -1) + " " + param.name;
        scope_.push_back(param);
      }
    }
    sig += ") {";
    Line(sig);

    // Globals of this file are assignable ints in scope.
    for (const auto& [name, gf] : globals_) {
      if (gf == current_file_) {
        scope_.push_back({name, Kind::kInt, -1});
      }
    }

    int budget = static_cast<int>(rng_.NextInRange(3, options_.max_stmts_per_function));
    EmitBlock(1, 0, budget);

    if (fn.returns_void) {
      if (rng_.NextBool(0.5)) {
        Line("  return;");
      }
    } else if (fn.return_kind == Kind::kPtrInt) {
      const Var* iv = PickVar(Kind::kInt, true);
      Line(iv != nullptr ? "  return &" + iv->name + ";" : "  return NULL;");
    } else {
      Line("  return " + IntExpr(0) + ";");
    }
    Line("}");
    struct_ptr_params_.clear();
  }

  void EmitBlock(int indent, int depth, int budget) {
    size_t scope_mark = scope_.size();
    while (budget > 0) {
      int used = EmitStmt(indent, depth, budget);
      budget -= std::max(1, used);
    }
    scope_.resize(scope_mark);
  }

  // Emits one statement; returns the statement budget it consumed (compound
  // statements count their body).
  int EmitStmt(int indent, int depth, int budget) {
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    enum StmtKind {
      kDeclInit,
      kDeclNoInit,
      kDeclPtr,
      kDeclStruct,
      kDeclCharBool,
      kDeclTypedef,
      kAssign,
      kCompoundAssign,
      kIncrement,
      kCallStmt,
      kAssignFromCall,
      kDeclFromCall,
      kStoreThroughPtr,
      kStructField,
      kIf,
      kWhile,
      kFor,
      kDoWhile,
      kSwitch,
    };
    std::vector<double> weights = {
        3.0,                                   // kDeclInit
        0.8,                                   // kDeclNoInit
        options_.gen_pointers ? 1.0 : 0.0,     // kDeclPtr
        options_.gen_structs ? 0.8 : 0.0,      // kDeclStruct
        0.6,                                   // kDeclCharBool
        options_.gen_typedefs ? 0.4 : 0.0,     // kDeclTypedef
        3.0,                                   // kAssign
        1.2,                                   // kCompoundAssign
        1.0,                                   // kIncrement
        1.2,                                   // kCallStmt
        2.0,                                   // kAssignFromCall
        2.0,                                   // kDeclFromCall
        options_.gen_pointers ? 0.8 : 0.0,     // kStoreThroughPtr
        options_.gen_structs ? 1.0 : 0.0,      // kStructField
        depth < options_.max_block_depth ? 1.4 : 0.0,  // kIf
        depth < options_.max_block_depth ? 0.6 : 0.0,  // kWhile
        depth < options_.max_block_depth ? 0.9 : 0.0,  // kFor
        depth < options_.max_block_depth ? 0.3 : 0.0,  // kDoWhile
        depth < options_.max_block_depth ? 0.5 : 0.0,  // kSwitch
    };
    switch (static_cast<StmtKind>(rng_.NextWeighted(weights))) {
      case kDeclInit: {
        Var v = NewVar(Kind::kInt);
        Line(pad + "int " + v.name + " = " + IntExpr(0) + ";");
        scope_.push_back(v);
        return 1;
      }
      case kDeclNoInit: {
        Var v = NewVar(Kind::kInt);
        Line(pad + "int " + v.name + ";");
        scope_.push_back(v);
        return 1;
      }
      case kDeclPtr: {
        const Var* target = PickVar(Kind::kInt, true);
        Var v = NewVar(Kind::kPtrInt);
        Line(pad + "int* " + v.name + " = " +
             (target != nullptr ? "&" + target->name : "NULL") + ";");
        scope_.push_back(v);
        return 1;
      }
      case kDeclStruct: {
        int st = FileStruct(current_file_);
        if (st < 0) {
          return EmitStmt(indent, depth, budget);
        }
        Var v = NewVar(Kind::kStructVal);
        v.struct_index = st;
        Line(pad + "struct " + structs_[static_cast<size_t>(st)].name + " " + v.name + ";");
        scope_.push_back(v);
        return 1;
      }
      case kDeclCharBool: {
        if (rng_.NextBool(0.5)) {
          Var v = NewVar(Kind::kChar);
          Line(pad + "char " + v.name + " = '" +
               static_cast<char>('a' + rng_.NextBelow(26)) + "';");
          scope_.push_back(v);
        } else {
          Var v = NewVar(Kind::kBool);
          Line(pad + "bool " + v.name + " = " + (rng_.NextBool(0.5) ? "true" : "false") + ";");
          scope_.push_back(v);
        }
        return 1;
      }
      case kDeclTypedef: {
        const std::string* td = FileTypedef(current_file_);
        if (td == nullptr) {
          return EmitStmt(indent, depth, budget);
        }
        Var v = NewVar(Kind::kInt);
        Line(pad + *td + " " + v.name + " = " + IntExpr(0) + ";");
        scope_.push_back(v);
        return 1;
      }
      case kAssign: {
        const Var* v = PickVar(Kind::kInt, true);
        if (v == nullptr) {
          return EmitStmt(indent, depth, budget);
        }
        Line(pad + v->name + " = " + IntExpr(0) + ";");
        return 1;
      }
      case kCompoundAssign: {
        const Var* v = PickVar(Kind::kInt, true);
        if (v == nullptr) {
          return EmitStmt(indent, depth, budget);
        }
        static const char* kOps[] = {"+=", "-=", "*=", "|=", "&="};
        Line(pad + v->name + " " + kOps[rng_.NextBelow(5)] + " " + IntExpr(1) + ";");
        return 1;
      }
      case kIncrement: {
        const Var* v = PickVar(Kind::kInt, true);
        if (v == nullptr) {
          return EmitStmt(indent, depth, budget);
        }
        double pick = rng_.NextDouble();
        if (pick < 0.4) {
          Line(pad + v->name + "++;");
        } else if (pick < 0.6) {
          Line(pad + "++" + v->name + ";");
        } else {
          Line(pad + v->name + " += " + std::to_string(rng_.NextInRange(1, 8)) + ";");
        }
        return 1;
      }
      case kCallStmt: {
        const FuncPlan* fn = PickCallee(/*want_int=*/false);
        if (fn == nullptr) {
          return EmitStmt(indent, depth, budget);
        }
        Line(pad + CallExprFor(*fn) + ";");
        return 1;
      }
      case kAssignFromCall: {
        const Var* v = PickVar(Kind::kInt, true);
        const FuncPlan* fn = PickCallee(/*want_int=*/true);
        if (v == nullptr || fn == nullptr) {
          return EmitStmt(indent, depth, budget);
        }
        Line(pad + v->name + " = " + CallExprFor(*fn) + ";");
        return 1;
      }
      case kDeclFromCall: {
        const FuncPlan* fn = PickCallee(/*want_int=*/true);
        if (fn == nullptr) {
          return EmitStmt(indent, depth, budget);
        }
        Var v = NewVar(Kind::kInt);
        Line(pad + "int " + v.name + " = " + CallExprFor(*fn) + ";");
        scope_.push_back(v);
        return 1;
      }
      case kStoreThroughPtr: {
        const Var* p = PickVar(Kind::kPtrInt, true);
        if (p == nullptr) {
          return EmitStmt(indent, depth, budget);
        }
        Line(pad + "*" + p->name + " = " + IntExpr(0) + ";");
        return 1;
      }
      case kStructField: {
        const Var* sv = PickVar(Kind::kStructVal, true);
        if (sv == nullptr && !struct_ptr_params_.empty()) {
          // Write through a struct-pointer parameter instead.
          int st = FileStruct(current_file_);
          if (st >= 0) {
            const StructPlan& plan = structs_[static_cast<size_t>(st)];
            const std::string& field = plan.fields[rng_.NextBelow(plan.fields.size())];
            Line(pad + struct_ptr_params_[rng_.NextBelow(struct_ptr_params_.size())] + "->" +
                 field + " = " + IntExpr(0) + ";");
            return 1;
          }
        }
        if (sv == nullptr) {
          return EmitStmt(indent, depth, budget);
        }
        const StructPlan& plan = structs_[static_cast<size_t>(sv->struct_index)];
        const std::string& field = plan.fields[rng_.NextBelow(plan.fields.size())];
        Line(pad + sv->name + "." + field + " = " + IntExpr(0) + ";");
        return 1;
      }
      case kIf: {
        int body = 1 + static_cast<int>(rng_.NextBelow(3));
        Line(pad + "if " + CondExpr() + " {");
        EmitBlock(indent + 1, depth + 1, body);
        int used = body;
        if (rng_.NextBool(0.45)) {
          int else_body = 1 + static_cast<int>(rng_.NextBelow(2));
          Line(pad + "} else {");
          EmitBlock(indent + 1, depth + 1, else_body);
          used += else_body;
        }
        Line(pad + "}");
        return used + 1;
      }
      case kWhile: {
        int body = 1 + static_cast<int>(rng_.NextBelow(2));
        Line(pad + "while " + CondExpr() + " {");
        EmitBlock(indent + 1, depth + 1, body);
        Line(pad + "  break;");
        Line(pad + "}");
        return body + 1;
      }
      case kFor: {
        Var idx = NewVar(Kind::kInt);
        int body = 1 + static_cast<int>(rng_.NextBelow(2));
        Line(pad + "for (int " + idx.name + " = 0; " + idx.name + " < " +
             std::to_string(rng_.NextInRange(2, 9)) + "; " + idx.name + "++) {");
        scope_.push_back(idx);
        EmitBlock(indent + 1, depth + 1, body);
        scope_.pop_back();
        Line(pad + "}");
        return body + 1;
      }
      case kDoWhile: {
        int body = 1 + static_cast<int>(rng_.NextBelow(2));
        Line(pad + "do {");
        EmitBlock(indent + 1, depth + 1, body);
        Line(pad + "} while " + CondExpr() + ";");
        return body + 1;
      }
      case kSwitch: {
        const Var* v = PickVar(Kind::kInt, true);
        if (v == nullptr) {
          return EmitStmt(indent, depth, budget);
        }
        Line(pad + "switch (" + v->name + ") {");
        int ncases = static_cast<int>(rng_.NextInRange(1, 2));
        int used = 0;
        for (int c = 0; c < ncases; ++c) {
          Line(pad + "  case " + std::to_string(c * 3 + static_cast<int>(rng_.NextBelow(3))) +
               ": {");
          EmitBlock(indent + 2, depth + 1, 1);
          Line(pad + "    break;");
          Line(pad + "  }");
          ++used;
        }
        Line(pad + "  default: {");
        EmitBlock(indent + 2, depth + 1, 1);
        Line(pad + "    break;");
        Line(pad + "  }");
        Line(pad + "}");
        return used + 2;
      }
    }
    return 1;
  }

  // --- Expressions ---------------------------------------------------------

  std::string IntExpr(int depth) {
    std::vector<double> weights = {
        2.0,  // literal
        3.0,  // int var
        depth < options_.max_expr_depth ? 2.0 : 0.0,  // binary
        depth < options_.max_expr_depth ? 0.7 : 0.0,  // unary
        depth < options_.max_expr_depth ? 0.8 : 0.0,  // call
        depth < options_.max_expr_depth ? 0.4 : 0.0,  // ternary
        options_.gen_pointers ? 0.5 : 0.0,            // deref
        options_.gen_structs ? 0.5 : 0.0,             // struct field read
        0.2,  // sizeof
        0.3,  // enum constant
        0.3,  // char var
    };
    switch (rng_.NextWeighted(weights)) {
      case 0:
        return std::to_string(rng_.NextInRange(0, 99));
      case 1: {
        const Var* v = PickVar(Kind::kInt, false);
        return v != nullptr ? v->name : std::to_string(rng_.NextInRange(0, 99));
      }
      case 2: {
        static const char* kOps[] = {"+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"};
        size_t op = rng_.NextBelow(10);
        std::string rhs = op >= 8 ? "(" + IntExpr(depth + 1) + " | 1)" : IntExpr(depth + 1);
        return "(" + IntExpr(depth + 1) + " " + kOps[op] + " " + rhs + ")";
      }
      case 3: {
        static const char* kOps[] = {"-", "~", "!"};
        return "(" + std::string(kOps[rng_.NextBelow(3)]) + IntExpr(depth + 1) + ")";
      }
      case 4: {
        const FuncPlan* fn = PickCallee(/*want_int=*/true);
        if (fn == nullptr) {
          return std::to_string(rng_.NextInRange(0, 99));
        }
        return CallExprFor(*fn);
      }
      case 5:
        return "(" + CondExpr() + " ? " + IntExpr(depth + 1) + " : " + IntExpr(depth + 1) + ")";
      case 6: {
        const Var* p = PickVar(Kind::kPtrInt, false);
        if (p == nullptr) {
          return std::to_string(rng_.NextInRange(0, 99));
        }
        return "(*" + p->name + ")";
      }
      case 7: {
        const Var* sv = PickVar(Kind::kStructVal, false);
        if (sv == nullptr) {
          return std::to_string(rng_.NextInRange(0, 99));
        }
        const StructPlan& plan = structs_[static_cast<size_t>(sv->struct_index)];
        return sv->name + "." + plan.fields[rng_.NextBelow(plan.fields.size())];
      }
      case 8:
        return "(int)sizeof(int)";
      case 9: {
        const EnumPlan* en = FileEnum(current_file_);
        if (en == nullptr) {
          return std::to_string(rng_.NextInRange(0, 99));
        }
        return en->constants[rng_.NextBelow(en->constants.size())].first;
      }
      case 10: {
        const Var* c = PickVar(Kind::kChar, false);
        return c != nullptr ? c->name : std::to_string(rng_.NextInRange(0, 99));
      }
      default:
        return "0";
    }
  }

  std::string CondExpr() {
    const Var* a = PickVar(Kind::kInt, false);
    const Var* b = PickVar(Kind::kBool, false);
    double pick = rng_.NextDouble();
    if (pick < 0.25 && b != nullptr) {
      return "(" + b->name + ")";
    }
    std::string lhs = a != nullptr ? a->name : IntExpr(2);
    static const char* kOps[] = {"<", ">", "<=", ">=", "==", "!="};
    std::string cond = "(" + lhs + " " + kOps[rng_.NextBelow(6)] + " " + IntExpr(2) + ")";
    if (pick > 0.85) {
      cond = "(" + cond + " && (" + lhs + " != " + std::to_string(rng_.NextInRange(0, 9)) +
             "))";
    }
    return cond;
  }

  std::string CallExprFor(const FuncPlan& fn) {
    std::string call = fn.name + "(";
    for (size_t p = 0; p < fn.param_kinds.size(); ++p) {
      if (p > 0) {
        call += ", ";
      }
      switch (fn.param_kinds[p]) {
        case Kind::kInt:
          call += IntExpr(2);
          break;
        case Kind::kPtrInt: {
          const Var* ptr = PickVar(Kind::kPtrInt, false);
          if (ptr != nullptr && rng_.NextBool(0.5)) {
            call += ptr->name;
          } else {
            const Var* iv = PickVar(Kind::kInt, false);
            call += iv != nullptr ? "&" + iv->name : std::string("NULL");
          }
          break;
        }
        case Kind::kChar: {
          const Var* c = PickVar(Kind::kChar, false);
          if (c != nullptr) {
            call += c->name;
          } else {
            call += "'";
            call += static_cast<char>('a' + rng_.NextBelow(26));
            call += "'";
          }
          break;
        }
        case Kind::kBool:
          call += rng_.NextBool(0.5) ? "true" : "false";
          break;
        case Kind::kStructVal: {
          const Var* sv = PickVar(Kind::kStructVal, false);
          call += sv != nullptr && sv->struct_index == fn.param_structs[p] ? "&" + sv->name
                                                                           : std::string("NULL");
          break;
        }
      }
    }
    call += ")";
    return call;
  }

  // --- Symbol helpers ------------------------------------------------------

  Var NewVar(Kind kind) {
    Var v;
    v.name = MintName("v");
    v.kind = kind;
    return v;
  }

  const Var* PickVar(Kind kind, bool assignable) {
    (void)assignable;  // every tracked var is assignable in Mini-C
    std::vector<const Var*> matches;
    for (const Var& v : scope_) {
      if (v.kind == kind) {
        matches.push_back(&v);
      }
    }
    if (matches.empty()) {
      return nullptr;
    }
    return matches[rng_.NextBelow(matches.size())];
  }

  const FuncPlan* PickCallee(bool want_int) {
    std::vector<const FuncPlan*> matches;
    for (const FuncPlan& fn : funcs_) {
      if (fn.is_static && fn.file != current_file_) {
        continue;  // statics are file-local
      }
      if (want_int && (fn.returns_void || fn.return_kind != Kind::kInt)) {
        continue;
      }
      matches.push_back(&fn);
    }
    if (matches.empty()) {
      return nullptr;
    }
    return matches[rng_.NextBelow(matches.size())];
  }

  const std::string* FileTypedef(int file) const {
    for (const auto& [name, tf] : typedefs_) {
      if (tf == file) {
        return &name;
      }
    }
    return nullptr;
  }

  const EnumPlan* FileEnum(int file) const {
    for (const EnumPlan& en : enums_) {
      if (en.file == file) {
        return &en;
      }
    }
    return nullptr;
  }

  static std::string TypeName(Kind kind, int struct_index) {
    (void)struct_index;
    switch (kind) {
      case Kind::kInt:
        return "int";
      case Kind::kPtrInt:
        return "int*";
      case Kind::kChar:
        return "char";
      case Kind::kBool:
        return "bool";
      case Kind::kStructVal:
        return "int";  // unreachable; struct params are rendered inline
    }
    return "int";
  }

  void Line(std::string text) { lines_->push_back(std::move(text)); }

  // All identifiers come from one counter, so every minted name is unique
  // program-wide; the optional prefix makes them unique corpus-wide.
  std::string MintName(const char* base) {
    return options_.ident_prefix + base + std::to_string(name_counter_++);
  }

  Rng rng_;
  GenOptions options_;
  int num_files_ = 1;
  int name_counter_ = 0;
  int current_file_ = 0;

  std::vector<StructPlan> structs_;
  std::vector<EnumPlan> enums_;
  std::vector<std::pair<std::string, int>> typedefs_;
  std::vector<std::pair<std::string, int>> globals_;
  std::vector<FuncPlan> funcs_;

  std::vector<Var> scope_;
  std::vector<std::string> struct_ptr_params_;
  std::vector<std::string>* lines_ = nullptr;
};

}  // namespace

TestProgram GenerateProgram(uint64_t seed, const GenOptions& options) {
  Generator generator(seed, options);
  return generator.Run(seed);
}

}  // namespace testing
}  // namespace vc

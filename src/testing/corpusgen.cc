#include "src/testing/corpusgen.h"

#include <filesystem>
#include <fstream>

#include "src/support/rng.h"

namespace vc {
namespace testing {

namespace {

// Per-file shape of a profile at a given scale. File counts are calibrated
// so "medium" clears 100k LOC and "large" clears 1M LOC with margin (the
// generator averages well above the floor targets below).
struct Shape {
  int files = 0;
  int max_functions_per_file = 0;
  int max_stmts_per_function = 0;
};

bool ShapeFor(const std::string& name, const std::string& scale, Shape* out) {
  // linux-like: many small translation units (~60-80 LOC each).
  // mysql-like: few huge translation units (several thousand LOC each).
  int scale_idx;
  if (scale == "small") {
    scale_idx = 0;
  } else if (scale == "medium") {
    scale_idx = 1;
  } else if (scale == "large") {
    scale_idx = 2;
  } else {
    return false;
  }
  if (name == "linux-like") {
    static constexpr int kFiles[3] = {120, 1800, 18000};
    *out = {kFiles[scale_idx], 6, 12};
    return true;
  }
  if (name == "mysql-like") {
    static constexpr int kFiles[3] = {4, 46, 480};
    *out = {kFiles[scale_idx], 260, 16};
    return true;
  }
  return false;
}

// Seed for file `index`: a splitmix64 step over (seed, index) so files are
// independent and order-free.
uint64_t FileSeed(const CorpusProfile& profile, int index) {
  Rng mix(profile.seed * 0x100000001b3ULL +
          static_cast<uint64_t>(index) * 0x9e3779b97f4a7c15ULL);
  return mix.Next();
}

}  // namespace

std::vector<std::string> CorpusProfileNames() {
  return {"linux-like", "mysql-like"};
}

std::vector<std::string> CorpusScaleNames() {
  return {"small", "medium", "large"};
}

bool MakeCorpusProfile(const std::string& name, const std::string& scale,
                       uint64_t seed, CorpusProfile* out) {
  Shape shape;
  if (!ShapeFor(name, scale, &shape)) {
    return false;
  }
  CorpusProfile profile;
  profile.name = name;
  profile.scale = scale;
  profile.seed = seed;
  profile.files = shape.files;
  profile.per_file = GenOptions();
  profile.per_file.min_files = 1;
  profile.per_file.max_files = 1;
  profile.per_file.max_functions_per_file = shape.max_functions_per_file;
  profile.per_file.max_stmts_per_function = shape.max_stmts_per_function;
  *out = profile;
  return true;
}

SourceFile GenerateCorpusFile(const CorpusProfile& profile, int index) {
  GenOptions options = profile.per_file;
  options.min_files = 1;
  options.max_files = 1;
  // Unique corpus-wide namespaces: identifiers u<index>_..., path
  // m<index>_gen0.c. Zero padding keeps directory listings and
  // Project::FromSources order aligned with index order.
  std::string tag = std::to_string(index);
  std::string padded = std::string(tag.size() < 6 ? 6 - tag.size() : 0, '0') + tag;
  options.ident_prefix = "u" + tag + "_";
  options.file_prefix = "m" + padded + "_";
  TestProgram program = GenerateProgram(FileSeed(profile, index), options);
  return program.files.front();
}

std::vector<std::pair<std::string, std::string>> GenerateCorpusSources(
    const CorpusProfile& profile) {
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(static_cast<size_t>(profile.files));
  for (int i = 0; i < profile.files; ++i) {
    SourceFile file = GenerateCorpusFile(profile, i);
    sources.emplace_back(file.path, file.Content());
  }
  return sources;
}

bool WriteCorpus(const CorpusProfile& profile, const std::string& dir,
                 CorpusStats* stats, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error) *error = "cannot create " + dir + ": " + ec.message();
    return false;
  }
  CorpusStats local;
  for (int i = 0; i < profile.files; ++i) {
    SourceFile file = GenerateCorpusFile(profile, i);
    std::string content = file.Content();
    std::string path = dir + "/" + file.path;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out || !(out << content) || !out.flush()) {
      if (error) *error = "cannot write " + path;
      return false;
    }
    ++local.files;
    local.lines += static_cast<int64_t>(file.lines.size());
    local.bytes += static_cast<int64_t>(content.size());
  }
  if (stats) *stats = local;
  return true;
}

}  // namespace testing
}  // namespace vc

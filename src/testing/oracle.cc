#include "src/testing/oracle.h"

#include <algorithm>

#include "src/core/incremental.h"
#include "src/core/report_formats.h"
#include "src/support/json_reader.h"

namespace vc {
namespace testing {

namespace {

void AppendCandidate(std::string& out, const UnusedDefCandidate& cand) {
  out += cand.checker;
  out += ':';
  out += cand.fingerprint;
  out += '|';
  out += cand.file;
  out += ':';
  out += std::to_string(cand.def_loc.line);
  out += ':';
  out += std::to_string(cand.def_loc.column);
  out += '|';
  out += cand.function;
  out += '|';
  out += cand.slot_name;
  out += '|';
  out += CandidateKindName(cand.kind);
  out += '|';
  out += cand.cross_scope ? "x" : "-";
  out += cand.is_param ? "p" : "-";
  out += cand.is_synthetic ? "s" : "-";
  out += cand.is_field_slot ? "f" : "-";
  out += cand.overwritten ? "o" : "-";
  out += '|';
  out += cand.callee_name;
  out += '|';
  for (const SourceLoc& loc : cand.overwriter_locs) {
    out += std::to_string(loc.line);
    out += ',';
  }
  out += '|';
  out += PruneReasonName(cand.pruned_by);
  out += '|';
  out += std::to_string(cand.familiarity);
  out += '\n';
}

// The degraded_run oracle's analysis configuration. Peer-definition pruning
// consults corpus-global occurrence statistics, so legitimately quarantining
// one unit can flip another unit's verdict; it is disabled in both the clean
// and the faulted run so subset-equality of fingerprints holds by
// construction (every other prune pattern is function- or file-local).
AnalysisReport AnalyzeForDegraded(const TestProgram& program, int jobs, uint64_t seed,
                                  double rate, bool inject,
                                  const std::vector<std::string>& checkers) {
  AnalysisOptions options;
  options.checkers = checkers;
  options.cross_scope_only = false;
  options.jobs = jobs;
  options.prune.peer_definition = false;
  if (inject) {
    options.fault = FaultInjector(seed, rate);
  }
  return Analysis(options).RunOnSources(program.ToSources());
}

// Deterministic one-line-per-unit rendering of the quarantine list, compared
// byte for byte across job counts.
std::string SerializeQuarantine(const AnalysisReport& report) {
  std::string out;
  for (const QuarantinedUnit& unit : report.quarantined) {
    out += unit.path;
    out += '|';
    out += unit.function;
    out += '|';
    out += unit.stage;
    out += '|';
    out += unit.reason;
    out += '|';
    out += unit.checker;
    out += '\n';
  }
  return out;
}

std::string JoinFingerprints(const std::set<std::string>& set) {
  std::string out;
  for (const std::string& fp : set) {
    if (!out.empty()) {
      out += ",";
    }
    out += fp;
  }
  return out;
}

}  // namespace

const char* OracleKindName(OracleKind kind) {
  switch (kind) {
    case OracleKind::kCleanFrontend:
      return "clean_frontend";
    case OracleKind::kJobsDeterminism:
      return "jobs_determinism";
    case OracleKind::kMetricsParity:
      return "metrics_parity";
    case OracleKind::kJsonRoundTrip:
      return "json_round_trip";
    case OracleKind::kMetamorphic:
      return "metamorphic";
    case OracleKind::kDegradedRun:
      return "degraded_run";
    case OracleKind::kIncrementalEquivalence:
      return "incremental_equivalence";
  }
  return "unknown";
}

std::optional<OracleKind> OracleKindFromName(const std::string& name) {
  for (OracleKind kind : AllOracles()) {
    if (name == OracleKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::vector<OracleKind> AllOracles() {
  return {OracleKind::kCleanFrontend,  OracleKind::kJobsDeterminism,
          OracleKind::kMetricsParity,  OracleKind::kJsonRoundTrip,
          OracleKind::kMetamorphic,    OracleKind::kDegradedRun,
          OracleKind::kIncrementalEquivalence};
}

bool OracleVerdict::Failed(OracleKind kind) const {
  for (const OracleFailure& failure : failures) {
    if (failure.oracle == kind) {
      return true;
    }
  }
  return false;
}

OracleRunner::OracleRunner(OracleOptions options) : options_(std::move(options)) {}

AnalysisReport OracleRunner::Analyze(const TestProgram& program, int jobs,
                                     bool collect_metrics) const {
  AnalysisOptions options;
  options.checkers = options_.checkers;
  options.cross_scope_only = false;
  options.jobs = jobs;
  options.collect_metrics = collect_metrics;
  AnalysisReport report = Analysis(options).RunOnSources(program.ToSources());
  if (jobs > 1 && options_.parallel_fault) {
    options_.parallel_fault(report);
  }
  return report;
}

std::string OracleRunner::SerializeFindings(const AnalysisReport& report) {
  std::string out;
  out += "findings\n";
  for (const UnusedDefCandidate& cand : report.findings) {
    AppendCandidate(out, cand);
  }
  out += "raw\n";
  for (const UnusedDefCandidate& cand : report.raw_candidates) {
    AppendCandidate(out, cand);
  }
  const PruneStats& prune = report.prune_stats;
  out += "prune|" + std::to_string(prune.original) + "|" +
         std::to_string(prune.config_dependency) + "|" + std::to_string(prune.cursor) + "|" +
         std::to_string(prune.unused_hints) + "|" + std::to_string(prune.peer_definition) +
         "|" + std::to_string(prune.stale_code) + "|" + std::to_string(prune.remaining) + "\n";
  out += "non_cross_scope|" + std::to_string(report.non_cross_scope) + "\n";
  out += "diagnostics|" + std::to_string(report.diagnostic_warnings) + "|" +
         std::to_string(report.diagnostic_errors) + "\n";
  return out;
}

std::set<std::string> OracleRunner::FingerprintSet(const AnalysisReport& report) {
  std::set<std::string> set;
  for (const UnusedDefCandidate& cand : report.findings) {
    set.insert(cand.checker + ":" + cand.fingerprint);
  }
  return set;
}

OracleVerdict OracleRunner::Check(const TestProgram& program) const {
  OracleVerdict verdict;
  std::vector<int> jobs = options_.jobs;
  if (jobs.empty()) {
    jobs = {1, 2, 8};
  }

  AnalysisReport base = Analyze(program, jobs.front(), /*collect_metrics=*/false);
  std::string base_serialized = SerializeFindings(base);

  if (Enabled(OracleKind::kCleanFrontend)) {
    if (base.diagnostic_errors != 0) {
      verdict.failures.push_back(
          {OracleKind::kCleanFrontend, "",
           std::to_string(base.diagnostic_errors) + " diagnostic error(s) on generated input"});
    }
  }

  AnalysisReport last_parallel;
  bool have_parallel = false;
  if (Enabled(OracleKind::kJobsDeterminism) || Enabled(OracleKind::kMetricsParity)) {
    for (size_t i = 1; i < jobs.size(); ++i) {
      AnalysisReport report = Analyze(program, jobs[i], /*collect_metrics=*/false);
      if (Enabled(OracleKind::kJobsDeterminism)) {
        std::string serialized = SerializeFindings(report);
        if (serialized != base_serialized) {
          verdict.failures.push_back(
              {OracleKind::kJobsDeterminism, "",
               "jobs=" + std::to_string(jobs[i]) + " diverges from jobs=" +
                   std::to_string(jobs.front()) + " (" +
                   std::to_string(report.findings.size()) + " vs " +
                   std::to_string(base.findings.size()) + " findings)"});
        }
      }
      if (i + 1 == jobs.size()) {
        last_parallel = std::move(report);
        have_parallel = true;
      }
    }
  }

  if (Enabled(OracleKind::kMetricsParity)) {
    // Serial and (when available) widest-parallel parity: metrics collection
    // must be a pure observer.
    AnalysisReport with_metrics = Analyze(program, jobs.front(), /*collect_metrics=*/true);
    if (SerializeFindings(with_metrics) != base_serialized) {
      verdict.failures.push_back({OracleKind::kMetricsParity, "",
                                  "collect_metrics changed findings at jobs=" +
                                      std::to_string(jobs.front())});
    }
    if (have_parallel) {
      AnalysisReport parallel_metrics =
          Analyze(program, jobs.back(), /*collect_metrics=*/true);
      if (SerializeFindings(parallel_metrics) != SerializeFindings(last_parallel)) {
        verdict.failures.push_back({OracleKind::kMetricsParity, "",
                                    "collect_metrics changed findings at jobs=" +
                                        std::to_string(jobs.back())});
      }
    }
  }

  if (Enabled(OracleKind::kJsonRoundTrip)) {
    AnalysisReport with_metrics = Analyze(program, jobs.front(), /*collect_metrics=*/true);
    std::string json = ReportToJson(with_metrics);
    std::string error;
    std::optional<JsonValue> doc = ParseJson(json, &error);
    if (!doc.has_value()) {
      verdict.failures.push_back(
          {OracleKind::kJsonRoundTrip, "", "report JSON does not parse: " + error});
    } else {
      const JsonValue& findings = doc->Get("findings");
      if (doc->GetInt("schema_version") != 8) {
        verdict.failures.push_back({OracleKind::kJsonRoundTrip, "", "schema_version != 8"});
      } else if (findings.Size() != with_metrics.findings.size()) {
        verdict.failures.push_back(
            {OracleKind::kJsonRoundTrip, "",
             "finding count mismatch: " + std::to_string(findings.Size()) + " in JSON vs " +
                 std::to_string(with_metrics.findings.size())});
      } else {
        for (size_t i = 0; i < with_metrics.findings.size(); ++i) {
          const UnusedDefCandidate& cand = with_metrics.findings[i];
          const JsonValue& entry = findings.At(i);
          if (entry.GetString("fingerprint") != cand.fingerprint ||
              entry.GetString("checker") != cand.checker ||
              entry.GetString("file") != cand.file ||
              entry.GetInt("line") != cand.def_loc.line ||
              entry.GetInt("column") != cand.def_loc.column ||
              entry.GetString("function") != cand.function ||
              entry.GetString("variable") != cand.slot_name ||
              entry.GetString("kind") != CandidateKindName(cand.kind)) {
            verdict.failures.push_back({OracleKind::kJsonRoundTrip, "",
                                        "finding " + std::to_string(i) +
                                            " lost fields in the JSON round-trip"});
            break;
          }
        }
        const JsonValue& diagnostics = doc->Get("diagnostics");
        if (diagnostics.GetInt("warnings") != with_metrics.diagnostic_warnings ||
            diagnostics.GetInt("errors") != with_metrics.diagnostic_errors) {
          verdict.failures.push_back(
              {OracleKind::kJsonRoundTrip, "", "diagnostics block mismatch"});
        }
      }
    }
  }

  if (Enabled(OracleKind::kMetamorphic)) {
    ProtectedSlots protected_slots = ProtectedSlots::FromReport(base);
    std::set<std::string> base_fps = FingerprintSet(base);
    for (Transform transform : AllTransforms()) {
      TestProgram mutant =
          ApplyTransform(program, transform, options_.mutation_seed, protected_slots);
      AnalysisReport report = Analyze(mutant, jobs.front(), /*collect_metrics=*/false);
      if (report.diagnostic_errors != 0 && base.diagnostic_errors == 0) {
        verdict.failures.push_back({OracleKind::kMetamorphic, TransformName(transform),
                                    "transform broke the parse (" +
                                        std::to_string(report.diagnostic_errors) +
                                        " diagnostic error(s))"});
        continue;
      }
      std::set<std::string> mutant_fps = FingerprintSet(report);
      if (mutant_fps != base_fps) {
        std::set<std::string> lost;
        std::set_difference(base_fps.begin(), base_fps.end(), mutant_fps.begin(),
                            mutant_fps.end(), std::inserter(lost, lost.begin()));
        std::set<std::string> gained;
        std::set_difference(mutant_fps.begin(), mutant_fps.end(), base_fps.begin(),
                            base_fps.end(), std::inserter(gained, gained.begin()));
        verdict.failures.push_back({OracleKind::kMetamorphic, TransformName(transform),
                                    "fingerprint set changed; lost=[" + JoinFingerprints(lost) +
                                        "] gained=[" + JoinFingerprints(gained) + "]"});
      }
    }
  }

  if (Enabled(OracleKind::kDegradedRun)) {
    // Salt the mutation seed so the injection sites differ from campaign
    // iteration to iteration even when the same seed reruns other oracles.
    const uint64_t seed = options_.mutation_seed ^ 0x9e3779b97f4a7c15ull;
    AnalysisReport clean =
        AnalyzeForDegraded(program, jobs.front(), seed, options_.fault_rate, /*inject=*/false,
                           options_.checkers);
    if (clean.degraded || !clean.quarantined.empty()) {
      verdict.failures.push_back(
          {OracleKind::kDegradedRun, "", "clean run (no injection) reports degraded"});
    } else {
      bool aborted = false;
      AnalysisReport faulted;
      try {
        faulted =
            AnalyzeForDegraded(program, jobs.front(), seed, options_.fault_rate, /*inject=*/true,
                               options_.checkers);
      } catch (const std::exception& e) {
        aborted = true;
        verdict.failures.push_back(
            {OracleKind::kDegradedRun, "",
             std::string("pipeline aborted under injected faults: ") + e.what()});
      }
      if (!aborted) {
        if (faulted.degraded != !faulted.quarantined.empty()) {
          verdict.failures.push_back(
              {OracleKind::kDegradedRun, "",
               "degraded flag inconsistent with the quarantine list (" +
                   std::to_string(faulted.quarantined.size()) + " unit(s))"});
        }
        std::set<std::string> clean_fps = FingerprintSet(clean);
        std::set<std::string> faulted_fps = FingerprintSet(faulted);
        std::set<std::string> gained;
        std::set_difference(faulted_fps.begin(), faulted_fps.end(), clean_fps.begin(),
                            clean_fps.end(), std::inserter(gained, gained.begin()));
        if (!gained.empty()) {
          verdict.failures.push_back(
              {OracleKind::kDegradedRun, "",
               "faulted run reports fingerprints absent from the clean run: [" +
                   JoinFingerprints(gained) + "]"});
        }
        std::string faulted_findings = SerializeFindings(faulted);
        std::string faulted_quarantine = SerializeQuarantine(faulted);
        for (size_t i = 1; i < jobs.size(); ++i) {
          AnalysisReport report;
          try {
            report =
                AnalyzeForDegraded(program, jobs[i], seed, options_.fault_rate, /*inject=*/true,
                                   options_.checkers);
          } catch (const std::exception& e) {
            verdict.failures.push_back(
                {OracleKind::kDegradedRun, "",
                 "pipeline aborted under injected faults at jobs=" + std::to_string(jobs[i]) +
                     ": " + e.what()});
            continue;
          }
          if (SerializeFindings(report) != faulted_findings ||
              SerializeQuarantine(report) != faulted_quarantine) {
            verdict.failures.push_back(
                {OracleKind::kDegradedRun, "",
                 "faulted run diverges at jobs=" + std::to_string(jobs[i]) + " from jobs=" +
                     std::to_string(jobs.front()) + " (findings or quarantine list)"});
          }
        }
      }
    }
  }

  if (Enabled(OracleKind::kIncrementalEquivalence)) {
    // Replay the program as a history (one commit per file, then an edit
    // appending a probe function to the first file) and hold the incremental
    // engine to full-run equivalence at every commit. Serial plus the widest
    // job count — the jobs_determinism oracle already covers the middle.
    Repository repo;
    AuthorId author = repo.AddAuthor("fuzz");
    int64_t timestamp = 1'650'000'000;
    std::vector<std::pair<std::string, std::string>> sources = program.ToSources();
    for (const auto& [path, content] : sources) {
      repo.AddCommit(author, timestamp += 60, "add " + path, {{path, content}});
    }
    repo.AddCommit(author, timestamp += 60, "probe edit",
                   {{sources.front().first,
                     sources.front().second +
                         "\nint inc_probe(int z) {\n  int w = z + 1;\n  return w;\n}\n"}});

    std::set<int> job_counts = {jobs.front(), jobs.back()};
    for (int job_count : job_counts) {
      AnalysisOptions options;
      options.checkers = options_.checkers;
      options.cross_scope_only = false;
      options.jobs = job_count;
      IncrementalEngine engine(options);
      Analysis full(options);
      bool diverged = false;
      for (CommitId commit = 0; commit < repo.NumCommits() && !diverged; ++commit) {
        IncrementalResult result = engine.AnalyzeCommit(repo, commit);
        AnalysisReport fresh = full.RunOnRepository(repo.PrefixCopy(commit));
        if (SerializeFindings(result.report) != SerializeFindings(fresh)) {
          verdict.failures.push_back(
              {OracleKind::kIncrementalEquivalence, "",
               "incremental report diverges from the full run at commit " +
                   std::to_string(commit) + " (jobs " + std::to_string(job_count) + ")"});
          diverged = true;
        }
      }
    }
  }

  return verdict;
}

std::function<void(AnalysisReport&)> DropOverwrittenFindingsFault() {
  return [](AnalysisReport& report) {
    report.findings.erase(
        std::remove_if(report.findings.begin(), report.findings.end(),
                       [](const UnusedDefCandidate& cand) { return cand.overwritten; }),
        report.findings.end());
  };
}

}  // namespace testing
}  // namespace vc

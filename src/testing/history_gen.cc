#include "src/testing/history_gen.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/support/rng.h"

namespace vc {
namespace testing {

namespace {

// Per-module mutable state. `version` selects the generated body, `touches`
// counts appended blank lines, `rename_gen` selects the file path, and
// `entry_params` the arity of the module's stable export.
struct ModuleState {
  int version = 0;
  int rename_gen = 0;
  int touches = 0;
  int entry_params = 1;  // 1 or 2
};

std::string ModulePath(int module, int rename_gen) {
  std::string path = "mod" + std::to_string(module);
  if (rename_gen > 0) {
    path += "_r" + std::to_string(rename_gen);
  }
  return path + ".c";
}

std::string EntryName(int module) { return "mod" + std::to_string(module) + "_entry"; }

// Full module content for a state. Independent of rename_gen, so a rename
// moves byte-identical content to a new path.
std::string ModuleContent(const HistoryGenOptions& options, int module,
                          const ModuleState& state) {
  GenOptions gen = options.per_module;
  gen.min_files = 1;
  gen.max_files = 1;
  gen.ident_prefix =
      "m" + std::to_string(module) + "v" + std::to_string(state.version) + "_";
  uint64_t seed = options.seed;
  seed = seed * 0x100000001b3ULL + static_cast<uint64_t>(module) + 1;
  seed = seed * 0x100000001b3ULL + static_cast<uint64_t>(state.version) + 1;
  TestProgram program = GenerateProgram(seed, gen);
  std::string content = program.files.front().Content();
  // The stable export glue.c calls into. Its body depends on the version, so
  // a rewrite is also a cross-file callee edit from glue's point of view.
  content += "int " + EntryName(module) +
             (state.entry_params == 1 ? "(int a) {\n" : "(int a, int b) {\n");
  content += "  int acc = a + " + std::to_string(module + state.version) + ";\n";
  if (state.entry_params == 2) {
    content += "  acc = acc + b;\n";
  }
  content += "  return acc;\n}\n";
  content.append(static_cast<size_t>(state.touches), '\n');
  return content;
}

// One caller per live module, matching each export's current arity.
std::string GlueContent(const std::map<int, ModuleState>& live) {
  std::string content;
  for (const auto& [module, state] : live) {
    content += "int glue_m" + std::to_string(module) + "(int x) {\n";
    content += "  int r = " + EntryName(module) +
               (state.entry_params == 1 ? "(x);\n" : "(x, x);\n");
    content += "  return r;\n}\n";
  }
  return content;
}

}  // namespace

Repository GenerateHistory(const HistoryGenOptions& options) {
  Repository repo;
  std::vector<AuthorId> authors;
  int author_count = options.authors > 0 ? options.authors : 1;
  for (int i = 0; i < author_count; ++i) {
    authors.push_back(repo.AddAuthor("dev" + std::to_string(i)));
  }

  Rng rng(options.seed ^ 0x68697374ULL);  // distinct stream from module bodies
  std::map<int, ModuleState> live;
  int next_module = 0;
  int64_t timestamp = 1'600'000'000;

  std::map<std::string, std::string> initial;
  for (int i = 0; i < options.initial_modules; ++i) {
    live[next_module] = ModuleState{};
    initial[ModulePath(next_module, 0)] = ModuleContent(options, next_module, live[next_module]);
    ++next_module;
  }
  initial["glue.c"] = GlueContent(live);
  repo.AddCommit(authors[0], timestamp, "initial import", std::move(initial));

  for (int c = 1; c < options.commits; ++c) {
    timestamp += rng.NextInRange(60, 3600);
    AuthorId author = authors[rng.NextBelow(authors.size())];
    std::map<std::string, std::string> files;
    std::set<std::string> deleted;
    std::string message;

    // Pick a live module up front; ops that can't run (add at max_modules,
    // remove at one module) fall back to a rewrite so every commit edits
    // something.
    auto pick = live.begin();
    std::advance(pick, static_cast<long>(rng.NextBelow(live.size())));
    int module = pick->first;
    ModuleState& state = pick->second;

    uint64_t op = rng.NextBelow(100);
    if (op < 60 && op >= 45) {
      // Whitespace-only touch: hash changes, semantics don't.
      ++state.touches;
      files[ModulePath(module, state.rename_gen)] = ModuleContent(options, module, state);
      message = "tidy mod" + std::to_string(module);
    } else if (op < 70 && op >= 60 &&
               static_cast<int>(live.size()) < options.max_modules) {
      live[next_module] = ModuleState{};
      files[ModulePath(next_module, 0)] = ModuleContent(options, next_module, live[next_module]);
      files["glue.c"] = GlueContent(live);
      message = "add mod" + std::to_string(next_module);
      ++next_module;
    } else if (op < 80 && op >= 70 && live.size() > 1) {
      deleted.insert(ModulePath(module, state.rename_gen));
      live.erase(module);
      files["glue.c"] = GlueContent(live);
      message = "remove mod" + std::to_string(module);
    } else if (op < 90 && op >= 80) {
      // Rename: same bytes, new path.
      deleted.insert(ModulePath(module, state.rename_gen));
      ++state.rename_gen;
      files[ModulePath(module, state.rename_gen)] = ModuleContent(options, module, state);
      message = "move mod" + std::to_string(module);
    } else if (op >= 90) {
      // Signature change on the export; glue must follow.
      state.entry_params = 3 - state.entry_params;
      files[ModulePath(module, state.rename_gen)] = ModuleContent(options, module, state);
      files["glue.c"] = GlueContent(live);
      message = "change mod" + std::to_string(module) + " entry signature";
    } else {
      // Rewrite (the common case, and the fallback for blocked add/remove).
      ++state.version;
      state.touches = 0;
      files[ModulePath(module, state.rename_gen)] = ModuleContent(options, module, state);
      message = "rework mod" + std::to_string(module);
    }
    repo.AddCommit(author, timestamp, std::move(message), std::move(files),
                   std::move(deleted));
  }
  return repo;
}

}  // namespace testing
}  // namespace vc

#include "src/testing/mutator.h"

#include <algorithm>
#include <cctype>

#include "src/support/rng.h"

namespace vc {
namespace testing {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trimmed(const std::string& line) {
  size_t begin = line.find_first_not_of(" \t");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = line.find_last_not_of(" \t");
  return line.substr(begin, end - begin + 1);
}

// One top-level function definition: [begin, end] line indexes, inclusive,
// where `begin` may include leading comment/blank lines attached so reorder
// keeps a function's header comment with it.
struct FunctionSpan {
  std::string name;
  size_t begin = 0;      // first attached line
  size_t sig_line = 0;   // the `name(...) {` line
  size_t end = 0;        // the column-zero `}` line
};

// Marks lines inside /* ... */ block comments (the opening and closing lines
// themselves count as inside). String literals are respected.
std::vector<bool> BlockCommentLines(const std::vector<std::string>& lines) {
  std::vector<bool> inside(lines.size(), false);
  bool in_comment = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    bool touched = in_comment;
    const std::string& line = lines[i];
    bool in_string = false;
    char quote = 0;
    for (size_t j = 0; j < line.size(); ++j) {
      char c = line[j];
      if (in_comment) {
        if (c == '*' && j + 1 < line.size() && line[j + 1] == '/') {
          in_comment = false;
          ++j;
        }
        touched = true;
      } else if (in_string) {
        if (c == '\\') {
          ++j;
        } else if (c == quote) {
          in_string = false;
        }
      } else if (c == '"' || c == '\'') {
        in_string = true;
        quote = c;
      } else if (c == '/' && j + 1 < line.size() && line[j + 1] == '/') {
        break;  // line comment: rest of line is inert
      } else if (c == '/' && j + 1 < line.size() && line[j + 1] == '*') {
        in_comment = true;
        touched = true;
        ++j;
      }
    }
    inside[i] = touched;
  }
  return inside;
}

// A column-zero line of the shape `... name(...) ... {` that is not a
// struct/enum/typedef declaration opens a function definition.
bool IsFunctionStart(const std::string& line, std::string* name) {
  if (line.empty() || line[0] == ' ' || line[0] == '\t' || line[0] == '/' || line[0] == '*' ||
      line[0] == '#' || line[0] == '}') {
    return false;
  }
  std::string trimmed = Trimmed(line);
  if (trimmed.empty() || trimmed.back() != '{') {
    return false;
  }
  if (trimmed.rfind("struct ", 0) == 0 || trimmed.rfind("enum", 0) == 0 ||
      trimmed.rfind("typedef ", 0) == 0 || trimmed.rfind("union ", 0) == 0) {
    return false;
  }
  size_t paren = line.find('(');
  if (paren == std::string::npos || paren == 0) {
    return false;
  }
  size_t name_end = paren;
  while (name_end > 0 && line[name_end - 1] == ' ') {
    --name_end;
  }
  size_t name_begin = name_end;
  while (name_begin > 0 && IsIdentChar(line[name_begin - 1])) {
    --name_begin;
  }
  if (name_begin == name_end || !IsIdentStart(line[name_begin])) {
    return false;
  }
  if (name != nullptr) {
    *name = line.substr(name_begin, name_end - name_begin);
  }
  return true;
}

std::vector<FunctionSpan> ScanFunctions(const std::vector<std::string>& lines) {
  std::vector<FunctionSpan> spans;
  std::vector<bool> in_comment = BlockCommentLines(lines);
  size_t i = 0;
  while (i < lines.size()) {
    std::string name;
    if (in_comment[i] || !IsFunctionStart(lines[i], &name)) {
      ++i;
      continue;
    }
    FunctionSpan span;
    span.name = name;
    span.sig_line = i;
    // Attach the immediately preceding run of comment/blank lines (but not
    // past the previous function's closing brace or a declaration line).
    size_t begin = i;
    size_t prev_end = spans.empty() ? 0 : spans.back().end + 1;
    while (begin > prev_end) {
      std::string above = Trimmed(lines[begin - 1]);
      if (above.empty() || above.rfind("//", 0) == 0 || above.rfind("/*", 0) == 0 ||
          above.rfind("*", 0) == 0) {
        --begin;
      } else {
        break;
      }
    }
    span.begin = begin;
    // Functions close with a column-zero `}` (the generator and the corpus
    // both follow this); nested blocks close with indented braces.
    size_t end = i + 1;
    while (end < lines.size() &&
           !(!lines[end].empty() && lines[end][0] == '}' && Trimmed(lines[end]) == "}")) {
      ++end;
    }
    if (end >= lines.size()) {
      break;  // unterminated; leave the tail alone
    }
    span.end = end;
    spans.push_back(span);
    i = end + 1;
  }
  return spans;
}

// Identifiers that must never be rename targets: function names and every
// top-level (column-zero) declaration the files introduce — globals, enum
// constants, typedef names, struct and field names.
std::set<std::string> CollectForbiddenNames(const TestProgram& program) {
  std::set<std::string> forbidden;
  for (const SourceFile& file : program.files) {
    std::vector<FunctionSpan> spans = ScanFunctions(file.lines);
    std::vector<bool> is_body(file.lines.size(), false);
    for (const FunctionSpan& span : spans) {
      forbidden.insert(span.name);
      for (size_t i = span.sig_line + 1; i <= span.end; ++i) {
        is_body[i] = true;
      }
    }
    for (size_t i = 0; i < file.lines.size(); ++i) {
      if (is_body[i]) {
        continue;
      }
      // Harvest every identifier on non-body lines (struct fields, enum
      // constants, globals, typedef names). Over-approximating is fine: it
      // only makes the rename pass more conservative.
      const std::string& line = file.lines[i];
      size_t j = 0;
      while (j < line.size()) {
        if (IsIdentStart(line[j])) {
          size_t begin = j;
          while (j < line.size() && IsIdentChar(line[j])) {
            ++j;
          }
          forbidden.insert(line.substr(begin, j - begin));
        } else {
          ++j;
        }
      }
    }
  }
  return forbidden;
}

// Whole-word replacement outside string/char literals; skips matches that are
// member accesses (preceded by '.' or '->').
std::string ReplaceWord(const std::string& line, const std::string& from,
                        const std::string& to) {
  std::string out;
  out.reserve(line.size());
  bool in_string = false;
  char quote = 0;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_string) {
      out += c;
      if (c == '\\' && i + 1 < line.size()) {
        out += line[i + 1];
        ++i;
      } else if (c == quote) {
        in_string = false;
      }
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      in_string = true;
      quote = c;
      out += c;
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t begin = i;
      while (i < line.size() && IsIdentChar(line[i])) {
        ++i;
      }
      std::string word = line.substr(begin, i - begin);
      bool member = false;
      size_t back = out.size();
      while (back > 0 && out[back - 1] == ' ') {
        --back;
      }
      if (back > 0 && (out[back - 1] == '.' ||
                       (back > 1 && out[back - 2] == '-' && out[back - 1] == '>'))) {
        member = true;
      }
      out += (!member && word == from) ? to : word;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

bool ContainsWordInLine(const std::string& line, const std::string& word) {
  size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t after = pos + word.size();
    bool right_ok = after >= line.size() || !IsIdentChar(line[after]);
    if (left_ok && right_ok) {
      return true;
    }
    pos = after;
  }
  return false;
}

// Local/parameter declarations within one function span that are simple
// enough to rename safely: `type[*] name [= ...]` declarators and the
// parameter list of the signature line. Names that double as struct members
// (appear after '.'/'->' anywhere in the span) are excluded.
std::vector<std::string> ScanRenamableLocals(const std::vector<std::string>& lines,
                                             const FunctionSpan& span) {
  static const char* kTypeWords[] = {"int",  "char",   "long",  "bool",
                                     "unsigned", "size_t", "struct"};
  std::vector<std::string> names;
  auto add_declarator = [&](std::string piece) {
    // Accept only a pure declarator: stars, one identifier, optional `= ...`
    // with no bracketing — anything fancier is skipped, not guessed at.
    size_t eq = piece.find('=');
    std::string decl = eq == std::string::npos ? piece : piece.substr(0, eq);
    std::string name;
    for (char c : decl) {
      if (c == '*' || c == ' ' || c == '\t') {
        if (!name.empty()) {
          return;  // junk after the identifier
        }
        continue;
      }
      if (!IsIdentChar(c)) {
        return;
      }
      name += c;
    }
    if (!name.empty() && IsIdentStart(name[0])) {
      names.push_back(name);
    }
  };

  for (size_t i = span.sig_line; i <= span.end; ++i) {
    std::string text = Trimmed(lines[i]);
    if (i == span.sig_line) {
      // Parameters: between the outermost parens of the signature.
      size_t open = text.find('(');
      size_t close = text.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close <= open) {
        continue;
      }
      std::string params = text.substr(open + 1, close - open - 1);
      size_t start = 0;
      while (start <= params.size()) {
        size_t comma = params.find(',', start);
        std::string piece =
            params.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        // Drop the leading type words; what remains should be a declarator.
        std::string trimmed = Trimmed(piece);
        size_t cut = 0;
        while (true) {
          size_t word_end = cut;
          while (word_end < trimmed.size() && IsIdentChar(trimmed[word_end])) {
            ++word_end;
          }
          std::string word = trimmed.substr(cut, word_end - cut);
          bool is_type = false;
          for (const char* type_word : kTypeWords) {
            if (word == type_word) {
              is_type = true;
              break;
            }
          }
          if (word == "const" || word == "static") {
            is_type = true;
          }
          if (!is_type) {
            break;
          }
          cut = word_end;
          while (cut < trimmed.size() && (trimmed[cut] == ' ' || trimmed[cut] == '\t')) {
            ++cut;
          }
          if (word == "struct") {
            // Skip the tag too.
            while (cut < trimmed.size() && IsIdentChar(trimmed[cut])) {
              ++cut;
            }
            while (cut < trimmed.size() && (trimmed[cut] == ' ' || trimmed[cut] == '\t')) {
              ++cut;
            }
            break;
          }
        }
        if (cut > 0) {
          add_declarator(trimmed.substr(cut));
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
      continue;
    }
    // Body declarations, including `for (int i = 0; ...` inits.
    if (text.rfind("for (", 0) == 0) {
      size_t open = text.find('(');
      size_t semi = text.find(';', open);
      if (semi != std::string::npos) {
        text = Trimmed(text.substr(open + 1, semi - open - 1));
      }
    }
    if (text.rfind("static ", 0) == 0) {
      text = Trimmed(text.substr(7));
    }
    if (text.rfind("const ", 0) == 0) {
      text = Trimmed(text.substr(6));
    }
    std::string head;
    size_t k = 0;
    while (k < text.size() && IsIdentChar(text[k])) {
      head += text[k++];
    }
    bool typed = false;
    for (const char* type_word : kTypeWords) {
      if (head == type_word) {
        typed = true;
        break;
      }
    }
    if (!typed) {
      continue;
    }
    std::string rest = text.substr(k);
    if (head == "struct") {
      rest = Trimmed(rest);
      size_t tag = 0;
      while (tag < rest.size() && IsIdentChar(rest[tag])) {
        ++tag;
      }
      rest = rest.substr(tag);
    }
    if (!rest.empty() && rest.back() == ';') {
      rest.pop_back();
    } else {
      continue;  // declaration lines end in ';' in this codebase's style
    }
    // Reject anything with call/index syntax; then split multi-declarators.
    size_t start = 0;
    int paren_depth = 0;
    std::vector<std::string> pieces;
    bool bad = false;
    for (size_t j = 0; j <= rest.size(); ++j) {
      if (j == rest.size() || (rest[j] == ',' && paren_depth == 0)) {
        pieces.push_back(rest.substr(start, j - start));
        start = j + 1;
        continue;
      }
      if (rest[j] == '(') {
        ++paren_depth;
      } else if (rest[j] == ')') {
        --paren_depth;
      } else if (rest[j] == '[' || rest[j] == ']') {
        bad = true;
      }
    }
    if (bad) {
      continue;
    }
    for (std::string& piece : pieces) {
      add_declarator(Trimmed(piece));
    }
  }

  // Drop names that appear as member accesses anywhere in the span (they
  // would collide with struct field names under whole-word replace).
  std::vector<std::string> safe;
  for (const std::string& name : names) {
    bool is_member_somewhere = false;
    for (size_t i = span.sig_line; i <= span.end && !is_member_somewhere; ++i) {
      const std::string& line = lines[i];
      size_t pos = 0;
      while ((pos = line.find(name, pos)) != std::string::npos) {
        size_t before = pos;
        while (before > 0 && line[before - 1] == ' ') {
          --before;
        }
        bool member = (before > 0 && line[before - 1] == '.') ||
                      (before > 1 && line[before - 2] == '-' && line[before - 1] == '>');
        size_t after = pos + name.size();
        bool word = (pos == 0 || !IsIdentChar(line[pos - 1])) &&
                    (after >= line.size() || !IsIdentChar(line[after]));
        if (member && word) {
          is_member_somewhere = true;
          break;
        }
        pos = after;
      }
    }
    if (!is_member_somewhere) {
      safe.push_back(name);
    }
  }
  // De-duplicate, preserving first-seen order.
  std::vector<std::string> unique;
  std::set<std::string> seen;
  for (const std::string& name : safe) {
    if (seen.insert(name).second) {
      unique.push_back(name);
    }
  }
  return unique;
}

// --- Transforms ------------------------------------------------------------

void ApplyPadding(TestProgram& program, Rng& rng) {
  int pad_counter = 0;
  for (SourceFile& file : program.files) {
    std::vector<bool> in_comment = BlockCommentLines(file.lines);
    std::vector<std::string> out;
    out.reserve(file.lines.size() + 8);
    for (size_t i = 0; i < file.lines.size(); ++i) {
      // Insert before line i only when neither neighbour is inside a block
      // comment (a pad line inside /* ... */ would end it early).
      bool boundary_safe = !in_comment[i] && (i == 0 || !in_comment[i - 1]);
      if (boundary_safe && rng.NextBool(0.2)) {
        if (rng.NextBool(0.5)) {
          out.push_back("");
        } else {
          out.push_back("/* pad " + std::to_string(pad_counter++) + " */");
        }
      }
      out.push_back(file.lines[i]);
    }
    if (rng.NextBool(0.5)) {
      out.push_back("/* pad " + std::to_string(pad_counter++) + " */");
    }
    file.lines = std::move(out);
  }
}

void ApplyReorderFunctions(TestProgram& program, Rng& rng) {
  for (SourceFile& file : program.files) {
    std::vector<FunctionSpan> spans = ScanFunctions(file.lines);
    if (spans.size() < 2) {
      continue;
    }
    std::vector<size_t> order(spans.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    rng.Shuffle(order);
    std::vector<std::string> out;
    out.reserve(file.lines.size());
    // Prelude: everything before the first span's attached lines.
    for (size_t i = 0; i < spans.front().begin; ++i) {
      out.push_back(file.lines[i]);
    }
    for (size_t idx : order) {
      const FunctionSpan& span = spans[idx];
      if (!out.empty() && !out.back().empty()) {
        out.push_back("");
      }
      for (size_t i = span.begin; i <= span.end; ++i) {
        out.push_back(file.lines[i]);
      }
    }
    // Tail: anything after the last span (trailing comments).
    for (size_t i = spans.back().end + 1; i < file.lines.size(); ++i) {
      out.push_back(file.lines[i]);
    }
    file.lines = std::move(out);
  }
}

void ApplyAlphaRename(TestProgram& program, Rng& rng, const ProtectedSlots& protected_slots) {
  std::set<std::string> forbidden = CollectForbiddenNames(program);
  int rename_counter = 0;
  for (SourceFile& file : program.files) {
    std::vector<FunctionSpan> spans = ScanFunctions(file.lines);
    for (const FunctionSpan& span : spans) {
      std::vector<std::string> locals = ScanRenamableLocals(file.lines, span);
      for (const std::string& name : locals) {
        if (forbidden.count(name) > 0 || protected_slots.Contains(span.name, name)) {
          continue;
        }
        if (!rng.NextBool(0.7)) {
          continue;  // rename most, not all — mixed programs stress ordering
        }
        std::string fresh = name + "_mr" + std::to_string(rename_counter++);
        for (size_t i = span.sig_line; i <= span.end; ++i) {
          if (ContainsWordInLine(file.lines[i], name)) {
            file.lines[i] = ReplaceWord(file.lines[i], name, fresh);
          }
        }
      }
    }
  }
}

void ApplyDeadCodePad(TestProgram& program, Rng& rng) {
  int pad_counter = 0;
  for (SourceFile& file : program.files) {
    int extra = static_cast<int>(rng.NextInRange(1, 2));
    for (int i = 0; i < extra; ++i) {
      std::string base = "vcpad" + std::to_string(pad_counter++);
      file.lines.push_back("");
      file.lines.push_back("int " + base + "() {");
      file.lines.push_back("  int " + base + "_a = " + std::to_string(rng.NextInRange(1, 9)) +
                           ";");
      file.lines.push_back("  int " + base + "_b = (" + base + "_a + " +
                           std::to_string(rng.NextInRange(1, 9)) + ");");
      file.lines.push_back("  return (" + base + "_b * 2);");
      file.lines.push_back("}");
    }
  }
}

void ApplyShuffleFiles(TestProgram& program, Rng& rng) {
  rng.Shuffle(program.files);
}

}  // namespace

const char* TransformName(Transform transform) {
  switch (transform) {
    case Transform::kPadding:
      return "padding";
    case Transform::kReorderFunctions:
      return "reorder_functions";
    case Transform::kAlphaRename:
      return "alpha_rename";
    case Transform::kDeadCodePad:
      return "dead_code_pad";
    case Transform::kShuffleFiles:
      return "shuffle_files";
  }
  return "unknown";
}

std::vector<Transform> AllTransforms() {
  return {Transform::kPadding, Transform::kReorderFunctions, Transform::kAlphaRename,
          Transform::kDeadCodePad, Transform::kShuffleFiles};
}

ProtectedSlots ProtectedSlots::FromReport(const AnalysisReport& report) {
  ProtectedSlots slots;
  auto add = [&slots](const UnusedDefCandidate& cand) {
    std::string base = cand.slot_name;
    size_t hash = base.find('#');
    if (hash != std::string::npos) {
      base = base.substr(0, hash);
    }
    if (!base.empty() && base[0] != '_') {  // "_tmpN" temps are not source names
      slots.pairs.insert({cand.function, base});
    }
  };
  for (const UnusedDefCandidate& cand : report.findings) {
    add(cand);
  }
  for (const UnusedDefCandidate& cand : report.raw_candidates) {
    add(cand);
  }
  return slots;
}

TestProgram ApplyTransform(const TestProgram& program, Transform transform, uint64_t seed,
                           const ProtectedSlots& protected_slots) {
  TestProgram mutated = program;
  Rng rng(seed ^ (static_cast<uint64_t>(transform) + 1) * 0x9e3779b97f4a7c15ULL);
  switch (transform) {
    case Transform::kPadding:
      ApplyPadding(mutated, rng);
      break;
    case Transform::kReorderFunctions:
      ApplyReorderFunctions(mutated, rng);
      break;
    case Transform::kAlphaRename:
      ApplyAlphaRename(mutated, rng, protected_slots);
      break;
    case Transform::kDeadCodePad:
      ApplyDeadCodePad(mutated, rng);
      break;
    case Transform::kShuffleFiles:
      ApplyShuffleFiles(mutated, rng);
      break;
  }
  return mutated;
}

TestProgram ProgramFromSources(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  TestProgram program;
  for (const auto& [path, content] : sources) {
    SourceFile file;
    file.path = path;
    std::string line;
    for (char c : content) {
      if (c == '\n') {
        file.lines.push_back(line);
        line.clear();
      } else {
        line += c;
      }
    }
    if (!line.empty()) {
      file.lines.push_back(line);
    }
    program.files.push_back(std::move(file));
  }
  return program;
}

}  // namespace testing
}  // namespace vc

// Seeded Mini-C program generator for the differential fuzzing harness.
//
// GenerateProgram(seed) produces a small multi-file Mini-C project drawn from
// the grammar src/parser accepts — structs, enums, typedefs, globals,
// pointers, every statement form — weighted toward def/use-heavy shapes
// (stores that are later overwritten, ignored call results, unused
// parameters) because those are the constructs the detector keys on. The
// programs are never executed, only analyzed, so the generator optimizes for
// parse validity and dataflow variety, not runtime sanity.
//
// Determinism contract: the same (seed, GenOptions) yields byte-identical
// files on every platform — the generator draws exclusively from vc::Rng and
// never iterates unordered containers. Every identifier the generator mints
// is unique program-wide (v<N>, fn<N>, st<N>, fd<N>, g<N>, ...), which the
// metamorphic mutator (mutator.h) relies on for safe whole-word renaming.

#ifndef VALUECHECK_SRC_TESTING_TESTGEN_H_
#define VALUECHECK_SRC_TESTING_TESTGEN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vc {
namespace testing {

struct SourceFile {
  std::string path;
  std::vector<std::string> lines;

  std::string Content() const;
};

// The unit the whole harness passes around: generator output, mutator input
// and output, minimizer input and output.
struct TestProgram {
  uint64_t seed = 0;
  std::vector<SourceFile> files;

  // (path, content) pairs in file order, ready for Project::FromSources.
  std::vector<std::pair<std::string, std::string>> ToSources() const;
  int TotalLines() const;
};

struct GenOptions {
  int min_files = 1;
  int max_files = 3;
  int max_functions_per_file = 4;
  int max_stmts_per_function = 10;
  int max_block_depth = 2;   // nesting of if/loop bodies
  int max_expr_depth = 3;
  bool gen_structs = true;
  bool gen_enums = true;
  bool gen_typedefs = true;
  bool gen_globals = true;
  bool gen_pointers = true;
  // Prefixes applied to every minted identifier / emitted file path. The
  // corpus profile generator (corpusgen.h) uses them to combine many
  // independently generated programs into one project without identifier or
  // path collisions. Defaults keep classic output byte-identical.
  // ident_prefix must be a valid identifier head ("u12_"); file_prefix is
  // prepended verbatim to the "gen<N>.c" path.
  std::string ident_prefix;
  std::string file_prefix;
};

TestProgram GenerateProgram(uint64_t seed, const GenOptions& options = GenOptions());

}  // namespace testing
}  // namespace vc

#endif  // VALUECHECK_SRC_TESTING_TESTGEN_H_

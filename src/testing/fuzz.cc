#include "src/testing/fuzz.h"

#include <chrono>
#include <filesystem>
#include <fstream>

namespace vc {
namespace testing {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Builds the "still the same failure" predicate for minimization: the
// candidate must parse cleanly (unless the original failure was the
// clean-frontend oracle itself) and reproduce the same oracle kind.
ProgramPredicate SameFailurePredicate(const OracleRunner& runner, OracleKind target) {
  return [&runner, target](const TestProgram& candidate) {
    if (candidate.files.empty() || candidate.TotalLines() == 0) {
      return false;
    }
    OracleVerdict verdict = runner.Check(candidate);
    if (target != OracleKind::kCleanFrontend &&
        verdict.Failed(OracleKind::kCleanFrontend)) {
      return false;  // reduced into a parse error, not a reproduction
    }
    return verdict.Failed(target);
  };
}

}  // namespace

uint64_t ProgramSeedFor(uint64_t campaign_seed, int iteration) {
  // splitmix-style spread so adjacent iterations land far apart.
  uint64_t z = campaign_seed + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(iteration) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

FuzzResult RunFuzzCampaign(const FuzzOptions& options) {
  FuzzResult result;
  double start = Now();

  for (int iter = 0; iter < options.iterations; ++iter) {
    if (options.time_budget_seconds > 0.0 &&
        Now() - start > options.time_budget_seconds) {
      if (options.progress != nullptr) {
        *options.progress << "fuzz: time budget exhausted after " << iter << " iterations\n";
      }
      break;
    }
    uint64_t program_seed = ProgramSeedFor(options.seed, iter);
    TestProgram program = GenerateProgram(program_seed, options.gen);

    OracleOptions oracle_options = options.oracle;
    oracle_options.mutation_seed = program_seed;
    OracleRunner runner(oracle_options);

    OracleVerdict verdict = runner.Check(program);
    ++result.iterations_run;

    if (options.progress != nullptr && options.progress_every > 0 &&
        (iter + 1) % options.progress_every == 0) {
      *options.progress << "fuzz: " << (iter + 1) << "/" << options.iterations
                        << " iterations, " << result.failures.size() << " failure(s)\n";
    }
    if (verdict.Passed()) {
      continue;
    }

    const OracleFailure& first = verdict.failures.front();
    FuzzFailure failure;
    failure.program_seed = program_seed;
    failure.iteration = iter;
    failure.oracle = first.oracle;
    failure.transform = first.transform;
    failure.detail = first.detail;
    failure.reproducer = program;

    if (options.minimize) {
      // Re-check only the failing oracle (plus the parse gate inside the
      // predicate) while shrinking — an order of magnitude fewer analyses
      // per reduction step than re-running the full battery.
      OracleOptions minimize_options = oracle_options;
      minimize_options.enabled = {OracleKind::kCleanFrontend, first.oracle};
      OracleRunner minimize_runner(minimize_options);
      failure.reproducer = MinimizeProgram(
          program, SameFailurePredicate(minimize_runner, first.oracle),
          &failure.minimize_stats);
    }

    if (!options.corpus_dir.empty()) {
      std::string dir = options.corpus_dir + "/failure_i" + std::to_string(iter) + "_s" +
                        std::to_string(program_seed);
      if (WriteReproducer(dir, failure.reproducer, failure)) {
        failure.reproducer_dir = dir;
      }
    }
    if (options.progress != nullptr) {
      *options.progress << "fuzz: FAILURE at iteration " << iter << " (oracle "
                        << OracleKindName(failure.oracle)
                        << (failure.transform.empty() ? "" : ", transform " + failure.transform)
                        << "): " << failure.detail << "\n";
      if (options.minimize) {
        *options.progress << "fuzz: minimized " << failure.minimize_stats.initial_lines
                          << " -> " << failure.minimize_stats.final_lines << " lines in "
                          << failure.minimize_stats.predicate_runs << " oracle runs\n";
      }
      if (!failure.reproducer_dir.empty()) {
        *options.progress << "fuzz: reproducer written to " << failure.reproducer_dir << "\n";
      }
    }
    result.failures.push_back(std::move(failure));
  }

  result.seconds = Now() - start;
  return result;
}

bool WriteReproducer(const std::string& dir, const TestProgram& program,
                     const FuzzFailure& failure) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return false;
  }
  for (const SourceFile& file : program.files) {
    std::ofstream out(dir + "/" + file.path, std::ios::binary);
    if (!out) {
      return false;
    }
    out << file.Content();
  }
  std::ofstream manifest(dir + "/MANIFEST.txt", std::ios::binary);
  if (!manifest) {
    return false;
  }
  manifest << "program_seed: " << failure.program_seed << "\n"
           << "iteration: " << failure.iteration << "\n"
           << "oracle: " << OracleKindName(failure.oracle) << "\n";
  if (!failure.transform.empty()) {
    manifest << "transform: " << failure.transform << "\n";
  }
  manifest << "detail: " << failure.detail << "\n"
           << "lines: " << program.TotalLines() << "\n"
           << "replay: vc_fuzz --replay " << failure.program_seed << "\n"
           << "files:";
  for (const SourceFile& file : program.files) {
    manifest << " " << file.path;
  }
  manifest << "\n";
  return manifest.good();
}

}  // namespace testing
}  // namespace vc
